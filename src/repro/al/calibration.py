"""Uncertainty-calibration diagnostics for the GPR's predictive intervals.

Active learning trusts the model's ``sigma(x)`` — both for selecting
experiments and for the AMSD termination signal — so the predictive
intervals had better be *calibrated*: a 95% interval should contain ~95%
of held-out measurements.  This module measures empirical coverage across
confidence levels and summarizes miscalibration, the standard reliability
diagnostic for probabilistic regression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfinv

from ..gp.gpr import GaussianProcessRegressor

__all__ = ["CoverageReport", "interval_coverage", "coverage_curve"]

#: Default nominal two-sided confidence levels examined.
DEFAULT_LEVELS = (0.5, 0.68, 0.8, 0.9, 0.95, 0.99)


@dataclass(frozen=True)
class CoverageReport:
    """Empirical vs nominal coverage of the predictive intervals.

    Attributes
    ----------
    levels:
        Nominal two-sided confidence levels.
    empirical:
        Fraction of test points inside each nominal interval.
    mean_absolute_miscalibration:
        Mean |empirical - nominal| over the levels (0 = perfectly
        calibrated).
    sharpness:
        Mean predictive SD on the test set — calibration is only useful
        together with sharpness (wide intervals are trivially calibrated).
    """

    levels: tuple
    empirical: tuple
    mean_absolute_miscalibration: float
    sharpness: float

    def is_calibrated(self, tol: float = 0.15) -> bool:
        """Whether every level's empirical coverage is within ``tol``."""
        return all(
            abs(e - l) <= tol for e, l in zip(self.empirical, self.levels)
        )


def _z_for_level(level: float) -> float:
    """Two-sided standard-normal quantile for a confidence level."""
    return float(np.sqrt(2.0) * erfinv(level))


def interval_coverage(
    model: GaussianProcessRegressor,
    X_test,
    y_test,
    *,
    levels=DEFAULT_LEVELS,
) -> CoverageReport:
    """Empirical coverage of the model's predictive intervals on a test set."""
    levels = tuple(float(l) for l in levels)
    if not levels or not all(0.0 < l < 1.0 for l in levels):
        raise ValueError("levels must lie strictly between 0 and 1")
    y_test = np.asarray(y_test, dtype=float)
    mu, sd = model.predict(X_test, return_std=True)
    if y_test.shape != mu.shape:
        raise ValueError("y_test shape does not match predictions")
    z_scores = np.abs(y_test - mu) / np.maximum(sd, 1e-300)
    empirical = tuple(
        float(np.mean(z_scores <= _z_for_level(level))) for level in levels
    )
    miscal = float(np.mean([abs(e - l) for e, l in zip(empirical, levels)]))
    return CoverageReport(
        levels=levels,
        empirical=empirical,
        mean_absolute_miscalibration=miscal,
        sharpness=float(np.mean(sd)),
    )


def coverage_curve(report: CoverageReport) -> str:
    """Format a reliability table ``nominal -> empirical``."""
    lines = [f"{'nominal':>8} {'empirical':>10}"]
    for l, e in zip(report.levels, report.empirical):
        lines.append(f"{l:>8.0%} {e:>10.1%}")
    lines.append(
        f"mean |miscalibration|: {report.mean_absolute_miscalibration:.3f}   "
        f"sharpness (mean sd): {report.sharpness:.3f}"
    )
    return "\n".join(lines)
