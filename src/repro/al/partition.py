"""Initial / Active / Test partitioning of a recorded dataset.

Section IV: "The prototype, given a dataset with the design matrix X and
the vector of response values y, partitions it into 3 sets: Initial (for
initial regression training), Active (for one-at-a-time experiment
selection with AL), and Test (for prediction quality analysis). ... we
typically used the Initial set with a single experiment ... The Active and
Test sets in our analysis split the remaining experiments roughly with the
8:2 ratio."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Partition", "random_partition", "random_partitions"]


@dataclass(frozen=True)
class Partition:
    """Index sets of one random dataset split."""

    initial: np.ndarray
    active: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        for name in ("initial", "active", "test"):
            arr = getattr(self, name)
            if arr.ndim != 1 or arr.dtype.kind not in "iu":
                raise ValueError(f"{name} must be a 1-D integer index array")
        all_idx = np.concatenate([self.initial, self.active, self.test])
        if len(np.unique(all_idx)) != all_idx.size:
            raise ValueError("partition sets overlap")
        if self.initial.size < 1:
            raise ValueError("initial set must hold at least one experiment")
        if self.active.size < 1:
            raise ValueError("active set must hold at least one experiment")
        if self.test.size < 1:
            raise ValueError("test set must hold at least one experiment")

    @property
    def n_total(self) -> int:
        """Total number of experiments covered by the partition."""
        return self.initial.size + self.active.size + self.test.size


def random_partition(
    n: int,
    rng=None,
    *,
    n_initial: int = 1,
    test_fraction: float = 0.2,
) -> Partition:
    """Randomly split ``n`` experiments into Initial/Active/Test.

    ``n_initial`` experiments seed the regression (default 1, the paper's
    realistic "first run verifies correctness" scenario); of the remainder,
    ``test_fraction`` goes to Test and the rest to Active.
    """
    if n_initial < 1:
        raise ValueError("n_initial must be >= 1")
    if n_initial >= n:
        raise ValueError(
            f"n_initial={n_initial} must leave room for Active and Test "
            f"records, but the dataset only has n={n}"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rest = n - n_initial
    n_test = max(1, int(round(rest * test_fraction)))
    if rest - n_test < 1:
        raise ValueError(
            f"n={n} is too small for n_initial={n_initial} and "
            f"test_fraction={test_fraction}"
        )
    rng = np.random.default_rng(rng)
    perm = rng.permutation(n)
    return Partition(
        initial=np.sort(perm[:n_initial]),
        active=np.sort(perm[n_initial : n_initial + rest - n_test]),
        test=np.sort(perm[n_initial + rest - n_test :]),
    )


def random_partitions(
    n: int,
    n_partitions: int,
    seed=None,
    *,
    n_initial: int = 1,
    test_fraction: float = 0.2,
) -> list[Partition]:
    """A reproducible batch of random partitions (paper: 10 and 50)."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    root = np.random.default_rng(seed)
    return [
        random_partition(
            n, rng, n_initial=n_initial, test_fraction=test_fraction
        )
        for rng in root.spawn(n_partitions)
    ]
