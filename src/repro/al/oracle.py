"""Oracles: where measured responses come from.

The paper runs AL *offline* against its recorded datasets but names the
*online* mode — "every iteration of AL includes selecting an experiment,
running it, and using the experiment outcome to update the underlying GPR
model" — as the target use case.  This module provides both:

* :class:`OfflineOracle` — replays recorded (X, y, cost) data; a thin
  convenience wrapper used by examples.
* :class:`OnlineHPGMGOracle` — actually *runs* the mini HPGMG-FE solver at
  the requested configuration, with simulated DVFS scaling and measurement
  noise.  An AL experiment here is a real multigrid solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.jobs import JobSpec
from ..cluster.scheduler import ExecutionOutcome
from ..hpgmg.benchmark import run_benchmark
from ..hpgmg.operators import make_problem
from ..perfmodel.noise import PERFORMANCE_NOISE, NoiseModel

__all__ = ["OfflineOracle", "OnlineHPGMGOracle", "HPGMGExecutor", "Observation"]


@dataclass(frozen=True)
class Observation:
    """One measured experiment outcome."""

    x: np.ndarray
    y: float
    cost: float


class OfflineOracle:
    """Replays a recorded dataset; querying index ``i`` returns record ``i``."""

    def __init__(self, X: np.ndarray, y: np.ndarray, costs: np.ndarray):
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.costs = np.asarray(costs, dtype=float)
        if self.X.ndim != 2 or self.y.shape != (self.X.shape[0],):
            raise ValueError("inconsistent oracle data")
        if self.costs.shape != self.y.shape:
            raise ValueError("costs must match y")

    def query(self, index: int) -> Observation:
        """Return the recorded observation at dataset index ``index``."""
        return Observation(
            x=self.X[index], y=float(self.y[index]), cost=float(self.costs[index])
        )


class HPGMGExecutor:
    """Scheduler executor that actually runs the mini HPGMG-FE solver.

    Plugs into :class:`repro.cluster.scheduler.SlurmSimulator` so a whole
    *campaign* can be executed with real multigrid solves instead of the
    analytic model: each job's requested problem size snaps to the nearest
    feasible mesh, the solve runs, and the measured wall time is scaled by
    the simulated DVFS slowdown and strong-scaling speedup (the benchmark
    runs single-threaded here, so rank-level parallelism is modelled, not
    executed).

    Parameters
    ----------
    ne_choices:
        Feasible mesh sizes (elements per side, powers of two times 2).
    freq_exponent / max_freq_ghz:
        DVFS slowdown model ``(f_max / f)^gamma``.
    parallel_efficiency:
        Fraction of ideal speedup attributed to each doubling of ranks.
    noise:
        Measurement noise applied to the simulated-time scaling.
    """

    def __init__(
        self,
        *,
        ne_choices: tuple[int, ...] = (4, 8, 16, 32),
        freq_exponent: float = 0.75,
        max_freq_ghz: float = 2.4,
        parallel_efficiency: float = 0.85,
        noise: NoiseModel = PERFORMANCE_NOISE,
    ):
        if not ne_choices:
            raise ValueError("need at least one mesh size")
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        self.ne_choices = tuple(sorted(ne_choices))
        self.freq_exponent = float(freq_exponent)
        self.max_freq_ghz = float(max_freq_ghz)
        self.parallel_efficiency = float(parallel_efficiency)
        self.noise = noise
        self._solve_cache: dict[tuple[str, int], float] = {}

    def _nearest_ne(self, problem_size: float) -> int:
        # Interior DOFs of a Q1 mesh with ne elements: (ne - 1)^2.
        target = np.sqrt(max(problem_size, 1.0))
        return min(self.ne_choices, key=lambda ne: abs(ne - target))

    def _speedup(self, np_ranks: int) -> float:
        doublings = np.log2(max(np_ranks, 1))
        return float((2.0 * self.parallel_efficiency) ** doublings)

    def _simulated_runtime(self, spec: JobSpec, rng=0) -> tuple[float, "object"]:
        ne = self._nearest_ne(spec.problem_size)
        result = run_benchmark(spec.operator, ne, rng=rng)
        t = result.solve_seconds
        t *= (self.max_freq_ghz / spec.freq_ghz) ** self.freq_exponent
        t /= self._speedup(spec.np_ranks)
        return t, result

    def estimate(self, spec: JobSpec) -> float:
        """Expected runtime: a real (cached) solve scaled by DVFS/ranks."""
        key = (spec.operator, self._nearest_ne(spec.problem_size))
        if key not in self._solve_cache:
            t, _ = self._simulated_runtime(
                JobSpec(spec.operator, spec.problem_size, 1, self.max_freq_ghz)
            )
            self._solve_cache[key] = t
        t = self._solve_cache[key]
        t *= (self.max_freq_ghz / spec.freq_ghz) ** self.freq_exponent
        return t / self._speedup(spec.np_ranks)

    def execute(self, spec: JobSpec, rng: np.random.Generator):
        """Run the actual multigrid solve and report the measured outcome."""
        t, result = self._simulated_runtime(spec, rng=rng)
        measured = float(self.noise.apply(t, rng))
        return ExecutionOutcome(
            runtime_seconds=measured,
            mg_cycles=result.cycles,
            final_residual=result.final_relative_residual,
            dofs_per_second=result.dofs / measured,
            work_units=result.work_units,
            verification_passed=result.verification_error < 0.1,
            rss_mb_per_node=result.dofs * 48 / 1e6,
        )


class OnlineHPGMGOracle:
    """Runs the mini HPGMG-FE benchmark as the experiment backend.

    The candidate space is (log10 problem size, frequency); the operator is
    fixed per oracle (as in the paper's cross-sections).  A query:

    1. maps the requested problem size to the nearest feasible mesh
       (``ne in {ne_coarsest * 2**k}``),
    2. runs the actual multigrid solve and measures its wall time,
    3. applies the simulated DVFS slowdown ``(f_max / f)^gamma`` (the host
       CPU's frequency cannot actually be changed from here) and
       multiplicative measurement noise.

    Responses are log10 runtime, matching the offline pipeline.
    """

    def __init__(
        self,
        operator: str = "poisson1",
        *,
        ne_choices: tuple[int, ...] = (4, 8, 16, 32, 64),
        freq_choices: tuple[float, ...] = (1.2, 1.5, 1.8, 2.1, 2.4),
        freq_exponent: float = 0.75,
        max_freq_ghz: float = 2.4,
        noise: NoiseModel = PERFORMANCE_NOISE,
        rng=None,
    ):
        if not ne_choices or not freq_choices:
            raise ValueError("need at least one mesh size and one frequency")
        self.operator = operator
        self.ne_choices = tuple(sorted(ne_choices))
        self.freq_choices = tuple(sorted(freq_choices))
        self.freq_exponent = float(freq_exponent)
        self.max_freq_ghz = float(max_freq_ghz)
        self.noise = noise
        self.rng = np.random.default_rng(rng)
        self._dof_cache: dict[int, int] = {}

    def candidate_grid(self) -> np.ndarray:
        """All (log10 dofs, freq) candidates, shape ``(n, 2)``."""
        rows = []
        for ne in self.ne_choices:
            dofs = self._dofs(ne)
            for f in self.freq_choices:
                rows.append((np.log10(dofs), f))
        return np.asarray(rows)

    def _dofs(self, ne: int) -> int:
        if ne not in self._dof_cache:
            mesh = make_problem(self.operator).mesh(ne)
            self._dof_cache[ne] = mesh.n_interior
        return self._dof_cache[ne]

    def _nearest_ne(self, log10_dofs: float) -> int:
        diffs = [
            abs(np.log10(self._dofs(ne)) - log10_dofs) for ne in self.ne_choices
        ]
        return self.ne_choices[int(np.argmin(diffs))]

    def query(self, x: np.ndarray) -> Observation:
        """Run the experiment nearest to ``x = (log10 dofs, freq_ghz)``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (2,):
            raise ValueError(f"expected x of shape (2,), got {x.shape}")
        ne = self._nearest_ne(x[0])
        freq = min(self.freq_choices, key=lambda f: abs(f - x[1]))
        result = run_benchmark(self.operator, ne, rng=self.rng.integers(2**31))
        slowdown = (self.max_freq_ghz / freq) ** self.freq_exponent
        runtime = float(
            self.noise.apply(result.solve_seconds * slowdown, self.rng)
        )
        x_actual = np.array([np.log10(result.dofs), freq])
        return Observation(x=x_actual, y=float(np.log10(runtime)), cost=runtime)
