"""Fault tolerance for online AL campaigns: retries and quarantine.

The paper's online mode feeds every experiment outcome straight into the
GPR, which is only sound when every job succeeds.  On a real cluster jobs
crash, hang past the time limit, and occasionally return corrupted
measurements — and training a GP on a timeout-truncated runtime is the
unreliable-annotator failure mode that corrupts its posterior.  This module
supplies the two gates :class:`~repro.al.campaign.OnlineCampaign` applies
before an observation may enter the training set:

* :class:`RetryPolicy` — how often to re-submit a failed experiment, and
  the (simulated) backoff charged to the campaign makespan between
  attempts.  Failed attempts still cost real core-seconds.
* :class:`QuarantinePolicy` — which observations to keep out of the
  training set: failed/timed-out job states, verification failures, and
  (optionally) measurements whose GP-predictive z-score marks them as
  outliers.

:class:`FailureAccounting` aggregates what the gates rejected so the cost
of unreliability is first-class in :class:`~repro.al.campaign.CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry as tm
from ..cluster.jobs import JobRecord
from ..gp.gpr import GaussianProcessRegressor

__all__ = [
    "RetryPolicy",
    "QuarantineDecision",
    "QuarantinePolicy",
    "FailureAccounting",
    "ShardBreakerConfig",
    "ShardBreaker",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Re-submission schedule for rejected experiments.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per experiment (1 = never retry).
    backoff_seconds:
        Simulated delay before the first retry wave; charged to the
        campaign makespan (the wall-clock a real campaign would burn
        waiting for the node to recover).
    backoff_factor:
        Multiplier applied to the delay on each further wave
        (exponential backoff).
    retry_on:
        Quarantine reasons that warrant a retry.  ``"state"`` covers
        FAILED/TIMEOUT job states, ``"verification"`` covers corrupted
        measurements; ``"outlier"`` re-measurements are usually wasteful
        (the point was measured, it just disagrees with the model), so they
        are not retried by default.
    """

    max_attempts: int = 3
    backoff_seconds: float = 30.0
    backoff_factor: float = 2.0
    retry_on: tuple[str, ...] = ("state", "verification")

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt per experiment)."""
        return cls(max_attempts=1, backoff_seconds=0.0, retry_on=())

    def backoff(self, wave: int) -> float:
        """Simulated seconds to wait before retry wave ``wave`` (1-based)."""
        if wave < 1:
            raise ValueError("wave must be >= 1")
        return self.backoff_seconds * self.backoff_factor ** (wave - 1)

    def should_retry(self, reason: str, attempts_done: int) -> bool:
        """Whether an experiment rejected for ``reason`` after
        ``attempts_done`` executions deserves another attempt."""
        granted = reason in self.retry_on and attempts_done < self.max_attempts
        if granted:
            tm.count("retry.granted")
        return granted


@dataclass(frozen=True)
class QuarantineDecision:
    """Verdict on one job record: keep it or gate it out (and why)."""

    ok: bool
    reason: str | None = None  # "state" | "verification" | "outlier"
    detail: str = ""


@dataclass(frozen=True)
class QuarantinePolicy:
    """Gates observations out of the GP training set.

    Checks run in order — job state, verification flag, then the
    GP-predictive z-score — and the first failing check wins.

    Attributes
    ----------
    reject_states:
        SLURM job states whose runtimes are meaningless (a TIMEOUT runtime
        is truncated at the limit, a FAILED one at the crash point).
    require_verification:
        Reject completed jobs whose benchmark verification failed.
    z_threshold:
        If set, reject measurements more than this many predictive
        standard deviations from the current GP mean (computed in the
        model's response space, i.e. log10 runtime).  ``None`` disables
        the outlier test — it needs a trustworthy model, so campaigns
        typically enable it only once a few rounds have accumulated.
    """

    reject_states: tuple[str, ...] = ("FAILED", "TIMEOUT")
    require_verification: bool = True
    z_threshold: float | None = None

    def __post_init__(self):
        if self.z_threshold is not None and self.z_threshold <= 0:
            raise ValueError("z_threshold must be positive (or None)")

    @classmethod
    def permissive(cls) -> "QuarantinePolicy":
        """A policy that accepts everything (the pre-fault-tolerance
        behaviour: blind ingestion)."""
        return cls(reject_states=(), require_verification=False, z_threshold=None)

    def inspect(
        self,
        record: JobRecord,
        *,
        model: GaussianProcessRegressor | None = None,
        x: np.ndarray | None = None,
    ) -> QuarantineDecision:
        """Judge one accounting record.

        ``model`` and ``x`` (the record's feature row) enable the z-score
        test; without them — or with an unfitted model — only the state and
        verification checks run.
        """
        decision = self._inspect(record, model=model, x=x)
        if tm.enabled():
            tm.count("quarantine.inspected")
            if decision.ok:
                tm.count("quarantine.accepted")
            else:
                tm.count(f"quarantine.rejected.{decision.reason}")
        return decision

    def _inspect(
        self,
        record: JobRecord,
        *,
        model: GaussianProcessRegressor | None,
        x: np.ndarray | None,
    ) -> QuarantineDecision:
        if record.state in self.reject_states:
            return QuarantineDecision(
                ok=False,
                reason="state",
                detail=f"job {record.job_id} ended in state {record.state}",
            )
        if self.require_verification and not record.verification_passed:
            return QuarantineDecision(
                ok=False,
                reason="verification",
                detail=f"job {record.job_id} failed verification",
            )
        if (
            self.z_threshold is not None
            and model is not None
            and model.fitted
            and x is not None
        ):
            y_obs = float(np.log10(record.runtime_seconds))
            mu, sd = model.predict(np.asarray(x, dtype=float)[np.newaxis, :],
                                   return_std=True)
            sd_val = float(sd[0])
            if sd_val > 0:
                z = abs(y_obs - float(mu[0])) / sd_val
                if z > self.z_threshold:
                    return QuarantineDecision(
                        ok=False,
                        reason="outlier",
                        detail=(
                            f"job {record.job_id} runtime z-score "
                            f"{z:.2f} > {self.z_threshold}"
                        ),
                    )
        return QuarantineDecision(ok=True)


@dataclass
class FailureAccounting:
    """What unreliability cost a campaign.

    Attributes
    ----------
    n_failed:
        Executions that ended FAILED or TIMEOUT (every attempt counts).
    n_retries:
        Re-submissions performed (executions beyond each experiment's
        first attempt).
    n_quarantined:
        Completed executions gated out of the training set (verification
        failures and z-score outliers).
    wasted_core_seconds:
        Core-seconds spent on executions that produced no usable
        observation.
    n_rollbacks / n_drift_events / n_breaker_opens / n_watchdog_stops:
        Guardrail interventions (see :mod:`repro.al.guardrails`): unhealthy
        fits rolled back to the last known good model, drift alarms raised
        by the residual changepoint detector, circuit-breaker trips in the
        scheduler, and watchdog budget stops.  All zero when the campaign
        runs unguarded.
    """

    n_failed: int = 0
    n_retries: int = 0
    n_quarantined: int = 0
    wasted_core_seconds: float = 0.0
    n_rollbacks: int = 0
    n_drift_events: int = 0
    n_breaker_opens: int = 0
    n_watchdog_stops: int = 0

    def add(self, other: "FailureAccounting") -> None:
        """Fold another accounting delta into this one."""
        self.n_failed += other.n_failed
        self.n_retries += other.n_retries
        self.n_quarantined += other.n_quarantined
        self.wasted_core_seconds += other.wasted_core_seconds
        self.n_rollbacks += other.n_rollbacks
        self.n_drift_events += other.n_drift_events
        self.n_breaker_opens += other.n_breaker_opens
        self.n_watchdog_stops += other.n_watchdog_stops


# ----------------------------------------------------------- shard breaker
#
# The node circuit breaker (repro.cluster.breaker) protects the *scheduler*
# from crash-prone nodes on a wall-clock timeline.  Sharded campaigns
# (repro.al.sharding) need the same pattern on a different failure domain
# and a different clock: a shard whose *model fit* keeps failing must be
# excluded from acquisition routing for a few rounds, probed, and
# eventually written off — all indexed by AL round, not seconds, so the
# state machine replays identically under checkpoint resume.


@dataclass(frozen=True)
class ShardBreakerConfig:
    """Round-indexed circuit-breaker thresholds for :class:`ShardBreaker`.

    Attributes
    ----------
    open_after:
        Consecutive failed rounds (every retry exhausted) before the shard
        opens.
    cooldown_rounds:
        Rounds an open shard sits out before a half-open probe fit.
    blacklist_after:
        Times a shard may open before it is declared dead for the rest of
        the campaign.
    """

    open_after: int = 2
    cooldown_rounds: int = 2
    blacklist_after: int = 3

    def __post_init__(self):
        if self.open_after < 1:
            raise ValueError("open_after must be >= 1")
        if self.cooldown_rounds < 1:
            raise ValueError("cooldown_rounds must be >= 1")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")


class ShardBreaker:
    """Per-shard circuit breaker over AL rounds.

    States per shard: ``closed`` (fits normally) -> ``open`` (excluded
    from fitting and routing for ``cooldown_rounds``) -> ``half_open``
    (one probe fit allowed) -> back to ``closed`` on success, or re-open /
    ``dead`` on failure.  Everything is indexed by the campaign's round
    counter, so the breaker serializes to a small dict and resumes
    bit-identically (:meth:`as_dict` / :meth:`from_dict`).
    """

    def __init__(self, n_shards: int, config: ShardBreakerConfig | None = None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self.config = config or ShardBreakerConfig()
        self._consecutive = [0] * self.n_shards
        self._open_until = [-1] * self.n_shards  # -1 = not open
        self._opens = [0] * self.n_shards
        self._dead = [False] * self.n_shards
        self.n_opened = 0
        self.n_probes = 0
        self.n_blacklisted = 0

    # ------------------------------------------------------------- queries

    def state(self, shard: int, round_index: int) -> str:
        """``"closed"``, ``"open"``, ``"half_open"`` or ``"dead"``."""
        if self._dead[shard]:
            return "dead"
        until = self._open_until[shard]
        if until < 0:
            return "closed"
        if round_index < until:
            return "open"
        return "half_open"

    def serviceable(self, shard: int, round_index: int) -> bool:
        """Whether this shard may attempt a fit this round."""
        return self.state(shard, round_index) in ("closed", "half_open")

    def serviceable_shards(self, round_index: int) -> list[int]:
        return [
            s for s in range(self.n_shards) if self.serviceable(s, round_index)
        ]

    def dead_shards(self) -> list[int]:
        return [s for s in range(self.n_shards) if self._dead[s]]

    # ------------------------------------------------------------ outcomes

    def record_success(self, shard: int, round_index: int) -> None:
        """A fit attempt succeeded: close the shard."""
        if self._dead[shard]:
            return
        if self.state(shard, round_index) == "half_open":
            self.n_probes += 1
            tm.count("shard.breaker.probes")
        self._consecutive[shard] = 0
        self._open_until[shard] = -1

    def record_failure(self, shard: int, round_index: int) -> None:
        """Every retry of this round's fit failed: count toward opening."""
        if self._dead[shard]:
            return
        state = self.state(shard, round_index)
        if state == "half_open":
            self.n_probes += 1
            tm.count("shard.breaker.probes")
            self._open(shard, round_index)
            return
        self._consecutive[shard] += 1
        if self._consecutive[shard] >= self.config.open_after:
            self._open(shard, round_index)

    def _open(self, shard: int, round_index: int) -> None:
        self._opens[shard] += 1
        self.n_opened += 1
        tm.count("shard.breaker.opens")
        if self._opens[shard] >= self.config.blacklist_after:
            self._dead[shard] = True
            self._open_until[shard] = -1
            self.n_blacklisted += 1
            tm.count("shard.breaker.blacklisted")
            tm.event("shard.breaker", shard=shard, state="dead")
            return
        self._open_until[shard] = round_index + 1 + self.config.cooldown_rounds
        tm.event(
            "shard.breaker",
            shard=shard,
            state="open",
            until_round=self._open_until[shard],
        )

    # -------------------------------------------------------- persistence

    def as_dict(self) -> dict:
        return {
            "consecutive": list(self._consecutive),
            "open_until": list(self._open_until),
            "opens": list(self._opens),
            "dead": list(self._dead),
            "n_opened": self.n_opened,
            "n_probes": self.n_probes,
            "n_blacklisted": self.n_blacklisted,
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, n_shards: int, config: ShardBreakerConfig | None = None
    ) -> "ShardBreaker":
        breaker = cls(n_shards, config)
        for name, attr in (
            ("consecutive", "_consecutive"),
            ("open_until", "_open_until"),
            ("opens", "_opens"),
        ):
            values = [int(v) for v in data.get(name, [])]
            if len(values) != n_shards:
                raise ValueError(
                    f"shard breaker state {name!r} has {len(values)} entries "
                    f"for {n_shards} shards"
                )
            setattr(breaker, attr, values)
        dead = [bool(v) for v in data.get("dead", [])]
        if len(dead) != n_shards:
            raise ValueError("shard breaker state 'dead' length mismatch")
        breaker._dead = dead
        breaker.n_opened = int(data.get("n_opened", 0))
        breaker.n_probes = int(data.get("n_probes", 0))
        breaker.n_blacklisted = int(data.get("n_blacklisted", 0))
        return breaker
