"""Continuous-domain candidate selection (paper Section VI).

"Realistic simulations often involve continuous or near-continuous
parameters, such that the active set cannot be treated as finite.  We
expect that this could be handled by choosing the best option within a
finite subset or, preferably, by using continuous optimization.
Gradient-based methods, which are available with GPR, would provide an
important benefit for problems with high-dimensional parameter spaces."

This module implements exactly that: acquisition functions over a
continuous box, maximized with multi-start L-BFGS-B using the GP's
*analytic* input-space gradients (:meth:`GaussianProcessRegressor.
predict_gradient`), plus a continuous AL loop driven by a user-supplied
experiment function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from ..gp.gpr import GaussianProcessRegressor

__all__ = [
    "AcquisitionResult",
    "maximize_sd",
    "maximize_cost_efficiency",
    "ContinuousActiveLearner",
    "ContinuousTrace",
]


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of one acquisition maximization."""

    x: np.ndarray
    value: float
    n_starts: int


def _check_bounds(bounds) -> np.ndarray:
    bounds = np.asarray(bounds, dtype=float)
    if bounds.ndim != 2 or bounds.shape[1] != 2:
        raise ValueError(f"bounds must have shape (d, 2), got {bounds.shape}")
    if np.any(bounds[:, 0] >= bounds[:, 1]):
        raise ValueError("bounds must satisfy low < high per dimension")
    return bounds


def _maximize(
    model: GaussianProcessRegressor,
    bounds: np.ndarray,
    value_and_grad: Callable[[np.ndarray], tuple[float, np.ndarray]],
    *,
    n_starts: int,
    rng,
) -> AcquisitionResult:
    bounds = _check_bounds(bounds)
    if not model.fitted:
        raise RuntimeError("model is not fitted")
    rng = np.random.default_rng(rng)
    d = bounds.shape[0]
    # Starts: random points plus the training point closest to each corner
    # region is unnecessary — uniform random restarts suffice in the smooth
    # posterior landscapes at these dimensions.
    starts = rng.uniform(bounds[:, 0], bounds[:, 1], size=(n_starts, d))

    def negative(x):
        value, grad = value_and_grad(x)
        return -value, -grad

    best_x, best_val = None, -np.inf
    for start in starts:
        res = minimize(
            negative, start, jac=True, method="L-BFGS-B", bounds=bounds
        )
        if -res.fun > best_val:
            best_val = float(-res.fun)
            best_x = np.asarray(res.x)
    assert best_x is not None
    return AcquisitionResult(x=best_x, value=best_val, n_starts=n_starts)


def maximize_sd(
    model: GaussianProcessRegressor,
    bounds,
    *,
    n_starts: int = 8,
    rng=None,
) -> AcquisitionResult:
    """Continuous Variance Reduction: ``argmax_x sigma(x)`` over a box."""

    def value_and_grad(x):
        _, sd = model.predict(x[np.newaxis, :], return_std=True)
        _, d_sd = model.predict_gradient(x)
        return float(sd[0]), d_sd

    return _maximize(model, np.asarray(bounds, float), value_and_grad,
                     n_starts=n_starts, rng=rng)


def maximize_cost_efficiency(
    model: GaussianProcessRegressor,
    bounds,
    *,
    cost_weight: float = 1.0,
    n_starts: int = 8,
    rng=None,
) -> AcquisitionResult:
    """Continuous Cost Efficiency: ``argmax_x sigma(x) - w * mu(x)`` (Eq. 14)."""

    def value_and_grad(x):
        mu, sd = model.predict(x[np.newaxis, :], return_std=True)
        d_mu, d_sd = model.predict_gradient(x)
        return float(sd[0] - cost_weight * mu[0]), d_sd - cost_weight * d_mu

    return _maximize(model, np.asarray(bounds, float), value_and_grad,
                     n_starts=n_starts, rng=rng)


@dataclass
class ContinuousTrace:
    """History of a continuous AL run."""

    X: list = field(default_factory=list)
    y: list = field(default_factory=list)
    acquisition_values: list = field(default_factory=list)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Visited inputs and responses as ``(X, y)`` arrays."""
        return np.asarray(self.X), np.asarray(self.y)


class ContinuousActiveLearner:
    """AL over a continuous input box with a real experiment function.

    Parameters
    ----------
    experiment:
        Callable ``x -> y`` running one experiment at input ``x`` (shape
        ``(d,)``) and returning the measured (possibly noisy) response.
    bounds:
        ``(d, 2)`` box of the input space.
    strategy:
        ``"variance"`` (continuous Variance Reduction) or
        ``"cost-efficiency"``.
    model_factory:
        Builds a fresh regressor per refit; defaults to the paper's robust
        settings.
    """

    def __init__(
        self,
        experiment: Callable[[np.ndarray], float],
        bounds,
        *,
        strategy: str = "variance",
        model_factory: Callable[[], GaussianProcessRegressor] | None = None,
        n_starts: int = 6,
        rng=None,
    ):
        if strategy not in ("variance", "cost-efficiency"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.experiment = experiment
        self.bounds = _check_bounds(bounds)
        self.strategy = strategy
        from .learner import default_model_factory

        self.model_factory = model_factory or default_model_factory(1e-2)
        self.n_starts = int(n_starts)
        self.rng = np.random.default_rng(rng)
        self.trace = ContinuousTrace()
        self.model: GaussianProcessRegressor | None = None

    def seed(self, x=None) -> float:
        """Run the seeding experiment (default: the box center)."""
        if x is None:
            x = self.bounds.mean(axis=1)
        x = np.asarray(x, dtype=float)
        y = float(self.experiment(x))
        self.trace.X.append(x)
        self.trace.y.append(y)
        self.trace.acquisition_values.append(np.nan)
        return y

    def step(self) -> tuple[np.ndarray, float]:
        """Fit, maximize the acquisition, run the experiment there."""
        if not self.trace.X:
            self.seed()
        X, y = self.trace.as_arrays()
        model = self.model_factory()
        model.fit(X, y)
        self.model = model
        if self.strategy == "variance":
            acq = maximize_sd(
                model, self.bounds, n_starts=self.n_starts, rng=self.rng
            )
        else:
            acq = maximize_cost_efficiency(
                model, self.bounds, n_starts=self.n_starts, rng=self.rng
            )
        y_new = float(self.experiment(acq.x))
        self.trace.X.append(acq.x)
        self.trace.y.append(y_new)
        self.trace.acquisition_values.append(acq.value)
        return acq.x, y_new

    def run(self, n_iterations: int) -> ContinuousTrace:
        """Run ``n_iterations`` AL steps (seeding first if needed)."""
        if n_iterations < 0:
            raise ValueError("n_iterations must be >= 0")
        for _ in range(n_iterations):
            self.step()
        return self.trace
