"""Sharded active learning: spatial partitioning with fault isolation.

The paper's single global GP struggles on heterogeneous response surfaces
— the mixed poisson1/poisson2 pools have visibly different regimes.
Following the partitioned-AL recipe (Lee et al., "Partitioned Active
Learning for Heterogeneous Systems", arXiv:2105.08547), this module
splits the design space into spatial cells and learns one *local* GP per
cell, acquiring points with the two-step rule: pick the shard whose
aggregated criterion is largest, then run the paper's strategies locally
inside it.

The layer is built robust-first.  Every component assumes its shard can
crash, hang, or silently corrupt data, and degrades instead of dying:

* :class:`InputPartitioner` — deterministic k-means cells over the
  design matrix (seeded init, Lloyd iterations, deterministic empty-cell
  reseeding).  Distinct from the Initial/Active/Test
  :class:`~repro.al.partition.Partition`, which it composes with.
* :class:`ShardedLearner` — fits one local GP per shard in parallel via
  :class:`~repro.parallel.ParallelMap` (shard-affinity task groups,
  per-shard spawned seeds), bit-identical across backends and worker
  counts.
* :class:`AcquisitionRouter` — the two-step acquisition rule, with
  boundary refinement: points whose two nearest cell centers are within
  ``boundary_margin`` of each other consult both shards' models and take
  the larger score.
* :class:`ShardSupervisor` — the robustness headline: per-shard
  :class:`~repro.al.guardrails.ModelHealth` gating, per-shard
  :class:`~repro.al.guardrails.LastKnownGood` rollback, a shard-level
  circuit breaker (:class:`~repro.al.resilience.ShardBreaker`) that
  excludes open shards from routing and re-routes their pool mass to
  healthy neighbors, fault-injected fits
  (:class:`~repro.cluster.faults.ShardFaultInjector`) with bounded
  deterministic retries, and per-shard atomic checkpoints with
  exactly-once :meth:`ShardedLearner.resume`.

Degraded-mode guarantee: with k of N shards down the campaign keeps
learning on the remaining surface; :class:`~repro.al.campaign.CampaignResult`
reports per-shard availability.

Determinism contract
--------------------
All routing, scoring and tie-breaking happens serially in the parent in
ascending shard order; worker tasks are pure functions of their item
(randomness keyed by ``(shard, round, attempt)`` seed sequences), and
:class:`~repro.parallel.ParallelMap` returns results in input order — so
a fault-free run is bit-identical across serial/thread/process backends
and any worker count, and a resumed run replays an interrupted round
bit-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import telemetry as tm
from ..cluster.faults import ShardFaultConfig, ShardFaultInjector
from ..gp.gpr import GaussianProcessRegressor
from ..parallel.pmap import ParallelMap
from ..perfmodel import PERFORMANCE_NOISE, RuntimeModel
from .campaign import CampaignResult
from .guardrails import (
    GuardrailTallies,
    HealthConfig,
    LastKnownGood,
    ModelHealth,
)
from .learner import default_model_factory
from .metrics import evaluate_model
from .partition import Partition
from .pool import CandidatePool
from .resilience import ShardBreaker, ShardBreakerConfig
from .session import read_json_checked, write_json_atomic
from .strategies import Strategy, VarianceReduction

__all__ = [
    "InputPartitioner",
    "ShardingConfig",
    "ShardedModel",
    "ShardSupervisor",
    "AcquisitionRouter",
    "ShardedLearner",
    "mixed_operator_pool",
]

_MANIFEST_VERSION = 1
_SHARD_FILE_VERSION = 1


def _data_hash(X, y) -> str:
    """SHA-256 over the exact float64 bytes of a training set."""
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    y = np.ascontiguousarray(np.asarray(y, dtype=float))
    digest = hashlib.sha256()
    digest.update(X.tobytes())
    digest.update(y.tobytes())
    return digest.hexdigest()


def _model_seed(base_seed: int, shard: int, round_index: int, attempt: int) -> int:
    """Deterministic per-(shard, round, attempt) model seed.

    Keyed by a spawn key (not by task order), so a retried fit and a
    replayed fit after resume draw the identical stream regardless of
    which wave or backend executes it.  The leading 1 keeps the key space
    disjoint from the fault injector's 3-tuple keys.
    """
    ss = np.random.SeedSequence(
        entropy=int(base_seed), spawn_key=(1, int(shard), int(round_index), int(attempt))
    )
    return int(ss.generate_state(1)[0])


def _gen_state(gen) -> dict | None:
    return None if gen is None else gen.bit_generator.state


# ------------------------------------------------------------- partitioner


class InputPartitioner:
    """Deterministic k-means cells over the design matrix.

    Features are standardized before clustering (per-column mean/std,
    std floored at 1e-12) so heterogeneous units — operator code, log
    problem size, log ranks, GHz — weigh equally.  Initialization is
    k-means++ from ``default_rng(seed)`` and Lloyd iterations are plain
    argmin assignments, so :meth:`fit` is a pure function of ``(X, seed)``
    — a resumed campaign refits the identical cells from the dataset.

    An empty cell is reseeded to the point farthest from its current
    center (deterministic), so every shard always owns at least one
    training-design point.
    """

    def __init__(self, n_shards: int, *, seed: int = 0, max_iter: int = 50, tol: float = 1e-8):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_shards = int(n_shards)
        self.seed = int(seed)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.centers_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self.centers_ is not None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (np.asarray(X, dtype=float) - self._mean) / self._scale

    def fit(self, X: np.ndarray) -> "InputPartitioner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n = X.shape[0]
        if n < self.n_shards:
            raise ValueError(
                f"cannot split {n} design points into {self.n_shards} shards"
            )
        self._mean = X.mean(axis=0)
        self._scale = np.maximum(X.std(axis=0), 1e-12)
        Z = self._transform(X)
        rng = np.random.default_rng(self.seed)

        # k-means++ seeding.
        centers = [Z[int(rng.integers(n))]]
        for _ in range(1, self.n_shards):
            d2 = np.min(
                ((Z[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(-1),
                axis=1,
            )
            total = float(d2.sum())
            if total <= 0.0:
                centers.append(Z[int(rng.integers(n))])
            else:
                centers.append(Z[int(rng.choice(n, p=d2 / total))])
        centers = np.asarray(centers)

        for _ in range(self.max_iter):
            d2 = ((Z[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
            labels = np.argmin(d2, axis=1)
            new_centers = centers.copy()
            for c in range(self.n_shards):
                mask = labels == c
                if mask.any():
                    new_centers[c] = Z[mask].mean(axis=0)
                else:
                    # Deterministic reseed: the globally farthest point
                    # from its own assigned center.
                    own = d2[np.arange(n), labels]
                    new_centers[c] = Z[int(np.argmax(own))]
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            if shift < self.tol:
                break
        self.centers_ = centers
        return self

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Shard label of each row (nearest center; ties go low)."""
        if not self.fitted:
            raise RuntimeError("partitioner is not fitted")
        Z = self._transform(np.atleast_2d(X))
        d2 = ((Z[:, None, :] - self.centers_[None, :, :]) ** 2).sum(-1)
        return np.argmin(d2, axis=1)

    def nearest_two(
        self, X: np.ndarray, among=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Two nearest shard centers and the relative boundary margin.

        Returns ``(first, second, margin)`` per row, restricted to the
        shard ids in ``among`` (default: all).  ``margin`` is
        ``(d2 - d1) / (d2 + d1)`` — 0 exactly on a cell boundary, 1 at a
        center.  With a single candidate shard ``second`` is -1 and the
        margin is infinite.
        """
        if not self.fitted:
            raise RuntimeError("partitioner is not fitted")
        among = sorted(range(self.n_shards) if among is None else among)
        if not among:
            raise ValueError("among must name at least one shard")
        Z = self._transform(np.atleast_2d(X))
        ids = np.asarray(among, dtype=int)
        d2 = ((Z[:, None, :] - self.centers_[ids][None, :, :]) ** 2).sum(-1)
        order = np.argsort(d2, axis=1, kind="stable")
        first = ids[order[:, 0]]
        if len(among) == 1:
            second = np.full(Z.shape[0], -1, dtype=int)
            margin = np.full(Z.shape[0], np.inf)
            return first, second, margin
        second = ids[order[:, 1]]
        d1 = np.sqrt(np.take_along_axis(d2, order[:, :1], axis=1)[:, 0])
        dd2 = np.sqrt(np.take_along_axis(d2, order[:, 1:2], axis=1)[:, 0])
        margin = (dd2 - d1) / np.maximum(dd2 + d1, 1e-12)
        return first, second, margin


# ------------------------------------------------------------------ config


@dataclass(frozen=True)
class ShardingConfig:
    """Everything a :class:`ShardedLearner` needs beyond the dataset.

    Attributes
    ----------
    n_shards / n_rounds / batch_size:
        Spatial cells, acquisition rounds, and points measured per round.
    seed:
        Master entropy: partitioner seed, per-shard model seeds, fault
        draws, per-shard strategy seeds and the router's tie-break RNG
        are all spawned from it with disjoint keys.
    boundary_margin:
        Relative cell-boundary width; pool points with
        ``(d2 - d1)/(d2 + d1)`` below it consult the neighboring shard's
        model too (and :class:`ShardedModel` blends predictions there).
    criterion:
        Shard-level aggregation of local scores: ``"max"`` (the paper's
        most-uncertain-cell rule) or ``"mean"``.
    max_fit_retries:
        Extra fit attempts per shard per round after an injected or real
        failure, each with its own deterministic seed key.
    min_fit_points:
        Shards below this training size stay *cold*: excluded from
        fitting, routed by distance-to-center so they warm up first.
    breaker / health:
        Shard circuit-breaker thresholds and per-shard model-health
        thresholds (``health=None`` disables the health gate).
    blend_boundary_predictions:
        Whether the final :class:`ShardedModel` blends near-boundary
        predictions (precision-weighted product of experts).
    """

    n_shards: int = 4
    n_rounds: int = 10
    batch_size: int = 1
    seed: int = 0
    boundary_margin: float = 0.15
    criterion: str = "max"
    max_fit_retries: int = 2
    min_fit_points: int = 1
    breaker: ShardBreakerConfig = field(default_factory=ShardBreakerConfig)
    health: HealthConfig | None = field(default_factory=HealthConfig)
    blend_boundary_predictions: bool = True

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.boundary_margin < 1.0:
            raise ValueError("boundary_margin must be in [0, 1)")
        if self.criterion not in ("max", "mean"):
            raise ValueError(
                f"unknown criterion {self.criterion!r}; expected 'max' or 'mean'"
            )
        if self.max_fit_retries < 0:
            raise ValueError("max_fit_retries must be >= 0")
        if self.min_fit_points < 1:
            raise ValueError("min_fit_points must be >= 1")


# ---------------------------------------------------------------- fit task


class _ShardFitTask:
    """Picklable per-shard fit: fault injection, jitter escalation, no raise.

    The task *never* raises: crash/hang faults and genuine fit errors all
    come back as structured failure outcomes so one poisoned shard cannot
    take down the wave.  An injected ``corrupt`` silently scales the
    responses before fitting; the parent unmasks it by comparing the
    returned ``data_hash`` (computed *after* corruption) against the hash
    of the data it actually sent.

    Items are ``(shard, round_index, attempt, X, y, model_seed)``.
    """

    __slots__ = ("model_factory", "fault_config", "fault_seed")

    def __init__(self, model_factory, fault_config, fault_seed: int):
        self.model_factory = model_factory
        self.fault_config = fault_config
        self.fault_seed = int(fault_seed)

    def __call__(self, item) -> dict:
        shard, round_index, attempt, X, y, model_seed = item
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        out = {
            "shard": int(shard),
            "round": int(round_index),
            "attempt": int(attempt),
            "ok": False,
            "fault": None,
            "model": None,
            "data_hash": None,
            "error": None,
        }
        tm.count("shard.fit.total")
        if self.fault_config is not None and self.fault_config.enabled:
            injector = ShardFaultInjector(self.fault_config, seed=self.fault_seed)
            fault = injector.draw(shard, round_index, attempt)
            if fault is not None:
                tm.count(f"shard.fault.{fault}")
                out["fault"] = fault
                if fault == "crash":
                    out["error"] = "injected shard crash"
                    return out
                if fault == "hang":
                    # A real hang is killed by the pool's task_timeout;
                    # simulating it as an immediate timeout-equivalent
                    # failure keeps the outcome (and the retry path)
                    # deterministic and the tests fast.
                    out["error"] = "injected shard hang (simulated timeout)"
                    return out
                y = injector.corrupt_values(y)
        try:
            model = None
            base_jitter = None
            for scale in (1.0, 1e3, 1e6):
                m = self.model_factory()
                m.rng = np.random.default_rng(int(model_seed))
                if base_jitter is None:
                    base_jitter = m.jitter
                m.jitter = base_jitter * scale
                try:
                    m.fit(X, y)
                    model = m
                    break
                except np.linalg.LinAlgError:
                    continue
            if model is None:
                raise np.linalg.LinAlgError(
                    "shard fit failed at maximum jitter escalation"
                )
            out["ok"] = True
            # to_dict round-trips bit-exactly, so shipping the payload
            # (instead of the live object) keeps every backend identical.
            out["model"] = model.to_dict()
            out["data_hash"] = _data_hash(X, y)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            out["error"] = f"{type(exc).__name__}: {exc}"
            out["data_hash"] = _data_hash(X, y)
        return out


# -------------------------------------------------------------- supervisor


class ShardSupervisor:
    """Per-shard fit execution with health gating, rollback and breaking.

    One instance owns, for every shard: a :class:`ModelHealth` verdict
    stream, a :class:`LastKnownGood` snapshot (restored when a fit is
    unhealthy *or* when every retry of a round failed — so a flapping
    shard keeps serving its last healthy posterior), and a seat on the
    shared :class:`~repro.al.resilience.ShardBreaker`.  Fit waves run
    through :meth:`ParallelMap.map_grouped` with one affinity group per
    shard; retries are extra waves with attempt-keyed fault draws, so the
    whole schedule is deterministic.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        config: ShardingConfig,
        model_factory,
        pmap: ParallelMap,
        fault_config: ShardFaultConfig | None = None,
        tallies: GuardrailTallies | None = None,
    ):
        self.n_shards = int(n_shards)
        self.config = config
        self.model_factory = model_factory
        self.pmap = pmap
        self.fault_config = fault_config
        self.breaker = ShardBreaker(n_shards, config.breaker)
        self.health = ModelHealth(config.health) if config.health else None
        self.tallies = tallies if tallies is not None else GuardrailTallies()
        self.lkg = {s: LastKnownGood() for s in range(n_shards)}
        self.records = {
            s: {
                "failures": 0,
                "retries": 0,
                "rollbacks": 0,
                "corrupt_detected": 0,
                "unhealthy_fits": 0,
                "available_rounds": 0,
                "lkg_round": None,
                "lkg_attempt": None,
                "lkg_n": 0,
                "prev_lml_pp": None,
            }
            for s in range(n_shards)
        }
        self.last_reports = {s: None for s in range(n_shards)}
        self.total_rounds = 0

    def _task(self) -> _ShardFitTask:
        return _ShardFitTask(self.model_factory, self.fault_config, self.config.seed)

    def serviceable_shards(self, round_index: int) -> list[int]:
        return self.breaker.serviceable_shards(round_index)

    def fit_round(
        self, round_index: int, shard_X: dict, shard_y: dict
    ) -> dict:
        """Fit every serviceable, warm shard; return ``{shard: model}``.

        A shard ends the round with either a fresh healthy fit, a
        last-known-good restore (unhealthy fit or exhausted retries), or
        no model at all (cold, open, dead, or failed with no LKG) — in
        which case it is simply absent from the result and the router
        re-routes its pool mass.
        """
        cfg = self.config
        task = self._task()
        self.total_rounds += 1
        pending = [
            s
            for s in range(self.n_shards)
            if self.breaker.serviceable(s, round_index)
            and len(shard_y.get(s, ())) >= cfg.min_fit_points
        ]
        expected = {
            s: _data_hash(shard_X[s], shard_y[s]) for s in pending
        }
        fitted: dict[int, GaussianProcessRegressor] = {}
        succeeded_attempt: dict[int, int] = {}
        with tm.span("shard.fit_round", round=round_index, n_shards=len(pending)):
            for attempt in range(cfg.max_fit_retries + 1):
                if not pending:
                    break
                items = [
                    (
                        s,
                        round_index,
                        attempt,
                        np.asarray(shard_X[s], dtype=float),
                        np.asarray(shard_y[s], dtype=float),
                        _model_seed(cfg.seed, s, round_index, attempt),
                    )
                    for s in pending
                ]
                outcomes = self.pmap.map_grouped(task, items, keys=list(pending))
                still = []
                for s, out in zip(pending, outcomes):
                    if out["ok"] and out["data_hash"] == expected[s]:
                        fitted[s] = GaussianProcessRegressor.from_dict(out["model"])
                        succeeded_attempt[s] = attempt
                        continue
                    if out["ok"]:
                        # Fit "succeeded" on data that does not hash to
                        # what we sent: the corruption unmasked.
                        self.records[s]["corrupt_detected"] += 1
                        tm.count("shard.fit.corrupt")
                        tm.event(
                            "shard.corrupt_detected",
                            shard=s,
                            round=round_index,
                            attempt=attempt,
                        )
                    else:
                        tm.count("shard.fit.failures")
                        tm.event(
                            "shard.fit_failed",
                            shard=s,
                            round=round_index,
                            attempt=attempt,
                            fault=out["fault"],
                            error=out["error"],
                        )
                    if attempt < cfg.max_fit_retries:
                        self.records[s]["retries"] += 1
                        tm.count("shard.fit.retries")
                        still.append(s)
                    else:
                        self.records[s]["failures"] += 1
                pending = still

        models: dict[int, GaussianProcessRegressor] = {}
        for s in sorted(fitted):
            models[s] = self._health_gate(
                s, round_index, succeeded_attempt[s], fitted[s],
                shard_X[s], shard_y[s],
            )
            self.breaker.record_success(s, round_index)
        for s in sorted(set(expected) - set(fitted)):
            # Every retry failed: the breaker hears about it, but the
            # shard's last healthy posterior keeps serving if one exists
            # (rebuilt deterministically on resume, so routing stays
            # bit-identical to an uninterrupted run).
            self.breaker.record_failure(s, round_index)
            if self.lkg[s].available:
                try:
                    models[s] = self.lkg[s].restore(
                        np.asarray(shard_X[s], dtype=float),
                        np.asarray(shard_y[s], dtype=float),
                    )
                    self.records[s]["rollbacks"] += 1
                    self.tallies.n_rollbacks += 1
                    tm.count("shard.rollbacks")
                except (ValueError, np.linalg.LinAlgError):
                    pass
        self.tallies.n_breaker_opens = self.breaker.n_opened
        self.tallies.n_breaker_probes = self.breaker.n_probes
        self.tallies.n_breaker_blacklisted = self.breaker.n_blacklisted
        for s in models:
            self.records[s]["available_rounds"] += 1
        tm.gauge_set("shard.available", len(models))
        return models

    def _health_gate(
        self, shard, round_index, attempt, model, X, y
    ) -> GaussianProcessRegressor:
        """Accept a healthy fit as the shard's LKG; roll an unhealthy one back."""
        rec = self.records[shard]
        if self.health is None:
            self._remember(shard, round_index, attempt, model)
            return model
        report = self.health.check(
            model, prev_lml_per_point=rec["prev_lml_pp"]
        )
        self.last_reports[shard] = report
        if report.healthy or not self.lkg[shard].available:
            self._remember(shard, round_index, attempt, model)
            if report.n_train >= self.health.config.min_points:
                rec["prev_lml_pp"] = report.lml_per_point
            if not report.healthy:
                rec["unhealthy_fits"] += 1
                self.tallies.n_unhealthy_fits += 1
            return model
        rec["unhealthy_fits"] += 1
        rec["rollbacks"] += 1
        self.tallies.n_unhealthy_fits += 1
        self.tallies.n_rollbacks += 1
        tm.count("shard.rollbacks")
        tm.event(
            "shard.rollback",
            shard=shard,
            round=round_index,
            issues=list(report.issues),
        )
        return self.lkg[shard].restore(
            np.asarray(X, dtype=float), np.asarray(y, dtype=float)
        )

    def _remember(self, shard, round_index, attempt, model) -> None:
        self.lkg[shard].remember(model)
        rec = self.records[shard]
        rec["lkg_round"] = int(round_index)
        rec["lkg_attempt"] = int(attempt)
        rec["lkg_n"] = int(model.X_train_.shape[0])

    def availability(self, round_index: int) -> dict:
        """Per-shard availability report for ``CampaignResult``."""
        per_shard = {}
        fractions = []
        for s in range(self.n_shards):
            rec = self.records[s]
            frac = (
                rec["available_rounds"] / self.total_rounds
                if self.total_rounds
                else 0.0
            )
            fractions.append(frac)
            per_shard[s] = {
                "state": self.breaker.state(s, round_index),
                "availability": frac,
                "available_rounds": rec["available_rounds"],
                "failures": rec["failures"],
                "retries": rec["retries"],
                "rollbacks": rec["rollbacks"],
                "corrupt_detected": rec["corrupt_detected"],
                "unhealthy_fits": rec["unhealthy_fits"],
            }
        return {
            "n_shards": self.n_shards,
            "rounds": self.total_rounds,
            "mean_availability": float(np.mean(fractions)) if fractions else 0.0,
            "per_shard": per_shard,
        }


# ------------------------------------------------------------------ router


class AcquisitionRouter:
    """The two-step acquisition rule over one round's shard models.

    Step 1 picks the shard whose aggregated local criterion (``max`` or
    ``mean`` of its candidates' scores) is largest; step 2 runs the
    paper's strategy locally inside it.  Three robustness wrinkles:

    * **Re-routing** — pool points whose home shard is open or dead are
      adopted by the nearest serviceable shard's center, so no pool mass
      is stranded.
    * **Boundary refinement** — points within ``boundary_margin`` of a
      cell edge are scored by both adjacent models and take the larger
      score (a neighbor may know the edge better than the owner).
    * **Cold-shard priming** — a serviceable shard without a model yet
      gets an infinite criterion and picks its point nearest the cell
      center, so empty cells are seeded before score-driven refinement.

    Selection is greedy with kriging-believer conditioning: after each
    pick the owning shard's believer clone is updated with its own
    predicted mean, steering later picks away (the sharded analogue of
    :func:`repro.al.strategies.select_batch`).  All arithmetic runs
    serially in the parent in ascending shard order; ties break via the
    learner-owned ``tie_rng`` so results never depend on dict order.
    """

    def __init__(
        self,
        partitioner: InputPartitioner,
        models: dict,
        strategies: dict,
        pool: CandidatePool,
        home_shard: np.ndarray,
        serviceable: list,
        config: ShardingConfig,
        tie_rng: np.random.Generator,
    ):
        self.partitioner = partitioner
        self.strategies = strategies
        self.pool = pool
        self.home_shard = np.asarray(home_shard, dtype=int)
        self.serviceable = sorted(serviceable)
        self.config = config
        self.tie_rng = tie_rng
        self.believers = {
            s: models[s].clone_fitted() for s in sorted(models)
            if s in self.serviceable
        }

    def _owners(self, avail: np.ndarray) -> np.ndarray:
        """Effective owner per available row: home if alive, else nearest."""
        home = self.home_shard[avail]
        owners = home.copy()
        orphaned = ~np.isin(home, self.serviceable)
        if orphaned.any():
            if not self.serviceable:
                raise RuntimeError("no serviceable shard to route to")
            first, _, _ = self.partitioner.nearest_two(
                self.pool.X[avail[orphaned]], among=self.serviceable
            )
            owners[orphaned] = first
        return owners

    def _tie_pick(self, values: np.ndarray) -> int:
        """Index of the max, random among exact ties (like Strategy.select)."""
        ties = np.flatnonzero(values == np.max(values))
        if ties.size > 1:
            return int(self.tie_rng.choice(ties))
        return int(ties[0])

    def _scores(self, avail: np.ndarray, owners: np.ndarray) -> np.ndarray:
        """Final per-row scores: owner's, refined by boundary neighbors."""
        scores = np.full(avail.size, -np.inf)
        model_shards = sorted(self.believers)
        consult = None
        if len(model_shards) >= 2 and self.config.boundary_margin > 0:
            first, second, margin = self.partitioner.nearest_two(
                self.pool.X[avail], among=model_shards
            )
            consult = np.where(
                (margin < self.config.boundary_margin) & (second != owners),
                second,
                -1,
            )
        for s in model_shards:
            rows = np.flatnonzero(owners == s)
            if consult is not None:
                rows = np.union1d(rows, np.flatnonzero(consult == s))
            if rows.size == 0:
                continue
            idx = avail[rows]
            local = CandidatePool(
                self.pool.X[idx], self.pool.y[idx], self.pool.costs[idx]
            )
            local_scores = np.asarray(
                self.strategies[s].scores(self.believers[s], local), dtype=float
            )
            np.maximum.at(scores, rows, local_scores)
        return scores

    def select_batch(self, batch_size: int) -> list[dict]:
        """Greedily pick up to ``batch_size`` points; consumes the pool.

        Returns one dict per pick: ``pool_index``, ``owner`` (the shard
        adopting the measurement), ``x``, ``y``, ``cost``.  Stops early
        when the pool empties or no serviceable shard owns a candidate.
        """
        picks: list[dict] = []
        for _ in range(batch_size):
            if self.pool.exhausted or not self.serviceable:
                break
            avail = self.pool.available_indices()
            owners = self._owners(avail)
            scores = self._scores(avail, owners)

            shard_ids = []
            criteria = []
            for s in self.serviceable:
                rows = np.flatnonzero(owners == s)
                if rows.size == 0:
                    continue
                shard_ids.append(s)
                if s not in self.believers:
                    criteria.append(np.inf)  # cold shard: prime it first
                elif self.config.criterion == "mean":
                    criteria.append(float(np.mean(scores[rows])))
                else:
                    criteria.append(float(np.max(scores[rows])))
            if not shard_ids:
                break
            chosen = shard_ids[self._tie_pick(np.asarray(criteria))]
            rows = np.flatnonzero(owners == chosen)
            if chosen not in self.believers:
                d2 = (
                    (
                        self.partitioner._transform(self.pool.X[avail[rows]])
                        - self.partitioner.centers_[chosen]
                    )
                    ** 2
                ).sum(-1)
                row = rows[int(np.argmin(d2))]
            else:
                row = rows[self._tie_pick(scores[rows])]
            pool_index = int(avail[row])
            x, y_meas, cost = self.pool.consume(pool_index)
            if chosen in self.believers:
                believer = self.believers[chosen]
                y_hat = float(believer.predict(x[np.newaxis, :])[0])
                believer.update(x[np.newaxis, :], y_hat)
            picks.append(
                {
                    "pool_index": pool_index,
                    "owner": int(chosen),
                    "x": x,
                    "y": y_meas,
                    "cost": cost,
                }
            )
        return picks


# ----------------------------------------------------------- sharded model


class ShardedModel:
    """Prediction-time composite of the per-shard local GPs.

    Each query row routes to the nearest cell center among shards that
    still *have* a model (a dead shard's region is answered by its
    nearest living neighbor — degraded but never silent).  Near-boundary
    rows optionally blend the two adjacent models with a precision
    weighted product of experts: higher-confidence experts dominate, and
    the blended variance ``1/(w1+w2)`` is tighter than either alone.

    Duck-types ``predict(X, return_std=)``, so every metric in
    :mod:`repro.al.metrics` and the serving layer work unchanged.
    """

    def __init__(
        self,
        partitioner: InputPartitioner,
        models: dict,
        *,
        boundary_margin: float = 0.15,
        blend: bool = True,
    ):
        if not models:
            raise ValueError("ShardedModel requires at least one shard model")
        self.partitioner = partitioner
        self.models = {int(s): m for s, m in models.items()}
        self.boundary_margin = float(boundary_margin)
        self.blend = bool(blend)

    @property
    def fitted(self) -> bool:
        return True

    @property
    def n_shards(self) -> int:
        return len(self.models)

    def predict(self, X, return_std: bool = False):
        X = np.atleast_2d(np.asarray(X, dtype=float))
        shards = sorted(self.models)
        first, second, margin = self.partitioner.nearest_two(X, among=shards)
        blend_rows = (
            (margin < self.boundary_margin) & (second >= 0)
            if self.blend
            else np.zeros(X.shape[0], dtype=bool)
        )
        mu = np.zeros(X.shape[0])
        var = np.zeros(X.shape[0])
        for s in shards:
            rows = np.flatnonzero(
                (first == s) | (blend_rows & (second == s))
            )
            if rows.size == 0:
                continue
            m, sd = self.models[s].predict(X[rows], return_std=True)
            v = np.maximum(sd**2, 1e-12)
            owner_rows = first[rows] == s
            plain = rows[owner_rows & ~blend_rows[rows]]
            if plain.size:
                sel = np.flatnonzero(owner_rows & ~blend_rows[rows])
                mu[plain] = m[sel]
                var[plain] = v[sel]
            both = np.flatnonzero(blend_rows[rows])
            if both.size:
                # Product of experts: accumulate precision-weighted terms.
                mu[rows[both]] += m[both] / v[both]
                var[rows[both]] += 1.0 / v[both]
        done = np.flatnonzero(blend_rows)
        if done.size:
            var[done] = 1.0 / var[done]
            mu[done] = mu[done] * var[done]
        if return_std:
            return mu, np.sqrt(var)
        return mu


# ----------------------------------------------------------------- learner


class ShardedLearner:
    """Pool-based sharded active learning with shard-level fault isolation.

    Composes the Initial/Active/Test :class:`~repro.al.partition.Partition`
    (what may be measured) with an :class:`InputPartitioner` (who owns
    which region): Initial rows seed their home shard's training set, and
    every acquisition round fits all warm serviceable shards in parallel,
    routes the batch through an :class:`AcquisitionRouter`, and adopts
    each measurement into its owner's (append-only) training set.

    Checkpointing writes one atomic ``manifest.json`` (the authoritative
    measurement log plus all RNG/breaker/guardrail state) and one atomic
    ``shard-NNN.json`` per shard (an integrity-hashed cache of that
    shard's training rows) after every round.  :meth:`resume` replays the
    manifest exactly once — a SIGKILL mid-round loses at most the
    un-checkpointed round, which is then re-derived bit-identically; a
    torn or corrupted shard file is quarantined to a ``.corrupt`` sidecar
    and rebuilt from the manifest.

    Parameters mirror :class:`~repro.al.learner.ActiveLearner`, plus:

    ``config``
        The :class:`ShardingConfig`.
    ``fault_config``
        Optional :class:`~repro.cluster.faults.ShardFaultConfig`; when
        enabled, shard fits are fault-injected (crash/hang/corrupt) with
        draws keyed by ``(shard, round, attempt)``.
    ``pmap`` / ``backend`` / ``n_workers``
        Either a ready :class:`~repro.parallel.ParallelMap` or its
        constructor arguments (default backend ``serial`` — results are
        bit-identical across all of them).
    ``registry``
        Optional :class:`~repro.serve.registry.ModelRegistry` (or path);
        the final per-shard models are published as one bundle.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        costs: np.ndarray,
        partition: Partition,
        *,
        config: ShardingConfig,
        strategy: Strategy | None = None,
        model_factory=None,
        pmap: ParallelMap | None = None,
        backend: str | None = None,
        n_workers: int | None = None,
        fault_config: ShardFaultConfig | None = None,
        registry=None,
    ):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        costs = np.asarray(costs, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],) or costs.shape != y.shape:
            raise ValueError("X, y, costs must be consistent (n, d)/(n,)/(n,)")
        if partition.n_total != X.shape[0]:
            raise ValueError(
                f"partition covers {partition.n_total} records, "
                f"dataset has {X.shape[0]}"
            )
        self.config = config
        self.partitioner = InputPartitioner(
            config.n_shards, seed=config.seed
        ).fit(X)
        self.model_factory = model_factory or default_model_factory()
        if pmap is None:
            pmap = ParallelMap(
                backend, n_workers, default_backend="serial"
            )
        self.pmap = pmap
        self.supervisor = ShardSupervisor(
            config.n_shards,
            config=config,
            model_factory=self.model_factory,
            pmap=self.pmap,
            fault_config=fault_config,
        )
        template = strategy if strategy is not None else VarianceReduction()
        self.strategies = {
            s: template.with_seed(
                int(
                    np.random.SeedSequence(
                        entropy=int(config.seed), spawn_key=(3, s)
                    ).generate_state(1)[0]
                )
            )
            for s in range(config.n_shards)
        }
        self.strategy_name = template.name
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(config.seed), spawn_key=(2,))
        )
        if registry is not None and not hasattr(registry, "publish_bundle"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry

        self.pool = CandidatePool(
            X[partition.active], y[partition.active], costs[partition.active]
        )
        self._pool_home = self.partitioner.assign(X[partition.active])
        self._X_active_full = X[partition.active]
        self.X_test = X[partition.test]
        self.y_test = y[partition.test]
        init_labels = self.partitioner.assign(X[partition.initial])
        self._shard_X = {s: [] for s in range(config.n_shards)}
        self._shard_y = {s: [] for s in range(config.n_shards)}
        for row, lab, val in zip(
            X[partition.initial], init_labels, y[partition.initial]
        ):
            self._shard_X[int(lab)].append(np.asarray(row, dtype=float))
            self._shard_y[int(lab)].append(float(val))

        digest = hashlib.sha256()
        for arr in (X, y, costs, partition.initial, partition.active, partition.test):
            digest.update(np.ascontiguousarray(arr).tobytes())
        self._dataset_hash = digest.hexdigest()

        self._measurements: list[list] = []
        self._rounds: list[dict] = []
        self._cumulative_cost = 0.0
        self._models: dict = {}
        self._started = False
        #: test seam: called with the round index after the round's picks
        #: are consumed but *before* the checkpoint is written — exactly
        #: where a SIGKILL loses the most un-persisted work.
        self._mid_round_hook = None

    # ------------------------------------------------------------- plumbing

    def _strategy_seed(self, shard: int) -> int:
        ss = np.random.SeedSequence(
            entropy=int(self.config.seed), spawn_key=(3, int(shard))
        )
        return int(ss.generate_state(1)[0])

    def _shard_arrays(self, shard: int) -> tuple[np.ndarray, np.ndarray]:
        d = self._X_active_full.shape[1]
        rows = self._shard_X[shard]
        X = np.asarray(rows, dtype=float) if rows else np.zeros((0, d))
        return X, np.asarray(self._shard_y[shard], dtype=float)

    def _apply_pick(self, pick: dict) -> None:
        s = int(pick["owner"])
        self._shard_X[s].append(np.asarray(pick["x"], dtype=float))
        self._shard_y[s].append(float(pick["y"]))
        self._measurements.append(
            [int(pick["pool_index"]), s, float(pick["y"]), float(pick["cost"])]
        )
        self._cumulative_cost += float(pick["cost"])

    def _fit_wave(self, round_index: int) -> dict:
        shard_X = {s: self._shard_X[s] for s in range(self.config.n_shards)}
        shard_y = {s: self._shard_y[s] for s in range(self.config.n_shards)}
        return self.supervisor.fit_round(round_index, shard_X, shard_y)

    def _sharded_model(self, models: dict) -> ShardedModel | None:
        if not models:
            return None
        return ShardedModel(
            self.partitioner,
            models,
            boundary_margin=self.config.boundary_margin,
            blend=self.config.blend_boundary_predictions,
        )

    # ----------------------------------------------------------- main loop

    def run(self, checkpoint_dir=None) -> CampaignResult:
        """Run the full campaign from scratch (one use per instance)."""
        if self._started:
            raise RuntimeError(
                "this learner already ran; build a fresh instance (or resume)"
            )
        self._started = True
        return self._loop(0, checkpoint_dir)

    def resume(self, checkpoint_dir) -> CampaignResult:
        """Continue a checkpointed campaign exactly once from disk.

        Call on a *freshly constructed* learner over the identical
        dataset/partition/config (validated via a dataset hash).  Already
        measured points are replayed from the manifest — never
        re-measured — and the interrupted round, if any, is re-derived
        bit-identically from restored RNG, breaker and last-known-good
        state.  Corrupt per-shard checkpoint files are quarantined to
        ``.corrupt`` sidecars and rebuilt from the manifest.
        """
        if self._started:
            raise RuntimeError("resume() requires a freshly constructed learner")
        self._started = True
        directory = Path(checkpoint_dir)
        manifest = read_json_checked(
            directory / "manifest.json", kind="sharded campaign checkpoint"
        )
        if manifest.get("kind") != "sharded-campaign":
            raise ValueError(
                f"{directory / 'manifest.json'} is not a sharded-campaign "
                "checkpoint"
            )
        if manifest.get("dataset_hash") != self._dataset_hash:
            raise ValueError(
                "checkpoint does not match this dataset/partition/config "
                "(dataset hash mismatch)"
            )
        for key in ("n_shards", "n_rounds", "batch_size", "seed"):
            if int(manifest.get(key, -1)) != int(getattr(self.config, key)):
                raise ValueError(
                    f"checkpoint {key}={manifest.get(key)} conflicts with "
                    f"config {key}={getattr(self.config, key)}"
                )

        for idx, owner, _y_stored, _c_stored in manifest["measurements"]:
            x, y_meas, cost = self.pool.consume(int(idx))
            self._apply_pick(
                {
                    "pool_index": int(idx),
                    "owner": int(owner),
                    "x": x,
                    "y": y_meas,
                    "cost": cost,
                }
            )
        self._rounds = list(manifest.get("rounds", []))

        if manifest.get("rng_state") is not None:
            self._rng.bit_generator.state = manifest["rng_state"]
        for s, states in (manifest.get("strategy_rng") or {}).items():
            strat = self.strategies[int(s)]
            if states.get("tie") is not None:
                strat._tie_rng().bit_generator.state = states["tie"]
            if states.get("rng") is not None and hasattr(strat, "_rng"):
                strat._rng.bit_generator.state = states["rng"]

        sup = self.supervisor
        sup.breaker = ShardBreaker.from_dict(
            manifest["breaker"],
            n_shards=self.config.n_shards,
            config=self.config.breaker,
        )
        for s, rec in manifest["records"].items():
            sup.records[int(s)].update(rec)
        sup.total_rounds = int(manifest.get("total_fit_rounds", 0))
        sup.tallies = GuardrailTallies.from_dict(manifest.get("tallies"))

        self._heal_shard_files(directory)
        self._rebuild_lkg()
        return self._loop(int(manifest["next_round"]), directory)

    def _heal_shard_files(self, directory: Path) -> None:
        """Validate per-shard checkpoint caches; quarantine + rebuild torn ones."""
        for s in range(self.config.n_shards):
            path = directory / f"shard-{s:03d}.json"
            X, y = self._shard_arrays(s)
            expected = {
                "n_rows": int(y.shape[0]),
                "data_hash": _data_hash(X, y),
            }
            ok = False
            try:
                payload = read_json_checked(path, kind="shard checkpoint")
                ok = (
                    int(payload.get("n_rows", -1)) == expected["n_rows"]
                    and payload.get("data_hash") == expected["data_hash"]
                    and int(payload.get("shard", -1)) == s
                )
            except (ValueError, OSError):
                ok = False
            if ok:
                continue
            tm.count("shard.checkpoint.corrupt")
            tm.event("shard.checkpoint_corrupt", shard=s, path=str(path))
            if path.exists():
                path.replace(path.with_name(path.name + ".corrupt"))
            self._write_shard_file(directory, s)

    def _rebuild_lkg(self) -> None:
        """Re-materialize each shard's last-known-good from its seed key.

        The recorded ``(lkg_round, lkg_attempt)`` pin down the exact model
        seed and training prefix of the remembered fit; re-running the
        same fit task — fault injection off — reproduces it bit-exactly
        (shard training sets are append-only, so the prefix still exists).
        """
        task = _ShardFitTask(self.model_factory, None, self.config.seed)
        for s in range(self.config.n_shards):
            rec = self.supervisor.records[s]
            if rec["lkg_round"] is None or rec["lkg_n"] < 1:
                continue
            X, y = self._shard_arrays(s)
            n = int(rec["lkg_n"])
            out = task(
                (
                    s,
                    int(rec["lkg_round"]),
                    int(rec["lkg_attempt"]),
                    X[:n],
                    y[:n],
                    _model_seed(
                        self.config.seed, s, rec["lkg_round"], rec["lkg_attempt"]
                    ),
                )
            )
            if out["ok"]:
                self.supervisor.lkg[s].remember(
                    GaussianProcessRegressor.from_dict(out["model"])
                )

    def _loop(self, start_round: int, checkpoint_dir) -> CampaignResult:
        cfg = self.config
        directory = Path(checkpoint_dir) if checkpoint_dir is not None else None
        stop_reason = "completed"
        for r in range(start_round, cfg.n_rounds):
            with tm.span("shard.round", index=r):
                serviceable = self.supervisor.serviceable_shards(r)
                if not serviceable:
                    stop_reason = "all_shards_unavailable"
                    break
                models = self._fit_wave(r)
                self._models = models
                router = AcquisitionRouter(
                    self.partitioner,
                    models,
                    self.strategies,
                    self.pool,
                    self._pool_home,
                    serviceable,
                    cfg,
                    self._rng,
                )
                picks = router.select_batch(cfg.batch_size)
                if not picks:
                    stop_reason = (
                        "pool_exhausted"
                        if self.pool.exhausted
                        else "all_shards_unavailable"
                    )
                    break
                for pick in picks:
                    self._apply_pick(pick)
                sharded = self._sharded_model(models)
                rmse_now = None
                if sharded is not None:
                    metrics = evaluate_model(
                        sharded, self._X_active_full, self.X_test, self.y_test
                    )
                    rmse_now = metrics["rmse"]
                self._rounds.append(
                    {
                        "round": r,
                        "n_shards_available": len(models),
                        "n_picks": len(picks),
                        "rmse": rmse_now,
                        "cumulative_cost": self._cumulative_cost,
                    }
                )
                tm.event(
                    "shard.round",
                    round=r,
                    n_shards_available=len(models),
                    n_picks=len(picks),
                    rmse=rmse_now,
                )
                if self._mid_round_hook is not None:
                    self._mid_round_hook(r)
                if directory is not None:
                    self._write_checkpoint(directory, next_round=r + 1)

        final_models: dict = {}
        if self.supervisor.serviceable_shards(cfg.n_rounds):
            final_models = self._fit_wave(cfg.n_rounds)
        self._models = final_models
        model = self._sharded_model(final_models)
        availability = self.supervisor.availability(cfg.n_rounds + 1)
        if self.registry is not None and final_models:
            shards = sorted(final_models)
            self.registry.publish_bundle(
                [final_models[s] for s in shards],
                shard_ids=shards,
                healths=[self.supervisor.last_reports[s] for s in shards],
                extra={
                    "strategy": self.strategy_name,
                    "n_rounds": cfg.n_rounds,
                    "stop_reason": stop_reason,
                },
            )
        if self._measurements:
            measured_idx = [int(m[0]) for m in self._measurements]
            X_meas = self.pool.X[measured_idx]
            y_meas = self.pool.y[measured_idx]
        else:
            X_meas = np.zeros((0, self._X_active_full.shape[1]))
            y_meas = np.zeros(0)
        return CampaignResult(
            X=X_meas,
            y=np.asarray(y_meas, dtype=float),
            simulated_seconds=self._cumulative_cost,
            cpu_core_seconds=self._cumulative_cost,
            model=model,
            rounds=self._rounds,
            stop_reason=stop_reason,
            guardrails=self.supervisor.tallies,
            shard_availability=availability,
        )

    # ---------------------------------------------------------- checkpoints

    def _write_shard_file(self, directory: Path, shard: int) -> None:
        X, y = self._shard_arrays(shard)
        write_json_atomic(
            {
                "version": _SHARD_FILE_VERSION,
                "shard": int(shard),
                "n_rows": int(y.shape[0]),
                "data_hash": _data_hash(X, y),
                "X": X.tolist(),
                "y": y.tolist(),
            },
            directory / f"shard-{shard:03d}.json",
        )

    def _write_checkpoint(self, directory: Path, *, next_round: int) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        sup = self.supervisor
        strategy_rng = {}
        for s, strat in self.strategies.items():
            strategy_rng[str(s)] = {
                "tie": _gen_state(getattr(strat, "_tie_rng_", None)),
                "rng": _gen_state(getattr(strat, "_rng", None)),
            }
        write_json_atomic(
            {
                "version": _MANIFEST_VERSION,
                "kind": "sharded-campaign",
                "n_shards": self.config.n_shards,
                "n_rounds": self.config.n_rounds,
                "batch_size": self.config.batch_size,
                "seed": self.config.seed,
                "dataset_hash": self._dataset_hash,
                "next_round": int(next_round),
                "cumulative_cost": self._cumulative_cost,
                "measurements": self._measurements,
                "rounds": self._rounds,
                "rng_state": _gen_state(self._rng),
                "strategy_rng": strategy_rng,
                "breaker": sup.breaker.as_dict(),
                "records": {str(s): r for s, r in sup.records.items()},
                "total_fit_rounds": sup.total_rounds,
                "tallies": sup.tallies.as_dict(),
            },
            directory / "manifest.json",
        )
        for s in range(self.config.n_shards):
            self._write_shard_file(directory, s)
        tm.count("shard.checkpoint.writes")


# ----------------------------------------------------------- synthetic pool


def mixed_operator_pool(
    n_points: int = 160,
    *,
    operators=("poisson1", "poisson2"),
    seed: int = 0,
    noise=PERFORMANCE_NOISE,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Heterogeneous benchmark pool mixing the paper's two operators.

    Samples ``n_points`` HPGMG-style configurations split evenly across
    ``operators`` — problem size log-uniform in ``[1e4, 1e8)``, ranks
    from the paper's power-of-two ladder, frequency uniform in
    ``[1.2, 2.4)`` GHz — runs them through the synthetic
    :class:`~repro.perfmodel.RuntimeModel` with multiplicative noise, and
    returns ``(X, y, costs)``: features ``(operator code, log10 size,
    log2 ranks, GHz)``, responses ``log10 runtime``, costs
    ``runtime x ranks`` (core-seconds).  The operator code makes the
    response surface piecewise per operator — the heterogeneous regime
    where sharding should beat one global GP.
    """
    if n_points < len(operators):
        raise ValueError("n_points must cover at least one point per operator")
    rng = np.random.default_rng(seed)
    runtime_model = RuntimeModel()
    ladder = np.array([1, 2, 4, 8, 16, 32, 64], dtype=float)
    rows, responses, costs = [], [], []
    base, remainder = divmod(n_points, len(operators))
    for code, op in enumerate(operators):
        k = base + (1 if code < remainder else 0)
        size = 10.0 ** rng.uniform(4.0, 8.0, size=k)
        ranks = rng.choice(ladder, size=k)
        freq = rng.uniform(1.2, 2.4, size=k)
        t = runtime_model.runtime(op, size, ranks, freq)
        t = noise.apply(t, rng) if noise is not None else np.asarray(t, dtype=float)
        rows.append(
            np.column_stack([np.full(k, code, dtype=float),
                             np.log10(size), np.log2(ranks), freq])
        )
        responses.append(np.log10(t))
        costs.append(t * ranks)
    return (
        np.vstack(rows),
        np.concatenate(responses),
        np.concatenate(costs),
    )
