"""Experiment-selection strategies.

The two strategies the paper develops (Section V-B):

* :class:`VarianceReduction` — pick the pool point with the largest
  predictive standard deviation;
* :class:`CostEfficiency` — pick the point maximizing
  ``sigma_f(x) - mu_f(x)`` (Eq. 14), which in the paper's log-transformed
  response space is the variance/cost ratio: the response *is* the cost
  (runtime), so subtracting the predicted log cost divides by the expected
  cost in linear space.

Plus two baselines for comparison benches:

* :class:`RandomSampling` — uniform choice (classical random design);
* :class:`EMCM` — Expected Model Change Maximization of Cai et al. (the
  paper's Section III starting point, Eq. 1), realized with a bootstrap
  ensemble of GP posterior means.

And the paper's Section VI future-work extension:

* :func:`select_batch` — greedy batch selection with variance
  re-estimation ("kriging believer") for scheduling several experiments in
  parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.gpr import GaussianProcessRegressor
from .pool import CandidatePool

__all__ = [
    "Strategy",
    "VarianceReduction",
    "CostEfficiency",
    "CostModelEfficiency",
    "RandomSampling",
    "EMCM",
    "select_batch",
]


class Strategy:
    """Base class: scores available pool records; highest score is selected.

    Exact score ties are broken *randomly* via a strategy-owned RNG (seeded
    from the strategy's ``seed`` field when it has one).  ``np.argmax``
    would deterministically favour low pool indices — on the seed iteration
    of an AL run the prior is constant, *every* score ties, and every run's
    first query would be record 0, i.e. dataset order would silently leak
    into the design.

    After :meth:`select`, :attr:`last_selected_sd` holds the predictive SD
    at the chosen record when the strategy already computed pool SDs for its
    scores (``None`` otherwise), so callers need not re-predict it.
    """

    #: human-readable name used in experiment outputs
    name: str = "strategy"
    #: predictive SD at the last selected record, when scores() computed it
    last_selected_sd: float | None = None

    def scores(
        self, model: GaussianProcessRegressor, pool: CandidatePool
    ) -> np.ndarray:
        """Score each *available* pool record (shape ``(n_available,)``)."""
        raise NotImplementedError

    def _tie_rng(self) -> np.random.Generator:
        if getattr(self, "_tie_rng_", None) is None:
            self._tie_rng_ = np.random.default_rng(getattr(self, "seed", 0))
        return self._tie_rng_

    def with_seed(self, seed: int) -> "Strategy":
        """Fresh copy of this strategy re-seeded with ``seed``.

        Sharded campaigns give every shard its own strategy instance so
        local RNG streams (tie-breaks, random scores, bootstrap resamples)
        stay independent of shard scheduling.  For dataclass strategies
        with a ``seed`` field this re-runs ``__post_init__`` via
        :func:`dataclasses.replace`, resetting any derived RNG state; other
        strategies fall back to a deep copy with ``seed`` assigned.
        """
        import copy
        import dataclasses

        if dataclasses.is_dataclass(self) and any(
            f.name == "seed" for f in dataclasses.fields(self)
        ):
            return dataclasses.replace(self, seed=int(seed))
        clone = copy.deepcopy(self)
        clone.seed = int(seed)
        clone._tie_rng_ = None
        return clone

    def select(
        self, model: GaussianProcessRegressor, pool: CandidatePool
    ) -> int:
        """Pool-local index of the chosen record."""
        if pool.exhausted:
            raise ValueError("candidate pool is exhausted")
        self._last_sd: np.ndarray | None = None
        scores = np.asarray(self.scores(model, pool), dtype=float)
        avail = pool.available_indices()
        if scores.shape != (avail.size,):
            raise ValueError(
                f"scores shape {scores.shape} does not match "
                f"{avail.size} available records"
            )
        ties = np.flatnonzero(scores == np.max(scores))
        if ties.size > 1:
            pos = int(self._tie_rng().choice(ties))
        elif ties.size == 1:
            pos = int(ties[0])
        else:  # all-NaN scores: keep argmax's legacy behaviour
            pos = int(np.argmax(scores))
        sd = self._last_sd
        self.last_selected_sd = float(sd[pos]) if sd is not None else None
        return int(avail[pos])


@dataclass
class VarianceReduction(Strategy):
    """Pure uncertainty sampling: ``argmax sigma_f(x)`` over the pool."""

    seed: int = 0
    name: str = "variance-reduction"

    def scores(self, model, pool):
        """Predictive SD at every available record."""
        _, sd = model.predict(pool.available_X(), return_std=True)
        self._last_sd = sd
        return sd


@dataclass
class CostEfficiency(Strategy):
    """The paper's cost-aware criterion: ``argmax (sigma - cost_weight * mu)``.

    With log-transformed responses and the response itself acting as the
    experiment cost (runtime, or energy), ``sigma - mu`` ranks points by
    predicted-uncertainty per unit predicted cost.  ``cost_weight`` (1.0 in
    the paper) lets ablations slide between pure variance reduction (0.0)
    and aggressive cost avoidance (> 1).
    """

    cost_weight: float = 1.0
    seed: int = 0
    name: str = "cost-efficiency"

    def scores(self, model, pool):
        """Eq. 14 score ``sigma - cost_weight * mu`` per available record."""
        mu, sd = model.predict(pool.available_X(), return_std=True)
        self._last_sd = sd
        return sd - self.cost_weight * mu


@dataclass
class CostModelEfficiency(Strategy):
    """Cost-aware selection with a *separate* cost model.

    The paper's Eq. 14 assumes the modeled response *is* the experiment
    cost (true for runtime).  When modeling other responses — energy,
    memory — the completion time is still the cost, so this strategy scores

        sigma_response(x) - cost_weight * mu_cost(x)

    using a second regressor fitted on log cost.  The paper anticipates
    exactly this ambiguity: "it may not be entirely clear how to define the
    cost in many other application domains".

    Parameters
    ----------
    cost_model:
        A :class:`GaussianProcessRegressor` predicting log10 cost at pool
        inputs.  With ``auto_refit=True`` (default) it is refreshed by
        :meth:`refit_cost_model`, which :class:`repro.al.learner.ActiveLearner`
        calls on the same cadence as the primary-model refits — historically
        nothing refitted it and its predictions went stale as the pool
        drained.  ``None`` lazily builds a default regressor on the first
        refit.  With ``auto_refit=False`` the caller owns its lifecycle and
        must supply it already fitted.
    """

    cost_model: GaussianProcessRegressor | None = None
    cost_weight: float = 1.0
    seed: int = 0
    auto_refit: bool = True
    name: str = "cost-model-efficiency"

    #: Floor applied to observed costs before log10 (a zero-cost record
    #: would otherwise produce -inf training targets).
    _COST_FLOOR = 1e-12

    def refit_cost_model(self, X: np.ndarray, costs: np.ndarray) -> None:
        """Refit the cost model on the costs observed so far.

        ``X`` are the input rows whose experiment costs are known (the
        consumed records plus the initial partition) and ``costs`` the
        matching costs in linear units; the model is fitted on
        ``log10(costs)``.  Called by the learner loop right after every
        full refit of the primary model, so the two models never drift out
        of sync.  A ``None`` ``cost_model`` is replaced by a default
        normalized GPR.
        """
        X = np.asarray(X, dtype=float)
        costs = np.asarray(costs, dtype=float)
        if self.cost_model is None:
            self.cost_model = GaussianProcessRegressor(
                noise_variance_bounds=(1e-6, 1e3), normalize_y=True, rng=self.seed
            )
        log_costs = np.log10(np.maximum(costs, self._COST_FLOOR))
        self.cost_model.fit(X, log_costs)

    def scores(self, model, pool):
        """``sigma_response - cost_weight * mu_cost`` per available record."""
        if self.cost_model is None or not self.cost_model.fitted:
            raise ValueError(
                "CostModelEfficiency requires a fitted cost_model"
                + (
                    " — run it inside ActiveLearner (which refits it on the "
                    "primary model's cadence) or call refit_cost_model()"
                    if self.auto_refit
                    else ""
                )
            )
        X = pool.available_X()
        _, sd = model.predict(X, return_std=True)
        mu_cost = self.cost_model.predict(X)
        self._last_sd = sd
        return sd - self.cost_weight * mu_cost


@dataclass
class RandomSampling(Strategy):
    """Uniformly random selection — the static-design baseline."""

    seed: int = 0
    name: str = "random"

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def scores(self, model, pool):
        """Uniform random scores (argmax = uniform draw)."""
        # Random scores -> argmax is a uniform draw.
        return self._rng.random(pool.n_available)


@dataclass
class EMCM(Strategy):
    """Expected Model Change Maximization (Cai et al. 2013), GP flavour.

    Scores ``x`` by the mean absolute disagreement between the primary
    model's prediction and ``n_members`` bootstrap replicas (Eq. 1 of the
    paper, with the gradient factor dropped as appropriate for nonlinear
    models).  Replicas reuse the primary model's hyperparameters — the
    Monte-Carlo variance estimate is the point, not model selection.

    With ``fast=True`` (default) the bootstrap ensemble persists between
    calls and is maintained *online* (Oza & Russell 2001): each training row
    the primary model gained since the last call enters each member's
    resample ``Poisson(1)`` times via an O(n^2) rank-1 posterior update,
    instead of refitting every member's O(n^3) Cholesky from scratch.  The
    ensemble is rebuilt cold whenever the primary model's hyperparameters
    change (a hyperparameter refit) or its training set shrank.  With
    ``fast=False`` every call draws a fresh bootstrap, matching the
    historical behaviour exactly.
    """

    n_members: int = 4
    seed: int = 0
    fast: bool = True
    name: str = "emcm"

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)
        self._members: list[GaussianProcessRegressor] | None = None
        self._seen_n = 0
        self._member_theta: tuple | None = None

    @staticmethod
    def _theta_key(model: GaussianProcessRegressor) -> tuple:
        return (tuple(model.kernel_.theta.tolist()), float(model.noise_variance_))

    def _build_members(self, model: GaussianProcessRegressor) -> None:
        X_train = model.X_train_
        y_train = model.y_train_
        n = X_train.shape[0]
        members = []
        for _ in range(self.n_members):
            idx = self._rng.integers(0, n, size=n)
            member = GaussianProcessRegressor(
                kernel=model.kernel_,
                noise_variance=model.noise_variance_,
                noise_variance_bounds="fixed",
                optimizer=None,
                rng=self._rng,
            )
            member.fit(X_train[idx], y_train[idx])
            members.append(member)
        self._members = members
        self._seen_n = n
        self._member_theta = self._theta_key(model)

    def _advance_members(self, model: GaussianProcessRegressor) -> None:
        """Fold rows the primary model gained since the last call into the
        persistent ensemble (online bootstrap, rank-1 updates)."""
        X_new = model.X_train_[self._seen_n :]
        y_new = model.y_train_[self._seen_n :]
        assert self._members is not None
        for x_row, y_val in zip(X_new, y_new):
            for member in self._members:
                for _ in range(int(self._rng.poisson(1.0))):
                    member.update(x_row[np.newaxis, :], y_val)
        self._seen_n = model.X_train_.shape[0]

    def scores(self, model, pool):
        """Mean |f(x) - f_k(x)| over the bootstrap ensemble."""
        if not model.fitted:
            raise ValueError("EMCM requires a fitted primary model")
        X_cand = pool.available_X()
        f_main = model.predict(X_cand)
        if not self.fast:
            X_train = model.X_train_
            y_train = model.y_train_
            n = X_train.shape[0]
            disagreement = np.zeros(X_cand.shape[0])
            for _ in range(self.n_members):
                idx = self._rng.integers(0, n, size=n)
                member = GaussianProcessRegressor(
                    kernel=model.kernel_,
                    noise_variance=model.noise_variance_,
                    noise_variance_bounds="fixed",
                    optimizer=None,
                    rng=self._rng,
                )
                member.fit(X_train[idx], y_train[idx])
                disagreement += np.abs(f_main - member.predict(X_cand))
            return disagreement / self.n_members

        n = model.X_train_.shape[0]
        if (
            self._members is None
            or self._member_theta != self._theta_key(model)
            or n < self._seen_n
        ):
            self._build_members(model)
        elif n > self._seen_n:
            self._advance_members(model)
        disagreement = np.zeros(X_cand.shape[0])
        for member in self._members:
            disagreement += np.abs(f_main - member.predict(X_cand))
        return disagreement / self.n_members


def select_batch(
    model: GaussianProcessRegressor,
    pool: CandidatePool,
    strategy: Strategy,
    batch_size: int,
    *,
    fast: bool = True,
) -> list[int]:
    """Greedy batch selection with variance re-estimation.

    Selects ``batch_size`` distinct pool records for parallel execution:
    after each pick the model is conditioned on the pick's *predicted* mean
    (the "kriging believer" trick), so the shrunken variance steers later
    picks away from the first pick's neighbourhood.  This implements the
    parallel-experiment extension the paper sketches in Section VI.

    With ``fast=True`` (default) the believer chain extends one cloned
    posterior via rank-1 Cholesky updates — O(n^2) per pick instead of a
    fresh O(n^3) fit — which is exact up to numerical jitter.
    ``fast=False`` keeps the historical refit-per-pick path for comparison.

    The passed ``model`` is not modified; the pool *is* consumed.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if batch_size > pool.n_available:
        raise ValueError(
            f"batch of {batch_size} exceeds {pool.n_available} available records"
        )
    picks: list[int] = []
    if fast:
        believer = model.clone_fitted()
        for _ in range(batch_size):
            idx = strategy.select(believer, pool)
            picks.append(idx)
            x, _, _ = pool.consume(idx)
            y_hat = float(believer.predict(x[np.newaxis, :])[0])
            believer.update(x[np.newaxis, :], y_hat)
        return picks
    X_train = model.X_train_
    y_train = model.y_train_
    believer = model
    for _ in range(batch_size):
        idx = strategy.select(believer, pool)
        picks.append(idx)
        x, _, _ = pool.consume(idx)
        y_hat = float(believer.predict(x[np.newaxis, :])[0])
        X_train = np.vstack([X_train, x])
        y_train = np.append(y_train, y_hat)
        believer = GaussianProcessRegressor(
            kernel=model.kernel_,
            noise_variance=model.noise_variance_,
            noise_variance_bounds="fixed",
            optimizer=None,
            rng=0,
        )
        believer.fit(X_train, y_train)
    return picks
