"""Convergence metrics of an active-learning run (Section V-B4).

The paper tracks three quantities per AL iteration:

* ``sigma_f(x)`` — the predictive standard deviation at the selected
  candidate (for Variance Reduction, the pool maximum);
* **AMSD** — the arithmetic mean of the predictive standard deviation over
  all points of the Active set (the paper notes a geometric mean works too
  but offers no advantage — we provide both);
* **RMSE** — root mean squared error of the predictive mean on the Test
  set (Eq. 2).

We additionally provide NLPD (negative log predictive density), the
standard proper scoring rule for probabilistic regression — useful in the
extended benches even though the paper does not plot it.
"""

from __future__ import annotations

import math

import numpy as np

from ..gp.gpr import GaussianProcessRegressor

__all__ = ["rmse", "amsd", "gmsd", "nlpd", "evaluate_model"]


def rmse(model: GaussianProcessRegressor, X_test: np.ndarray, y_test: np.ndarray) -> float:
    """Test-set root mean squared error of the predictive mean (Eq. 2)."""
    pred = model.predict(X_test)
    return float(np.sqrt(np.mean((pred - np.asarray(y_test, dtype=float)) ** 2)))


def amsd(model: GaussianProcessRegressor, X_active: np.ndarray) -> float:
    """Arithmetic mean of predictive SD over the Active set."""
    _, sd = model.predict(X_active, return_std=True)
    return float(np.mean(sd))


def gmsd(model: GaussianProcessRegressor, X_active: np.ndarray) -> float:
    """Geometric mean of predictive SD over the Active set."""
    _, sd = model.predict(X_active, return_std=True)
    sd = np.maximum(sd, 1e-300)
    return float(np.exp(np.mean(np.log(sd))))


def nlpd(model: GaussianProcessRegressor, X_test: np.ndarray, y_test: np.ndarray) -> float:
    """Mean negative log predictive density on the test set."""
    mu, sd = model.predict(X_test, return_std=True)
    sd = np.maximum(sd, 1e-12)
    y = np.asarray(y_test, dtype=float)
    return float(
        np.mean(0.5 * math.log(2 * math.pi) + np.log(sd) + 0.5 * ((y - mu) / sd) ** 2)
    )


def evaluate_model(
    model: GaussianProcessRegressor,
    X_active: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> dict:
    """All paper metrics at once (single prediction pass per set)."""
    mu_t, sd_t = model.predict(X_test, return_std=True)
    _, sd_a = model.predict(X_active, return_std=True)
    y = np.asarray(y_test, dtype=float)
    sd_t_safe = np.maximum(sd_t, 1e-12)
    return {
        "rmse": float(np.sqrt(np.mean((mu_t - y) ** 2))),
        "amsd": float(np.mean(sd_a)),
        "gmsd": float(np.exp(np.mean(np.log(np.maximum(sd_a, 1e-300))))),
        "nlpd": float(
            np.mean(
                0.5 * math.log(2 * math.pi)
                + np.log(sd_t_safe)
                + 0.5 * ((y - mu_t) / sd_t_safe) ** 2
            )
        ),
    }
