"""Convergence metrics of an active-learning run (Section V-B4).

The paper tracks three quantities per AL iteration:

* ``sigma_f(x)`` — the predictive standard deviation at the selected
  candidate (for Variance Reduction, the pool maximum);
* **AMSD** — the arithmetic mean of the predictive standard deviation over
  all points of the Active set (the paper notes a geometric mean works too
  but offers no advantage — we provide both);
* **RMSE** — root mean squared error of the predictive mean on the Test
  set (Eq. 2).

We additionally provide NLPD (negative log predictive density), the
standard proper scoring rule for probabilistic regression — useful in the
extended benches even though the paper does not plot it.

Each metric has exactly one definition: the ``_*_from`` helpers operate on
prediction arrays, the public functions predict and delegate, and
:func:`evaluate_model` reuses the same helpers on a single prediction pass
per set.  (Historically ``evaluate_model`` re-implemented the formulas
inline and the two copies had already drifted to different SD floors.)
"""

from __future__ import annotations

import math

import numpy as np

from ..gp.gpr import GaussianProcessRegressor

__all__ = ["rmse", "amsd", "gmsd", "nlpd", "evaluate_model"]

#: Single SD floor shared by every metric that divides by or logs the SD.
_SD_FLOOR = 1e-12


def _rmse_from(mu: np.ndarray, y: np.ndarray) -> float:
    return float(np.sqrt(np.mean((mu - y) ** 2)))


def _amsd_from(sd: np.ndarray) -> float:
    return float(np.mean(sd))


def _gmsd_from(sd: np.ndarray) -> float:
    return float(np.exp(np.mean(np.log(np.maximum(sd, _SD_FLOOR)))))


def _nlpd_from(mu: np.ndarray, sd: np.ndarray, y: np.ndarray) -> float:
    sd = np.maximum(sd, _SD_FLOOR)
    return float(
        np.mean(0.5 * math.log(2 * math.pi) + np.log(sd) + 0.5 * ((y - mu) / sd) ** 2)
    )


def rmse(model: GaussianProcessRegressor, X_test: np.ndarray, y_test: np.ndarray) -> float:
    """Test-set root mean squared error of the predictive mean (Eq. 2)."""
    return _rmse_from(model.predict(X_test), np.asarray(y_test, dtype=float))


def amsd(model: GaussianProcessRegressor, X_active: np.ndarray) -> float:
    """Arithmetic mean of predictive SD over the Active set."""
    _, sd = model.predict(X_active, return_std=True)
    return _amsd_from(sd)


def gmsd(model: GaussianProcessRegressor, X_active: np.ndarray) -> float:
    """Geometric mean of predictive SD over the Active set."""
    _, sd = model.predict(X_active, return_std=True)
    return _gmsd_from(sd)


def nlpd(model: GaussianProcessRegressor, X_test: np.ndarray, y_test: np.ndarray) -> float:
    """Mean negative log predictive density on the test set."""
    mu, sd = model.predict(X_test, return_std=True)
    return _nlpd_from(mu, sd, np.asarray(y_test, dtype=float))


def evaluate_model(
    model: GaussianProcessRegressor,
    X_active: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> dict:
    """All paper metrics at once (single prediction pass per set)."""
    mu_t, sd_t = model.predict(X_test, return_std=True)
    _, sd_a = model.predict(X_active, return_std=True)
    y = np.asarray(y_test, dtype=float)
    return {
        "rmse": _rmse_from(mu_t, y),
        "amsd": _amsd_from(sd_a),
        "gmsd": _gmsd_from(sd_a),
        "nlpd": _nlpd_from(mu_t, sd_t, y),
    }
