"""Active learning for performance analysis — the paper's contribution.

Public API::

    from repro.al import (ActiveLearner, VarianceReduction, CostEfficiency,
                          random_partition, run_batch, tradeoff_curve)
"""

from .calibration import CoverageReport, coverage_curve, interval_coverage
from .campaign import (
    CampaignCheckpoint,
    CampaignConfig,
    CampaignResult,
    OnlineCampaign,
    load_checkpoint,
    save_checkpoint,
)
from .continuous import (
    AcquisitionResult,
    ContinuousActiveLearner,
    ContinuousTrace,
    maximize_cost_efficiency,
    maximize_sd,
)
from .guardrails import (
    DriftConfig,
    DriftDetector,
    GuardrailConfig,
    GuardrailTallies,
    HealthConfig,
    HealthReport,
    LastKnownGood,
    ModelHealth,
    apply_remediation,
)
from .fidelity import (
    FidelityObservation,
    FidelityRecord,
    FidelityTier,
    FusionState,
    MultiFidelityCostEfficiency,
    MultiFidelityLearner,
    MultiFidelityOracle,
    MultiFidelityResult,
    tiers_from_spec,
)
from .learner import ActiveLearner, ALTrace, IterationRecord, default_model_factory
from .metrics import amsd, evaluate_model, gmsd, nlpd, rmse
from .oracle import HPGMGExecutor, Observation, OfflineOracle, OnlineHPGMGOracle
from .partition import Partition, random_partition, random_partitions
from .pool import CandidatePool
from .resilience import (
    FailureAccounting,
    QuarantineDecision,
    QuarantinePolicy,
    RetryPolicy,
    ShardBreaker,
    ShardBreakerConfig,
)
from .sharding import (
    AcquisitionRouter,
    InputPartitioner,
    ShardedLearner,
    ShardedModel,
    ShardingConfig,
    ShardSupervisor,
    mixed_operator_pool,
)
from .replicates import ReplicateOutcome, SweepResult, run_replicates
from .runner import BatchResult, aggregate_series, run_batch
from .session import (
    ALSessionState,
    load_session,
    restore,
    save_session,
    snapshot,
)
from .stopping import (
    AMSDConvergence,
    amsd_tail_converged,
    dynamic_noise_floor,
    first_converged_iteration,
)
from .strategies import (
    EMCM,
    CostEfficiency,
    CostModelEfficiency,
    RandomSampling,
    Strategy,
    VarianceReduction,
    select_batch,
)
from .tradeoff import (
    StrategyComparison,
    TradeoffCurve,
    compare_strategies,
    crossover_cost,
    relative_reduction,
    tradeoff_curve,
)

__all__ = [
    "CoverageReport",
    "CampaignCheckpoint",
    "CampaignConfig",
    "CampaignResult",
    "OnlineCampaign",
    "save_checkpoint",
    "load_checkpoint",
    "RetryPolicy",
    "QuarantinePolicy",
    "QuarantineDecision",
    "FailureAccounting",
    "ShardBreaker",
    "ShardBreakerConfig",
    "InputPartitioner",
    "ShardingConfig",
    "ShardedModel",
    "ShardSupervisor",
    "AcquisitionRouter",
    "ShardedLearner",
    "mixed_operator_pool",
    "HealthConfig",
    "HealthReport",
    "ModelHealth",
    "LastKnownGood",
    "apply_remediation",
    "DriftConfig",
    "DriftDetector",
    "GuardrailConfig",
    "GuardrailTallies",
    "interval_coverage",
    "coverage_curve",
    "AcquisitionResult",
    "ContinuousActiveLearner",
    "ContinuousTrace",
    "maximize_sd",
    "maximize_cost_efficiency",
    "ActiveLearner",
    "ALTrace",
    "IterationRecord",
    "default_model_factory",
    "FidelityTier",
    "FidelityObservation",
    "FidelityRecord",
    "FusionState",
    "MultiFidelityOracle",
    "MultiFidelityCostEfficiency",
    "MultiFidelityLearner",
    "MultiFidelityResult",
    "tiers_from_spec",
    "Partition",
    "random_partition",
    "random_partitions",
    "CandidatePool",
    "Strategy",
    "VarianceReduction",
    "CostEfficiency",
    "CostModelEfficiency",
    "RandomSampling",
    "EMCM",
    "select_batch",
    "rmse",
    "amsd",
    "gmsd",
    "nlpd",
    "evaluate_model",
    "BatchResult",
    "run_batch",
    "aggregate_series",
    "ReplicateOutcome",
    "SweepResult",
    "run_replicates",
    "TradeoffCurve",
    "tradeoff_curve",
    "crossover_cost",
    "relative_reduction",
    "compare_strategies",
    "StrategyComparison",
    "AMSDConvergence",
    "amsd_tail_converged",
    "dynamic_noise_floor",
    "first_converged_iteration",
    "OfflineOracle",
    "OnlineHPGMGOracle",
    "HPGMGExecutor",
    "Observation",
    "ALSessionState",
    "snapshot",
    "restore",
    "save_session",
    "load_session",
]
