"""Model-health guardrails: health checks, rollback, drift detection.

The paper's online loop trusts every fit: "every iteration of AL includes
selecting an experiment, running it, and using the experiment outcome to
update the underlying GPR model".  A long campaign cannot afford that —
one ill-conditioned refit or one silently drifting node poisons every
subsequent selection.  This module supplies the defensive layer:

* :class:`ModelHealth` inspects a freshly fitted
  :class:`~repro.gp.gpr.GaussianProcessRegressor`: kernel-matrix condition
  number (from the cached Cholesky factor), hyperparameters pinned at their
  bounds (a noise variance stuck at its floor is the paper's Fig. 7a
  overfitting signature), per-point log marginal likelihood regressions
  versus the previous round, and the LOOCV standardized-residual outlier
  rate (:func:`repro.gp.loocv.loo_standardized_residuals`);
* :class:`LastKnownGood` keeps a frozen :meth:`clone_fitted` copy of the
  last healthy model and can re-materialize it on the current (append-only)
  training set, so an unhealthy fit is *rolled back* rather than used;
* :func:`apply_remediation` escalates the next refit after a rollback:
  more optimizer restarts first, then a raised noise floor;
* :class:`DriftDetector` runs a two-sided Page-Hinkley changepoint test on
  the stream of standardized prediction residuals of newly measured points
  — the detector for the ``drift`` fault in :mod:`repro.cluster.faults`,
  which corrupts no single job yet shifts the whole measurement regime;
* :class:`GuardrailConfig` / :class:`GuardrailTallies` bundle the knobs and
  the campaign-level accounting that
  :class:`~repro.al.campaign.OnlineCampaign` reports.

All decisions emit telemetry through :mod:`repro.telemetry`
(``guardrail.unhealthy``, ``guardrail.rollback``, ``guardrail.drift``,
``guardrail.watchdog_stop`` counters plus ``guardrail.*`` trace events).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from .. import telemetry as tm
from ..gp.gpr import GaussianProcessRegressor
from ..gp.loocv import loo_standardized_residuals

__all__ = [
    "HealthConfig",
    "HealthReport",
    "ModelHealth",
    "LastKnownGood",
    "apply_remediation",
    "DriftConfig",
    "DriftDetector",
    "GuardrailConfig",
    "GuardrailTallies",
]


# ----------------------------------------------------------------- health


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for :class:`ModelHealth`.

    Attributes
    ----------
    max_condition_number:
        Upper limit on ``cond(K_y)``; beyond it the posterior algebra is
        numerically meaningless even if no solver raised.
    pin_log_tol:
        A hyperparameter whose log-space value sits within this distance of
        a bound counts as *pinned* — the optimizer wanted to leave the box,
        i.e. the model class is fighting the data.
    noise_floor_pin_is_unhealthy:
        Whether a noise variance pinned at its *lower* bound alone flags
        the fit.  Off by default: the repo's default factories place a
        deliberate regularization floor above the collapse point (the
        paper's Section V-B device), so pinning there is the floor doing
        its job.  Turn this on when the bounds are meant to be
        non-binding — then a floor pin is the overfitting signature
        (sigma_n collapsing toward zero).  Kernel parameters at bounds are
        always reported but only flagged when *all* are pinned.
    max_lml_drop_per_point:
        Allowed decrease of per-point LML (``lml / n_train``) versus the
        previous healthy fit.  Raw LML is not comparable across training
        sets of different size, so the check normalizes per point.
    loocv_z_threshold / max_outlier_rate:
        A fit is unhealthy when more than ``max_outlier_rate`` of its LOOCV
        standardized residuals exceed ``loocv_z_threshold`` in magnitude.
    min_points_for_loocv:
        Skip the LOOCV check below this training-set size (the residuals
        are too noisy to mean anything).
    min_points:
        Below this training-set size only the condition-number check runs.
        Tiny fits routinely pin hyperparameters and have wildly varying
        per-point LML — flagging them would punish every campaign's seed
        rounds (and remediation would then *raise* the noise floor, which
        the next tiny fit pins again: a self-inflicted spiral).
    """

    max_condition_number: float = 1e12
    pin_log_tol: float = 1e-6
    noise_floor_pin_is_unhealthy: bool = False
    max_lml_drop_per_point: float = 1.0
    loocv_z_threshold: float = 3.0
    max_outlier_rate: float = 0.25
    min_points_for_loocv: int = 8
    min_points: int = 6

    def __post_init__(self):
        if self.max_condition_number <= 1.0:
            raise ValueError("max_condition_number must be > 1")
        if self.pin_log_tol <= 0:
            raise ValueError("pin_log_tol must be positive")
        if self.max_lml_drop_per_point < 0:
            raise ValueError("max_lml_drop_per_point must be >= 0")
        if self.loocv_z_threshold <= 0:
            raise ValueError("loocv_z_threshold must be positive")
        if not 0.0 < self.max_outlier_rate <= 1.0:
            raise ValueError("max_outlier_rate must be in (0, 1]")
        if self.min_points_for_loocv < 2:
            raise ValueError("min_points_for_loocv must be >= 2")
        if self.min_points < 1:
            raise ValueError("min_points must be >= 1")


@dataclass(frozen=True)
class HealthReport:
    """Outcome of one :meth:`ModelHealth.check`.

    ``issues`` holds one human-readable string per failed check;
    ``healthy`` is simply ``not issues``.  Diagnostic quantities are kept
    even when healthy so campaigns can log trends.
    """

    issues: tuple
    condition_number: float
    pinned: tuple
    noise_at_floor: bool
    lml: float
    lml_per_point: float
    outlier_rate: float | None
    n_train: int = 0
    #: ``GaussianProcessRegressor.solver_info`` of the checked model:
    #: solver name plus, for approximate backends, the approximation size
    #: and the exact-vs-approximate error-budget record.
    solver: dict | None = None
    #: Whether the checked fit carried a per-point noise vector
    #: (``fit(alpha=...)``).  Heteroscedastic fits legitimately drive the
    #: shared scalar to its floor — the per-point alphas carry the noise —
    #: so the noise-floor-pin check is skipped for them.
    heteroscedastic: bool = False

    @property
    def healthy(self) -> bool:
        return not self.issues


#: Conditioning headroom for approximate-solver fits (see
#: ModelHealth._check_approx): their small systems aggregate
#: ``sigma^-2 n`` kernel rows, so a healthy fit's condition number sits
#: ~n/sigma^2 above the exact ``K_y``'s.
_APPROX_COND_HEADROOM = 1e4


class ModelHealth:
    """Post-fit health checks on a fitted GPR.

    Stateless: the caller supplies the previous healthy fit's per-point LML
    (or ``None`` on the first round).  All quantities come from state the
    fit already cached — the only extra linear algebra is one SVD of the
    Cholesky factor and the O(n^2) LOOCV formulas.
    """

    def __init__(self, config: HealthConfig | None = None):
        self.config = config or HealthConfig()

    @staticmethod
    def _pinned_hyperparameters(
        model: GaussianProcessRegressor, cfg: HealthConfig
    ) -> tuple[list, bool]:
        """Hyperparameters sitting at their bounds (log space)."""
        theta = model._theta()
        bounds = model._theta_bounds()
        pinned: list[str] = []
        noise_at_floor = False
        nk = model.kernel_.n_dims
        for i, (val, (lo, hi)) in enumerate(zip(theta, bounds)):
            at_low = val <= lo + cfg.pin_log_tol
            at_high = val >= hi - cfg.pin_log_tol
            if not (at_low or at_high):
                continue
            if i >= nk:  # the noise entry is last when not _noise_free
                pinned.append("noise_variance")
                noise_at_floor = at_low
            else:
                pinned.append(f"kernel.theta[{i}]")
        return pinned, noise_at_floor

    def check(
        self,
        model: GaussianProcessRegressor,
        *,
        prev_lml_per_point: float | None = None,
    ) -> HealthReport:
        if not model.fitted:
            raise RuntimeError("health check requires a fitted model")
        if getattr(model, "_afit", None) is not None:
            return self._check_approx(model, prev_lml_per_point)
        cfg = self.config
        issues: list[str] = []
        n = model.X_train_.shape[0]
        # Below min_points only the conditioning check is trustworthy; see
        # HealthConfig.min_points for why tiny fits get a pass.
        enough_data = n >= cfg.min_points

        # cond(K_y) = cond(L)^2 from the cached Cholesky factor.
        L = model._fit.L
        sv = np.linalg.svd(L, compute_uv=False)
        cond = float("inf") if sv[-1] == 0 else float((sv[0] / sv[-1]) ** 2)
        if not np.isfinite(cond) or cond > cfg.max_condition_number:
            issues.append(
                f"kernel matrix ill-conditioned: cond(K)={cond:.3g} > "
                f"{cfg.max_condition_number:.3g}"
            )

        # Hyperparameters pinned at bounds (log space).
        theta = model._theta()
        heteroscedastic = getattr(model, "noise_alpha_", None) is not None
        pinned, noise_at_floor = self._pinned_hyperparameters(model, cfg)
        if (
            enough_data
            and noise_at_floor
            and cfg.noise_floor_pin_is_unhealthy
            and not heteroscedastic
        ):
            issues.append(
                "noise variance pinned at its floor "
                f"({model.noise_variance_:.3g}): the fit is absorbing noise "
                "into the kernel (overfitting signature)"
            )
        elif enough_data and len(pinned) == len(theta) and len(theta) > 0:
            issues.append(
                f"all hyperparameters pinned at bounds: {', '.join(pinned)}"
            )

        # Per-point LML regression versus the previous healthy fit.
        lml = float(model.lml_)
        lml_pp = lml / max(n, 1)
        if (
            enough_data
            and prev_lml_per_point is not None
            and lml_pp < prev_lml_per_point - cfg.max_lml_drop_per_point
        ):
            issues.append(
                f"per-point LML regressed: {lml_pp:.3f} vs previous "
                f"{prev_lml_per_point:.3f} (tolerance "
                f"{cfg.max_lml_drop_per_point})"
            )

        # LOOCV standardized-residual outlier rate.
        outlier_rate: float | None = None
        if n >= cfg.min_points_for_loocv and np.isfinite(cond):
            try:
                z = loo_standardized_residuals(model)
                outlier_rate = float(np.mean(np.abs(z) > cfg.loocv_z_threshold))
            except np.linalg.LinAlgError:
                issues.append("LOOCV residuals unavailable (singular system)")
            else:
                if outlier_rate > cfg.max_outlier_rate:
                    issues.append(
                        f"LOOCV outlier rate {outlier_rate:.2f} > "
                        f"{cfg.max_outlier_rate} (|z| > "
                        f"{cfg.loocv_z_threshold})"
                    )

        report = HealthReport(
            issues=tuple(issues),
            condition_number=cond,
            pinned=tuple(pinned),
            noise_at_floor=noise_at_floor,
            lml=lml,
            lml_per_point=lml_pp,
            outlier_rate=outlier_rate,
            n_train=n,
            solver=model.solver_info,
            heteroscedastic=heteroscedastic,
        )
        if not report.healthy:
            tm.count("guardrail.unhealthy")
            tm.event(
                "guardrail.health",
                healthy=False,
                issues=list(report.issues),
                condition_number=cond,
                lml_per_point=lml_pp,
                outlier_rate=outlier_rate,
            )
        return report

    def _check_approx(
        self,
        model: GaussianProcessRegressor,
        prev_lml_per_point: float | None,
    ) -> HealthReport:
        """Reduced health check for approximate (Nystrom/RFF) fits.

        The full n-by-n Cholesky factor does not exist, so conditioning is
        judged from the backend's small factor (``Lc`` for Nystrom, ``La``
        for RFF), LOOCV is skipped (``outlier_rate=None``), and a blown
        exact-vs-approximate error budget becomes a health issue.
        """
        cfg = self.config
        afit = model._afit
        issues: list[str] = []
        n = afit.n_train
        enough_data = n >= cfg.min_points

        factor = afit.arrays.get("Lc")
        if factor is None:
            factor = afit.arrays.get("La")
        if factor is None:  # pragma: no cover - new backends must add a key
            cond = float("nan")
        else:
            sv = np.linalg.svd(np.asarray(factor), compute_uv=False)
            cond = float("inf") if sv[-1] == 0 else float((sv[0] / sv[-1]) ** 2)
        # The approximate systems (C = K_mm + sigma^-2 K_mn K_nm, or
        # A = Phi^T Phi + sigma^2 I) aggregate sigma^-2 n kernel rows, so
        # their conditioning legitimately runs orders of magnitude above
        # the exact K_y's; the exact threshold would flag healthy
        # large-pool fits.  The headroom keeps the check meaningful for
        # genuinely degenerate fits (noise collapsed to its floor pushes
        # cond past even this).
        threshold = cfg.max_condition_number * _APPROX_COND_HEADROOM
        if not np.isfinite(cond) or cond > threshold:
            issues.append(
                f"approximate-solver system ill-conditioned: "
                f"cond={cond:.3g} > {threshold:.3g}"
            )

        theta = model._theta()
        pinned, noise_at_floor = self._pinned_hyperparameters(model, cfg)
        if enough_data and noise_at_floor and cfg.noise_floor_pin_is_unhealthy:
            issues.append(
                "noise variance pinned at its floor "
                f"({model.noise_variance_:.3g}): the fit is absorbing noise "
                "into the kernel (overfitting signature)"
            )
        elif enough_data and len(pinned) == len(theta) and len(theta) > 0:
            issues.append(
                f"all hyperparameters pinned at bounds: {', '.join(pinned)}"
            )

        # DTC / feature-space marginal likelihood: comparable only across
        # fits of the same backend, so the regression check still applies.
        lml = float(afit.lml)
        lml_pp = lml / max(n, 1)
        if (
            enough_data
            and prev_lml_per_point is not None
            and lml_pp < prev_lml_per_point - cfg.max_lml_drop_per_point
        ):
            issues.append(
                f"per-point LML regressed: {lml_pp:.3f} vs previous "
                f"{prev_lml_per_point:.3f} (tolerance "
                f"{cfg.max_lml_drop_per_point})"
            )

        budget = afit.error_budget or {}
        if budget.get("within_budget") is False:
            issues.append(
                "exact-vs-approximate error budget exceeded: "
                f"max mean err {budget.get('max_mean_err'):.3g} "
                f"(budget {budget.get('budget_mean'):.3g}), "
                f"max std err {budget.get('max_std_err'):.3g} "
                f"(budget {budget.get('budget_std'):.3g})"
            )

        report = HealthReport(
            issues=tuple(issues),
            condition_number=cond,
            pinned=tuple(pinned),
            noise_at_floor=noise_at_floor,
            lml=lml,
            lml_per_point=lml_pp,
            outlier_rate=None,
            n_train=n,
            solver=model.solver_info,
        )
        if not report.healthy:
            tm.count("guardrail.unhealthy")
            tm.event(
                "guardrail.health",
                healthy=False,
                issues=list(report.issues),
                condition_number=cond,
                lml_per_point=lml_pp,
                outlier_rate=None,
                solver=afit.backend,
            )
        return report


class LastKnownGood:
    """Frozen copy of the last healthy model, restorable onto newer data.

    :meth:`remember` stores an independent :meth:`clone_fitted` snapshot
    plus the training-set size it was fitted on.  :meth:`restore` clones
    the snapshot again and extends it — hyperparameters untouched — with
    whatever rows were measured since, via rank-1 Cholesky updates.  This
    is only valid while the caller's training set is append-only with the
    snapshot as a prefix; anything that reorders or trims history (drift
    trimming, for example) must call :meth:`reset` first.
    """

    def __init__(self):
        self._model: GaussianProcessRegressor | None = None
        self._n_rows = 0

    @property
    def available(self) -> bool:
        return self._model is not None

    @property
    def n_rows(self) -> int:
        """Training rows the remembered model was fitted on."""
        return self._n_rows

    def remember(self, model: GaussianProcessRegressor) -> None:
        """Snapshot ``model`` (must be fitted) as the last known good."""
        self._model = model.clone_fitted()
        self._n_rows = model.X_train_.shape[0]

    def restore(
        self, X: np.ndarray, y: np.ndarray, alpha: np.ndarray | None = None
    ) -> GaussianProcessRegressor:
        """Re-materialize the snapshot on the full current training set.

        ``X, y`` must be an append-only extension of the data the snapshot
        was fitted on (its first ``n_rows`` rows).  ``alpha``, when given,
        is the *full* per-point noise vector of the current training set
        (heteroscedastic learners); only the entries for the appended rows
        are used — the snapshot already carries its own prefix.
        """
        if self._model is None:
            raise RuntimeError("no last-known-good model remembered")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] < self._n_rows:
            raise ValueError(
                f"training set shrank below the snapshot ({X.shape[0]} < "
                f"{self._n_rows}); rollback is only valid for append-only "
                "histories — reset() after trimming"
            )
        model = self._model.clone_fitted()
        if X.shape[0] > self._n_rows:
            alpha_new = None
            if alpha is not None:
                alpha = np.asarray(alpha, dtype=float)
                if alpha.shape[0] != X.shape[0]:
                    raise ValueError(
                        f"alpha has {alpha.shape[0]} entries, expected "
                        f"{X.shape[0]} (the full training set)"
                    )
                alpha_new = alpha[self._n_rows :]
            model.update(X[self._n_rows :], y[self._n_rows :], alpha=alpha_new)
        return model

    def reset(self) -> None:
        self._model = None
        self._n_rows = 0


def apply_remediation(
    model: GaussianProcessRegressor,
    level: int,
    config: "GuardrailConfig",
) -> GaussianProcessRegressor:
    """Escalate a fresh (unfitted) model before a post-rollback refit.

    Level 0 is a no-op.  Level >= 1 adds ``level * remediation_restarts``
    optimizer restarts (a wider search for a basin the default run
    missed).  Level >= 2 additionally raises the noise-variance floor by
    ``remediation_floor_factor`` per level beyond the first — the paper's
    own medicine (Section V-B) in increasing doses — when the bounds are
    numeric (a ``"fixed"`` noise model has nothing to raise).
    """
    if level <= 0:
        return model
    model.n_restarts = model.n_restarts + level * config.remediation_restarts
    if level >= 2 and not isinstance(model.noise_variance_bounds, str):
        low, high = model.noise_variance_bounds
        low = float(low) * config.remediation_floor_factor ** (level - 1)
        model.noise_variance_bounds = (low, max(float(high), low * 10.0))
        model.noise_variance = max(model.noise_variance, low)
    tm.count("guardrail.remediation")
    tm.event("guardrail.remediation", level=level, n_restarts=model.n_restarts)
    return model


# ------------------------------------------------------------------ drift


@dataclass(frozen=True)
class DriftConfig:
    """Two-sided Page-Hinkley parameters for :class:`DriftDetector`.

    The detector watches standardized residuals ``z = (y - mu) / sd`` of
    *newly measured* points against the pre-measurement prediction; under a
    stable regime they are ~N(0, 1), so the Page-Hinkley drift magnitude is
    in sigma units.

    Attributes
    ----------
    delta:
        Magnitude tolerance: mean shifts smaller than ``delta`` (in sigma)
        never accumulate.
    threshold:
        Alarm level for the cumulative Page-Hinkley statistic.
    min_samples:
        Samples required before an alarm may fire.
    """

    delta: float = 0.5
    threshold: float = 15.0
    min_samples: int = 4

    def __post_init__(self):
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


class DriftDetector:
    """Two-sided Page-Hinkley changepoint test on a residual stream.

    Classic PH (Page 1954; Hinkley 1971): with running mean ``x_bar_t`` of
    the stream, accumulate ``m_t = sum_i (x_i - x_bar_i - delta)`` and
    alarm when ``m_t - min_s m_s > threshold`` (upward shift); the mirrored
    statistic catches downward shifts.  Feed it via :meth:`update` (one
    value) or :meth:`update_many`; after an alarm, :meth:`reset` starts a
    fresh window.
    """

    def __init__(self, config: DriftConfig | None = None):
        self.config = config or DriftConfig()
        self.reset()

    def reset(self) -> None:
        """Forget all history (call after handling a drift alarm)."""
        self.n_seen = 0
        self._mean = 0.0
        self._m_up = 0.0
        self._m_up_min = 0.0
        self._m_down = 0.0
        self._m_down_max = 0.0

    @property
    def statistic(self) -> float:
        """Current max of the two one-sided Page-Hinkley statistics."""
        return max(self._m_up - self._m_up_min, self._m_down_max - self._m_down)

    def update(self, value: float) -> bool:
        """Consume one residual; True when a changepoint alarm fires."""
        value = float(value)
        if not np.isfinite(value):
            return False
        cfg = self.config
        self.n_seen += 1
        self._mean += (value - self._mean) / self.n_seen
        dev = value - self._mean
        self._m_up += dev - cfg.delta
        self._m_up_min = min(self._m_up_min, self._m_up)
        self._m_down += dev + cfg.delta
        self._m_down_max = max(self._m_down_max, self._m_down)
        if self.n_seen < cfg.min_samples:
            return False
        return self.statistic > cfg.threshold

    def update_many(self, values) -> bool:
        """Consume a batch; True if any single update alarmed."""
        alarmed = False
        for v in np.asarray(values, dtype=float).ravel():
            alarmed = self.update(v) or alarmed
        return alarmed


# ------------------------------------------------------------ aggregation


@dataclass(frozen=True)
class GuardrailConfig:
    """Everything :class:`~repro.al.campaign.OnlineCampaign` needs to run guarded.

    Attributes
    ----------
    health:
        Thresholds for the post-fit :class:`ModelHealth` checks.
    drift:
        Page-Hinkley parameters for the residual :class:`DriftDetector`.
    check_health / check_drift:
        Master switches for the two monitors.
    max_rollbacks:
        Consecutive unhealthy fits tolerated (each rolled back with
        escalating remediation) before the campaign accepts the latest fit
        anyway — refusing forever would deadlock a genuinely changed
        workload.
    remediation_restarts / remediation_floor_factor:
        Escalation step sizes for :func:`apply_remediation`.
    drift_action:
        ``"trim"`` drops the oldest ``trim_fraction`` of training rows and
        refits on the recent remainder (the stale regime is discarded);
        ``"refit"`` keeps all rows but forces a from-scratch
        hyperparameter refit.
    trim_fraction:
        Fraction of (oldest) training rows discarded on a drift alarm
        under ``drift_action="trim"``.
    max_wall_seconds / max_cost_core_seconds:
        Campaign watchdog budgets on simulated makespan and core-seconds;
        ``None`` disables each.  When exceeded, the campaign ends after the
        current round with a best-effort result and
        ``stop_reason="watchdog"``.
    """

    health: HealthConfig = field(default_factory=HealthConfig)
    drift: DriftConfig = field(default_factory=DriftConfig)
    check_health: bool = True
    check_drift: bool = True
    max_rollbacks: int = 3
    remediation_restarts: int = 2
    remediation_floor_factor: float = 10.0
    drift_action: str = "trim"
    trim_fraction: float = 0.5
    max_wall_seconds: float | None = None
    max_cost_core_seconds: float | None = None

    def __post_init__(self):
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if self.remediation_restarts < 0:
            raise ValueError("remediation_restarts must be >= 0")
        if self.remediation_floor_factor < 1.0:
            raise ValueError("remediation_floor_factor must be >= 1")
        if self.drift_action not in ("trim", "refit"):
            raise ValueError(
                f"unknown drift_action {self.drift_action!r}; "
                "expected 'trim' or 'refit'"
            )
        if not 0.0 < self.trim_fraction < 1.0:
            raise ValueError("trim_fraction must be in (0, 1)")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive or None")
        if (
            self.max_cost_core_seconds is not None
            and self.max_cost_core_seconds <= 0
        ):
            raise ValueError("max_cost_core_seconds must be positive or None")


@dataclass
class GuardrailTallies:
    """What the guardrails did during one campaign (all start at zero)."""

    n_unhealthy_fits: int = 0
    n_rollbacks: int = 0
    n_remediations: int = 0
    n_drift_events: int = 0
    n_trimmed_points: int = 0
    n_breaker_opens: int = 0
    n_breaker_probes: int = 0
    n_breaker_blacklisted: int = 0
    n_watchdog_stops: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict | None) -> "GuardrailTallies":
        if not data:
            return cls()
        known = {f: int(data.get(f, 0)) for f in cls().as_dict()}
        return cls(**known)
