"""The candidate pool of an offline active-learning run.

Each pool entry is one *recorded experiment* (a job from the dataset), not
a unique input location: because the datasets contain up to three repeated
measurements per configuration, the same ``x`` can appear several times.
Consuming one record leaves its siblings available, which is exactly the
repeated-measurement capability the paper requires of AL on noisy
functions (Section III's second EMCM criticism).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CandidatePool"]


class CandidatePool:
    """Bookkeeping over the Active-set records during an AL run.

    Parameters
    ----------
    X:
        Design matrix of the Active set, shape ``(n, d)``.
    y:
        Measured responses of the Active set records.
    costs:
        Per-record experiment cost (the paper uses core-seconds).
    """

    def __init__(self, X: np.ndarray, y: np.ndarray, costs: np.ndarray):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        costs = np.asarray(costs, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],) or costs.shape != (X.shape[0],):
            raise ValueError("X, y and costs must agree on record count")
        if not np.all(np.isfinite(costs)):
            # NaN slips past a plain `< 0` check (NaN < 0 is False) and
            # then poisons every cumulative-cost curve downstream.
            bad = np.flatnonzero(~np.isfinite(costs))
            raise ValueError(
                f"costs must be finite: {bad.size} non-finite entr"
                f"{'y' if bad.size == 1 else 'ies'} at indices {bad[:5].tolist()}"
            )
        if np.any(costs < 0):
            raise ValueError("costs must be non-negative")
        self._X = X
        self._y = y
        self._costs = costs
        self._available = np.ones(X.shape[0], dtype=bool)

    # ----------------------------------------------------------------- queries

    @property
    def n_total(self) -> int:
        """Number of records in the pool, consumed or not."""
        return self._X.shape[0]

    @property
    def n_available(self) -> int:
        """Number of records still available for selection."""
        return int(np.count_nonzero(self._available))

    @property
    def exhausted(self) -> bool:
        """Whether every record has been consumed."""
        return self.n_available == 0

    def available_indices(self) -> np.ndarray:
        """Pool-local indices of records not yet consumed."""
        return np.flatnonzero(self._available)

    def available_X(self) -> np.ndarray:
        """Design-matrix rows of the available records."""
        return self._X[self._available]

    def available_costs(self) -> np.ndarray:
        """Experiment costs of the available records."""
        return self._costs[self._available]

    @property
    def X(self) -> np.ndarray:
        """Full Active-set design matrix (consumed and available)."""
        return self._X

    @property
    def y(self) -> np.ndarray:
        """Full Active-set responses (consumed and available)."""
        return self._y

    @property
    def costs(self) -> np.ndarray:
        """Full Active-set experiment costs."""
        return self._costs

    # ------------------------------------------------------------------ consume

    def consume(self, index: int) -> tuple[np.ndarray, float, float]:
        """Take record ``index`` out of the pool.

        Returns ``(x, y, cost)`` of the consumed record.  ``index`` is a
        pool-local index (0-based over all records, available or not).

        Note this consumes exactly *one record*: repeated measurements of
        the same configuration stay available as their own records.  A
        learner that wants every repeat of the selected location in one go
        (precision-weighted fusion) must use :meth:`consume_repeats` —
        otherwise the siblings linger and their information is never seen.
        """
        index = int(index)
        if not 0 <= index < self.n_total:
            raise IndexError(f"pool index {index} out of range")
        if not self._available[index]:
            raise ValueError(f"record {index} was already consumed")
        self._available[index] = False
        return self._X[index], float(self._y[index]), float(self._costs[index])

    def repeat_indices(self, index: int) -> np.ndarray:
        """All *available* records at the same location as ``index``.

        Matches design-matrix rows exactly (the datasets' repeated
        measurements are recorded at bit-identical configurations).  The
        result includes ``index`` itself and is sorted ascending; consumed
        siblings are excluded.
        """
        index = int(index)
        if not 0 <= index < self.n_total:
            raise IndexError(f"pool index {index} out of range")
        if not self._available[index]:
            raise ValueError(f"record {index} was already consumed")
        same = np.all(self._X == self._X[index], axis=1)
        return np.flatnonzero(same & self._available)

    def consume_repeats(self, index: int) -> list[tuple[np.ndarray, float, float]]:
        """Take record ``index`` *and every available repeat* out of the pool.

        Returns the ``(x, y, cost)`` of each consumed record, in ascending
        record order.  This is the repeat-aware counterpart of
        :meth:`consume` for learners that fuse co-located measurements by
        inverse variance: every repeat is surfaced, none is silently
        dropped in the pool.
        """
        indices = self.repeat_indices(index)
        self._available[indices] = False
        return [
            (self._X[i], float(self._y[i]), float(self._costs[i]))
            for i in indices
        ]
