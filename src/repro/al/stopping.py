"""Stopping rules and dynamic noise floors (Section V-B4).

The paper proposes AMSD convergence as the practical termination signal:
"when it converges (i.e. the average does not change significantly with
additional AL iterations), AL can be terminated.  The plots confirm that at
that point RMSE will also converge to its stable value, and subsequent
experiments may be considered excessive."

It also sketches, as future work, replacing the fixed noise-variance floor
with a dynamic one: "we expect that the restriction sigma_n >= 1/sqrt(N),
where N is the iteration counter, is a viable choice."  Both live here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .learner import ALTrace

__all__ = [
    "AMSDConvergence",
    "amsd_tail_converged",
    "dynamic_noise_floor",
    "first_converged_iteration",
]


def amsd_tail_converged(tail: np.ndarray, rel_tol: float) -> bool:
    """The shared AMSD tail test: has this window of values stopped moving?

    True when the relative span ``(max - min) / max`` of ``tail`` is below
    ``rel_tol`` (an all-zero tail counts as converged — the series cannot
    move any further).  Both :meth:`AMSDConvergence.converged` (the online
    stopping rule) and :func:`first_converged_iteration` (the retrospective
    scan) delegate here, so the two can never drift apart.
    """
    top = float(np.max(tail))
    if top == 0.0:
        return True
    return (top - float(np.min(tail))) / top < rel_tol


@dataclass
class AMSDConvergence:
    """Stop when AMSD stops moving.

    Converged when, over the last ``window`` iterations, the relative span
    of AMSD values ``(max - min) / max`` stays below ``rel_tol``.
    """

    window: int = 5
    rel_tol: float = 0.05

    def __post_init__(self):
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.rel_tol <= 0:
            raise ValueError("rel_tol must be positive")

    def converged(self, trace: ALTrace) -> bool:
        """Has the trace's AMSD series converged at its current end?

        Delegates to :func:`amsd_tail_converged` on the last ``window``
        values — the same predicate :func:`first_converged_iteration`
        scans with.
        """
        series = trace.series("amsd")
        if series.size < self.window:
            return False
        return amsd_tail_converged(series[-self.window :], self.rel_tol)


def first_converged_iteration(trace: ALTrace, rule: AMSDConvergence) -> int | None:
    """First iteration at which the rule would have fired (None if never).

    Applies :func:`amsd_tail_converged` — the exact predicate
    :meth:`AMSDConvergence.converged` uses online — to every window of the
    series, so the retrospective answer always matches a live run.
    """
    series = trace.series("amsd")
    for end in range(rule.window, series.size + 1):
        if amsd_tail_converged(series[end - rule.window : end], rule.rel_tol):
            return end - 1
    return None


def dynamic_noise_floor(scale: float = 1.0, *, minimum: float = 1e-8):
    """The paper's proposed schedule: ``sigma_n^2 >= scale / sqrt(N)``.

    Returns a callable ``iteration -> floor`` suitable for
    :class:`repro.al.learner.ActiveLearner`'s ``noise_floor_schedule``.
    Iterations count from 0; the floor at iteration ``i`` uses ``N = i + 1``.

    The schedule composes only with models whose noise bounds are numeric
    (*scaled*): each refit the learner replaces the lower bound with the
    scheduled floor and widens the upper bound to at least ``10x`` the
    floor.  Pairing it with ``noise_variance_bounds="fixed"`` raises a
    ``ValueError`` in :meth:`ActiveLearner._fit_model <repro.al.learner.
    ActiveLearner>` — the schedule would silently re-enable noise
    optimization the caller explicitly froze (see the mirrored note there).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if minimum <= 0:
        raise ValueError("minimum must be positive")

    def schedule(iteration: int) -> float:
        n = max(int(iteration) + 1, 1)
        return max(scale / np.sqrt(n), minimum)

    return schedule
