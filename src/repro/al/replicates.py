"""Parallel replicate campaigns: N independent online AL runs, one seed tree.

The paper's aggregate exhibits (Figs. 4-8) average replicate AL runs; the
online-campaign analogue is running :class:`~repro.al.campaign.OnlineCampaign`
``n_replicates`` times with independent randomness and summarizing the
fleet.  Replicates are embarrassingly parallel, so they fan out over a
:class:`repro.parallel.ParallelMap` — and because each replicate's RNG is a
``SeedSequence.spawn`` child keyed by replicate index (never a shared
generator handed to concurrent workers), the sweep is bit-identical across
backends and worker counts.

Checkpoint/resume composes with the fan-out: with ``checkpoint_dir`` every
replicate checkpoints each round to ``replicate-<i>.json`` and writes a
``replicate-<i>.result.json`` summary on completion.  Re-running the sweep
after a crash loads finished replicates from their result files (never
re-executing them), resumes half-finished ones from their round
checkpoints, and starts missing ones fresh — each replicate runs exactly
once no matter how often the sweep is restarted or how many workers it
uses.

``python -m repro campaign --replicates N --workers M`` drives this from
the shell.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..parallel import ParallelMap, spawn_seeds
from .campaign import OnlineCampaign
from .session import read_json_checked, write_json_atomic

__all__ = ["ReplicateOutcome", "SweepResult", "run_replicates"]

_RESULT_VERSION = 1


@dataclass
class ReplicateOutcome:
    """Summary of one replicate campaign (the picklable/persistable core).

    ``y`` is the full sequence of accepted observations in measurement
    order — the determinism witness: serial and process sweeps must agree
    on it bit-for-bit.  ``resumed`` / ``loaded`` describe how *this* sweep
    obtained the outcome (fresh run, resumed from a round checkpoint, or
    read back from a completed replicate's result file); they are not part
    of the persisted payload.
    """

    index: int
    stop_reason: str
    n_rounds_run: int
    simulated_seconds: float
    cpu_core_seconds: float
    n_failed: int
    n_retries: int
    n_quarantined: int
    wasted_core_seconds: float
    y: list = field(default_factory=list)
    resumed: bool = False
    loaded: bool = False

    @property
    def n_observations(self) -> int:
        """Accepted observations this replicate produced."""
        return len(self.y)

    def payload(self) -> dict:
        """JSON payload for the result file (excludes provenance flags)."""
        data = asdict(self)
        data.pop("resumed")
        data.pop("loaded")
        data["version"] = _RESULT_VERSION
        return data


@dataclass
class SweepResult:
    """All replicate outcomes of one sweep, in replicate order."""

    replicates: list

    @property
    def n_replicates(self) -> int:
        return len(self.replicates)

    @property
    def stop_reasons(self) -> dict:
        """Histogram of per-replicate stop reasons."""
        out: dict[str, int] = {}
        for r in self.replicates:
            out[r.stop_reason] = out.get(r.stop_reason, 0) + 1
        return out

    def series(self, attribute: str) -> np.ndarray:
        """One scalar attribute across replicates, in replicate order."""
        return np.asarray(
            [getattr(r, attribute) for r in self.replicates], dtype=float
        )

    def summary(self) -> dict:
        """Fleet-level aggregates for reports and the CLI."""
        sim = self.series("simulated_seconds")
        core = self.series("cpu_core_seconds")
        n_obs = self.series("n_observations")
        return {
            "n_replicates": self.n_replicates,
            "stop_reasons": self.stop_reasons,
            "mean_simulated_seconds": float(sim.mean()) if sim.size else 0.0,
            "max_simulated_seconds": float(sim.max()) if sim.size else 0.0,
            "total_cpu_core_seconds": float(core.sum()) if core.size else 0.0,
            "mean_observations": float(n_obs.mean()) if n_obs.size else 0.0,
            "n_resumed": sum(1 for r in self.replicates if r.resumed),
            "n_loaded": sum(1 for r in self.replicates if r.loaded),
        }


def _checkpoint_paths(checkpoint_dir, index: int) -> tuple[Path | None, Path | None]:
    if checkpoint_dir is None:
        return None, None
    d = Path(checkpoint_dir)
    return d / f"replicate-{index:04d}.json", d / f"replicate-{index:04d}.result.json"


class _ReplicateTask:
    """Run (or load, or resume) one replicate; picklable for process pools."""

    __slots__ = ("factory", "checkpoint_dir")

    def __init__(self, factory, checkpoint_dir):
        self.factory = factory
        self.checkpoint_dir = checkpoint_dir

    def __call__(self, item) -> ReplicateOutcome:
        index, seed_seq = item
        checkpoint_path, result_path = _checkpoint_paths(self.checkpoint_dir, index)
        if result_path is not None and result_path.exists():
            # Completed in an earlier sweep invocation: never re-run it.
            data = read_json_checked(result_path, kind="replicate result")
            if data.get("version") != _RESULT_VERSION:
                raise ValueError(
                    f"unsupported replicate result version {data.get('version')} "
                    f"in {result_path}"
                )
            data = {k: v for k, v in data.items() if k != "version"}
            return ReplicateOutcome(**data, loaded=True)

        campaign = self.factory(index, np.random.default_rng(seed_seq))
        # Duck-typed: OnlineCampaign and anything speaking its protocol
        # (e.g. repro.al.fidelity.MultiFidelityLearner) qualify — the task
        # only needs run(checkpoint_path=)/resume(path) and a result with
        # the ReplicateOutcome fields.
        if not (
            isinstance(campaign, OnlineCampaign)
            or (callable(getattr(campaign, "run", None))
                and callable(getattr(campaign, "resume", None)))
        ):
            raise TypeError(
                "campaign_factory must return an OnlineCampaign (or an "
                "object with its run/resume protocol), got "
                f"{type(campaign).__name__}"
            )
        resumed = checkpoint_path is not None and checkpoint_path.exists()
        if resumed:
            result = campaign.resume(checkpoint_path)
        else:
            result = campaign.run(checkpoint_path=checkpoint_path)
        outcome = ReplicateOutcome(
            index=index,
            stop_reason=result.stop_reason,
            n_rounds_run=len(result.rounds),
            simulated_seconds=float(result.simulated_seconds),
            cpu_core_seconds=float(result.cpu_core_seconds),
            n_failed=result.n_failed,
            n_retries=result.n_retries,
            n_quarantined=result.n_quarantined,
            wasted_core_seconds=float(result.wasted_core_seconds),
            y=[float(v) for v in result.y],
            resumed=resumed,
        )
        if result_path is not None:
            write_json_atomic(outcome.payload(), result_path)
        return outcome


def run_replicates(
    campaign_factory: Callable[[int, np.random.Generator], OnlineCampaign],
    n_replicates: int,
    *,
    seed=0,
    n_workers: int = 1,
    backend: str | None = None,
    checkpoint_dir=None,
    task_timeout: float | None = None,
    max_task_retries: int = 2,
) -> SweepResult:
    """Run ``n_replicates`` independent campaigns, optionally in parallel.

    Parameters
    ----------
    campaign_factory:
        ``(replicate_index, rng) -> OnlineCampaign``.  Called inside the
        worker, so for the process backend it must be picklable (a
        module-level function or class instance).  The ``rng`` argument is
        that replicate's private generator — derived from
        ``SeedSequence(seed).spawn()`` child ``replicate_index`` — and is
        the *only* randomness a replicate should consume; reusing one
        generator across replicates is exactly the shared-RNG bug this
        layer exists to prevent.
    n_replicates:
        Fleet size.
    seed:
        Root of the replicate seed tree (int, ``None``, or a
        ``SeedSequence``).
    n_workers / backend:
        Fan-out configuration, see :class:`repro.parallel.ParallelMap`.
    checkpoint_dir:
        Directory for per-replicate round checkpoints and result files;
        enables crash-safe, exactly-once resumption of the whole sweep.
    task_timeout / max_task_retries:
        Fault-tolerance knobs forwarded to
        :class:`repro.parallel.ParallelMap` — a replicate whose process
        worker is killed is retried (with its same spawned seed, so
        results stay bit-identical to a fault-free run), and with a
        ``checkpoint_dir`` the retry resumes from the last completed
        round instead of restarting.

    Returns a :class:`SweepResult` with outcomes in replicate order,
    bit-identical for every backend and worker count.
    """
    if n_replicates < 1:
        raise ValueError("n_replicates must be >= 1")
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    seeds = spawn_seeds(seed, n_replicates)
    task = _ReplicateTask(campaign_factory, checkpoint_dir)
    pm = ParallelMap(
        backend,
        n_workers,
        task_timeout=task_timeout,
        max_task_retries=max_task_retries,
    )
    outcomes = pm.map(task, list(enumerate(seeds)))
    return SweepResult(replicates=outcomes)
