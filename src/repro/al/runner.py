"""Batched AL runs over many random partitions (Section IV).

"In addition to single realizations of AL, our prototype is capable of
running batches of random partitions of the same dataset.  The aggregate
results, such as the average error and the average cumulative cost of
experiments, provide insights into how the AL process behaves independent
of the initial state."

The paper uses 10 partitions in Fig. 7 and 50 in Fig. 8.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..parallel import ParallelMap
from .learner import ActiveLearner, ALTrace
from .partition import random_partitions
from .strategies import Strategy

__all__ = ["BatchResult", "run_batch", "aggregate_series"]


@dataclass
class BatchResult:
    """Traces of one strategy across many random partitions of one dataset."""

    strategy: str
    traces: list

    @property
    def n_partitions(self) -> int:
        """Number of random partitions in the batch."""
        return len(self.traces)

    def series_matrix(self, attribute: str) -> np.ndarray:
        """Stack one metric across traces, shape ``(n_partitions, n_iters)``.

        Traces are truncated to the shortest common length; uneven traces
        (e.g. a partition whose pool ran out early) emit a
        :class:`RuntimeWarning` naming how many recorded iterations the
        truncation drops, since silently mixing lengths corrupts Fig. 7/8
        style aggregates.
        """
        if not self.traces:
            raise ValueError("batch holds no traces")
        lengths = [len(t) for t in self.traces]
        n = min(lengths)
        if max(lengths) != n:
            dropped = sum(length - n for length in lengths)
            uneven = sum(1 for length in lengths if length > n)
            warnings.warn(
                f"series_matrix({attribute!r}): traces have uneven lengths "
                f"({n}..{max(lengths)}); truncating to {n} iterations drops "
                f"{dropped} recorded iteration(s) from {uneven} of "
                f"{len(lengths)} trace(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        return np.vstack([t.series(attribute)[:n] for t in self.traces])

    def mean_series(self, attribute: str) -> np.ndarray:
        """Per-iteration mean of one metric across partitions."""
        return self.series_matrix(attribute).mean(axis=0)

    def std_series(self, attribute: str) -> np.ndarray:
        """Per-iteration standard deviation of one metric across partitions."""
        return self.series_matrix(attribute).std(axis=0)


class _PartitionTask:
    """Run one partition's AL trajectory; picklable for process workers.

    Everything a worker needs travels inside the task: the dataset, the
    per-partition :class:`Strategy` instance (constructed *in the parent*,
    see :func:`run_batch`), and the learner keyword arguments.  The
    strategy instance carries its own RNG state, so the trajectory is a
    pure function of the payload — identical on every backend.
    """

    __slots__ = ("X", "y", "costs", "learner_kwargs", "n_iterations")

    def __init__(self, X, y, costs, learner_kwargs, n_iterations):
        self.X = X
        self.y = y
        self.costs = costs
        self.learner_kwargs = learner_kwargs
        self.n_iterations = n_iterations

    def __call__(self, part_and_strategy) -> tuple[str, ALTrace]:
        partition, strategy = part_and_strategy
        learner = ActiveLearner(
            self.X, self.y, self.costs, partition, strategy,
            **self.learner_kwargs,
        )
        return strategy.name, learner.run(self.n_iterations)


def run_batch(
    X: np.ndarray,
    y: np.ndarray,
    costs: np.ndarray,
    *,
    strategy_factory: Callable[[int], Strategy],
    n_partitions: int = 10,
    n_iterations: int | None = None,
    seed=0,
    n_initial: int = 1,
    test_fraction: float = 0.2,
    model_factory: Callable | None = None,
    noise_floor_schedule: Callable[[int], float] | None = None,
    n_workers: int = 1,
    backend: str | None = None,
    fast_refits: bool = False,
    refit_every: int = 1,
    warm_start: bool = False,
    fuse_repeats: bool = False,
    repeat_noise_variance: float = 1e-2,
) -> BatchResult:
    """Run one strategy over ``n_partitions`` random partitions.

    ``strategy_factory`` receives the partition index, so stateful
    strategies (random sampling, EMCM) get distinct seeds per run.  The
    partitions depend only on ``seed``, ``n_initial`` and ``test_fraction``
    — comparing two strategies with identical arguments compares them on
    *identical partitions*, which is how the paper's Fig. 8 is built.

    ``n_workers > 1`` fans the partitions out over a
    :class:`repro.parallel.ParallelMap`.  The default backend is
    ``"process"`` (the fits are GIL-bound numpy, so threads used to buy
    almost nothing) unless overridden by ``backend`` or the
    ``REPRO_PARALLEL_BACKEND`` environment variable.  Every strategy
    instance is constructed *in the parent, in partition order* — factories
    touching shared state (a closed-over RNG, a shared cost model) are
    therefore safe, and the factory itself never needs to pickle.  Results
    are bit-identical across backends and worker counts.  The process
    backend does require the dataset, strategies, ``model_factory`` and
    ``noise_floor_schedule`` to be picklable (module-level functions and
    classes; :func:`default_model_factory` qualifies).

    ``fast_refits``, ``refit_every`` and ``warm_start`` are forwarded to
    each :class:`~repro.al.learner.ActiveLearner`: with ``fast_refits=True``
    posteriors are extended by rank-1 Cholesky updates between scheduled
    hyperparameter refits (every ``refit_every`` iterations), which is the
    hot-loop optimization ``benchmarks/bench_incremental_gpr.py`` measures.
    At the default ``refit_every=1`` the trace is identical to the
    paper-faithful slow path.

    ``fuse_repeats`` / ``repeat_noise_variance`` are likewise forwarded:
    each selection then consumes every available repeat of the chosen
    configuration and fuses them by inverse variance into one
    heteroscedastic training row (see
    :class:`~repro.al.learner.ActiveLearner`).
    """
    X = np.asarray(X, dtype=float)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    parts = random_partitions(
        X.shape[0],
        n_partitions,
        seed,
        n_initial=n_initial,
        test_fraction=test_fraction,
    )

    # Strategies are built serially in the parent: factories are free to
    # share state, and each instance (with its private RNG) travels to
    # whichever worker runs its partition.
    strategies = [strategy_factory(i) for i in range(len(parts))]
    task = _PartitionTask(
        X, y, costs,
        dict(
            model_factory=model_factory,
            noise_floor_schedule=noise_floor_schedule,
            fast_refits=fast_refits,
            refit_every=refit_every,
            warm_start=warm_start,
            fuse_repeats=fuse_repeats,
            repeat_noise_variance=repeat_noise_variance,
        ),
        n_iterations,
    )
    pm = ParallelMap(backend, n_workers)
    outcomes = pm.map(task, list(zip(parts, strategies)))
    name = outcomes[0][0] if outcomes else "unknown"
    return BatchResult(strategy=name, traces=[t for _, t in outcomes])


def aggregate_series(
    result: BatchResult, attribute: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(iterations, mean, std) of one metric across the batch."""
    mat = result.series_matrix(attribute)
    its = np.arange(mat.shape[1])
    return its, mat.mean(axis=0), mat.std(axis=0)
