"""Online AL campaigns with parallel experiment execution (paper §VI).

"As future work, some experiments could reasonably be run in parallel
which adds additional scheduling concerns and may indicate a less greedy
selection strategy."  This module implements that loop end to end on the
simulated testbed:

1. fit the GP on everything measured so far;
2. select a *batch* of candidate configurations (kriging-believer batch
   selection, so the batch is diverse);
3. submit the batch to the SLURM-like scheduler, which runs the jobs in
   parallel on the 4-node cluster (a real executor may actually solve the
   systems — see :class:`repro.al.oracle.HPGMGExecutor`);
4. fold the measured runtimes back into the training set and repeat.

The campaign tracks *simulated wall-clock* (scheduler makespan), so the
batch-size tradeoff the paper anticipates — larger batches finish sooner
but select less adaptively — becomes measurable
(``benchmarks/bench_ablation_campaign.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cluster.jobs import JobSpec
from ..cluster.machine import ClusterSpec, wisconsin_cluster
from ..cluster.scheduler import Executor, SlurmSimulator
from ..gp.gpr import GaussianProcessRegressor
from .learner import default_model_factory
from .pool import CandidatePool
from .strategies import Strategy, VarianceReduction, select_batch

__all__ = ["CampaignConfig", "CampaignResult", "OnlineCampaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Candidate space and execution parameters of an online campaign.

    Attributes
    ----------
    operator:
        Operator flavour submitted for every job.
    candidates:
        Array of (problem_size, np_ranks, freq_ghz) rows — the finite
        candidate grid AL selects from.
    batch_size:
        Experiments submitted per AL round (1 = the paper's greedy loop).
    n_rounds:
        AL rounds to run.
    """

    operator: str
    candidates: np.ndarray
    batch_size: int = 1
    n_rounds: int = 10

    def __post_init__(self):
        cand = np.asarray(self.candidates, dtype=float)
        if cand.ndim != 2 or cand.shape[1] != 3:
            raise ValueError("candidates must have shape (n, 3)")
        if self.batch_size < 1 or self.n_rounds < 1:
            raise ValueError("batch_size and n_rounds must be >= 1")
        object.__setattr__(self, "candidates", cand)


@dataclass
class CampaignResult:
    """Outcome of an online campaign.

    Attributes
    ----------
    X / y:
        Measured configurations (log-transformed features) and log10
        runtimes, in measurement order.
    simulated_seconds:
        Total scheduler makespan across all rounds (the wall-clock a real
        campaign would have spent).
    cpu_core_seconds:
        Total compute spent (runtime x ranks summed over jobs).
    model:
        Final fitted regressor.
    rounds:
        Per-round dicts with ``n_jobs``, ``makespan`` and ``max_sd``.
    """

    X: np.ndarray
    y: np.ndarray
    simulated_seconds: float
    cpu_core_seconds: float
    model: GaussianProcessRegressor
    rounds: list = field(default_factory=list)


def _features(rows: np.ndarray) -> np.ndarray:
    """(size, np, freq) -> (log10 size, log2 np, freq)."""
    out = np.empty_like(rows, dtype=float)
    out[:, 0] = np.log10(rows[:, 0])
    out[:, 1] = np.log2(rows[:, 1])
    out[:, 2] = rows[:, 2]
    return out


class OnlineCampaign:
    """Drives AL rounds through the cluster simulator.

    Parameters
    ----------
    config:
        Candidate space and batching parameters.
    executor:
        Scheduler executor supplying job behaviour (analytic model or real
        solves).
    cluster:
        Hardware description; defaults to the Wisconsin testbed.
    strategy:
        Per-pick selection strategy used inside the batch construction.
    fast_refits:
        Keep the round model alive and fold each measured batch into its
        posterior with rank-1 Cholesky updates, running the full
        hyperparameter search only every ``refit_every`` rounds (and for
        the final returned model).  The kriging-believer batch construction
        always uses the fast believer chain.
    refit_every:
        Rounds between full hyperparameter refits when ``fast_refits``.
    """

    def __init__(
        self,
        config: CampaignConfig,
        executor: Executor,
        *,
        cluster: ClusterSpec | None = None,
        strategy: Strategy | None = None,
        model_factory: Callable[[], GaussianProcessRegressor] | None = None,
        rng=None,
        fast_refits: bool = False,
        refit_every: int = 1,
    ):
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.config = config
        self.executor = executor
        self.cluster = cluster or wisconsin_cluster()
        self.strategy = strategy or VarianceReduction()
        self.model_factory = model_factory or default_model_factory(1e-2)
        self.rng = np.random.default_rng(rng)
        self.fast_refits = bool(fast_refits)
        self.refit_every = int(refit_every)

    def _submit(self, rows: np.ndarray) -> tuple[np.ndarray, float, float]:
        """Run one batch through the scheduler; returns (log10 runtimes,
        makespan, core-seconds) aligned with ``rows``."""
        specs = [
            JobSpec(
                operator=self.config.operator,
                problem_size=float(size),
                np_ranks=int(ranks),
                freq_ghz=float(freq),
                repeat_index=i,
            )
            for i, (size, ranks, freq) in enumerate(rows)
        ]
        sim = SlurmSimulator(
            self.cluster, self.executor, rng=self.rng.integers(2**31)
        )
        records = sim.run_batch(specs)
        by_repeat = {r.repeat_index: r for r in records}
        runtimes = np.array(
            [by_repeat[i].runtime_seconds for i in range(len(rows))]
        )
        makespan = max(r.end_time for r in records)
        core_seconds = sum(r.cost_core_seconds for r in records)
        return np.log10(runtimes), float(makespan), float(core_seconds)

    def run(self, *, seed_index: int = 0) -> CampaignResult:
        """Execute the campaign: seed job, then ``n_rounds`` AL batches."""
        cand_rows = self.config.candidates
        cand_X = _features(cand_rows)
        measured_X: list[np.ndarray] = []
        measured_y: list[float] = []
        total_makespan = 0.0
        total_core_seconds = 0.0
        rounds = []

        # Seed experiment.
        y_seed, makespan, core_s = self._submit(cand_rows[[seed_index]])
        measured_X.append(cand_X[seed_index])
        measured_y.append(float(y_seed[0]))
        total_makespan += makespan
        total_core_seconds += core_s

        model = self.model_factory()
        for round_index in range(self.config.n_rounds):
            if (
                self.fast_refits
                and model.fitted
                and round_index % self.refit_every != 0
            ):
                # Fold rows measured since the last fit into the posterior
                # (rank-1 updates), hyperparameters held fixed this round.
                n_fitted = model.X_train_.shape[0]
                if n_fitted < len(measured_X):
                    model.update(
                        np.vstack(measured_X[n_fitted:]),
                        np.asarray(measured_y[n_fitted:]),
                    )
            else:
                model = self.model_factory()
                model.fit(np.vstack(measured_X), np.asarray(measured_y))
            pool = CandidatePool(
                cand_X, np.zeros(len(cand_X)), np.zeros(len(cand_X))
            )
            k = min(self.config.batch_size, pool.n_available)
            picks = select_batch(model, pool, self.strategy, k)
            _, sd = model.predict(cand_X[picks], return_std=True)
            y_new, makespan, core_s = self._submit(cand_rows[picks])
            for idx, y_val in zip(picks, y_new):
                measured_X.append(cand_X[idx])
                measured_y.append(float(y_val))
            total_makespan += makespan
            total_core_seconds += core_s
            rounds.append(
                {"n_jobs": k, "makespan": makespan, "max_sd": float(sd.max())}
            )

        model = self.model_factory()
        model.fit(np.vstack(measured_X), np.asarray(measured_y))
        return CampaignResult(
            X=np.vstack(measured_X),
            y=np.asarray(measured_y),
            simulated_seconds=total_makespan,
            cpu_core_seconds=total_core_seconds,
            model=model,
            rounds=rounds,
        )
