"""Online AL campaigns with parallel experiment execution (paper §VI).

"As future work, some experiments could reasonably be run in parallel
which adds additional scheduling concerns and may indicate a less greedy
selection strategy."  This module implements that loop end to end on the
simulated testbed:

1. fit the GP on everything measured so far;
2. select a *batch* of candidate configurations (kriging-believer batch
   selection, so the batch is diverse);
3. submit the batch to the SLURM-like scheduler, which runs the jobs in
   parallel on the 4-node cluster (a real executor may actually solve the
   systems — see :class:`repro.al.oracle.HPGMGExecutor`);
4. fold the measured runtimes back into the training set and repeat.

The campaign tracks *simulated wall-clock* (scheduler makespan), so the
batch-size tradeoff the paper anticipates — larger batches finish sooner
but select less adaptively — becomes measurable
(``benchmarks/bench_ablation_campaign.py``).

Campaigns are **fault tolerant**.  Real clusters crash jobs, hang them past
the time limit, and occasionally hand back corrupted measurements (inject
them with :class:`repro.cluster.faults.FaultyExecutor`); an online campaign
must neither die nor train its GP on garbage.  Every submitted batch is
inspected record by record: failed/timed-out/unverified outcomes are
retried under a :class:`~repro.al.resilience.RetryPolicy` (with exponential
backoff charged to the simulated makespan) and gated out of the training
set by a :class:`~repro.al.resilience.QuarantinePolicy`; a whole-batch
failure leaves the model untouched and the campaign reselects next round.
Each round atomically checkpoints the full campaign state (JSON, same
machinery as :mod:`repro.al.session`), and :meth:`OnlineCampaign.resume`
continues a killed campaign bit-identically at the same seed.  A Cholesky
failure while refitting mid-campaign escalates the jitter and, as a last
resort, keeps the previous round's model alive.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from .. import telemetry as tm
from ..cluster.breaker import AllNodesOpenError, BreakerConfig, NodeCircuitBreaker
from ..cluster.jobs import JobSpec
from ..cluster.machine import ClusterSpec, wisconsin_cluster
from ..cluster.scheduler import Executor, SlurmSimulator
from ..gp.gpr import GaussianProcessRegressor
from .guardrails import (
    DriftDetector,
    GuardrailConfig,
    GuardrailTallies,
    LastKnownGood,
    ModelHealth,
    apply_remediation,
)
from .learner import default_model_factory
from .pool import CandidatePool
from .resilience import FailureAccounting, QuarantinePolicy, RetryPolicy
from .session import read_json_checked, write_json_atomic
from .strategies import Strategy, VarianceReduction, select_batch

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CampaignCheckpoint",
    "OnlineCampaign",
    "save_checkpoint",
    "load_checkpoint",
]

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Candidate space and execution parameters of an online campaign.

    Attributes
    ----------
    operator:
        Operator flavour submitted for every job.
    candidates:
        Array of (problem_size, np_ranks, freq_ghz) rows — the finite
        candidate grid AL selects from.
    batch_size:
        Experiments submitted per AL round (1 = the paper's greedy loop).
    n_rounds:
        AL rounds to run.
    time_limit_seconds:
        SLURM time limit enforced on every job; hung jobs are killed (and
        recorded as ``TIMEOUT``) at this point.
    """

    operator: str
    candidates: np.ndarray
    batch_size: int = 1
    n_rounds: int = 10
    time_limit_seconds: float = 3600.0

    def __post_init__(self):
        cand = np.asarray(self.candidates, dtype=float)
        if cand.ndim != 2 or cand.shape[1] != 3:
            raise ValueError("candidates must have shape (n, 3)")
        if self.batch_size < 1 or self.n_rounds < 1:
            raise ValueError("batch_size and n_rounds must be >= 1")
        if self.time_limit_seconds <= 0:
            raise ValueError("time_limit_seconds must be positive")
        object.__setattr__(self, "candidates", cand)


@dataclass
class CampaignResult:
    """Outcome of an online campaign.

    Attributes
    ----------
    X / y:
        Measured configurations (log-transformed features) and log10
        runtimes, in measurement order.  Only observations that passed the
        quarantine gate are included.
    simulated_seconds:
        Total scheduler makespan across all rounds, including retry waves
        and their backoff delays (the wall-clock a real campaign would
        have spent).
    cpu_core_seconds:
        Total compute spent (runtime x ranks summed over jobs, including
        failed attempts).
    model:
        Final fitted regressor.
    rounds:
        Per-round dicts with ``n_jobs``, ``n_ok``, ``makespan`` and
        ``max_sd``.
    n_failed / n_retries / n_quarantined / wasted_core_seconds:
        Failure accounting: executions that ended FAILED/TIMEOUT,
        re-submissions performed, completed-but-gated observations, and
        the core-seconds that produced no usable observation.
    stop_reason:
        ``"completed"`` when every round ran; ``"watchdog"`` when a
        guardrail budget (wall-clock or core-seconds) ended the campaign
        early; ``"cluster_unavailable"`` when the node circuit breaker
        left pending jobs permanently unplaceable.  Early stops still
        return a best-effort result (final fit on everything measured).
    guardrails:
        :class:`~repro.al.guardrails.GuardrailTallies` of every guardrail
        intervention, or ``None`` when the campaign ran unguarded.
    """

    X: np.ndarray
    y: np.ndarray
    simulated_seconds: float
    cpu_core_seconds: float
    model: GaussianProcessRegressor
    rounds: list = field(default_factory=list)
    n_failed: int = 0
    n_retries: int = 0
    n_quarantined: int = 0
    wasted_core_seconds: float = 0.0
    stop_reason: str = "completed"
    guardrails: GuardrailTallies | None = None
    #: per-shard availability report from sharded campaigns (see
    #: :mod:`repro.al.sharding`); ``None`` for unsharded campaigns
    shard_availability: dict | None = None


@dataclass
class CampaignCheckpoint:
    """Serializable snapshot of an in-progress online campaign.

    Stored as a single JSON document via the same atomic-write machinery
    as :mod:`repro.al.session`; everything needed to continue the campaign
    bit-identically is captured, including the campaign RNG state (and the
    executor's and strategy's tie-break RNG states when they have one).
    """

    version: int
    operator: str
    batch_size: int
    n_rounds: int
    time_limit_seconds: float
    seed_index: int
    candidates: list
    next_round: int
    measured_X: list
    measured_y: list
    fit_counts: list  # measured-point count at each completed round's fit (0 = no fit)
    rounds: list
    simulated_seconds: float
    cpu_core_seconds: float
    n_failed: int
    n_retries: int
    n_quarantined: int
    wasted_core_seconds: float
    rng_state: dict
    executor_rng_state: dict | None = None
    strategy_rng_state: dict | None = None
    # Guardrail bookkeeping (None for unguarded campaigns and pre-guardrail
    # checkpoints): tallies, escalation level, reference LML, stop reason.
    # The drift detector and last-known-good snapshot restart cold on
    # resume, so guarded campaigns resume *correctly* but not bit-
    # identically (see docs/GUARDRAILS.md).
    guardrail_state: dict | None = None


def save_checkpoint(checkpoint: CampaignCheckpoint, path) -> Path:
    """Atomically write a campaign checkpoint to a JSON file."""
    return write_json_atomic(asdict(checkpoint), path)


def load_checkpoint(path) -> CampaignCheckpoint:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    payload = read_json_checked(path, kind="campaign checkpoint")
    if payload.get("version") != _CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported campaign checkpoint version {payload.get('version')} "
            f"(expected {_CHECKPOINT_VERSION})"
        )
    return CampaignCheckpoint(**payload)


def _features(rows: np.ndarray) -> np.ndarray:
    """(size, np, freq) -> (log10 size, log2 np, freq)."""
    out = np.empty_like(rows, dtype=float)
    out[:, 0] = np.log10(rows[:, 0])
    out[:, 1] = np.log2(rows[:, 1])
    out[:, 2] = rows[:, 2]
    return out


@dataclass
class _BatchOutcome:
    """What one (possibly retried) batch submission produced."""

    accepted: dict[int, float]  # slot -> log10 runtime
    makespan: float
    core_seconds: float
    accounting: FailureAccounting


@dataclass
class _CampaignState:
    """Mutable in-memory campaign state (mirrors the checkpoint)."""

    seed_index: int
    next_round: int = 0
    measured_X: list = field(default_factory=list)
    measured_y: list = field(default_factory=list)
    fit_counts: list = field(default_factory=list)
    rounds: list = field(default_factory=list)
    total_makespan: float = 0.0
    total_core_seconds: float = 0.0
    accounting: FailureAccounting = field(default_factory=FailureAccounting)
    stop_reason: str = "completed"


def _generator_state(obj) -> dict | None:
    """Bit-generator state of ``obj.rng`` / ``obj`` when it is a Generator."""
    gen = getattr(obj, "rng", obj)
    if isinstance(gen, np.random.Generator):
        return gen.bit_generator.state
    return None


class OnlineCampaign:
    """Drives AL rounds through the cluster simulator.

    Parameters
    ----------
    config:
        Candidate space and batching parameters.
    executor:
        Scheduler executor supplying job behaviour (analytic model, real
        solves, or either wrapped in a
        :class:`~repro.cluster.faults.FaultyExecutor`).
    cluster:
        Hardware description; defaults to the Wisconsin testbed.
    strategy:
        Per-pick selection strategy used inside the batch construction.
    rng:
        Campaign randomness: a seed or a ``numpy.random.Generator``
        (``default_rng(rng)`` either way).  A Generator is adopted *as
        is*, so never hand the same Generator object to two campaigns
        that may run concurrently — interleaved draws make both runs
        irreproducible.  Replicate fleets should derive one generator
        per campaign from ``SeedSequence.spawn`` children, which is
        exactly what :func:`repro.al.replicates.run_replicates` does.
    retry_policy:
        Re-submission schedule for failed/rejected experiments; defaults
        to 3 attempts with exponential backoff.  ``RetryPolicy.none()``
        disables retries.
    quarantine_policy:
        Gate deciding which observations may enter the training set;
        defaults to rejecting FAILED/TIMEOUT states and verification
        failures.  ``QuarantinePolicy.permissive()`` restores blind
        ingestion.
    fast_refits:
        Keep the round model alive and fold each measured batch into its
        posterior with rank-1 Cholesky updates, running the full
        hyperparameter search only every ``refit_every`` rounds (and for
        the final returned model).  The kriging-believer batch construction
        always uses the fast believer chain.
    refit_every:
        Rounds between full hyperparameter refits when ``fast_refits``.
    guardrails:
        ``None`` (default) runs unguarded.  A
        :class:`~repro.al.guardrails.GuardrailConfig` (or ``True`` for the
        defaults) enables post-fit health checks with last-known-good
        rollback and escalating remediation, Page-Hinkley drift detection
        on prediction residuals, and the wall-clock/cost watchdog.
        Guarded campaigns checkpoint and resume *correctly* but not
        bit-identically: the drift detector and the rollback snapshot
        restart cold on resume.
    breaker:
        ``None`` (default) schedules on all nodes.  A
        :class:`~repro.cluster.breaker.NodeCircuitBreaker` (or a
        :class:`~repro.cluster.breaker.BreakerConfig`, or ``True`` for the
        defaults) is threaded through every scheduler wave on the
        campaign-global clock: nodes that keep failing jobs are opened,
        probed after a cooldown, and eventually blacklisted; jobs route
        around them.  The breaker state restarts cold on resume.
    registry:
        ``None`` (default) trains without serving.  A
        :class:`~repro.serve.registry.ModelRegistry` (or a path to one)
        turns the campaign into a *publisher*: every full refit that
        passes the health gate is pushed as a new registry version (hot
        rollover for any attached
        :class:`~repro.serve.service.PredictionService`), annotated with
        the gate's :class:`~repro.al.guardrails.HealthReport` and the
        campaign round.  Rollback rounds publish nothing — the served
        last-known-good is already in the registry.  The final model is
        published too (``extra={"final": True}``).
    """

    def __init__(
        self,
        config: CampaignConfig,
        executor: Executor,
        *,
        cluster: ClusterSpec | None = None,
        strategy: Strategy | None = None,
        model_factory: Callable[[], GaussianProcessRegressor] | None = None,
        rng=None,
        retry_policy: RetryPolicy | None = None,
        quarantine_policy: QuarantinePolicy | None = None,
        fast_refits: bool = False,
        refit_every: int = 1,
        guardrails: GuardrailConfig | bool | None = None,
        breaker: NodeCircuitBreaker | BreakerConfig | bool | None = None,
        registry=None,
    ):
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.config = config
        self.executor = executor
        self.cluster = cluster or wisconsin_cluster()
        self.strategy = strategy or VarianceReduction()
        self.model_factory = model_factory or default_model_factory(1e-2)
        self.rng = np.random.default_rng(rng)
        self.retry_policy = retry_policy or RetryPolicy()
        self.quarantine_policy = quarantine_policy or QuarantinePolicy()
        self.fast_refits = bool(fast_refits)
        self.refit_every = int(refit_every)

        if guardrails is True:
            guardrails = GuardrailConfig()
        self.guardrails: GuardrailConfig | None = guardrails or None
        if breaker is True:
            breaker = BreakerConfig()
        if isinstance(breaker, BreakerConfig):
            breaker = NodeCircuitBreaker(breaker, n_nodes=self.cluster.n_nodes)
        self.breaker: NodeCircuitBreaker | None = breaker or None

        if registry is not None and not hasattr(registry, "publish"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry

        guard = self.guardrails
        self._health = (
            ModelHealth(guard.health) if guard and guard.check_health else None
        )
        self._drift = (
            DriftDetector(guard.drift) if guard and guard.check_drift else None
        )
        self._lkg = LastKnownGood()
        self._tallies = GuardrailTallies()
        self._remediation_level = 0
        self._prev_lml_pp: float | None = None
        self._last_report = None  # HealthReport of the most recent gate check
        # Breaker counters already accounted for by a resumed checkpoint
        # (the live breaker restarts its own counters from zero).
        self._breaker_base = (0, 0, 0)

    # --------------------------------------------------------------- submission

    def _submit(
        self,
        rows: np.ndarray,
        *,
        model: GaussianProcessRegressor | None = None,
        clock0: float = 0.0,
    ) -> _BatchOutcome:
        """Run one batch through the scheduler, retrying rejected jobs.

        Every record is inspected by the quarantine policy before its
        runtime may become an observation; rejected jobs are re-submitted
        (in waves, with backoff charged to the makespan) while the retry
        policy allows.  ``model`` enables the z-score outlier gate.
        ``clock0`` is the campaign-global time at which this submission
        begins — each wave's fresh simulator starts its local clock at
        zero, so the shared circuit breaker needs the offset to keep
        cooldowns on one timeline.
        """
        rows = np.asarray(rows, dtype=float)
        with tm.span("submit", n_jobs=len(rows)) as sp:
            outcome = self._submit_impl(rows, model=model, clock0=clock0)
            sp.set(
                n_ok=len(outcome.accepted),
                makespan=outcome.makespan,
                core_seconds=outcome.core_seconds,
            )
        return outcome

    def _submit_impl(
        self,
        rows: np.ndarray,
        *,
        model: GaussianProcessRegressor | None,
        clock0: float = 0.0,
    ) -> _BatchOutcome:
        feats = _features(rows)
        acct = FailureAccounting()
        accepted: dict[int, float] = {}
        attempts = [0] * len(rows)
        pending = list(range(len(rows)))
        makespan = 0.0
        core_seconds = 0.0
        wave = 1
        while pending:
            specs = [
                JobSpec(
                    operator=self.config.operator,
                    problem_size=float(rows[slot, 0]),
                    np_ranks=int(rows[slot, 1]),
                    freq_ghz=float(rows[slot, 2]),
                    repeat_index=slot,
                )
                for slot in pending
            ]
            scheduler_seed = int(self.rng.integers(2**31))
            tm.event(
                "submit.wave",
                wave=wave,
                n_pending=len(pending),
                scheduler_seed=scheduler_seed,
            )
            tm.count("campaign.jobs.submitted", len(pending))
            sim = SlurmSimulator(
                self.cluster,
                self.executor,
                rng=scheduler_seed,
                time_limit_seconds=self.config.time_limit_seconds,
                breaker=self.breaker,
                breaker_clock_offset=clock0 + makespan,
            )
            records = sim.run_batch(specs)
            by_repeat = {r.repeat_index: r for r in records}
            missing = [slot for slot in pending if slot not in by_repeat]
            if missing:
                raise RuntimeError(
                    f"scheduler returned {len(records)} records for "
                    f"{len(specs)} submitted specs; no record for "
                    f"repeat_index values {missing}"
                )
            makespan += max(r.end_time for r in records)
            core_seconds += sum(r.cost_core_seconds for r in records)
            next_pending = []
            for slot in pending:
                record = by_repeat[slot]
                attempts[slot] += 1
                decision = self.quarantine_policy.inspect(
                    record, model=model, x=feats[slot]
                )
                if decision.ok:
                    accepted[slot] = float(np.log10(record.runtime_seconds))
                    continue
                if decision.reason == "state":
                    acct.n_failed += 1
                else:
                    acct.n_quarantined += 1
                acct.wasted_core_seconds += record.cost_core_seconds
                if self.retry_policy.should_retry(decision.reason, attempts[slot]):
                    next_pending.append(slot)
                    acct.n_retries += 1
            pending = next_pending
            if pending:
                tm.count("campaign.retry_waves")
                makespan += self.retry_policy.backoff(wave)
            wave += 1
        return _BatchOutcome(
            accepted=accepted,
            makespan=float(makespan),
            core_seconds=float(core_seconds),
            accounting=acct,
        )

    # ------------------------------------------------------------ model path

    def _fit_model(
        self, measured_X, measured_y, *, fallback: GaussianProcessRegressor | None = None
    ) -> GaussianProcessRegressor:
        """Fit a fresh model, escalating jitter on Cholesky failure.

        If every escalation fails and a previous round's fitted model is
        available, keep it (a stale posterior beats a dead campaign).
        """
        X = np.vstack(measured_X)
        y = np.asarray(measured_y, dtype=float)
        last_exc: Exception | None = None
        for jitter_scale in (1.0, 1e3, 1e6):
            model = self.model_factory()
            if self.guardrails is not None and self._remediation_level > 0:
                apply_remediation(model, self._remediation_level, self.guardrails)
                self._tallies.n_remediations += 1
            model.jitter *= jitter_scale
            if jitter_scale > 1.0:
                tm.count("campaign.fit.jitter_escalation")
            try:
                return model.fit(X, y)
            except np.linalg.LinAlgError as exc:
                tm.count("campaign.fit.cholesky_failure")
                last_exc = exc
        if fallback is not None and fallback.fitted:
            tm.count("campaign.fit.fallback_model")
            warnings.warn(
                "GP refit failed (Cholesky) even with escalated jitter; "
                "keeping the previous round's model",
                RuntimeWarning,
                stacklevel=2,
            )
            return fallback
        assert last_exc is not None
        raise last_exc

    def _advance_model(
        self,
        model: GaussianProcessRegressor | None,
        state: _CampaignState,
        round_index: int,
    ) -> GaussianProcessRegressor:
        """Refit (or rank-1-update, with ``fast_refits``) the round model."""
        if (
            self.fast_refits
            and model is not None
            and model.fitted
            and round_index % self.refit_every != 0
        ):
            # Fold rows measured since the last fit into the posterior
            # (rank-1 updates), hyperparameters held fixed this round.
            tm.count("campaign.fit.incremental")
            n_fitted = model.X_train_.shape[0]
            if n_fitted < len(state.measured_y):
                X = np.vstack(state.measured_X)
                y = np.asarray(state.measured_y, dtype=float)
                try:
                    model.update(X[n_fitted:], y[n_fitted:])
                except np.linalg.LinAlgError:
                    return self._fit_model(
                        state.measured_X, state.measured_y, fallback=model
                    )
            return model
        tm.count("campaign.fit.full")
        return self._fit_model(state.measured_X, state.measured_y, fallback=model)

    def _replay_model(self, state: _CampaignState) -> GaussianProcessRegressor | None:
        """Rebuild the in-round model of a resumed ``fast_refits`` campaign.

        Replays the exact fit/update sequence the original process
        performed (recorded in ``fit_counts``), so the resumed posterior is
        bit-identical.  Without ``fast_refits`` every round refits from
        scratch, so there is nothing to replay.
        """
        if not self.fast_refits or not state.measured_y:
            return None
        X = np.vstack(state.measured_X)
        y = np.asarray(state.measured_y, dtype=float)
        model: GaussianProcessRegressor | None = None
        for round_index, n_now in enumerate(state.fit_counts):
            if n_now == 0:
                continue
            if (
                model is not None
                and model.fitted
                and round_index % self.refit_every != 0
            ):
                n_fitted = model.X_train_.shape[0]
                if n_fitted < n_now:
                    try:
                        model.update(X[n_fitted:n_now], y[n_fitted:n_now])
                    except np.linalg.LinAlgError:
                        model = self._fit_model(
                            X[:n_now], y[:n_now], fallback=model
                        )
            else:
                model = self._fit_model(X[:n_now], y[:n_now], fallback=model)
        return model

    # ----------------------------------------------------------- guardrails

    @property
    def _guarded(self) -> bool:
        return self.guardrails is not None or self.breaker is not None

    def _sync_breaker_tallies(self) -> None:
        """Fold the live breaker's lifetime counters into the tallies.

        ``_breaker_base`` carries counts restored from a checkpoint (the
        breaker object itself restarts cold on resume).
        """
        if self.breaker is None:
            return
        base = self._breaker_base
        self._tallies.n_breaker_opens = base[0] + self.breaker.n_opened
        self._tallies.n_breaker_probes = base[1] + self.breaker.n_probes
        self._tallies.n_breaker_blacklisted = base[2] + self.breaker.n_blacklisted

    def _guardrail_state_payload(self, state: _CampaignState) -> dict | None:
        if not self._guarded:
            return None
        self._sync_breaker_tallies()
        return {
            "tallies": self._tallies.as_dict(),
            "remediation_level": self._remediation_level,
            "prev_lml_per_point": self._prev_lml_pp,
            "stop_reason": state.stop_reason,
        }

    # ------------------------------------------------------------ checkpointing

    def _checkpoint(self, state: _CampaignState, path) -> None:
        if path is None:
            return
        tie_rng = getattr(self.strategy, "_tie_rng", None)
        checkpoint = CampaignCheckpoint(
            version=_CHECKPOINT_VERSION,
            operator=self.config.operator,
            batch_size=self.config.batch_size,
            n_rounds=self.config.n_rounds,
            time_limit_seconds=self.config.time_limit_seconds,
            seed_index=state.seed_index,
            candidates=self.config.candidates.tolist(),
            next_round=state.next_round,
            measured_X=[np.asarray(x).tolist() for x in state.measured_X],
            measured_y=[float(v) for v in state.measured_y],
            fit_counts=list(state.fit_counts),
            rounds=list(state.rounds),
            simulated_seconds=state.total_makespan,
            cpu_core_seconds=state.total_core_seconds,
            n_failed=state.accounting.n_failed,
            n_retries=state.accounting.n_retries,
            n_quarantined=state.accounting.n_quarantined,
            wasted_core_seconds=state.accounting.wasted_core_seconds,
            rng_state=self.rng.bit_generator.state,
            executor_rng_state=_generator_state(self.executor),
            strategy_rng_state=(
                tie_rng().bit_generator.state if callable(tie_rng) else None
            ),
            guardrail_state=self._guardrail_state_payload(state),
        )
        save_checkpoint(checkpoint, path)

    # ----------------------------------------------------------------- running

    def run(
        self, *, seed_index: int = 0, checkpoint_path=None
    ) -> CampaignResult:
        """Execute the campaign: seed job, then ``n_rounds`` AL batches.

        With ``checkpoint_path`` the full campaign state is atomically
        re-written after the seed and after every round; a killed process
        can continue bit-identically via :meth:`resume`.
        """
        state = _CampaignState(seed_index=int(seed_index))
        cand_rows = self.config.candidates
        cand_X = _features(cand_rows)

        with tm.span(
            "campaign",
            mode="run",
            n_rounds=self.config.n_rounds,
            batch_size=self.config.batch_size,
            n_candidates=len(cand_rows),
            seed_index=state.seed_index,
        ):
            # Seed experiment (a total seed failure degrades gracefully: the
            # round loop re-submits the seed until an observation lands).
            try:
                outcome = self._submit(
                    cand_rows[[state.seed_index]], clock0=state.total_makespan
                )
            except AllNodesOpenError as exc:
                self._stop_cluster_unavailable(state, exc)
            else:
                if 0 in outcome.accepted:
                    state.measured_X.append(cand_X[state.seed_index])
                    state.measured_y.append(outcome.accepted[0])
                state.total_makespan += outcome.makespan
                state.total_core_seconds += outcome.core_seconds
                state.accounting.add(outcome.accounting)
            self._checkpoint(state, checkpoint_path)

            return self._continue(state, None, checkpoint_path)

    def resume(self, path, *, checkpoint_path="same") -> CampaignResult:
        """Continue a killed campaign from its checkpoint file.

        The campaign object must be constructed with the same
        configuration, executor, strategy and seed as the original; the
        checkpoint restores the measured data, accounting and RNG states,
        so the continuation is bit-identical to the uninterrupted run.
        ``checkpoint_path`` defaults to continuing to checkpoint into the
        same file; pass ``None`` to disable further checkpointing.
        """
        checkpoint = load_checkpoint(path)
        cfg = self.config
        mismatches = [
            name
            for name, have, want in (
                ("operator", cfg.operator, checkpoint.operator),
                ("batch_size", cfg.batch_size, checkpoint.batch_size),
                ("n_rounds", cfg.n_rounds, checkpoint.n_rounds),
                (
                    "time_limit_seconds",
                    cfg.time_limit_seconds,
                    checkpoint.time_limit_seconds,
                ),
            )
            if have != want
        ]
        cand = np.asarray(checkpoint.candidates, dtype=float)
        if cand.shape != cfg.candidates.shape or not np.allclose(
            cand, cfg.candidates
        ):
            mismatches.append("candidates")
        if mismatches:
            raise ValueError(
                f"checkpoint {path} does not match this campaign's config "
                f"(mismatched: {', '.join(mismatches)})"
            )

        self.rng.bit_generator.state = checkpoint.rng_state
        if checkpoint.executor_rng_state is not None:
            gen = getattr(self.executor, "rng", None)
            if isinstance(gen, np.random.Generator):
                gen.bit_generator.state = checkpoint.executor_rng_state
        if checkpoint.strategy_rng_state is not None and hasattr(
            self.strategy, "_tie_rng"
        ):
            tie = self.strategy._tie_rng()
            tie.bit_generator.state = checkpoint.strategy_rng_state

        state = _CampaignState(
            seed_index=checkpoint.seed_index,
            next_round=checkpoint.next_round,
            measured_X=[np.asarray(x, dtype=float) for x in checkpoint.measured_X],
            measured_y=[float(v) for v in checkpoint.measured_y],
            fit_counts=list(checkpoint.fit_counts),
            rounds=[dict(r) for r in checkpoint.rounds],
            total_makespan=float(checkpoint.simulated_seconds),
            total_core_seconds=float(checkpoint.cpu_core_seconds),
            accounting=FailureAccounting(
                n_failed=checkpoint.n_failed,
                n_retries=checkpoint.n_retries,
                n_quarantined=checkpoint.n_quarantined,
                wasted_core_seconds=checkpoint.wasted_core_seconds,
            ),
        )
        if checkpoint.guardrail_state:
            gs = checkpoint.guardrail_state
            self._tallies = GuardrailTallies.from_dict(gs.get("tallies"))
            self._remediation_level = int(gs.get("remediation_level", 0))
            prev = gs.get("prev_lml_per_point")
            self._prev_lml_pp = None if prev is None else float(prev)
            state.stop_reason = str(gs.get("stop_reason", "completed"))
            self._breaker_base = (
                self._tallies.n_breaker_opens,
                self._tallies.n_breaker_probes,
                self._tallies.n_breaker_blacklisted,
            )
        with tm.span(
            "campaign",
            mode="resume",
            n_rounds=self.config.n_rounds,
            batch_size=self.config.batch_size,
            next_round=state.next_round,
            seed_index=state.seed_index,
        ):
            model = self._replay_model(state)
            if checkpoint_path == "same":
                checkpoint_path = path
            return self._continue(state, model, checkpoint_path)

    def _stop_cluster_unavailable(
        self, state: _CampaignState, exc: AllNodesOpenError
    ) -> None:
        """End the campaign early: the breaker isolated the whole cluster."""
        warnings.warn(
            f"ending campaign early ({exc})", RuntimeWarning, stacklevel=3
        )
        state.stop_reason = "cluster_unavailable"
        tm.count("guardrail.cluster_unavailable")
        tm.event("guardrail.stop", reason="cluster_unavailable")

    def _watchdog_tripped(self, state: _CampaignState) -> bool:
        """True when a guardrail budget says no further round may start."""
        guard = self.guardrails
        if guard is None:
            return False
        over_wall = (
            guard.max_wall_seconds is not None
            and state.total_makespan >= guard.max_wall_seconds
        )
        over_cost = (
            guard.max_cost_core_seconds is not None
            and state.total_core_seconds >= guard.max_cost_core_seconds
        )
        if not (over_wall or over_cost):
            return False
        state.stop_reason = "watchdog"
        self._tallies.n_watchdog_stops += 1
        tm.count("guardrail.watchdog_stop")
        tm.event(
            "guardrail.stop",
            reason="watchdog",
            over_wall=over_wall,
            over_cost=over_cost,
            simulated_seconds=state.total_makespan,
            cpu_core_seconds=state.total_core_seconds,
        )
        return True

    def _health_gate(
        self,
        model: GaussianProcessRegressor,
        state: _CampaignState,
        round_index: int,
    ) -> GaussianProcessRegressor:
        """Check a freshly (re)fitted model; roll back when unhealthy.

        A healthy fit becomes the new last-known-good snapshot and resets
        the remediation escalation.  An unhealthy one is replaced by the
        snapshot re-materialized on the current training set, and the next
        full refit runs remediated (more restarts, then a raised noise
        floor).  After ``max_rollbacks`` consecutive rejections the latest
        fit is accepted anyway — the workload may genuinely have changed.
        """
        assert self._health is not None
        report = self._health.check(model, prev_lml_per_point=self._prev_lml_pp)
        self._last_report = report
        guard = self.guardrails
        if report.healthy:
            self._lkg.remember(model)
            if report.n_train >= self._health.config.min_points:
                # Tiny-fit LML is not a comparable baseline (see
                # HealthConfig.min_points).
                self._prev_lml_pp = report.lml_per_point
            self._remediation_level = 0
            return model
        self._tallies.n_unhealthy_fits += 1
        if (
            self._lkg.available
            and self._remediation_level < guard.max_rollbacks
        ):
            X = np.vstack(state.measured_X)
            y = np.asarray(state.measured_y, dtype=float)
            try:
                rolled_back = self._lkg.restore(X, y)
            except np.linalg.LinAlgError:
                pass  # snapshot no longer extendable; keep the fresh fit
            else:
                self._tallies.n_rollbacks += 1
                self._remediation_level += 1
                tm.count("guardrail.rollback")
                tm.event(
                    "guardrail.rollback",
                    round=round_index,
                    issues=list(report.issues),
                    remediation_level=self._remediation_level,
                )
                return rolled_back
        # Out of rollbacks (or nothing to roll back to): accept the fit.
        self._lkg.remember(model)
        self._prev_lml_pp = report.lml_per_point
        self._remediation_level = 0
        return model

    def _publish(
        self,
        model: GaussianProcessRegressor,
        *,
        health,
        round_index: int | None,
        final: bool = False,
    ) -> None:
        """Push a gated model to the registry (no-op without one)."""
        if self.registry is None or not model.fitted:
            return
        extra = {"strategy": self.strategy.name, "final": final}
        if round_index is not None:
            extra["round"] = round_index
        self.registry.publish(model, health=health, extra=extra)

    def _handle_drift(
        self, state: _CampaignState, round_index: int
    ) -> GaussianProcessRegressor | None:
        """A drift alarm fired: discard the stale regime, start fresh.

        Under ``drift_action="trim"`` the oldest ``trim_fraction`` of the
        training rows (the pre-drift regime) is dropped; under ``"refit"``
        the data stays but the next round refits hyperparameters from
        scratch.  Either way the rollback snapshot, the reference LML and
        the detector reset (the old regime is no longer a valid baseline)
        and ``fit_counts`` is zeroed so a resume also starts with a fresh
        fit.  Returns the model to carry forward (always ``None``).
        """
        guard = self.guardrails
        self._tallies.n_drift_events += 1
        n_trimmed = 0
        if guard.drift_action == "trim":
            n = len(state.measured_y)
            n_trimmed = min(int(n * guard.trim_fraction), max(n - 2, 0))
            if n_trimmed > 0:
                state.measured_X = state.measured_X[n_trimmed:]
                state.measured_y = state.measured_y[n_trimmed:]
                self._tallies.n_trimmed_points += n_trimmed
        state.fit_counts = [0] * len(state.fit_counts)
        self._lkg.reset()
        self._prev_lml_pp = None
        self._remediation_level = 0
        if self._drift is not None:
            self._drift.reset()
        tm.count("guardrail.drift")
        tm.event(
            "guardrail.drift",
            round=round_index,
            action=guard.drift_action,
            n_trimmed=n_trimmed,
            n_kept=len(state.measured_y),
        )
        return None

    def _continue(
        self,
        state: _CampaignState,
        model: GaussianProcessRegressor | None,
        checkpoint_path,
    ) -> CampaignResult:
        """Run AL rounds from ``state.next_round`` to the end."""
        cand_rows = self.config.candidates
        cand_X = _features(cand_rows)

        for round_index in range(state.next_round, self.config.n_rounds):
            if state.stop_reason != "completed":
                break
            if self._watchdog_tripped(state):
                break
            with tm.span("round", round=round_index) as round_sp:
                drift_z: list[float] = []
                if not state.measured_y:
                    # No usable observation yet (the seed experiment keeps
                    # failing): spend this round re-measuring the seed instead
                    # of selecting on an unfittable model.
                    try:
                        outcome = self._submit(
                            cand_rows[[state.seed_index]],
                            clock0=state.total_makespan,
                        )
                    except AllNodesOpenError as exc:
                        self._stop_cluster_unavailable(state, exc)
                        break
                    if 0 in outcome.accepted:
                        state.measured_X.append(cand_X[state.seed_index])
                        state.measured_y.append(outcome.accepted[0])
                    state.fit_counts.append(0)
                    n_ok = len(outcome.accepted)
                    max_sd = float("nan")
                    k = 1
                else:
                    full_fit = (
                        not self.fast_refits
                        or model is None
                        or not model.fitted
                        or round_index % self.refit_every == 0
                    )
                    fresh = self._advance_model(model, state, round_index)
                    model = fresh
                    publish_health = None
                    if self._health is not None and full_fit:
                        model = self._health_gate(fresh, state, round_index)
                        publish_health = self._last_report
                    if full_fit and model is fresh:
                        # Healthy (or force-accepted) full refit: make it the
                        # served version.  Rollback rounds publish nothing —
                        # the last-known-good already is the served version.
                        self._publish(
                            model, health=publish_health, round_index=round_index
                        )
                    state.fit_counts.append(len(state.measured_y))
                    pool = CandidatePool(
                        cand_X, np.zeros(len(cand_X)), np.zeros(len(cand_X))
                    )
                    k = min(self.config.batch_size, pool.n_available)
                    picks = select_batch(model, pool, self.strategy, k)
                    mu, sd = model.predict(cand_X[picks], return_std=True)
                    try:
                        outcome = self._submit(
                            cand_rows[picks],
                            model=model,
                            clock0=state.total_makespan,
                        )
                    except AllNodesOpenError as exc:
                        self._stop_cluster_unavailable(state, exc)
                        break
                    sd_total = np.sqrt(sd**2 + model.noise_variance_)
                    for slot in sorted(outcome.accepted):
                        y_obs = outcome.accepted[slot]
                        state.measured_X.append(cand_X[picks[slot]])
                        state.measured_y.append(y_obs)
                        if self._drift is not None:
                            drift_z.append(
                                (y_obs - float(mu[slot]))
                                / max(float(sd_total[slot]), 1e-12)
                            )
                    n_ok = len(outcome.accepted)
                    max_sd = float(sd.max())
                state.total_makespan += outcome.makespan
                state.total_core_seconds += outcome.core_seconds
                state.accounting.add(outcome.accounting)
                if (
                    self._drift is not None
                    and drift_z
                    and self._drift.update_many(drift_z)
                ):
                    model = self._handle_drift(state, round_index)
                state.rounds.append(
                    {
                        "n_jobs": k,
                        "n_ok": n_ok,
                        "makespan": outcome.makespan,
                        "max_sd": max_sd,
                    }
                )
                state.next_round = round_index + 1
                self._checkpoint(state, checkpoint_path)
                if tm.enabled():
                    tm.count("campaign.rounds")
                    tm.gauge_set("campaign.n_measured", len(state.measured_y))
                    round_sp.set(
                        n_jobs=k,
                        n_ok=n_ok,
                        makespan=outcome.makespan,
                        max_sd=max_sd,
                    )

        if state.stop_reason != "completed":
            # Persist the stop reason so a resume doesn't replay the stop.
            self._checkpoint(state, checkpoint_path)
        if state.measured_y:
            final_model = self._fit_model(
                state.measured_X, state.measured_y, fallback=model
            )
            final_health = None
            if self._health is not None and final_model.fitted:
                final_health = self._health.check(
                    final_model, prev_lml_per_point=self._prev_lml_pp
                )
            self._publish(
                final_model, health=final_health, round_index=None, final=True
            )
            X = np.vstack(state.measured_X)
        else:
            warnings.warn(
                "campaign produced no usable observations; returning an "
                "unfitted model",
                RuntimeWarning,
                stacklevel=2,
            )
            final_model = self.model_factory()
            X = np.empty((0, cand_rows.shape[1]))
        acct = state.accounting
        tallies: GuardrailTallies | None = None
        if self._guarded:
            self._sync_breaker_tallies()
            tallies = self._tallies
            acct.n_rollbacks = tallies.n_rollbacks
            acct.n_drift_events = tallies.n_drift_events
            acct.n_breaker_opens = tallies.n_breaker_opens
            acct.n_watchdog_stops = tallies.n_watchdog_stops
        return CampaignResult(
            X=X,
            y=np.asarray(state.measured_y, dtype=float),
            simulated_seconds=state.total_makespan,
            cpu_core_seconds=state.total_core_seconds,
            model=final_model,
            rounds=state.rounds,
            n_failed=acct.n_failed,
            n_retries=acct.n_retries,
            n_quarantined=acct.n_quarantined,
            wasted_core_seconds=acct.wasted_core_seconds,
            stop_reason=state.stop_reason,
            guardrails=tallies,
        )
