"""The active-learning loop: fit GPR, select, query, update.

One :class:`ActiveLearner` realizes the paper's prototype on one dataset
partition: seeded with the Initial set, it repeatedly fits the GPR, records
the convergence metrics, asks the strategy for the next experiment from the
Active pool, and adds the measured outcome to the training set.  The full
history comes back as an :class:`ALTrace` — the raw material of Figs. 6-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import telemetry as tm
from ..gp.gpr import GaussianProcessRegressor
from ..gp.solvers import resolve_solver
from .metrics import evaluate_model
from .partition import Partition
from .pool import CandidatePool
from .strategies import Strategy

__all__ = ["IterationRecord", "ALTrace", "ActiveLearner", "default_model_factory"]


class _DefaultModelFactory:
    """Zero-argument factory for the paper's robust GPR settings.

    A class rather than a closure so factories pickle — process-backend
    :func:`repro.al.runner.run_batch` ships the factory to pool workers.
    """

    __slots__ = ("noise_floor", "upper", "solver")

    def __init__(self, noise_floor: float, upper: float, solver="exact"):
        self.noise_floor = noise_floor
        self.upper = upper
        self.solver = solver

    def __call__(self) -> GaussianProcessRegressor:
        return GaussianProcessRegressor(
            noise_variance=max(1e-2, self.noise_floor),
            noise_variance_bounds=(self.noise_floor, self.upper),
            n_restarts=2,
            rng=0,
            solver=self.solver,
        )


def default_model_factory(
    noise_floor: float = 1e-1, solver="exact"
) -> Callable[[], GaussianProcessRegressor]:
    """Model factory with the paper's robust settings.

    ``noise_floor`` is the lower bound on the GPR noise variance — the
    paper's fix for early-iteration overfitting (Fig. 7b uses ``1e-1``).
    The upper bound widens with the floor (``max(1e3, 10 * noise_floor)``)
    so a large floor can never produce an inverted bounds interval.
    ``solver`` selects the GP solver backend (``"exact"``, ``"nystrom"``,
    ``"rff"``, ``"auto"``, or a :class:`repro.gp.SolverConfig` / dict) and
    is passed through to every model the factory builds.  The returned
    factory is picklable, so it works with every
    :class:`repro.parallel.ParallelMap` backend.
    """
    if not np.isfinite(noise_floor) or noise_floor <= 0:
        raise ValueError(
            f"noise_floor must be positive and finite, got {noise_floor}"
        )
    resolve_solver(solver)  # fail fast on typos, before workers spawn
    upper = max(1e3, 10.0 * noise_floor)
    return _DefaultModelFactory(noise_floor, upper, solver)


@dataclass(frozen=True)
class IterationRecord:
    """Metrics and bookkeeping of one AL iteration.

    ``iteration`` counts from 0 (the seed fit, before any selection).  The
    selection fields are the experiment chosen *at* this iteration;
    ``cumulative_cost`` includes it.
    """

    iteration: int
    n_train: int
    selected_pool_index: int
    x_selected: np.ndarray
    y_selected: float
    sd_at_selected: float
    cost: float
    cumulative_cost: float
    rmse: float
    amsd: float
    gmsd: float
    nlpd: float
    noise_variance: float
    lml: float
    #: Number of pool records consumed for this iteration's training row:
    #: 1 on the classic path, the repeat count under ``fuse_repeats`` (the
    #: co-located measurements are fused into one row; ``cost`` sums them
    #: and ``y_selected`` is the precision-weighted mean).
    n_fused: int = 1


@dataclass
class ALTrace:
    """Complete history of one AL run on one partition."""

    strategy: str
    records: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def series(self, attribute: str) -> np.ndarray:
        """One attribute across iterations as an array."""
        return np.asarray([getattr(r, attribute) for r in self.records], dtype=float)

    @property
    def selected_points(self) -> np.ndarray:
        """Sequence of selected inputs, shape ``(n_iterations, d)``."""
        return np.asarray([r.x_selected for r in self.records])

    @property
    def final(self) -> IterationRecord:
        """The last recorded iteration."""
        if not self.records:
            raise ValueError("trace is empty")
        return self.records[-1]


class ActiveLearner:
    """Pool-based active learning with GPR on one dataset partition.

    Parameters
    ----------
    X, y:
        Full dataset (already log-transformed as desired).
    costs:
        Per-record experiment cost; the paper uses runtime x cores.
    partition:
        Initial/Active/Test index split.
    strategy:
        Selection strategy (see :mod:`repro.al.strategies`).
    model_factory:
        Zero-argument callable producing a fresh regressor per refit.
    noise_floor_schedule:
        Optional ``iteration -> noise variance floor`` callable implementing
        the paper's proposed dynamic limit (e.g.
        :func:`repro.al.stopping.dynamic_noise_floor`); overrides the
        factory's static bounds each refit iteration.  Requires numeric
        (scaled) ``noise_variance_bounds`` on the factory's models;
        combining it with ``"fixed"`` bounds raises a ``ValueError`` at the
        first refit (see the mirrored note on ``dynamic_noise_floor``).
    fast_refits:
        Keep the fitted model alive across iterations and fold newly
        queried points into its posterior with O(n^2) rank-1 Cholesky
        updates (:meth:`repro.gp.GaussianProcessRegressor.update`) on
        iterations where no hyperparameter refit is scheduled.  With the
        default ``refit_every=1`` every iteration still performs the full
        multi-restart hyperparameter search, so results are identical to
        the paper-faithful slow path; raise ``refit_every`` to amortize it.
    refit_every:
        Run the expensive multi-restart hyperparameter optimization every
        ``k`` iterations (iterations 0, k, 2k, ...); in between, the
        hyperparameters are held fixed and the posterior is extended
        incrementally.  Only meaningful with ``fast_refits=True``.
    warm_start:
        Start each scheduled hyperparameter refit from the previous
        optimum instead of the factory template (the random restarts still
        sample the full bounds box).  Only meaningful with
        ``fast_refits=True``.
    fuse_repeats:
        Consume *every* available repeat of the selected configuration in
        one iteration (``CandidatePool.consume_repeats``) and fuse the
        co-located measurements by inverse variance into a single training
        row with a per-point noise variance
        (``GaussianProcessRegressor.fit(alpha=...)``): a row fused from
        ``k`` repeats carries ``repeat_noise_variance / k``.  The
        iteration's ``cost`` is the summed cost of all consumed records —
        the experiments all ran — and ``y_selected`` is the fused mean.
        Incompatible with ``noise_floor_schedule``: the schedule floors the
        *shared* scalar noise, which would swamp the fused per-point
        precisions the whole mechanism exists to express (``ValueError``).
    repeat_noise_variance:
        Assumed measurement variance of one pool record (original response
        units) under ``fuse_repeats``.  The GP still learns its scalar
        residual noise on top, so this only has to capture the
        *per-measurement* scatter that averages away across repeats.
    guardrails:
        Optional :class:`repro.al.guardrails.GuardrailConfig` (or ``True``
        for the defaults).  Every full refit is then health-checked
        (condition number, pinned hyperparameters, per-point LML
        regression, LOOCV outlier rate); an unhealthy fit is rolled back
        to the last healthy model — re-materialized on the current
        training set — and the next refit runs with escalating remediation
        (:func:`repro.al.guardrails.apply_remediation`).  ``n_rollbacks``
        counts the interventions.
    registry:
        Optional :class:`~repro.serve.registry.ModelRegistry` (or a path
        to one).  Every full refit that survives the health gate is then
        published as a new registry version (annotated with the gate's
        report and the iteration number), so a
        :class:`~repro.serve.service.PredictionService` can hot-roll over
        to it while the learner keeps iterating.  Rollback iterations
        publish nothing — the served last-known-good is already in the
        registry.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        costs: np.ndarray,
        partition: Partition,
        strategy: Strategy,
        *,
        model_factory: Callable[[], GaussianProcessRegressor] | None = None,
        noise_floor_schedule: Callable[[int], float] | None = None,
        fast_refits: bool = False,
        refit_every: int = 1,
        warm_start: bool = False,
        fuse_repeats: bool = False,
        repeat_noise_variance: float = 1e-2,
        guardrails=None,
        registry=None,
    ):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        costs = np.asarray(costs, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],) or costs.shape != y.shape:
            raise ValueError("X, y, costs must be consistent (n, d)/(n,)/(n,)")
        if partition.n_total != X.shape[0]:
            raise ValueError(
                f"partition covers {partition.n_total} records, dataset has {X.shape[0]}"
            )
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if fuse_repeats and noise_floor_schedule is not None:
            raise ValueError(
                "fuse_repeats cannot be combined with noise_floor_schedule: "
                "the schedule raises the floor of the shared scalar noise, "
                "which would swamp the fused per-point precisions (a row "
                "fused from k repeats carries repeat_noise_variance/k); "
                "drop the schedule or fuse manually"
            )
        if fuse_repeats and (
            not np.isfinite(repeat_noise_variance) or repeat_noise_variance <= 0
        ):
            raise ValueError(
                f"repeat_noise_variance must be positive and finite, got "
                f"{repeat_noise_variance}"
            )
        self.strategy = strategy
        self.model_factory = model_factory or default_model_factory()
        self.noise_floor_schedule = noise_floor_schedule
        self.fast_refits = bool(fast_refits)
        self.refit_every = int(refit_every)
        self.warm_start = bool(warm_start)
        self.fuse_repeats = bool(fuse_repeats)
        self.repeat_noise_variance = float(repeat_noise_variance)

        # Guardrails (imported lazily: guardrails.py imports from gp only).
        from .guardrails import GuardrailConfig, LastKnownGood, ModelHealth

        if guardrails is True:
            guardrails = GuardrailConfig()
        self.guardrails = guardrails or None
        self._health = (
            ModelHealth(self.guardrails.health)
            if self.guardrails is not None and self.guardrails.check_health
            else None
        )
        self._lkg = LastKnownGood()
        self._prev_lml_pp: float | None = None
        self._remediation_level = 0
        self.n_rollbacks = 0
        self._last_report = None  # HealthReport of the most recent gate check

        if registry is not None and not hasattr(registry, "publish"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry

        self._X_train = X[partition.initial].copy()
        self._y_train = y[partition.initial].copy()
        # Per-row noise variances (original units) when fusing repeats:
        # each seed row is a single measurement.
        self._alpha_train: np.ndarray | None = (
            np.full(self._X_train.shape[0], self.repeat_noise_variance)
            if self.fuse_repeats
            else None
        )
        # Inputs whose experiment costs are known (seed partition plus
        # every consumed record) — the training set of the strategy's cost
        # model, refreshed on the primary model's full-refit cadence.
        self._X_cost = X[partition.initial].copy()
        self._costs_known = costs[partition.initial].copy()
        self.pool = CandidatePool(
            X[partition.active], y[partition.active], costs[partition.active]
        )
        self._X_active_full = X[partition.active]
        self._X_test = X[partition.test]
        self._y_test = y[partition.test]
        self._cumulative_cost = 0.0
        self.model: GaussianProcessRegressor | None = None
        self.trace = ALTrace(strategy=strategy.name)

    # ------------------------------------------------------------------- state

    @property
    def n_train(self) -> int:
        """Current training-set size (seed + queried experiments)."""
        return self._X_train.shape[0]

    @property
    def cumulative_cost(self) -> float:
        """Total cost of all experiments queried so far."""
        return self._cumulative_cost

    def _fit_model(self, iteration: int) -> GaussianProcessRegressor:
        if (
            self.fast_refits
            and self.model is not None
            and self.model.fitted
            and iteration % self.refit_every != 0
        ):
            # Off-schedule iteration: extend the posterior with the rows
            # queried since the last (re)fit, hyperparameters held fixed.
            tm.count("al.fit.incremental")
            n_fitted = self.model.X_train_.shape[0]
            if n_fitted < self.n_train:
                self.model.update(
                    self._X_train[n_fitted:],
                    self._y_train[n_fitted:],
                    alpha=(
                        self._alpha_train[n_fitted:]
                        if self._alpha_train is not None
                        else None
                    ),
                )
            return self.model

        tm.count("al.fit.full")
        warm = self.fast_refits and self.warm_start and self.model is not None
        model = self.model if warm else self.model_factory()
        if not warm and self.guardrails is not None and self._remediation_level > 0:
            from .guardrails import apply_remediation

            apply_remediation(model, self._remediation_level, self.guardrails)
        if self.noise_floor_schedule is not None:
            floor = float(self.noise_floor_schedule(iteration))
            if floor <= 0:
                raise ValueError("noise floor schedule must return positive values")
            bounds = model.noise_variance_bounds
            if isinstance(bounds, str):
                # bounds == "fixed": silently replacing it with (floor, high)
                # would un-fix the noise variance behind the caller's back.
                raise ValueError(
                    "noise_floor_schedule cannot be combined with "
                    "noise_variance_bounds='fixed': the schedule would "
                    "replace the fixed bound and re-enable noise "
                    "optimization; use numeric bounds or drop the schedule"
                )
            model.noise_variance_bounds = (floor, max(bounds[1], floor * 10))
            model.noise_variance = max(model.noise_variance, floor)
        model.fit(
            self._X_train, self._y_train, alpha=self._alpha_train, warm_start=warm
        )
        # Refresh the strategy's cost model on the same cadence as the
        # primary refit: historically nothing refitted it and its
        # predictions went stale as the pool drained.
        if getattr(self.strategy, "auto_refit", False) and hasattr(
            self.strategy, "refit_cost_model"
        ):
            self.strategy.refit_cost_model(self._X_cost, self._costs_known)
            tm.count("al.cost_model.refit")
        fresh = model
        if self._health is not None:
            model = self._health_gate(fresh, iteration)
        if self.registry is not None and model is fresh:
            # Healthy (or ungated) full refit: make it the served version.
            # Rollback iterations publish nothing — the last-known-good
            # already is the served version.
            self.registry.publish(
                model,
                health=self._last_report,
                extra={"strategy": self.strategy.name, "iteration": iteration},
            )
        return model

    def _health_gate(
        self, model: GaussianProcessRegressor, iteration: int
    ) -> GaussianProcessRegressor:
        """Accept a healthy fit as last-known-good; roll an unhealthy one back."""
        report = self._health.check(model, prev_lml_per_point=self._prev_lml_pp)
        self._last_report = report
        if (
            report.healthy
            or not self._lkg.available
            or self._remediation_level >= self.guardrails.max_rollbacks
        ):
            self._lkg.remember(model)
            if report.n_train >= self._health.config.min_points:
                self._prev_lml_pp = report.lml_per_point
            self._remediation_level = 0
            return model
        self.n_rollbacks += 1
        self._remediation_level += 1
        tm.count("guardrail.rollback")
        tm.event(
            "guardrail.rollback",
            iteration=iteration,
            issues=list(report.issues),
            remediation_level=self._remediation_level,
        )
        return self._lkg.restore(self._X_train, self._y_train, self._alpha_train)

    # -------------------------------------------------------------------- loop

    def step(self) -> IterationRecord:
        """One AL iteration: fit, evaluate, select, query.

        Raises
        ------
        ValueError
            If the pool is exhausted.
        """
        if self.pool.exhausted:
            raise ValueError("candidate pool is exhausted")
        iteration = len(self.trace.records)
        with tm.span("iteration", index=iteration, n_train=self.n_train) as sp:
            model = self._fit_model(iteration)
            self.model = model
            metrics = evaluate_model(
                model, self._X_active_full, self._X_test, self._y_test
            )

            idx = self.strategy.select(model, self.pool)
            # Strategies that score with pool SDs expose the SD at the chosen
            # record; only strategies that don't (random, EMCM) cost an extra
            # single-point prediction here.
            sd_sel = self.strategy.last_selected_sd
            if sd_sel is None:
                x_sel = self.pool.X[idx]
                _, sd_arr = model.predict(x_sel[np.newaxis, :], return_std=True)
                sd_sel = float(sd_arr[0])
            if self.fuse_repeats:
                consumed = self.pool.consume_repeats(idx)
                x = consumed[0][0]
                ys = np.asarray([y_i for _, y_i, _ in consumed])
                cost = float(sum(c_i for _, _, c_i in consumed))
                # Equal per-record variances: the precision-weighted mean is
                # the arithmetic mean and the fused variance divides by k.
                k = len(consumed)
                y_meas = float(np.mean(ys))
                fused_var = self.repeat_noise_variance / k
                self._alpha_train = np.append(self._alpha_train, fused_var)
                tm.count("al.fuse.records", k)
            else:
                x, y_meas, cost = self.pool.consume(idx)
                consumed = [(x, y_meas, cost)]
            self._X_train = np.vstack([self._X_train, x])
            self._y_train = np.append(self._y_train, y_meas)
            self._cumulative_cost += cost
            for x_i, _, c_i in consumed:
                self._X_cost = np.vstack([self._X_cost, x_i])
                self._costs_known = np.append(self._costs_known, c_i)

            record = IterationRecord(
                iteration=iteration,
                n_train=self.n_train - 1,  # size used for this fit
                selected_pool_index=idx,
                x_selected=x.copy(),
                y_selected=y_meas,
                sd_at_selected=float(sd_sel),
                cost=cost,
                cumulative_cost=self._cumulative_cost,
                rmse=metrics["rmse"],
                amsd=metrics["amsd"],
                gmsd=metrics["gmsd"],
                nlpd=metrics["nlpd"],
                noise_variance=model.noise_variance_,
                lml=model.lml_,
                n_fused=len(consumed),
            )
            self.trace.records.append(record)
            if tm.enabled():
                tm.gauge_set("al.pool_size", self.pool.n_available)
                tm.event(
                    "al.iteration",
                    iteration=iteration,
                    n_train=record.n_train,
                    rmse=record.rmse,
                    amsd=record.amsd,
                    gmsd=record.gmsd,
                    nlpd=record.nlpd,
                    sd_at_selected=record.sd_at_selected,
                    noise_variance=record.noise_variance,
                    lml=record.lml,
                    cumulative_cost=record.cumulative_cost,
                )
                sp.set(rmse=record.rmse, amsd=record.amsd)
        return record

    def run(self, n_iterations: int | None = None) -> ALTrace:
        """Run AL for ``n_iterations`` (default: until the pool is empty)."""
        if n_iterations is None:
            n_iterations = self.pool.n_available
        if n_iterations < 0:
            raise ValueError("n_iterations must be >= 0")
        n_iterations = min(n_iterations, self.pool.n_available)
        for _ in range(n_iterations):
            if self.pool.exhausted:
                # fuse_repeats consumes several records per step, so the
                # pool can drain before the clamped iteration count runs out.
                break
            self.step()
        return self.trace
