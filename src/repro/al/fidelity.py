"""Multi-fidelity active learning with precision-weighted fusion.

The paper's Cost Efficiency strategy (Section V-B) trades predicted
uncertainty against predicted cost, but always queries at a single
fidelity.  This module adds the cheap-noisy vs expensive-accurate axis
("Active Learning with Weak Supervision for Gaussian Processes" formalizes
the choice): an oracle exposes the *same* configuration space at two or
more :class:`FidelityTier`\\ s — e.g. a short-repeat noisy probe at 10% of
the cost of a full HPGMG run — and the acquisition chooses *fidelity as
well as location* by expected uncertainty reduction per unit cost.

Repeated observations at the same input (across any mix of tiers) are
fused by inverse variance before fitting:

    precision = sum_i 1 / s_i^2
    y_fused   = (sum_i y_i / s_i^2) / precision
    s_fused^2 = 1 / precision

and each fused location becomes one heteroscedastic training row with
per-point noise ``alpha = s_fused^2``
(:meth:`repro.gp.GaussianProcessRegressor.fit`).

The acquisition scores a query of tier ``t`` (noise ``s_t^2``, cost
``c * m_t``) at candidate ``x`` with latent variance ``sigma^2(x)`` by the
exact one-step posterior-variance reduction of a Gaussian observation,

    gain(x, t) = sigma^4(x) / (sigma^2(x) + s_t^2),

divided by the tier-scaled cost — a direct extension of
:class:`repro.al.strategies.CostEfficiency` to (location, fidelity) pairs.

:class:`MultiFidelityLearner` speaks the campaign protocol of
:func:`repro.al.replicates.run_replicates` (``run(checkpoint_path=)`` /
``resume(path)``, result fields), checkpoints its fusion state after every
round, and resumes bit-identically.  See ``docs/MULTIFIDELITY.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry as tm
from ..gp.gpr import GaussianProcessRegressor
from .learner import default_model_factory
from .metrics import evaluate_model
from .session import read_json_checked, write_json_atomic

__all__ = [
    "FidelityTier",
    "FidelityObservation",
    "MultiFidelityOracle",
    "FusionState",
    "MultiFidelityCostEfficiency",
    "FidelityRecord",
    "MultiFidelityResult",
    "MultiFidelityLearner",
    "tiers_from_spec",
]

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class FidelityTier:
    """One way of measuring the target function.

    Attributes
    ----------
    name:
        Human-readable tier label (``"probe"``, ``"full"``).
    cost_multiplier:
        Fraction of the reference experiment cost charged per query at
        this tier (1.0 = the full run the dataset costs describe).
    noise_variance:
        Observation noise variance of one query at this tier, in response
        units (log10 runtime for the paper's datasets).  Must be positive:
        the precision-weighted fusion divides by it.
    """

    name: str
    cost_multiplier: float
    noise_variance: float

    def __post_init__(self):
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if not np.isfinite(self.cost_multiplier) or self.cost_multiplier <= 0:
            raise ValueError(
                f"tier {self.name!r}: cost_multiplier must be positive, "
                f"got {self.cost_multiplier}"
            )
        if not np.isfinite(self.noise_variance) or self.noise_variance <= 0:
            raise ValueError(
                f"tier {self.name!r}: noise_variance must be positive "
                f"(precision fusion divides by it), got {self.noise_variance}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cost_multiplier": float(self.cost_multiplier),
            "noise_variance": float(self.noise_variance),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FidelityTier":
        return cls(
            name=payload["name"],
            cost_multiplier=float(payload["cost_multiplier"]),
            noise_variance=float(payload["noise_variance"]),
        )


def tiers_from_spec(spec: str) -> tuple[FidelityTier, ...]:
    """Parse a CLI tier spec: ``name:cost_mult:noise_sd[,name:...]``.

    The third field is the noise *standard deviation* in response units
    (easier to eyeball than a variance); e.g.
    ``"probe:0.1:0.15,full:1.0:0.02"`` describes a 10%-cost probe with
    sigma 0.15 and the full run with sigma 0.02.
    """
    tiers = []
    for part in spec.split(","):
        fields = part.strip().split(":")
        if len(fields) != 3:
            raise ValueError(
                f"bad tier spec {part!r}: expected name:cost_mult:noise_sd"
            )
        name, mult, sd = fields
        tiers.append(
            FidelityTier(
                name=name.strip(),
                cost_multiplier=float(mult),
                noise_variance=float(sd) ** 2,
            )
        )
    if len({t.name for t in tiers}) != len(tiers):
        raise ValueError(f"duplicate tier names in spec {spec!r}")
    return tuple(tiers)


@dataclass(frozen=True)
class FidelityObservation:
    """One measurement returned by :meth:`MultiFidelityOracle.query`."""

    x: np.ndarray
    y: float
    cost: float
    tier: str
    noise_variance: float


class MultiFidelityOracle:
    """Wrap a single-fidelity target behind ≥ 1 fidelity tiers.

    Parameters
    ----------
    reference:
        The underlying experiment: either a callable ``x -> y`` returning
        the reference (full-fidelity) response, or an object with a
        ``query(x) -> Observation`` method (e.g.
        :class:`repro.al.oracle.OnlineHPGMGOracle`), whose observation
        supplies both response and reference cost.
    tiers:
        The available :class:`FidelityTier` s.  Tier queries add
        independent Gaussian noise of the tier's variance to the reference
        response and charge ``reference cost x cost_multiplier``.
    cost_fn:
        Reference cost of one full experiment at ``x`` (callable
        ``x -> float``); only used with a callable ``reference`` (defaults
        to 1.0 per query).  Ignored when ``reference`` has ``query`` —
        its observation already carries the cost.
    rng:
        Seed or generator for the tier noise draws.  Its state is exposed
        via :attr:`rng_state` so campaigns can checkpoint mid-stream.
    """

    def __init__(self, reference, tiers, *, cost_fn=None, rng=None):
        tiers = tuple(tiers)
        if not tiers:
            raise ValueError("need at least one fidelity tier")
        if len({t.name for t in tiers}) != len(tiers):
            raise ValueError("tier names must be unique")
        self.reference = reference
        self.tiers = tiers
        self.cost_fn = cost_fn
        self.rng = np.random.default_rng(rng)

    @property
    def rng_state(self) -> dict:
        """JSON-safe noise-stream state (for checkpointing)."""
        return self.rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state

    def tier(self, key) -> FidelityTier:
        """Resolve a tier by index or name."""
        if isinstance(key, FidelityTier):
            return key
        if isinstance(key, str):
            for t in self.tiers:
                if t.name == key:
                    return t
            raise KeyError(
                f"unknown tier {key!r}; have {[t.name for t in self.tiers]}"
            )
        return self.tiers[int(key)]

    @property
    def reference_tier(self) -> FidelityTier:
        """The most expensive tier — the stand-in for 'the full run'."""
        return max(self.tiers, key=lambda t: t.cost_multiplier)

    def query(self, x, fidelity) -> FidelityObservation:
        """One measurement of ``x`` at the given tier (index, name or tier)."""
        t = self.tier(fidelity)
        x = np.asarray(x, dtype=float)
        if hasattr(self.reference, "query"):
            obs = self.reference.query(x)
            y_ref, base_cost = float(obs.y), float(obs.cost)
            x = np.asarray(obs.x, dtype=float)
        else:
            y_ref = float(self.reference(x))
            base_cost = float(self.cost_fn(x)) if self.cost_fn is not None else 1.0
        y = y_ref + math.sqrt(t.noise_variance) * float(self.rng.standard_normal())
        cost = base_cost * t.cost_multiplier
        tm.count("fidelity.queries")
        tm.count(f"fidelity.tier.{t.name}")
        tm.observe("fidelity.cost", cost)
        return FidelityObservation(
            x=x, y=y, cost=cost, tier=t.name, noise_variance=t.noise_variance
        )


class FusionState:
    """Inverse-variance accumulation of repeated observations per location.

    Observations at the same input (bit-identical feature rows — candidate
    grids reuse the exact same array rows) accumulate a precision and a
    precision-weighted response sum; :meth:`fused` materializes one
    heteroscedastic training row per location.  Serializes bit-exactly:
    the accumulators round-trip through JSON ``repr`` floats and insertion
    order is preserved, so a resumed campaign fits on the same matrices to
    the last bit.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        # key (exact float tuple of x) -> [x array, precision,
        # weighted sum, n observations]
        self._entries: dict[tuple, list] = {}

    @staticmethod
    def _key(x: np.ndarray) -> tuple:
        return tuple(float(v) for v in np.asarray(x, dtype=float).ravel())

    @property
    def n_locations(self) -> int:
        return len(self._entries)

    @property
    def n_observations(self) -> int:
        return int(sum(e[3] for e in self._entries.values()))

    def count_at(self, x) -> int:
        """Observations accumulated at ``x`` so far (0 if never measured)."""
        entry = self._entries.get(self._key(x))
        return int(entry[3]) if entry is not None else 0

    def add(self, x, y: float, noise_variance: float) -> None:
        """Fold one observation with known noise variance into its location."""
        if not np.isfinite(noise_variance) or noise_variance <= 0:
            raise ValueError(
                f"noise_variance must be positive, got {noise_variance}"
            )
        key = self._key(x)
        entry = self._entries.get(key)
        if entry is None:
            entry = [np.asarray(x, dtype=float).ravel().copy(), 0.0, 0.0, 0]
            self._entries[key] = entry
        entry[1] += 1.0 / noise_variance
        entry[2] += float(y) / noise_variance
        entry[3] += 1

    def fused(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, y_fused, alpha_fused)`` — one row per location, insertion order.

        ``y_fused`` is the precision-weighted mean and ``alpha_fused`` the
        fused variance ``1 / precision`` — exactly the closed-form pooled
        estimate for Gaussian observations with known variances.
        """
        if not self._entries:
            raise ValueError("fusion state is empty")
        entries = list(self._entries.values())
        X = np.vstack([e[0] for e in entries])
        y = np.asarray([e[2] / e[1] for e in entries])
        alpha = np.asarray([1.0 / e[1] for e in entries])
        return X, y, alpha

    def to_dict(self) -> dict:
        return {
            "entries": [
                {
                    "x": e[0].tolist(),
                    "precision": float(e[1]),
                    "weighted_sum": float(e[2]),
                    "n": int(e[3]),
                }
                for e in self._entries.values()
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FusionState":
        state = cls()
        for entry in payload["entries"]:
            x = np.asarray(entry["x"], dtype=float)
            state._entries[cls._key(x)] = [
                x,
                float(entry["precision"]),
                float(entry["weighted_sum"]),
                int(entry["n"]),
            ]
        return state


@dataclass
class MultiFidelityCostEfficiency:
    """Cost-aware acquisition over (candidate, fidelity) pairs.

    The :class:`repro.al.strategies.CostEfficiency` extension the paper's
    Section VI gestures at: for every candidate ``x`` and tier ``t`` the
    score is the one-step latent-variance reduction of a tier-``t``
    observation divided by its cost,

        score(x, t) = [sigma^4(x) / (sigma^2(x) + s_t^2)]
                      / (c(x) * m_t) ** cost_weight

    where ``sigma^2(x)`` is the latent predictive variance
    (``include_noise=False``), ``s_t^2`` the tier noise and ``c(x) * m_t``
    the tier-scaled reference cost.  A noisy probe wins where uncertainty
    is broad (any observation helps, so buy the cheap one); the accurate
    tier wins where the remaining variance is already near the probe's
    noise floor, which a probe can no longer reduce.  Exact ties break
    randomly via the ``seed``-derived RNG, mirroring
    :class:`repro.al.strategies.Strategy`.
    """

    cost_weight: float = 1.0
    seed: int = 0
    name: str = "mf-cost-efficiency"

    #: floor on the tier-scaled cost before division
    _COST_FLOOR = 1e-12

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    @property
    def rng_state(self) -> dict:
        """JSON-safe tie-break RNG state (for checkpointing)."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def scores(
        self,
        model: GaussianProcessRegressor,
        X: np.ndarray,
        base_costs: np.ndarray,
        tiers,
    ) -> np.ndarray:
        """Score matrix of shape ``(n_candidates, n_tiers)``."""
        X = np.asarray(X, dtype=float)
        base_costs = np.asarray(base_costs, dtype=float)
        _, sd = model.predict(X, return_std=True, include_noise=False)
        var = sd**2
        out = np.empty((X.shape[0], len(tiers)))
        for j, t in enumerate(tiers):
            gain = var**2 / (var + t.noise_variance)
            cost = np.maximum(
                base_costs * t.cost_multiplier, self._COST_FLOOR
            )
            out[:, j] = gain / cost**self.cost_weight
        return out

    def select(
        self,
        model: GaussianProcessRegressor,
        X: np.ndarray,
        base_costs: np.ndarray,
        tiers,
    ) -> tuple[int, int]:
        """``(candidate_index, tier_index)`` of the best-scoring pair."""
        scores = self.scores(model, X, base_costs, tiers)
        flat = scores.ravel()
        ties = np.flatnonzero(flat == np.max(flat))
        pos = int(self._rng.choice(ties)) if ties.size > 1 else int(ties[0])
        return pos // scores.shape[1], pos % scores.shape[1]


@dataclass(frozen=True)
class FidelityRecord:
    """One multi-fidelity AL round: what was queried, at which tier, and why."""

    round_index: int
    candidate_index: int
    tier: str
    x: np.ndarray
    y_observed: float
    y_fused: float
    n_obs_at_x: int
    cost: float
    cumulative_cost: float
    rmse: float
    n_locations: int
    n_observations: int
    noise_variance: float
    lml: float

    def payload(self) -> dict:
        d = {
            "round_index": self.round_index,
            "candidate_index": self.candidate_index,
            "tier": self.tier,
            "x": np.asarray(self.x, dtype=float).tolist(),
            "y_observed": float(self.y_observed),
            "y_fused": float(self.y_fused),
            "n_obs_at_x": int(self.n_obs_at_x),
            "cost": float(self.cost),
            "cumulative_cost": float(self.cumulative_cost),
            "rmse": float(self.rmse),
            "n_locations": int(self.n_locations),
            "n_observations": int(self.n_observations),
            "noise_variance": float(self.noise_variance),
            "lml": float(self.lml),
        }
        return d

    @classmethod
    def from_payload(cls, d: dict) -> "FidelityRecord":
        d = dict(d)
        d["x"] = np.asarray(d["x"], dtype=float)
        return cls(**d)


@dataclass
class MultiFidelityResult:
    """Outcome of one :class:`MultiFidelityLearner` campaign.

    Field names follow the replicate-outcome protocol of
    :func:`repro.al.replicates.run_replicates`: ``rounds`` (one entry per
    completed round), ``simulated_seconds`` / ``cpu_core_seconds`` (both
    the cumulative experiment cost — the oracle is the experiment),
    ``y`` (raw observed responses in measurement order, the determinism
    witness), and zeroed fault counters (the offline oracle cannot fail).
    """

    stop_reason: str
    rounds: list
    model: GaussianProcessRegressor
    cumulative_cost: float
    tier_counts: dict
    n_locations: int
    y: list = field(default_factory=list)
    final_rmse: float = float("nan")
    resumed: bool = False
    n_failed: int = 0
    n_retries: int = 0
    n_quarantined: int = 0
    wasted_core_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        return self.cumulative_cost

    @property
    def cpu_core_seconds(self) -> float:
        return self.cumulative_cost

    @property
    def n_observations(self) -> int:
        return len(self.y)


class MultiFidelityLearner:
    """Active learning over (location, fidelity) pairs with repeat fusion.

    Every round fits a heteroscedastic GP on the precision-fused
    observations, then asks :class:`MultiFidelityCostEfficiency` where to
    spend next and at which tier.  Candidates are *not* consumed: querying
    the same location again (at any tier) is exactly how the fusion
    sharpens a noisy probe into a trustworthy estimate.

    Parameters
    ----------
    oracle:
        A :class:`MultiFidelityOracle` (≥ 2 tiers for a real
        multi-fidelity campaign; a single tier degrades gracefully to
        classic single-fidelity AL with repeats).
    candidates:
        Query locations, shape ``(n, d)``.
    base_costs:
        Reference (full-fidelity) cost per candidate; defaults to 1.0
        each.  Tier queries are charged ``base_cost x cost_multiplier``.
    n_rounds:
        Acquisition rounds after the initial design.
    n_initial:
        Distinct random candidates measured at the *reference tier* (most
        expensive) before acquisition starts.
    acquisition:
        The (location, fidelity) strategy; defaults to
        :class:`MultiFidelityCostEfficiency` seeded from ``seed``.
    model_factory:
        Zero-argument regressor factory; defaults to
        :func:`repro.al.learner.default_model_factory` with a low noise
        floor (1e-6) — the per-point alphas carry the measurement noise,
        so the learned shared scalar must be free to shrink.
    test:
        Optional ``(X_test, y_test)`` pair for per-round RMSE tracking.
    seed:
        Seeds the initial-design draw (and the default acquisition).

    Checkpointing: pass ``checkpoint_path`` to :meth:`run` and the fusion
    state, all three RNG streams, the round records and the raw
    observation sequence are atomically persisted after every round;
    :meth:`resume` restores them and continues **bit-identically** — the
    fused matrices, every model refit and the remaining tier choices match
    an uninterrupted run to the last bit.
    """

    def __init__(
        self,
        oracle: MultiFidelityOracle,
        candidates: np.ndarray,
        *,
        base_costs: np.ndarray | None = None,
        n_rounds: int = 20,
        n_initial: int = 2,
        acquisition: MultiFidelityCostEfficiency | None = None,
        model_factory=None,
        test: tuple | None = None,
        seed: int = 0,
    ):
        candidates = np.asarray(candidates, dtype=float)
        if candidates.ndim != 2 or candidates.shape[0] == 0:
            raise ValueError("candidates must be a non-empty (n, d) matrix")
        if base_costs is None:
            base_costs = np.ones(candidates.shape[0])
        base_costs = np.asarray(base_costs, dtype=float)
        if base_costs.shape != (candidates.shape[0],):
            raise ValueError("base_costs must have one entry per candidate")
        if not np.all(np.isfinite(base_costs)) or np.any(base_costs <= 0):
            raise ValueError("base_costs must be finite and positive")
        if n_rounds < 0:
            raise ValueError("n_rounds must be >= 0")
        if not 1 <= n_initial <= candidates.shape[0]:
            raise ValueError(
                f"n_initial must be in [1, {candidates.shape[0]}], got {n_initial}"
            )
        self.oracle = oracle
        self.candidates = candidates
        self.base_costs = base_costs
        self.n_rounds = int(n_rounds)
        self.n_initial = int(n_initial)
        self.seed = int(seed)
        self.acquisition = acquisition or MultiFidelityCostEfficiency(seed=seed)
        self.model_factory = model_factory or default_model_factory(1e-6)
        if test is not None:
            X_test, y_test = test
            test = (
                np.asarray(X_test, dtype=float),
                np.asarray(y_test, dtype=float),
            )
        self.test = test
        self.rng = np.random.default_rng(seed)

        self.fusion = FusionState()
        self.records: list[FidelityRecord] = []
        self.y_seen: list[float] = []
        self.tier_counts: dict[str, int] = {t.name: 0 for t in oracle.tiers}
        self.model: GaussianProcessRegressor | None = None
        self._cumulative_cost = 0.0
        self._next_round = 0
        self._initial_done = False

    # --------------------------------------------------------------- internals

    @property
    def cumulative_cost(self) -> float:
        return self._cumulative_cost

    def _record_observation(self, obs: FidelityObservation) -> None:
        self.fusion.add(obs.x, obs.y, obs.noise_variance)
        self.y_seen.append(float(obs.y))
        self.tier_counts[obs.tier] = self.tier_counts.get(obs.tier, 0) + 1
        self._cumulative_cost += obs.cost

    def _initial_design(self) -> None:
        idx = self.rng.choice(
            self.candidates.shape[0], size=self.n_initial, replace=False
        )
        ref = self.oracle.reference_tier
        for i in idx:
            obs = self.oracle.query(self.candidates[int(i)], ref)
            self._record_observation(obs)
        self._initial_done = True

    def _fit(self) -> GaussianProcessRegressor:
        X, y, alpha = self.fusion.fused()
        model = self.model_factory()
        model.fit(X, y, alpha=alpha)
        return model

    def _rmse(self, model: GaussianProcessRegressor) -> float:
        if self.test is None:
            return float("nan")
        X_test, y_test = self.test
        metrics = evaluate_model(model, self.candidates, X_test, y_test)
        return float(metrics["rmse"])

    # ------------------------------------------------------------- checkpoints

    def _checkpoint_payload(self) -> dict:
        return {
            "version": _CHECKPOINT_VERSION,
            "n_rounds": self.n_rounds,
            "n_initial": self.n_initial,
            "seed": self.seed,
            "tiers": [t.to_dict() for t in self.oracle.tiers],
            "next_round": self._next_round,
            "initial_done": self._initial_done,
            "cumulative_cost": float(self._cumulative_cost),
            "tier_counts": dict(self.tier_counts),
            "fusion": self.fusion.to_dict(),
            "oracle_rng": self.oracle.rng_state,
            "acquisition_rng": self.acquisition.rng_state,
            "learner_rng": self.rng.bit_generator.state,
            "records": [r.payload() for r in self.records],
            "y_seen": [float(v) for v in self.y_seen],
        }

    def _save_checkpoint(self, path) -> None:
        if path is None:
            return
        write_json_atomic(self._checkpoint_payload(), path)
        tm.count("fidelity.checkpoint.saved")

    def _load_checkpoint(self, path) -> None:
        payload = read_json_checked(path, kind="multi-fidelity checkpoint")
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported multi-fidelity checkpoint version "
                f"{payload.get('version')!r} in {path}"
            )
        stored_tiers = [FidelityTier.from_dict(t) for t in payload["tiers"]]
        mismatches = []
        if tuple(stored_tiers) != tuple(self.oracle.tiers):
            mismatches.append("tiers")
        for key, current in (
            ("n_rounds", self.n_rounds),
            ("n_initial", self.n_initial),
            ("seed", self.seed),
        ):
            if payload[key] != current:
                mismatches.append(key)
        if mismatches:
            raise ValueError(
                f"checkpoint {path} was written by a differently-configured "
                f"campaign (mismatched: {', '.join(mismatches)}); resume "
                "requires the exact same configuration"
            )
        self._next_round = int(payload["next_round"])
        self._initial_done = bool(payload["initial_done"])
        self._cumulative_cost = float(payload["cumulative_cost"])
        self.tier_counts = {
            k: int(v) for k, v in payload["tier_counts"].items()
        }
        self.fusion = FusionState.from_dict(payload["fusion"])
        self.oracle.rng_state = payload["oracle_rng"]
        self.acquisition.rng_state = payload["acquisition_rng"]
        self.rng.bit_generator.state = payload["learner_rng"]
        self.records = [
            FidelityRecord.from_payload(r) for r in payload["records"]
        ]
        self.y_seen = [float(v) for v in payload["y_seen"]]

    # -------------------------------------------------------------------- loop

    def run(
        self, checkpoint_path=None, *, stop_after_round: int | None = None
    ) -> MultiFidelityResult:
        """Run the campaign (initial design + ``n_rounds`` acquisitions).

        ``stop_after_round`` halts early *without* finalizing — the
        checkpoint then holds a half-finished campaign for
        :meth:`resume` (used by the crash-recovery tests; a real crash
        leaves the same state behind).
        """
        if not self._initial_done:
            self._initial_design()
            self._save_checkpoint(checkpoint_path)
        return self._continue(checkpoint_path, stop_after_round, resumed=False)

    def resume(self, checkpoint_path) -> MultiFidelityResult:
        """Restore a checkpoint and continue to completion, bit-identically."""
        self._load_checkpoint(checkpoint_path)
        tm.count("fidelity.checkpoint.resumed")
        if not self._initial_done:
            self._initial_design()
            self._save_checkpoint(checkpoint_path)
        return self._continue(checkpoint_path, None, resumed=True)

    def _continue(
        self, checkpoint_path, stop_after_round, *, resumed: bool
    ) -> MultiFidelityResult:
        while self._next_round < self.n_rounds:
            if (
                stop_after_round is not None
                and self._next_round >= stop_after_round
            ):
                return self._result("stopped", resumed=resumed)
            round_index = self._next_round
            with tm.span(
                "fidelity.round",
                index=round_index,
                n_locations=self.fusion.n_locations,
            ) as sp:
                model = self._fit()
                self.model = model
                rmse = self._rmse(model)
                cand, tier_idx = self.acquisition.select(
                    model, self.candidates, self.base_costs, self.oracle.tiers
                )
                tier = self.oracle.tiers[tier_idx]
                obs = self.oracle.query(self.candidates[cand], tier)
                self._record_observation(obs)
                key_entry = self.fusion.count_at(obs.x)
                record = FidelityRecord(
                    round_index=round_index,
                    candidate_index=int(cand),
                    tier=tier.name,
                    x=self.candidates[cand].copy(),
                    y_observed=float(obs.y),
                    y_fused=float(
                        self.fusion._entries[self.fusion._key(obs.x)][2]
                        / self.fusion._entries[self.fusion._key(obs.x)][1]
                    ),
                    n_obs_at_x=key_entry,
                    cost=float(obs.cost),
                    cumulative_cost=float(self._cumulative_cost),
                    rmse=rmse,
                    n_locations=self.fusion.n_locations,
                    n_observations=self.fusion.n_observations,
                    noise_variance=float(model.noise_variance_),
                    lml=float(model.lml_),
                )
                self.records.append(record)
                self._next_round = round_index + 1
                self._save_checkpoint(checkpoint_path)
                sp.set(tier=tier.name, cost=record.cost, rmse=rmse)
                tm.gauge_set(
                    "fidelity.fused_locations", self.fusion.n_locations
                )
                tm.event(
                    "fidelity.round",
                    index=round_index,
                    tier=tier.name,
                    candidate=int(cand),
                    cost=record.cost,
                    cumulative_cost=record.cumulative_cost,
                    rmse=rmse,
                    n_locations=record.n_locations,
                    n_observations=record.n_observations,
                )
        # Final refit so the returned model includes the last observation.
        model = self._fit()
        self.model = model
        return self._result("completed", resumed=resumed)

    def _result(self, stop_reason: str, *, resumed: bool) -> MultiFidelityResult:
        final_rmse = (
            self._rmse(self.model) if self.model is not None else float("nan")
        )
        return MultiFidelityResult(
            stop_reason=stop_reason,
            rounds=list(self.records),
            model=self.model,
            cumulative_cost=float(self._cumulative_cost),
            tier_counts=dict(self.tier_counts),
            n_locations=self.fusion.n_locations,
            y=list(self.y_seen),
            final_rmse=final_rmse,
            resumed=resumed,
        )
