"""``python -m repro campaign`` — run a simulated online AL campaign.

The subcommand exists to exercise the robustness machinery end to end
from a shell: fault injection, guardrails (model health checks, rollback,
drift detection), and the node circuit breaker, with an optional
telemetry trace for post-mortems::

    python -m repro campaign --rounds 8 --batch 3
    python -m repro campaign --guardrails --drift-after 10 --drift-factor 10
    python -m repro campaign --guardrails --breaker --crash-node 0:0.8 \\
        --trace chaos.jsonl
    python -m repro telemetry summarize chaos.jsonl

Exit code 0 means the campaign produced a result (including best-effort
early stops — inspect ``stop_reason`` in the output); crashes are bugs.
"""

from __future__ import annotations

import argparse

import numpy as np

__all__ = ["main"]

_SIZES = (48**3, 96**3, 192**3, 384**3)
_FREQS = (1.2, 2.4)


def _candidates(max_ranks: int) -> np.ndarray:
    nps = [p for p in (1, 8, 32, 128) if p <= max_ranks]
    return np.array(
        [(s, p, f) for s in _SIZES for p in nps for f in _FREQS], dtype=float
    )


def _parse_crash_node(text: str) -> tuple[int, float]:
    try:
        node_s, rate_s = text.split(":", 1)
        node, rate = int(node_s), float(rate_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NODE:RATE (e.g. 0:0.8), got {text!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError("crash rate must be in [0, 1]")
    return node, rate


def main(argv=None) -> int:
    """Entry point for the ``campaign`` subcommand; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a simulated online AL campaign with optional "
        "faults, guardrails, and a node circuit breaker.",
    )
    parser.add_argument("--rounds", type=int, default=8, help="AL rounds")
    parser.add_argument("--batch", type=int, default=3, help="batch size")
    parser.add_argument("--seed", type=int, default=0, help="campaign RNG seed")
    parser.add_argument(
        "--max-ranks", type=int, default=128,
        help="drop candidates above this rank count (128 ranks = all 4 nodes)",
    )
    parser.add_argument(
        "--guardrails", action="store_true",
        help="enable model health checks, rollback, drift detection, "
        "and the campaign watchdog",
    )
    parser.add_argument(
        "--breaker", action="store_true",
        help="enable the per-node circuit breaker in the scheduler",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=None,
        help="watchdog budget on simulated wall-clock (implies --guardrails)",
    )
    parser.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="per-job crash probability (fault injection)",
    )
    parser.add_argument(
        "--crash-node", type=_parse_crash_node, action="append", default=[],
        metavar="NODE:RATE",
        help="per-node crash probability, repeatable (e.g. --crash-node 0:0.8)",
    )
    parser.add_argument(
        "--drift-after", type=int, default=None, metavar="N",
        help="inject performance drift after N completed jobs",
    )
    parser.add_argument(
        "--drift-factor", type=float, default=4.0,
        help="runtime multiplier once drift begins (with --drift-after)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a telemetry JSONL trace of the campaign",
    )
    args = parser.parse_args(argv)

    # Imports deferred so --help stays instant.
    from ..cluster.faults import FaultConfig, FaultyExecutor
    from ..datasets.generate import ModelExecutor
    from .campaign import CampaignConfig, OnlineCampaign
    from .guardrails import GuardrailConfig

    executor = ModelExecutor()
    faulty = (
        args.crash_rate > 0 or args.crash_node or args.drift_after is not None
    )
    if faulty:
        executor = FaultyExecutor(
            executor,
            FaultConfig(
                crash_rate=args.crash_rate,
                drift_after_jobs=args.drift_after,
                drift_factor=(
                    args.drift_factor if args.drift_after is not None else 1.0
                ),
                node_crash_rates=dict(args.crash_node) or None,
            ),
        )

    guardrails = None
    if args.guardrails or args.max_wall_seconds is not None:
        guardrails = GuardrailConfig(max_wall_seconds=args.max_wall_seconds)
    campaign = OnlineCampaign(
        CampaignConfig(
            operator="poisson1",
            candidates=_candidates(args.max_ranks),
            batch_size=args.batch,
            n_rounds=args.rounds,
        ),
        executor,
        rng=args.seed,
        guardrails=guardrails,
        breaker=args.breaker or None,
    )

    def run():
        return campaign.run()

    if args.trace:
        from .. import telemetry

        with telemetry.session(args.trace):
            result = run()
    else:
        result = run()

    print(f"stop_reason:        {result.stop_reason}")
    print(f"rounds run:         {len(result.rounds)}/{args.rounds}")
    print(f"observations:       {len(result.y)}")
    print(f"simulated seconds:  {result.simulated_seconds:.0f}")
    print(f"core-seconds:       {result.cpu_core_seconds:.0f}")
    print(
        "failures:           "
        f"{result.n_failed} failed, {result.n_retries} retries, "
        f"{result.n_quarantined} quarantined, "
        f"{result.wasted_core_seconds:.0f} wasted core-s"
    )
    if faulty:
        s = executor.stats
        print(
            "injected:           "
            f"{s.n_faults} faults, {s.n_drifted} drifted, "
            f"{s.n_node_crashes} node crashes"
        )
    if result.guardrails is not None:
        t = result.guardrails
        print(
            "guardrails:         "
            f"{t.n_unhealthy_fits} unhealthy fits, {t.n_rollbacks} rollbacks, "
            f"{t.n_drift_events} drift events ({t.n_trimmed_points} trimmed), "
            f"{t.n_watchdog_stops} watchdog stops"
        )
        print(
            "breaker:            "
            f"{t.n_breaker_opens} opens, {t.n_breaker_probes} probes, "
            f"{t.n_breaker_blacklisted} blacklisted"
        )
    if args.trace:
        print(f"[telemetry trace written to {args.trace}]")
    return 0
