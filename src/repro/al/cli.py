"""``python -m repro campaign`` — run a simulated online AL campaign.

The subcommand exists to exercise the robustness machinery end to end
from a shell: fault injection, guardrails (model health checks, rollback,
drift detection), and the node circuit breaker, with an optional
telemetry trace for post-mortems::

    python -m repro campaign --rounds 8 --batch 3
    python -m repro campaign --guardrails --drift-after 10 --drift-factor 10
    python -m repro campaign --guardrails --breaker --crash-node 0:0.8 \\
        --trace chaos.jsonl
    python -m repro telemetry summarize chaos.jsonl
    python -m repro campaign --replicates 16 --workers 8 \\
        --checkpoint-dir sweep-ckpt

``--replicates N`` runs N independent campaigns (a ``SeedSequence.spawn``
seed tree rooted at ``--seed``) through the process-parallel sweep in
:mod:`repro.al.replicates` and prints fleet aggregates; ``--workers`` and
``--backend`` control the fan-out, and ``--checkpoint-dir`` makes the
sweep crash-safe and exactly-once resumable.

Exit code 0 means the campaign produced a result (including best-effort
early stops — inspect ``stop_reason`` in the output); crashes are bugs.
"""

from __future__ import annotations

import argparse

import numpy as np

__all__ = ["main"]

_SIZES = (48**3, 96**3, 192**3, 384**3)
_FREQS = (1.2, 2.4)


def _candidates(max_ranks: int) -> np.ndarray:
    nps = [p for p in (1, 8, 32, 128) if p <= max_ranks]
    return np.array(
        [(s, p, f) for s in _SIZES for p in nps for f in _FREQS], dtype=float
    )


def _parse_crash_node(text: str) -> tuple[int, float]:
    try:
        node_s, rate_s = text.split(":", 1)
        node, rate = int(node_s), float(rate_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NODE:RATE (e.g. 0:0.8), got {text!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError("crash rate must be in [0, 1]")
    return node, rate


class _CampaignFactory:
    """Build one replicate's campaign from parsed CLI options.

    A module-level class (not a closure over ``args``) so the factory
    pickles to process-pool workers.  Each replicate gets its own executor
    chain — fault injection state must never be shared across replicates —
    and its private spawned ``rng``.
    """

    def __init__(self, *, rounds, batch, max_ranks, crash_rate, crash_node,
                 drift_after, drift_factor, guardrails, max_wall_seconds,
                 breaker, registry=None, solver="exact"):
        self.rounds = rounds
        self.batch = batch
        self.max_ranks = max_ranks
        self.crash_rate = crash_rate
        self.crash_node = crash_node
        self.drift_after = drift_after
        self.drift_factor = drift_factor
        self.guardrails = guardrails
        self.max_wall_seconds = max_wall_seconds
        self.breaker = breaker
        self.registry = registry
        self.solver = solver

    @property
    def faulty(self) -> bool:
        return bool(
            self.crash_rate > 0
            or self.crash_node
            or self.drift_after is not None
        )

    def __call__(self, index, rng):
        from ..cluster.faults import FaultConfig, FaultyExecutor
        from ..datasets.generate import ModelExecutor
        from .campaign import CampaignConfig, OnlineCampaign
        from .guardrails import GuardrailConfig
        from .learner import default_model_factory

        executor = ModelExecutor()
        if self.faulty:
            executor = FaultyExecutor(
                executor,
                FaultConfig(
                    crash_rate=self.crash_rate,
                    drift_after_jobs=self.drift_after,
                    drift_factor=(
                        self.drift_factor
                        if self.drift_after is not None
                        else 1.0
                    ),
                    node_crash_rates=dict(self.crash_node) or None,
                ),
            )
        guardrails = None
        if self.guardrails or self.max_wall_seconds is not None:
            guardrails = GuardrailConfig(max_wall_seconds=self.max_wall_seconds)
        return OnlineCampaign(
            CampaignConfig(
                operator="poisson1",
                candidates=_candidates(self.max_ranks),
                batch_size=self.batch,
                n_rounds=self.rounds,
            ),
            executor,
            rng=rng,
            # Mirror OnlineCampaign's default floor (1e-2) — only the solver
            # backend is CLI-selectable here.
            model_factory=default_model_factory(1e-2, solver=self.solver),
            guardrails=guardrails,
            breaker=self.breaker or None,
            # Replicates each publish into their own registry subdirectory;
            # a shared one would interleave fleets' versions meaninglessly.
            registry=(
                None
                if self.registry is None
                else (f"{self.registry}/r{index:03d}" if index else self.registry)
            ),
        )


def _run_sweep(args, factory: _CampaignFactory) -> int:
    from .replicates import run_replicates

    sweep = run_replicates(
        factory,
        args.replicates,
        seed=args.seed,
        n_workers=args.workers,
        backend=args.backend,
        checkpoint_dir=args.checkpoint_dir,
        task_timeout=args.task_timeout,
        max_task_retries=args.max_task_retries,
    )
    s = sweep.summary()
    print(f"replicates:         {s['n_replicates']}")
    print(
        "stop reasons:       "
        + ", ".join(f"{k}={v}" for k, v in sorted(s["stop_reasons"].items()))
    )
    print(f"mean sim seconds:   {s['mean_simulated_seconds']:.0f}")
    print(f"max sim seconds:    {s['max_simulated_seconds']:.0f}")
    print(f"total core-seconds: {s['total_cpu_core_seconds']:.0f}")
    print(f"mean observations:  {s['mean_observations']:.1f}")
    if args.checkpoint_dir:
        print(
            f"checkpoints:        {s['n_loaded']} loaded, "
            f"{s['n_resumed']} resumed (dir: {args.checkpoint_dir})"
        )
    return 0


def _run_sharded(args) -> int:
    """Sharded-campaign mode: ``python -m repro campaign --shards N``.

    Runs the partitioned learner of :mod:`repro.al.sharding` on a
    synthetic mixed-operator pool, optionally chaos-injected.  The
    ``test rmse:`` and ``availability:`` lines are stable interfaces —
    the CI shard chaos-soak parses them.
    """
    from ..cluster.faults import ShardFaultConfig
    from ..parallel.pmap import ParallelMap
    from .partition import random_partition
    from .sharding import ShardedLearner, ShardingConfig, mixed_operator_pool
    from .strategies import CostEfficiency

    X, y, costs = mixed_operator_pool(args.pool_size, seed=args.seed)
    n_initial = max(3 * args.shards, args.pool_size // 10)
    partition = random_partition(
        args.pool_size, rng=args.seed, n_initial=n_initial, test_fraction=0.25
    )
    fault_config = None
    if args.shard_faults > 0:
        fault_config = ShardFaultConfig(
            crash_rate=args.shard_faults / 2.0,
            hang_rate=args.shard_faults / 2.0,
        )
    learner = ShardedLearner(
        X, y, costs, partition,
        config=ShardingConfig(
            n_shards=args.shards,
            n_rounds=args.rounds,
            batch_size=args.batch,
            seed=args.seed,
        ),
        strategy=CostEfficiency(),
        pmap=ParallelMap(
            args.backend,
            args.workers,
            default_backend="serial",
            task_timeout=args.task_timeout,
            max_task_retries=args.max_task_retries,
        ),
        fault_config=fault_config,
        registry=args.registry,
    )

    def run():
        return learner.run(checkpoint_dir=args.checkpoint_dir)

    if args.trace:
        from .. import telemetry

        with telemetry.session(args.trace):
            result = run()
    else:
        result = run()

    from .metrics import rmse as rmse_metric

    avail = result.shard_availability
    print(f"stop_reason:        {result.stop_reason}")
    print(f"rounds run:         {len(result.rounds)}/{args.rounds}")
    print(f"observations:       {len(result.y)}")
    print(f"core-seconds:       {result.cpu_core_seconds:.0f}")
    if result.model is not None:
        test_rmse = rmse_metric(result.model, X[partition.test], y[partition.test])
        print(f"test rmse:          {test_rmse:.6f}")
    else:
        print("test rmse:          nan")
    print(f"availability:       {avail['mean_availability']:.4f}")
    dead = [
        s for s, v in avail["per_shard"].items() if v["state"] in ("open", "dead")
    ]
    print(
        "shards:             "
        f"{avail['n_shards']} total, {len(dead)} open/dead ({dead})"
    )
    if result.guardrails is not None:
        t = result.guardrails
        print(
            "guardrails:         "
            f"{t.n_unhealthy_fits} unhealthy fits, {t.n_rollbacks} rollbacks"
        )
        print(
            "breaker:            "
            f"{t.n_breaker_opens} opens, {t.n_breaker_probes} probes, "
            f"{t.n_breaker_blacklisted} blacklisted"
        )
    if args.trace:
        print(f"[telemetry trace written to {args.trace}]")
    return 0


class _TableReference:
    """Noise-free reference lookup over a fixed candidate table.

    Maps a feature row back to its reference response by exact float
    match — the learner always queries rows of the same candidate matrix,
    so exact keys are safe (and catch any drift as a loud ``KeyError``).
    """

    __slots__ = ("_table",)

    def __init__(self, X, y):
        self._table = {
            tuple(float(v) for v in row): float(val) for row, val in zip(X, y)
        }

    def __call__(self, x):
        return self._table[tuple(float(v) for v in np.asarray(x).ravel())]


def _run_multifidelity(args) -> int:
    """Multi-fidelity mode: ``python -m repro campaign --fidelities SPEC``.

    Runs :class:`repro.al.fidelity.MultiFidelityLearner` on the noise-free
    mixed-operator pool: the tiers in SPEC (``name:cost_mult:noise_sd,...``)
    supply the observation noise and per-query cost, repeated observations
    fuse by inverse variance, and the acquisition picks (location, tier)
    by variance reduction per unit cost.  With ``--checkpoint-dir`` the
    campaign checkpoints every round to ``multifidelity.json`` there and a
    re-run resumes bit-identically.  The ``stop_reason:`` / ``test rmse:``
    / ``cumulative cost:`` lines are stable interfaces — the CI
    multi-fidelity smoke parses them.
    """
    from .fidelity import MultiFidelityLearner, MultiFidelityOracle, tiers_from_spec
    from .partition import random_partition
    from .sharding import mixed_operator_pool

    tiers = tiers_from_spec(args.fidelities)
    # Noise-free responses: the tiers own ALL observation noise here.
    X, y, costs = mixed_operator_pool(args.pool_size, seed=args.seed, noise=None)
    partition = random_partition(
        X.shape[0], rng=args.seed, n_initial=1, test_fraction=0.25
    )
    active = np.concatenate([partition.initial, partition.active])
    oracle = MultiFidelityOracle(
        _TableReference(X, y),
        tiers,
        cost_fn=_TableReference(X, costs),
        rng=np.random.default_rng(args.seed + 1),
    )
    learner = MultiFidelityLearner(
        oracle,
        X[active],
        base_costs=costs[active],
        n_rounds=args.rounds,
        n_initial=min(4, len(active)),
        test=(X[partition.test], y[partition.test]),
        seed=args.seed,
    )

    checkpoint_path = None
    resume = False
    if args.checkpoint_dir:
        from pathlib import Path

        d = Path(args.checkpoint_dir)
        d.mkdir(parents=True, exist_ok=True)
        checkpoint_path = d / "multifidelity.json"
        resume = checkpoint_path.exists()

    def run():
        if resume:
            return learner.resume(checkpoint_path)
        return learner.run(checkpoint_path=checkpoint_path)

    if args.trace:
        from .. import telemetry

        with telemetry.session(args.trace):
            result = run()
    else:
        result = run()

    print(f"stop_reason:        {result.stop_reason}")
    print(f"rounds run:         {len(result.rounds)}/{args.rounds}")
    print(f"observations:       {result.n_observations}")
    print(f"fused locations:    {result.n_locations}")
    print(f"cumulative cost:    {result.cumulative_cost:.3f}")
    print(
        "tier queries:       "
        + ", ".join(f"{k}={v}" for k, v in sorted(result.tier_counts.items()))
    )
    print(f"test rmse:          {result.final_rmse:.6f}")
    print(f"resumed:            {str(result.resumed).lower()}")
    if args.trace:
        print(f"[telemetry trace written to {args.trace}]")
    return 0


def main(argv=None) -> int:
    """Entry point for the ``campaign`` subcommand; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a simulated online AL campaign with optional "
        "faults, guardrails, and a node circuit breaker.",
    )
    parser.add_argument("--rounds", type=int, default=8, help="AL rounds")
    parser.add_argument("--batch", type=int, default=3, help="batch size")
    parser.add_argument("--seed", type=int, default=0, help="campaign RNG seed")
    parser.add_argument(
        "--max-ranks", type=int, default=128,
        help="drop candidates above this rank count (128 ranks = all 4 nodes)",
    )
    parser.add_argument(
        "--guardrails", action="store_true",
        help="enable model health checks, rollback, drift detection, "
        "and the campaign watchdog",
    )
    parser.add_argument(
        "--breaker", action="store_true",
        help="enable the per-node circuit breaker in the scheduler",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=None,
        help="watchdog budget on simulated wall-clock (implies --guardrails)",
    )
    parser.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="per-job crash probability (fault injection)",
    )
    parser.add_argument(
        "--crash-node", type=_parse_crash_node, action="append", default=[],
        metavar="NODE:RATE",
        help="per-node crash probability, repeatable (e.g. --crash-node 0:0.8)",
    )
    parser.add_argument(
        "--drift-after", type=int, default=None, metavar="N",
        help="inject performance drift after N completed jobs",
    )
    parser.add_argument(
        "--drift-factor", type=float, default=4.0,
        help="runtime multiplier once drift begins (with --drift-after)",
    )
    parser.add_argument(
        "--registry", default=None, metavar="DIR",
        help="publish every health-gated refit (and the final model) into "
        "this model registry for python -m repro serve",
    )
    parser.add_argument(
        "--solver", choices=("exact", "nystrom", "rff", "auto"),
        default="exact",
        help="GP solver backend for campaign refits (auto switches to an "
        "approximate backend once the training set outgrows the exact "
        "crossover; see docs/API.md)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a telemetry JSONL trace of the campaign",
    )
    parser.add_argument(
        "--replicates", type=int, default=1, metavar="N",
        help="run N independent replicate campaigns (SeedSequence-spawned "
        "seeds) and print fleet aggregates",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel workers for the replicate sweep",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="fan-out backend for the replicate sweep "
        "(default: $REPRO_PARALLEL_BACKEND or process)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="per-replicate checkpoints + result files; re-running the "
        "sweep resumes exactly-once instead of starting over "
        "(sharded mode: the sharded campaign's checkpoint directory)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock bound for process-backend workers "
        "(replicate sweeps and sharded fit waves); a stuck worker is "
        "killed and the task retried",
    )
    parser.add_argument(
        "--max-task-retries", type=int, default=2, metavar="N",
        help="extra attempts granted to a task blamed for a timeout or "
        "worker crash before giving up",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run a *sharded* offline campaign with N spatial shards on "
        "the mixed-operator pool instead of the online campaign "
        "(see docs/SHARDING.md)",
    )
    parser.add_argument(
        "--shard-faults", type=float, default=0.0, metavar="RATE",
        help="sharded mode: per-(shard, round) kill probability, split "
        "between crash and hang injections",
    )
    parser.add_argument(
        "--pool-size", type=int, default=160, metavar="N",
        help="sharded/multi-fidelity mode: records in the synthetic "
        "mixed-operator pool",
    )
    parser.add_argument(
        "--fidelities", default=None, metavar="SPEC",
        help="run a *multi-fidelity* campaign with these tiers instead of "
        "the online campaign; SPEC is name:cost_mult:noise_sd[,...] "
        "(e.g. probe:0.1:0.15,full:1.0:0.02; see docs/MULTIFIDELITY.md)",
    )
    args = parser.parse_args(argv)
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")
    if args.shards < 0:
        parser.error("--shards must be >= 0")
    if not 0.0 <= args.shard_faults <= 1.0:
        parser.error("--shard-faults must be in [0, 1]")
    if args.fidelities:
        if args.replicates > 1 or args.shards:
            parser.error(
                "--fidelities is incompatible with --replicates > 1 and --shards"
            )
        return _run_multifidelity(args)
    if args.shards:
        if args.replicates > 1:
            parser.error("--shards is incompatible with --replicates > 1")
        return _run_sharded(args)

    factory = _CampaignFactory(
        rounds=args.rounds,
        batch=args.batch,
        max_ranks=args.max_ranks,
        crash_rate=args.crash_rate,
        crash_node=args.crash_node,
        drift_after=args.drift_after,
        drift_factor=args.drift_factor,
        guardrails=args.guardrails,
        max_wall_seconds=args.max_wall_seconds,
        breaker=args.breaker,
        registry=args.registry,
        solver=args.solver,
    )
    faulty = factory.faulty

    if args.replicates > 1:
        if args.trace:
            from .. import telemetry

            with telemetry.session(args.trace):
                code = _run_sweep(args, factory)
            print(f"[telemetry trace written to {args.trace}]")
            return code
        return _run_sweep(args, factory)

    # Single campaign: keep the historical output (and rng=seed behaviour).
    campaign = factory(0, args.seed)
    executor = campaign.executor

    def run():
        return campaign.run()

    if args.trace:
        from .. import telemetry

        with telemetry.session(args.trace):
            result = run()
    else:
        result = run()

    print(f"stop_reason:        {result.stop_reason}")
    print(f"rounds run:         {len(result.rounds)}/{args.rounds}")
    print(f"observations:       {len(result.y)}")
    print(f"simulated seconds:  {result.simulated_seconds:.0f}")
    print(f"core-seconds:       {result.cpu_core_seconds:.0f}")
    print(
        "failures:           "
        f"{result.n_failed} failed, {result.n_retries} retries, "
        f"{result.n_quarantined} quarantined, "
        f"{result.wasted_core_seconds:.0f} wasted core-s"
    )
    if args.registry:
        reg = campaign.registry
        print(
            "registry:           "
            f"{len(reg.versions())} versions published "
            f"(latest v{reg.latest_version():05d}) in {args.registry}"
        )
    if faulty:
        s = executor.stats
        print(
            "injected:           "
            f"{s.n_faults} faults, {s.n_drifted} drifted, "
            f"{s.n_node_crashes} node crashes"
        )
    if result.guardrails is not None:
        t = result.guardrails
        print(
            "guardrails:         "
            f"{t.n_unhealthy_fits} unhealthy fits, {t.n_rollbacks} rollbacks, "
            f"{t.n_drift_events} drift events ({t.n_trimmed_points} trimmed), "
            f"{t.n_watchdog_stops} watchdog stops"
        )
        print(
            "breaker:            "
            f"{t.n_breaker_opens} opens, {t.n_breaker_probes} probes, "
            f"{t.n_breaker_blacklisted} blacklisted"
        )
    if args.trace:
        print(f"[telemetry trace written to {args.trace}]")
    return 0
