"""Static experiment designs — the paper's Related-Work baselines.

Section II-B reviews Raj Jain's classical designs for computer-performance
studies: *simple designs* (vary one factor at a time), *2^k full factorial*
and *2^(k-p) fractional factorial* designs, and notes their drawbacks —
they are fixed a priori, ignore measurement variance, and handle many-level
factors poorly.  The paper's AL approach is the dynamic alternative.

This module implements those static designs (plus Latin hypercube sampling,
the modern space-filling default) over a *pool of recorded experiments*, so
they can be compared against the AL strategies on exactly the same footing:
pick ``n`` pool records up front, train the GPR once, evaluate on the Test
set (see ``benchmarks/bench_ablation_designs.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "one_factor_at_a_time",
    "two_level_factorial",
    "fractional_factorial",
    "latin_hypercube",
    "nearest_pool_indices",
    "static_design_rmse",
]


def _pool_bounds(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    return X.min(axis=0), X.max(axis=0)


def one_factor_at_a_time(X: np.ndarray, *, levels_per_factor: int = 5) -> np.ndarray:
    """Jain's *simple design*: sweep each factor with the others at center.

    Returns design points in input space, shape ``(d * levels + 1, d)``
    (the center point plus one sweep per factor, deduplicated).
    """
    lo, hi = _pool_bounds(X)
    d = lo.size
    center = 0.5 * (lo + hi)
    points = [center]
    for dim in range(d):
        for level in np.linspace(lo[dim], hi[dim], levels_per_factor):
            p = center.copy()
            p[dim] = level
            points.append(p)
    uniq = np.unique(np.asarray(points), axis=0)
    return uniq


def two_level_factorial(X: np.ndarray) -> np.ndarray:
    """The 2^k full factorial: every corner of the factor box."""
    lo, hi = _pool_bounds(X)
    d = lo.size
    corners = np.array(
        [[(hi if (i >> dim) & 1 else lo)[dim] for dim in range(d)]
         for i in range(2**d)]
    )
    return corners


def fractional_factorial(X: np.ndarray, *, p: int = 1) -> np.ndarray:
    """A 2^(k-p) fractional factorial via generator columns.

    Keeps the first ``k - p`` factors as a full factorial and derives each
    remaining factor's level from the parity (XOR) of the base factors —
    the standard resolution-maximizing construction for small designs.
    """
    lo, hi = _pool_bounds(X)
    d = lo.size
    if not 0 <= p < d:
        raise ValueError(f"need 0 <= p < n_factors, got p={p}, d={d}")
    base = d - p
    rows = []
    for i in range(2**base):
        bits = [(i >> dim) & 1 for dim in range(base)]
        # Generators: extra factor e is the parity of the base bits with one
        # (rotating) base factor left out — distinct aliasing per factor.
        for extra in range(p):
            exclude = extra % base
            parity = 0
            for j in range(base):
                if j != exclude or base == 1:
                    parity ^= bits[j]
            bits.append(parity)
        rows.append([hi[dim] if bits[dim] else lo[dim] for dim in range(d)])
    return np.unique(np.asarray(rows), axis=0)


def latin_hypercube(
    X: np.ndarray, n: int, rng=None
) -> np.ndarray:
    """Latin hypercube sample of ``n`` points over the pool's bounding box."""
    if n < 1:
        raise ValueError("n must be >= 1")
    lo, hi = _pool_bounds(X)
    rng = np.random.default_rng(rng)
    d = lo.size
    u = (rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T + rng.random((n, d))) / n
    return lo + u * (hi - lo)


def nearest_pool_indices(
    design: np.ndarray, X_pool: np.ndarray, *, unique: bool = True
) -> np.ndarray:
    """Map ideal design points to the nearest *recorded* experiments.

    Static designs assume any configuration can be run; on a recorded pool
    we snap each design point to its nearest neighbour (normalized
    per-dimension to the pool's range).  With ``unique`` (default) each
    pool record is used at most once — matching how a real campaign would
    run distinct jobs.
    """
    X_pool = np.asarray(X_pool, dtype=float)
    design = np.atleast_2d(np.asarray(design, dtype=float))
    lo, hi = _pool_bounds(X_pool)
    span = np.where(hi > lo, hi - lo, 1.0)
    P = (X_pool - lo) / span
    D = (design - lo) / span
    chosen: list[int] = []
    taken = np.zeros(X_pool.shape[0], dtype=bool)
    for point in D:
        dist = np.linalg.norm(P - point, axis=1)
        if unique:
            dist = np.where(taken, np.inf, dist)
        idx = int(np.argmin(dist))
        if np.isinf(dist[idx]):
            break  # pool exhausted
        chosen.append(idx)
        if unique:
            taken[idx] = True
    return np.asarray(chosen, dtype=int)


def static_design_rmse(
    design: np.ndarray,
    X_pool: np.ndarray,
    y_pool: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    model_factory=None,
) -> tuple[float, int]:
    """Train once on a static design's nearest pool records; test RMSE.

    Returns ``(rmse, n_used)``.
    """
    from .learner import default_model_factory
    from .metrics import rmse as rmse_metric

    factory = model_factory or default_model_factory(1e-1)
    idx = nearest_pool_indices(design, X_pool)
    if idx.size == 0:
        raise ValueError("design selected no pool records")
    model = factory()
    model.fit(X_pool[idx], y_pool[idx])
    return rmse_metric(model, X_test, y_test), int(idx.size)
