"""Cost-error tradeoff analysis (Fig. 8b).

The paper compares Variance Reduction and Cost Efficiency through
*tradeoff curves*: average RMSE as a function of cumulative experiment
cost.  The curves intersect at some cost ``C``; beyond it Cost Efficiency
achieves lower error for the same cost, with a relative reduction the
paper reports as up to 38% (and 25/21/16/13% at 2C/3C/5C/10C).

Each AL trace is a step function ``cost -> error`` (error improves only
when an experiment completes); this module interpolates those step
functions onto a common cost grid, averages them per strategy, finds the
crossover, and evaluates relative error reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runner import BatchResult

__all__ = [
    "TradeoffCurve",
    "tradeoff_curve",
    "crossover_cost",
    "relative_reduction",
    "compare_strategies",
]


@dataclass(frozen=True)
class TradeoffCurve:
    """Average error as a step-interpolated function of cumulative cost."""

    strategy: str
    costs: np.ndarray
    errors: np.ndarray

    def error_at(self, cost) -> np.ndarray:
        """Error at given cost(s): previous-point (step) interpolation."""
        cost = np.asarray(cost, dtype=float)
        idx = np.searchsorted(self.costs, cost, side="right") - 1
        idx = np.clip(idx, 0, self.costs.size - 1)
        return self.errors[idx]

    @property
    def max_cost(self) -> float:
        """Largest cumulative cost the curve covers."""
        return float(self.costs[-1])


def _trace_step(costs: np.ndarray, errors: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Step-interpolate one trace's (cost, error) onto ``grid``.

    Before the first completed experiment the error is the seed-model error
    (the first recorded value).
    """
    idx = np.searchsorted(costs, grid, side="right") - 1
    out = np.where(idx >= 0, errors[np.clip(idx, 0, errors.size - 1)], errors[0])
    return out


def tradeoff_curve(
    result: BatchResult,
    *,
    metric: str = "rmse",
    n_grid: int = 200,
    grid: np.ndarray | None = None,
) -> TradeoffCurve:
    """Average cost-error curve of a strategy batch.

    The grid is geometric between the smallest first-experiment cost and
    the largest total cost across traces (costs span orders of magnitude).
    """
    cost_lists = [t.series("cumulative_cost") for t in result.traces]
    err_lists = [t.series(metric) for t in result.traces]
    if grid is None:
        lo = min(c[0] for c in cost_lists)
        hi = max(c[-1] for c in cost_lists)
        if lo <= 0:
            lo = min(filter(lambda v: v > 0, (c[0] for c in cost_lists)), default=1e-6)
        grid = np.geomspace(lo, hi, n_grid)
    stacked = np.vstack(
        [_trace_step(c, e, grid) for c, e in zip(cost_lists, err_lists)]
    )
    return TradeoffCurve(strategy=result.strategy, costs=grid, errors=stacked.mean(axis=0))


def crossover_cost(
    baseline: TradeoffCurve,
    challenger: TradeoffCurve,
    *,
    n_grid: int = 400,
    min_cost: float | None = None,
    rel_tol: float = 0.02,
) -> float | None:
    """Smallest cost beyond which the challenger's error stays below baseline.

    Returns ``None`` if the challenger never (sustainedly) wins.  This is
    the paper's crossover cost ``C``.  ``min_cost`` restricts the search to
    budgets where the comparison is meaningful — typically the cost at
    which both strategies have completed at least one experiment (below
    it, one curve is still the untrained seed model).  "Sustained" allows
    the challenger to fall behind by up to ``rel_tol`` of the baseline
    error: when both strategies exhaust the pool their curves meet again
    (with sampling noise either way), which must not veto the crossover.
    """
    lo = max(baseline.costs[0], challenger.costs[0])
    if min_cost is not None:
        lo = max(lo, float(min_cost))
    hi = min(baseline.max_cost, challenger.max_cost)
    if hi <= lo:
        return None
    grid = np.geomspace(lo, hi, n_grid)
    base_err = baseline.error_at(grid)
    diff = base_err - challenger.error_at(grid)  # >0 => challenger wins
    winning = diff > 0
    if not winning.any():
        return None
    # First index from which the challenger never falls more than rel_tol
    # behind for the rest of the grid.
    ok = diff >= -rel_tol * np.abs(base_err)
    suffix_win = np.flip(np.logical_and.accumulate(np.flip(ok)))
    candidates = np.flatnonzero(winning & suffix_win)
    if candidates.size == 0:
        return None
    return float(grid[candidates[0]])


def relative_reduction(
    baseline: TradeoffCurve, challenger: TradeoffCurve, cost
) -> np.ndarray:
    """Relative error reduction of the challenger at given cost(s).

    ``(err_baseline - err_challenger) / err_baseline``, the quantity the
    paper reports as "up to 38%".
    """
    eb = baseline.error_at(cost)
    ec = challenger.error_at(cost)
    return (eb - ec) / np.maximum(eb, 1e-300)


@dataclass(frozen=True)
class StrategyComparison:
    """Summary of a tradeoff comparison between two strategies."""

    baseline: str
    challenger: str
    crossover: float | None
    max_reduction: float
    reductions_at_multiples: dict


def compare_strategies(
    baseline: TradeoffCurve,
    challenger: TradeoffCurve,
    *,
    multiples: tuple[float, ...] = (2.0, 3.0, 5.0, 10.0),
    min_cost: float | None = None,
) -> StrategyComparison:
    """The paper's full Fig. 8b readout: crossover C, max and at-k*C reductions."""
    C = crossover_cost(baseline, challenger, min_cost=min_cost)
    hi = min(baseline.max_cost, challenger.max_cost)
    if C is None:
        lo = max(baseline.costs[0], min_cost or 0.0, 1e-12)
        return StrategyComparison(
            baseline=baseline.strategy,
            challenger=challenger.strategy,
            crossover=None,
            max_reduction=float(
                np.max(
                    relative_reduction(
                        baseline,
                        challenger,
                        np.geomspace(lo, hi, 400),
                    )
                )
            ),
            reductions_at_multiples={},
        )
    grid = np.geomspace(C, hi, 400)
    reductions = relative_reduction(baseline, challenger, grid)
    at_multiples = {}
    for m in multiples:
        cost = m * C
        if cost <= hi:
            at_multiples[m] = float(relative_reduction(baseline, challenger, cost))
    return StrategyComparison(
        baseline=baseline.strategy,
        challenger=challenger.strategy,
        crossover=C,
        max_reduction=float(np.max(reductions)),
        reductions_at_multiples=at_multiples,
    )
