"""Checkpoint/resume for online active-learning campaigns.

The paper's target use case is *online* operation: "every iteration of AL
includes selecting an experiment, running it, and using the experiment
outcome to update the underlying GPR model."  Real campaigns run for hours
or days across scheduler outages and operator handoffs, so the campaign
state must survive the Python process.  :class:`ALSessionState` captures
everything an :class:`~repro.al.learner.ActiveLearner` needs to continue —
training data, remaining pool, test set, cumulative cost, per-iteration
history — as a single JSON document.

Example
-------
>>> state = snapshot(learner)
>>> save_session(state, "campaign.json")
...  # process restarts ...
>>> learner = restore(load_session("campaign.json"), VarianceReduction())
>>> learner.step()
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .learner import ActiveLearner, ALTrace, IterationRecord, default_model_factory
from .partition import Partition
from .pool import CandidatePool
from .strategies import Strategy

__all__ = ["ALSessionState", "snapshot", "restore", "save_session", "load_session"]

_FORMAT_VERSION = 1


@dataclass
class ALSessionState:
    """Serializable snapshot of an in-progress AL campaign."""

    version: int
    strategy: str
    X_train: list
    y_train: list
    pool_X: list
    pool_y: list
    pool_costs: list
    pool_available: list  # bool per pool record
    X_active_full: list
    X_test: list
    y_test: list
    cumulative_cost: float
    records: list  # serialized IterationRecord dicts


def snapshot(learner: ActiveLearner) -> ALSessionState:
    """Capture a learner's full state."""
    pool = learner.pool
    records = []
    for r in learner.trace.records:
        d = asdict(r)
        d["x_selected"] = np.asarray(r.x_selected).tolist()
        records.append(d)
    return ALSessionState(
        version=_FORMAT_VERSION,
        strategy=learner.strategy.name,
        X_train=learner._X_train.tolist(),
        y_train=learner._y_train.tolist(),
        pool_X=pool.X.tolist(),
        pool_y=pool.y.tolist(),
        pool_costs=pool.costs.tolist(),
        pool_available=pool._available.tolist(),
        X_active_full=learner._X_active_full.tolist(),
        X_test=learner._X_test.tolist(),
        y_test=learner._y_test.tolist(),
        cumulative_cost=learner.cumulative_cost,
        records=records,
    )


def restore(
    state: ALSessionState,
    strategy: Strategy,
    *,
    model_factory: Callable | None = None,
    noise_floor_schedule: Callable[[int], float] | None = None,
) -> ActiveLearner:
    """Rebuild a learner from a snapshot.

    The strategy object is supplied by the caller (strategies may hold
    unserializable state such as RNGs); its name must match the snapshot.
    """
    if state.version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported session format version {state.version} "
            f"(expected {_FORMAT_VERSION})"
        )
    if strategy.name != state.strategy:
        raise ValueError(
            f"strategy mismatch: snapshot used {state.strategy!r}, "
            f"got {strategy.name!r}"
        )
    X_train = np.asarray(state.X_train, dtype=float)
    pool_X = np.asarray(state.pool_X, dtype=float)
    # Build via a synthetic partition over the *concatenated* arrays so the
    # constructor's validation applies, then overwrite the internals with
    # the snapshot's exact state.
    X_all = np.vstack([X_train[:1], pool_X, np.asarray(state.X_test, dtype=float)])
    y_all = np.concatenate(
        [
            np.asarray(state.y_train[:1], dtype=float),
            np.asarray(state.pool_y, dtype=float),
            np.asarray(state.y_test, dtype=float),
        ]
    )
    costs_all = np.concatenate(
        [
            np.zeros(1),
            np.asarray(state.pool_costs, dtype=float),
            np.zeros(len(state.y_test)),
        ]
    )
    n_pool = pool_X.shape[0]
    part = Partition(
        initial=np.array([0]),
        active=np.arange(1, 1 + n_pool),
        test=np.arange(1 + n_pool, 1 + n_pool + len(state.X_test)),
    )
    learner = ActiveLearner(
        X_all,
        y_all,
        costs_all,
        part,
        strategy,
        model_factory=model_factory or default_model_factory(),
        noise_floor_schedule=noise_floor_schedule,
    )
    # Install the exact snapshot state.
    learner._X_train = X_train
    learner._y_train = np.asarray(state.y_train, dtype=float)
    learner.pool = CandidatePool(
        pool_X,
        np.asarray(state.pool_y, dtype=float),
        np.asarray(state.pool_costs, dtype=float),
    )
    learner.pool._available = np.asarray(state.pool_available, dtype=bool)
    learner._X_active_full = np.asarray(state.X_active_full, dtype=float)
    learner._X_test = np.asarray(state.X_test, dtype=float)
    learner._y_test = np.asarray(state.y_test, dtype=float)
    learner._cumulative_cost = float(state.cumulative_cost)
    records = []
    for d in state.records:
        d = dict(d)
        d["x_selected"] = np.asarray(d["x_selected"], dtype=float)
        records.append(IterationRecord(**d))
    learner.trace = ALTrace(strategy=state.strategy, records=records)
    return learner


def save_session(state: ALSessionState, path) -> Path:
    """Write a snapshot to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(asdict(state)))
    return path


def load_session(path) -> ALSessionState:
    """Read a snapshot previously written by :func:`save_session`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "version" not in payload:
        raise ValueError(f"{path} is not an AL session file")
    return ALSessionState(**payload)
