"""Checkpoint/resume for online active-learning campaigns.

The paper's target use case is *online* operation: "every iteration of AL
includes selecting an experiment, running it, and using the experiment
outcome to update the underlying GPR model."  Real campaigns run for hours
or days across scheduler outages and operator handoffs, so the campaign
state must survive the Python process.  :class:`ALSessionState` captures
everything an :class:`~repro.al.learner.ActiveLearner` needs to continue —
training data, remaining pool, test set, cumulative cost, per-iteration
history — as a single JSON document.

Example
-------
>>> state = snapshot(learner)
>>> save_session(state, "campaign.json")
...  # process restarts ...
>>> learner = restore(load_session("campaign.json"), VarianceReduction())
>>> learner.step()
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .learner import ActiveLearner, ALTrace, IterationRecord, default_model_factory
from .partition import Partition
from .pool import CandidatePool
from .strategies import Strategy

__all__ = [
    "ALSessionState",
    "snapshot",
    "restore",
    "save_session",
    "load_session",
    "write_json_atomic",
    "read_json_checked",
]

_FORMAT_VERSION = 1


@dataclass
class ALSessionState:
    """Serializable snapshot of an in-progress AL campaign."""

    version: int
    strategy: str
    X_train: list
    y_train: list
    pool_X: list
    pool_y: list
    pool_costs: list
    pool_available: list  # bool per pool record
    X_active_full: list
    X_test: list
    y_test: list
    cumulative_cost: float
    records: list  # serialized IterationRecord dicts


def snapshot(learner: ActiveLearner) -> ALSessionState:
    """Capture a learner's full state."""
    pool = learner.pool
    records = []
    for r in learner.trace.records:
        d = asdict(r)
        d["x_selected"] = np.asarray(r.x_selected).tolist()
        records.append(d)
    return ALSessionState(
        version=_FORMAT_VERSION,
        strategy=learner.strategy.name,
        X_train=learner._X_train.tolist(),
        y_train=learner._y_train.tolist(),
        pool_X=pool.X.tolist(),
        pool_y=pool.y.tolist(),
        pool_costs=pool.costs.tolist(),
        pool_available=pool._available.tolist(),
        X_active_full=learner._X_active_full.tolist(),
        X_test=learner._X_test.tolist(),
        y_test=learner._y_test.tolist(),
        cumulative_cost=learner.cumulative_cost,
        records=records,
    )


def restore(
    state: ALSessionState,
    strategy: Strategy,
    *,
    model_factory: Callable | None = None,
    noise_floor_schedule: Callable[[int], float] | None = None,
) -> ActiveLearner:
    """Rebuild a learner from a snapshot.

    The strategy object is supplied by the caller (strategies may hold
    unserializable state such as RNGs); its name must match the snapshot.
    """
    if state.version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported session format version {state.version} "
            f"(expected {_FORMAT_VERSION})"
        )
    if strategy.name != state.strategy:
        raise ValueError(
            f"strategy mismatch: snapshot used {state.strategy!r}, "
            f"got {strategy.name!r}"
        )
    X_train = np.asarray(state.X_train, dtype=float)
    pool_X = np.asarray(state.pool_X, dtype=float)
    X_test = np.asarray(state.X_test, dtype=float).reshape(-1, X_train.shape[1])
    y_test = np.asarray(state.y_test, dtype=float)
    # Build via a synthetic partition over the *concatenated* arrays so the
    # constructor's validation applies, then overwrite the internals with
    # the snapshot's exact state.  Partition forbids an empty test set, so
    # when the snapshot has none (online campaigns measure everything) the
    # training row stands in and the true empty arrays are installed below.
    if X_test.shape[0]:
        test_X_rows, test_y_rows = X_test, y_test
    else:
        test_X_rows = X_train[:1]
        test_y_rows = np.asarray(state.y_train[:1], dtype=float)
    X_all = np.vstack([X_train[:1], pool_X, test_X_rows])
    y_all = np.concatenate(
        [
            np.asarray(state.y_train[:1], dtype=float),
            np.asarray(state.pool_y, dtype=float),
            test_y_rows,
        ]
    )
    costs_all = np.concatenate(
        [
            np.zeros(1),
            np.asarray(state.pool_costs, dtype=float),
            np.zeros(len(test_y_rows)),
        ]
    )
    n_pool = pool_X.shape[0]
    part = Partition(
        initial=np.array([0]),
        active=np.arange(1, 1 + n_pool),
        test=np.arange(1 + n_pool, 1 + n_pool + len(test_y_rows)),
    )
    learner = ActiveLearner(
        X_all,
        y_all,
        costs_all,
        part,
        strategy,
        model_factory=model_factory or default_model_factory(),
        noise_floor_schedule=noise_floor_schedule,
    )
    # Install the exact snapshot state.
    learner._X_train = X_train
    learner._y_train = np.asarray(state.y_train, dtype=float)
    learner.pool = CandidatePool(
        pool_X,
        np.asarray(state.pool_y, dtype=float),
        np.asarray(state.pool_costs, dtype=float),
    )
    learner.pool._available = np.asarray(state.pool_available, dtype=bool)
    learner._X_active_full = np.asarray(state.X_active_full, dtype=float)
    learner._X_test = X_test
    learner._y_test = y_test
    learner._cumulative_cost = float(state.cumulative_cost)
    records = []
    for d in state.records:
        d = dict(d)
        d["x_selected"] = np.asarray(d["x_selected"], dtype=float)
        records.append(IterationRecord(**d))
    learner.trace = ALTrace(strategy=state.strategy, records=records)
    return learner


def write_json_atomic(payload: dict, path) -> Path:
    """Atomically write ``payload`` as JSON to ``path``.

    The document lands in a temporary file in the target directory, is
    flushed and fsynced, and is moved into place with
    :func:`os.replace` (atomic within one filesystem), so a crash mid-write
    can never leave a truncated file behind — at worst the previous
    complete version survives.  Without the fsync the rename could be
    durable before the data blocks, and a *power loss* (not just a process
    crash) could surface a zero-length file; the directory itself is also
    fsynced best-effort so the rename is durable too.  Shared by session
    snapshots, campaign checkpoints, and the model registry
    (:mod:`repro.serve`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        # Durable rename: fsync the directory entry (not supported on every
        # platform/filesystem, hence best-effort).
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        pass
    else:
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
    return path


def read_json_checked(path, *, kind: str = "session") -> dict:
    """Read a JSON document, raising a descriptive error on corruption."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not a valid {kind} file: truncated or corrupt JSON "
            f"({exc.msg} at line {exc.lineno} column {exc.colno})"
        ) from exc
    if not isinstance(payload, dict) or "version" not in payload:
        raise ValueError(f"{path} is not an AL {kind} file")
    return payload


def save_session(state: ALSessionState, path) -> Path:
    """Atomically write a snapshot to a JSON file; returns the path."""
    return write_json_atomic(asdict(state), path)


def load_session(path) -> ALSessionState:
    """Read a snapshot previously written by :func:`save_session`."""
    return ALSessionState(**read_json_checked(path, kind="session"))
