"""Multi-restart bounded optimization of the (negative) log marginal likelihood.

The paper relies on scikit-learn's behaviour: gradient ascent on the LML
within a bounded hyperparameter box, repeated from several random starting
points "in order to increase reliability".  This module reproduces that with
``scipy.optimize.minimize(method="L-BFGS-B")``.

The restart count is an explicit knob because it is one of the design
choices DESIGN.md marks for ablation (``bench_ablation_restarts``): Fig. 4
shows an LML landscape with a unique peak where one start suffices, while
Fig. 5's small-data landscape is shallow and benefits from restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize

__all__ = ["OptimizeOutcome", "minimize_with_restarts"]

#: Value substituted for non-finite objective evaluations so that L-BFGS-B
#: treats the point as very bad instead of aborting.
_BAD_VALUE = 1e25


@dataclass
class OptimizeOutcome:
    """Result of a multi-restart minimization.

    Attributes
    ----------
    theta:
        Best parameter vector found (log space).
    value:
        Objective value at ``theta`` (the *negative* LML for GPR fits).
    n_restarts:
        Number of random restarts performed (excludes the initial start).
    all_thetas / all_values:
        Per-start optimized parameters and values, in run order; useful for
        diagnosing multimodal LML landscapes (Fig. 5b).
    """

    theta: np.ndarray
    value: float
    n_restarts: int
    all_thetas: list = field(default_factory=list)
    all_values: list = field(default_factory=list)


def _wrap(objective: Callable) -> Callable:
    """Guard an objective(theta) -> (value, grad) against non-finite output."""

    def wrapped(theta: np.ndarray):
        value, grad = objective(theta)
        if not np.isfinite(value):
            return _BAD_VALUE, np.zeros_like(theta)
        grad = np.asarray(grad, dtype=float)
        if not np.all(np.isfinite(grad)):
            grad = np.zeros_like(theta)
        return float(value), grad

    return wrapped


def minimize_with_restarts(
    objective: Callable,
    theta0: np.ndarray,
    bounds: np.ndarray,
    *,
    n_restarts: int = 4,
    rng=None,
) -> OptimizeOutcome:
    """Minimize ``objective`` within box ``bounds`` from multiple starts.

    Parameters
    ----------
    objective:
        Callable ``theta -> (value, gradient)``; both in log space.
    theta0:
        Initial point for the first (deterministic) run.  It is clipped into
        the bounds box.
    bounds:
        Array of shape ``(n, 2)`` of [low, high] per parameter, log space.
    n_restarts:
        Additional starts sampled uniformly inside the box.
    rng:
        Seed or generator for restart sampling.

    Returns
    -------
    OptimizeOutcome
        With the best point across all starts.
    """
    theta0 = np.asarray(theta0, dtype=float)
    bounds = np.asarray(bounds, dtype=float)
    if bounds.shape != (theta0.size, 2):
        raise ValueError(
            f"bounds shape {bounds.shape} does not match theta size {theta0.size}"
        )
    if np.any(bounds[:, 0] > bounds[:, 1]):
        raise ValueError("bounds must satisfy low <= high")
    rng = np.random.default_rng(rng)
    wrapped = _wrap(objective)

    starts = [np.clip(theta0, bounds[:, 0], bounds[:, 1])]
    for _ in range(n_restarts):
        starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))

    all_thetas: list[np.ndarray] = []
    all_values: list[float] = []
    for start in starts:
        result = minimize(
            wrapped,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
        )
        all_thetas.append(np.asarray(result.x))
        all_values.append(float(result.fun))

    best = int(np.argmin(all_values))
    return OptimizeOutcome(
        theta=all_thetas[best],
        value=all_values[best],
        n_restarts=n_restarts,
        all_thetas=all_thetas,
        all_values=all_values,
    )
