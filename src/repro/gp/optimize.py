"""Multi-restart bounded optimization of the (negative) log marginal likelihood.

The paper relies on scikit-learn's behaviour: gradient ascent on the LML
within a bounded hyperparameter box, repeated from several random starting
points "in order to increase reliability".  This module reproduces that with
``scipy.optimize.minimize(method="L-BFGS-B")``.

The restart count is an explicit knob because it is one of the design
choices DESIGN.md marks for ablation (``bench_ablation_restarts``): Fig. 4
shows an LML landscape with a unique peak where one start suffices, while
Fig. 5's small-data landscape is shallow and benefits from restarts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from .. import telemetry as tm

__all__ = ["OptimizeOutcome", "minimize_with_restarts"]

#: Value substituted for non-finite objective evaluations so that L-BFGS-B
#: treats the point as very bad instead of aborting.
_BAD_VALUE = 1e25


@dataclass
class OptimizeOutcome:
    """Result of a multi-restart minimization.

    Attributes
    ----------
    theta:
        Best parameter vector found (log space).
    value:
        Objective value at ``theta`` (the *negative* LML for GPR fits).
        ``inf`` when every start failed (see ``fallback``).
    n_restarts:
        Number of random restarts performed (excludes the initial start).
    all_thetas / all_values:
        Per-start optimized parameters and values, in run order; useful for
        diagnosing multimodal LML landscapes (Fig. 5b).
    statuses:
        Per-start verdict, in run order: ``"ok"`` (converged on a finite
        value), ``"failed"`` (L-BFGS-B reported failure, e.g. abnormal
        line-search termination), or ``"nonfinite"`` (the start never saw a
        finite objective value — its reported optimum is the
        ``_BAD_VALUE`` sentinel, not a real point).
    fallback:
        True when *every* start was ``"nonfinite"`` and ``theta`` is the
        clipped initial point rather than an optimized one.
    """

    theta: np.ndarray
    value: float
    n_restarts: int
    all_thetas: list = field(default_factory=list)
    all_values: list = field(default_factory=list)
    statuses: list = field(default_factory=list)
    fallback: bool = False


class _GuardedObjective:
    """Guard an objective(theta) -> (value, grad) against non-finite output.

    A class (not a closure) so the guarded objective pickles for the
    process backend of :class:`repro.parallel.ParallelMap`, provided the
    wrapped objective itself does.
    """

    __slots__ = ("objective",)

    def __init__(self, objective: Callable):
        self.objective = objective

    def __call__(self, theta: np.ndarray):
        value, grad = self.objective(theta)
        if not np.isfinite(value):
            return _BAD_VALUE, np.zeros_like(theta)
        grad = np.asarray(grad, dtype=float)
        if not np.all(np.isfinite(grad)):
            grad = np.zeros_like(theta)
        return float(value), grad


def _wrap(objective: Callable) -> Callable:
    """Backward-compatible alias for :class:`_GuardedObjective`."""
    return _GuardedObjective(objective)


class _StartTask:
    """Run L-BFGS-B from one start; picklable for process-pool dispatch.

    Returns ``(theta, value, status)`` — plain data, so outcomes can be
    shipped across processes and merged by the parent in *start order*.
    """

    __slots__ = ("wrapped", "bounds")

    def __init__(self, wrapped: Callable, bounds: np.ndarray):
        self.wrapped = wrapped
        self.bounds = bounds

    def __call__(self, indexed_start) -> tuple[np.ndarray, float, str]:
        index, start = indexed_start
        with tm.span("restart", index=index) as sp:
            result = minimize(
                self.wrapped,
                start,
                jac=True,
                method="L-BFGS-B",
                bounds=self.bounds,
            )
            value = float(result.fun)
            if value >= _BAD_VALUE:
                # Every evaluation this start saw was non-finite; its
                # "optimum" is the substituted sentinel, not a real point.
                status = "nonfinite"
            elif result.success:
                status = "ok"
            else:
                status = "failed"
            sp.set(value=value, status=status)
        if status != "ok":
            tm.count("gp.optimize.bad_starts")
        return np.asarray(result.x), value, status


def minimize_with_restarts(
    objective: Callable,
    theta0: np.ndarray,
    bounds: np.ndarray,
    *,
    n_restarts: int = 4,
    rng=None,
    executor=None,
) -> OptimizeOutcome:
    """Minimize ``objective`` within box ``bounds`` from multiple starts.

    Parameters
    ----------
    objective:
        Callable ``theta -> (value, gradient)``; both in log space.
    theta0:
        Initial point for the first (deterministic) run.  It is clipped into
        the bounds box.
    bounds:
        Array of shape ``(n, 2)`` of [low, high] per parameter, log space.
    n_restarts:
        Additional starts sampled uniformly inside the box.
    rng:
        Seed or generator for restart sampling.
    executor:
        Optional :class:`repro.parallel.ParallelMap` running the starts
        concurrently (they are independent L-BFGS-B descents).  The
        process backend additionally requires ``objective`` to be
        picklable.  Results are identical for every backend and worker
        count: starts are sampled up-front in the parent, and the winner
        is chosen by the ``(value, start_index)`` tie-break below.

    Returns
    -------
    OptimizeOutcome
        With the best point across all starts.  Per-start results in
        ``all_thetas`` / ``all_values`` / ``statuses`` are ordered by
        *start index*, never by completion order, and the winner is the
        lexicographic minimum of ``(value, start_index)`` — so two starts
        landing on exactly the same optimum can never make the selected
        hyperparameters depend on scheduling.
    """
    theta0 = np.asarray(theta0, dtype=float)
    bounds = np.asarray(bounds, dtype=float)
    if bounds.shape != (theta0.size, 2):
        raise ValueError(
            f"bounds shape {bounds.shape} does not match theta size {theta0.size}"
        )
    if np.any(bounds[:, 0] > bounds[:, 1]):
        raise ValueError("bounds must satisfy low <= high")
    rng = np.random.default_rng(rng)
    wrapped = _wrap(objective)

    starts = [np.clip(theta0, bounds[:, 0], bounds[:, 1])]
    for _ in range(n_restarts):
        starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))

    task = _StartTask(wrapped, bounds)
    indexed = list(enumerate(starts))
    if executor is None:
        outcomes = [task(pair) for pair in indexed]
    else:
        outcomes = executor.map(task, indexed)
    all_thetas = [theta for theta, _, _ in outcomes]
    all_values = [value for _, value, _ in outcomes]
    statuses = [status for _, _, status in outcomes]
    tm.count("gp.optimize.starts", len(starts))

    if all(s == "nonfinite" for s in statuses):
        # No start ever produced a finite objective value: argmin over the
        # sentinel values would return a garbage theta as "best".  Keep the
        # caller's (clipped) initial point and say so.
        warnings.warn(
            f"all {len(starts)} optimizer starts evaluated to non-finite "
            "objective values; falling back to the (clipped) initial "
            "parameters",
            RuntimeWarning,
            stacklevel=2,
        )
        tm.count("gp.optimize.all_failed")
        return OptimizeOutcome(
            theta=starts[0].copy(),
            value=float("inf"),
            n_restarts=n_restarts,
            all_thetas=all_thetas,
            all_values=all_values,
            statuses=statuses,
            fallback=True,
        )

    finite = [v for v in all_values if v < _BAD_VALUE]
    if len(finite) > 1:
        # Spread of the per-start optima: the multi-modality diagnostic of
        # Fig. 5b (the objective is -LML, so this equals the LML spread).
        tm.observe("gp.optimize.lml_spread", max(finite) - min(finite))

    # Deterministic winner: lexicographic (value, start_index).  np.argmin
    # happens to break exact ties toward the first occurrence too, but only
    # by accident of its scan order; make the contract explicit so parallel
    # completion order can never leak into the selected hyperparameters.
    best = min(range(len(all_values)), key=lambda i: (all_values[i], i))
    return OptimizeOutcome(
        theta=all_thetas[best],
        value=all_values[best],
        n_restarts=n_restarts,
        all_thetas=all_thetas,
        all_values=all_values,
        statuses=statuses,
    )
