"""Pluggable approximate solver backends for :class:`GaussianProcessRegressor`.

The exact solver factorizes the full ``(n, n)`` kernel matrix — O(n^3)
fit, O(n^2) memory — which caps training sets at a few thousand points.
This module supplies the approximations that unlock 10^5-point pools:

``nystrom``
    Subset-of-regressors / deterministic-training-conditional (DTC)
    inducing-point approximation.  ``m`` inducing inputs are drawn from
    the training set; the posterior is built from the ``(n, m)``
    cross-covariance in O(n m^2) time and O(m^2) memory.  The predictive
    variance uses the DTC form (prior variance minus the Nystrom
    projection plus the inducing posterior), which — unlike plain SoR —
    does not collapse to zero away from the inducing set, so AL
    acquisition stays meaningful.

``rff``
    Random Fourier features (Rahimi & Recht): the RBF kernel is
    approximated by ``D`` random cosine features and the GP becomes
    Bayesian linear regression in feature space — O(n D^2) fit, O(D^2)
    memory, O(D) per-point prediction.  Supports ``ConstantKernel * RBF``
    (the repo's default covariance) including ARD length scales.

``auto``
    Picks the backend by training-set size using the measured crossover
    table below (``benchmarks/bench_solver_crossover.py`` regenerates
    the numbers).

Both approximate backends optimize hyperparameters by exact marginal
likelihood on a deterministic subsample (``opt_subset``), then build the
approximate posterior on the full data at the optimum.  Every
approximate fit carries an **error budget**: when the training set is
small enough to afford it, the predictive mean/std are compared against
the exact posterior (same hyperparameters) at held-out probe points and
the maximum deviations — in units of the target standard deviation —
are recorded and checked against ``budget_mean`` / ``budget_std``.
:class:`repro.al.guardrails.ModelHealth` turns a blown budget into an
unhealthy verdict, and the model registry persists the budget report in
the version metadata.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

__all__ = [
    "SolverConfig",
    "ApproxFitState",
    "resolve_solver",
    "SOLVER_NAMES",
    "AUTO_EXACT_MAX",
    "PER_POINT_NOISE_BACKENDS",
    "supports_per_point_noise",
]

_LOG_2PI = math.log(2.0 * math.pi)

#: Backends selectable via ``GaussianProcessRegressor(solver=...)``.
SOLVER_NAMES = ("exact", "nystrom", "rff", "auto")

#: Auto-mode crossover: largest n where the exact solver is still the
#: better choice.  Measured by ``benchmarks/bench_solver_crossover.py``
#: (see docs/API.md): fit wall-time is a tie up to ~500 points (both
#: ~0.4 s); at n=1000 the exact fit costs ~1.9 s versus ~0.55 s for the
#: subsample-opt + Nystrom build — a 3.5x premium still worth paying for
#: an approximation-free posterior — but by n=2000 it is ~15 s versus
#: ~0.7 s (20x, growing cubically) while Nystrom's test RMSE matches
#: exact to the third decimal and its budget error stays ~1e-3.
AUTO_EXACT_MAX = 1000


@dataclass(frozen=True)
class SolverConfig:
    """Configuration of the solver layer behind a regressor.

    Attributes
    ----------
    name:
        ``"exact"``, ``"nystrom"``, ``"rff"``, or ``"auto"`` (pick by
        training-set size at each fit).
    n_inducing:
        Inducing points ``m`` for the Nystrom backend.
    n_features:
        Random Fourier features ``D`` for the RFF backend.
    opt_subset:
        Hyperparameter optimization runs on at most this many training
        rows (exact LML on the subsample); the approximate posterior is
        then built on the full set at the optimum.
    budget_mean / budget_std:
        Declared error budget: maximum allowed deviation of the
        approximate predictive mean / std from the exact posterior at
        the probe points, in units of the target standard deviation.
        ``None`` (the default) resolves per backend — 0.05 / 0.10 for
        Nystrom (and ``auto``), 0.30 / 0.15 for RFF, whose kernel
        approximation error is O(sqrt(2/D)) ~ 0.09 per entry at the
        default ``n_features=256`` and cannot honestly promise the
        Nystrom budget.  Raising ``n_features`` tightens the achievable
        error (4x features ~ half the error); declare a tighter budget
        alongside it if you rely on one.
    budget_probes:
        Number of held-out probe points for the budget check.
    budget_max_exact:
        Skip the (O(n^3)) exact comparison above this training-set size;
        the budget is then recorded as unchecked rather than silently
        passed.
    auto_exact_max:
        ``auto`` uses the exact solver up to this n and Nystrom beyond.
    seed:
        Seed of the solver's private RNG (subsample choice, inducing
        selection, feature frequencies, probe points).  Independent of
        the regressor's restart RNG so the exact path draws nothing.
    """

    name: str = "exact"
    n_inducing: int = 256
    n_features: int = 256
    opt_subset: int = 512
    budget_mean: float | None = None
    budget_std: float | None = None
    budget_probes: int = 128
    budget_max_exact: int = 2048
    auto_exact_max: int = AUTO_EXACT_MAX
    seed: int = 0

    def __post_init__(self):
        if self.name not in SOLVER_NAMES:
            raise ValueError(
                f"unknown solver {self.name!r}; expected one of {SOLVER_NAMES}"
            )
        if self.budget_mean is None:
            object.__setattr__(
                self, "budget_mean", 0.30 if self.name == "rff" else 0.05
            )
        if self.budget_std is None:
            object.__setattr__(
                self, "budget_std", 0.15 if self.name == "rff" else 0.10
            )
        for attr in ("n_inducing", "n_features", "opt_subset", "budget_probes"):
            if int(getattr(self, attr)) < 1:
                raise ValueError(f"{attr} must be >= 1")
        if self.budget_mean <= 0 or self.budget_std <= 0:
            raise ValueError("error budgets must be positive")
        if self.budget_max_exact < 0 or self.auto_exact_max < 0:
            raise ValueError("budget_max_exact and auto_exact_max must be >= 0")

    def effective_backend(self, n: int) -> str:
        """Resolve ``auto`` to a concrete backend for an ``n``-point fit."""
        if self.name != "auto":
            return self.name
        return "exact" if n <= self.auto_exact_max else "nystrom"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_inducing": int(self.n_inducing),
            "n_features": int(self.n_features),
            "opt_subset": int(self.opt_subset),
            "budget_mean": float(self.budget_mean),
            "budget_std": float(self.budget_std),
            "budget_probes": int(self.budget_probes),
            "budget_max_exact": int(self.budget_max_exact),
            "auto_exact_max": int(self.auto_exact_max),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolverConfig":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


def resolve_solver(spec) -> SolverConfig:
    """Coerce a ``solver=`` argument into a :class:`SolverConfig`.

    Accepts ``None`` (exact), a backend name string, a config dict (as
    produced by :meth:`SolverConfig.to_dict`), or a ready config.
    """
    if spec is None:
        return SolverConfig()
    if isinstance(spec, SolverConfig):
        return spec
    if isinstance(spec, str):
        return SolverConfig(name=spec)
    if isinstance(spec, dict):
        return SolverConfig.from_dict(spec)
    raise ValueError(
        f"solver must be a name, dict, or SolverConfig, got {type(spec).__name__}"
    )


# -------------------------------------------------------------- fit state


@dataclass
class ApproxFitState:
    """Posterior cache of one approximate fit.

    ``arrays`` holds the backend-specific factors (inducing inputs and
    small Cholesky factors for Nystrom; frequencies and feature factors
    for RFF).  ``X``/``y`` (normalized targets) are kept in memory so
    :meth:`~repro.gp.gpr.GaussianProcessRegressor.update` can rebuild the
    posterior, but they are **not** serialized — a restored approximate
    model predicts from the compact factors alone.
    """

    backend: str
    arrays: dict
    y_mean: float
    y_std: float
    n_train: int
    training_hash: str
    lml: float
    error_budget: dict = field(default_factory=dict)
    X: np.ndarray | None = None
    y: np.ndarray | None = None

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "arrays": {k: np.asarray(v).tolist() for k, v in self.arrays.items()},
            "y_mean": float(self.y_mean),
            "y_std": float(self.y_std),
            "n_train": int(self.n_train),
            "training_hash": self.training_hash,
            "lml": float(self.lml),
            "error_budget": dict(self.error_budget),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ApproxFitState":
        return cls(
            backend=str(payload["backend"]),
            arrays={
                k: np.asarray(v, dtype=float)
                for k, v in payload["arrays"].items()
            },
            y_mean=float(payload["y_mean"]),
            y_std=float(payload["y_std"]),
            n_train=int(payload["n_train"]),
            training_hash=str(payload["training_hash"]),
            lml=float(payload["lml"]),
            error_budget=dict(payload.get("error_budget") or {}),
        )

    def clone(self) -> "ApproxFitState":
        return replace(
            self,
            arrays={k: np.array(v, copy=True) for k, v in self.arrays.items()},
            error_budget=dict(self.error_budget),
            X=None if self.X is None else self.X.copy(),
            y=None if self.y is None else self.y.copy(),
        )


def training_hash(X: np.ndarray, y_norm: np.ndarray, y_mean: float, y_std: float) -> str:
    """SHA-256 fingerprint of a training set (shared exact/approx format)."""
    h = hashlib.sha256()
    h.update(np.int64(X.shape[0]).tobytes())
    h.update(np.int64(X.shape[1]).tobytes())
    h.update(np.ascontiguousarray(X, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(y_norm, dtype=np.float64).tobytes())
    h.update(np.float64(y_mean).tobytes())
    h.update(np.float64(y_std).tobytes())
    return h.hexdigest()


# ------------------------------------------------------------------ RFF


def rbf_spectral_params(kernel, n_features_in: int) -> tuple[float, np.ndarray]:
    """Extract ``(amplitude, length_scales)`` from a (Constant *) RBF kernel.

    The RFF backend needs the spectral density of the covariance, which
    this repo's kernel algebra spells as ``ConstantKernel * RBF`` (either
    operand order) or a bare ``RBF``.  Anything else — Matern, sums,
    White terms — raises ``ValueError`` with a pointer at the Nystrom
    backend, which handles arbitrary kernels.
    """
    from .kernels import RBF, ConstantKernel, Matern, Product

    amplitude = 1.0
    rbf = None
    if isinstance(kernel, Product):
        k1, k2 = kernel.k1, kernel.k2
        if isinstance(k1, ConstantKernel) and type(k2) is RBF:
            amplitude, rbf = k1.constant_value, k2
        elif isinstance(k2, ConstantKernel) and type(k1) is RBF:
            amplitude, rbf = k2.constant_value, k1
    elif type(kernel) is RBF:
        rbf = kernel
    if rbf is None or isinstance(rbf, Matern):
        raise ValueError(
            f"the rff solver supports ConstantKernel * RBF kernels only, "
            f"got {kernel!r}; use solver='nystrom' for arbitrary kernels"
        )
    ls = np.atleast_1d(np.asarray(rbf.length_scale, dtype=float))
    if ls.size == 1:
        ls = np.full(n_features_in, float(ls[0]))
    elif ls.size != n_features_in:
        raise ValueError(
            f"ARD length_scale has {ls.size} entries for {n_features_in} features"
        )
    return float(amplitude), ls


def _rff_features(X: np.ndarray, arrays: dict) -> np.ndarray:
    """Feature map ``phi(X)`` of shape ``(n, D)`` for the stored frequencies."""
    proj = X @ arrays["W"].T + arrays["b"]
    return float(arrays["scale"][0]) * np.cos(proj)


def _fit_rff(kernel, noise_variance, jitter, X, y_norm, cfg, rng) -> dict:
    amplitude, length_scales = rbf_spectral_params(kernel, X.shape[1])
    D = int(cfg.n_features)
    W = rng.standard_normal((D, X.shape[1])) / length_scales
    b = rng.uniform(0.0, 2.0 * math.pi, size=D)
    scale = math.sqrt(2.0 * max(amplitude, 0.0) / D)
    arrays = {"W": W, "b": b, "scale": np.array([scale])}
    # Accumulate A = Phi^T Phi and Phi^T y in row chunks so the (n, D)
    # feature matrix never materializes at once (100k x 1024 is 800 MB).
    n = X.shape[0]
    A = np.zeros((D, D))
    phi_y = np.zeros(D)
    for start in range(0, n, _CHUNK_ROWS):
        phi_c = _rff_features(X[start : start + _CHUNK_ROWS], arrays)
        A += phi_c.T @ phi_c
        phi_y += phi_c.T @ y_norm[start : start + _CHUNK_ROWS]
    A[np.diag_indices_from(A)] += noise_variance + jitter
    La = _chol_relative(A, 1e-12)
    w = cho_solve((La, True), phi_y, check_finite=False)
    arrays["La"] = La
    arrays["w"] = w

    # Marginal likelihood of the feature-space linear model
    # y ~ N(0, Phi Phi^T + sigma_n^2 I) via the determinant lemma.
    sn2 = noise_variance + jitter
    quad = (float(y_norm @ y_norm) - float(phi_y @ w)) / sn2
    logdet = (
        2.0 * float(np.sum(np.log(np.diag(La))))
        - D * math.log(sn2)
        + n * math.log(sn2)
    )
    arrays["lml"] = np.array([-0.5 * (quad + logdet + n * _LOG_2PI)])
    return arrays


def _predict_rff(arrays, kernel, noise_variance, jitter, Xq, want):
    phi = _rff_features(Xq, arrays)
    mean = phi @ arrays["w"]
    if want is None:
        return mean, None
    sn2 = noise_variance + jitter
    v = solve_triangular(arrays["La"], phi.T, lower=True, check_finite=False)
    if want == "cov":
        return mean, sn2 * (v.T @ v)
    return mean, sn2 * np.sum(v**2, axis=0)


# -------------------------------------------------------------- Nystrom


_CHUNK_ROWS = 8192  # bounds the transient (chunk, m) cross-covariance


def _chol_relative(M: np.ndarray, base: float) -> np.ndarray:
    """Lower Cholesky of a PSD matrix with escalating *relative* jitter.

    The regularizer scales with the matrix's own diagonal magnitude —
    an absolute nudge is pure roundoff once the matrix carries a
    ``sigma_n^-2`` or ``y_std^2`` factor — and escalates 10x per retry
    over six attempts before giving up.
    """
    scale = max(float(np.mean(np.diag(M))), np.finfo(float).tiny)
    jitter = max(base, 1e-12) * scale
    eye = np.eye(M.shape[0])
    for attempt in range(6):
        try:
            return cholesky(M + jitter * eye, lower=True, check_finite=False)
        except np.linalg.LinAlgError:
            if attempt == 5:
                raise
            jitter *= 10.0
    raise AssertionError("unreachable")


def _fit_nystrom(kernel, noise_variance, jitter, X, y_norm, cfg, rng) -> dict:
    n = X.shape[0]
    m = min(int(cfg.n_inducing), n)
    idx = np.sort(rng.choice(n, size=m, replace=False))
    Z = X[idx].copy()

    # Relative jitter on the small factors: K_mm has no noise term, and
    # duplicate training rows (repeated measurements) make it exactly
    # singular without it.
    K_mm = kernel(Z)
    Lm = _chol_relative(K_mm, max(jitter, 1e-10))
    sn2 = noise_variance + jitter

    # Accumulate C = K_mm + sigma^-2 K_mn K_nm and b = K_mn y in row
    # chunks so the (n, m) cross-covariance never materializes at once.
    C = np.array(K_mm, copy=True)
    b = np.zeros(m)
    for start in range(0, n, _CHUNK_ROWS):
        K_cm = kernel(X[start : start + _CHUNK_ROWS], Z)  # (c, m)
        C += (K_cm.T @ K_cm) / sn2
        b += K_cm.T @ y_norm[start : start + _CHUNK_ROWS]
    Lc = _chol_relative(C, max(jitter, 1e-10))
    w = cho_solve((Lc, True), b, check_finite=False) / sn2

    # DTC marginal likelihood: y ~ N(0, Q_nn + sigma^2 I) with
    # Q = K_nm K_mm^-1 K_mn, via Woodbury + the determinant lemma.
    quad = (float(y_norm @ y_norm) - float(b @ cho_solve((Lc, True), b)) / sn2) / sn2
    logdet = (
        2.0 * float(np.sum(np.log(np.diag(Lc))))
        - 2.0 * float(np.sum(np.log(np.diag(Lm))))
        + n * math.log(sn2)
    )
    lml = -0.5 * (quad + logdet + n * _LOG_2PI)
    return {"Z": Z, "Lm": Lm, "Lc": Lc, "w": w, "lml": np.array([lml])}


def _predict_nystrom(arrays, kernel, noise_variance, jitter, Xq, want):
    K_sm = kernel(Xq, arrays["Z"])  # (q, m)
    mean = K_sm @ arrays["w"]
    if want is None:
        return mean, None
    v1 = solve_triangular(arrays["Lm"], K_sm.T, lower=True, check_finite=False)
    v2 = solve_triangular(arrays["Lc"], K_sm.T, lower=True, check_finite=False)
    if want == "cov":
        cov = kernel(Xq) - v1.T @ v1 + v2.T @ v2
        return mean, cov
    var = kernel.diag(Xq) - np.sum(v1**2, axis=0) + np.sum(v2**2, axis=0)
    return mean, var


# ------------------------------------------------------------- dispatch


_BACKENDS = {
    "nystrom": (_fit_nystrom, _predict_nystrom),
    "rff": (_fit_rff, _predict_rff),
}

#: Backends whose posterior factorization can carry a per-point noise
#: variance vector (heteroscedastic ``fit(alpha=...)``).  The low-rank
#: backends build ``K_y`` implicitly through inducing points / random
#: features and have no per-row diagonal to attach ``alpha`` to, so they
#: declare it unsupported; ``GaussianProcessRegressor.fit`` falls back to
#: the exact solver (with a warning) when ``alpha`` is given.
PER_POINT_NOISE_BACKENDS = frozenset({"exact"})


def supports_per_point_noise(backend: str) -> bool:
    """Whether ``backend`` can fit with a per-point noise vector."""
    return backend in PER_POINT_NOISE_BACKENDS


def fit_backend(
    backend: str, kernel, noise_variance, jitter, X, y_norm, cfg, rng
) -> dict:
    """Build the posterior factors of one approximate backend."""
    try:
        fit, _ = _BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown approximate backend {backend!r}") from None
    return fit(kernel, noise_variance, jitter, X, y_norm, cfg, rng)


def predict_backend(
    state: ApproxFitState, kernel, noise_variance, jitter, Xq, want=None
):
    """Latent predictive mean (and variance/covariance) in normalized units.

    ``want`` is ``None`` (mean only), ``"var"`` (diagonal) or ``"cov"``.
    The caller applies variance clamping, the noise term, and target
    un-normalization — the same post-processing as the exact path.
    """
    _, predict = _BACKENDS[state.backend]
    return predict(state.arrays, kernel, noise_variance, jitter, Xq, want)


# --------------------------------------------------------- error budget


def check_error_budget(
    state: ApproxFitState,
    kernel,
    noise_variance: float,
    jitter: float,
    X: np.ndarray,
    y_norm: np.ndarray,
    cfg: SolverConfig,
    rng,
) -> dict:
    """Compare the approximate posterior against the exact one at probes.

    Returns the budget record stored in ``state.error_budget`` (and, via
    the registry, in version metadata)::

        {"checked": bool, "n_probes": int,
         "max_mean_err": float, "max_std_err": float,
         "budget_mean": float, "budget_std": float,
         "within_budget": bool | None}

    Deviations are measured on the *latent* predictive mean and std, in
    normalized-target units (i.e. fractions of the target standard
    deviation).  Above ``cfg.budget_max_exact`` training points the exact
    posterior is unaffordable and the record says ``checked: False``
    with ``within_budget: None`` — an unchecked budget is never reported
    as passed.
    """
    n = X.shape[0]
    record = {
        "checked": False,
        "n_probes": 0,
        "max_mean_err": None,
        "max_std_err": None,
        "budget_mean": float(cfg.budget_mean),
        "budget_std": float(cfg.budget_std),
        "within_budget": None,
    }
    if n > cfg.budget_max_exact:
        return record

    lo, hi = X.min(axis=0), X.max(axis=0)
    probes = rng.uniform(lo, hi, size=(int(cfg.budget_probes), X.shape[1]))

    K = kernel(X)
    K[np.diag_indices_from(K)] += noise_variance + jitter
    L = cholesky(K, lower=True, check_finite=False)
    alpha = cho_solve((L, True), y_norm, check_finite=False)
    K_star = kernel(probes, X)
    mean_exact = K_star @ alpha
    v = solve_triangular(L, K_star.T, lower=True, check_finite=False)
    var_exact = np.maximum(kernel.diag(probes) - np.sum(v**2, axis=0), 0.0)

    mean_ap, var_ap = predict_backend(
        state, kernel, noise_variance, jitter, probes, want="var"
    )
    var_ap = np.maximum(var_ap, 0.0)

    mean_err = float(np.max(np.abs(mean_ap - mean_exact)))
    std_err = float(np.max(np.abs(np.sqrt(var_ap) - np.sqrt(var_exact))))
    record.update(
        checked=True,
        n_probes=int(probes.shape[0]),
        max_mean_err=mean_err,
        max_std_err=std_err,
        within_budget=bool(
            mean_err <= cfg.budget_mean and std_err <= cfg.budget_std
        ),
    )
    return record
