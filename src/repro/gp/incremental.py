"""Incremental Cholesky updates for rank-1 GP posterior refits.

Appending one training point to a fitted GP changes ``K_y`` by one bordered
row/column:

    K_y'  =  [ K_y   k  ]        L'  =  [ L        0   ]
             [ k^T   k* ]               [ l12^T   l22  ]

with ``l12 = L^{-1} k`` (one triangular solve, O(n^2)) and
``l22 = sqrt(k* - l12^T l12)``.  The bordered factor is *exact* — it is the
same matrix Cholesky would produce from scratch — so an AL iteration that
holds the hyperparameters fixed can extend the posterior in O(n^2) instead
of refactorizing in O(n^3).

``l22`` exists only while ``K_y'`` stays positive definite; with the noise
term on the diagonal the pivot is bounded below by ``sigma_n^2`` in exact
arithmetic, but accumulated floating-point error can still push it to zero
(e.g. after thousands of updates at tiny noise).  :func:`cholesky_append`
raises :class:`NotPositiveDefiniteError` in that case so callers can fall
back to a full refactorization.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from .. import telemetry as tm

__all__ = ["NotPositiveDefiniteError", "cholesky_append"]


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """The bordered matrix is not numerically positive definite.

    Raised by :func:`cholesky_append` when the new diagonal pivot is not
    safely positive; the caller should rebuild the factor from scratch.
    """


def cholesky_append(
    L: np.ndarray,
    k: np.ndarray,
    k_self: float,
    *,
    rel_pivot: float = 1e-12,
) -> np.ndarray:
    """Extend a lower Cholesky factor by one bordered row/column in O(n^2).

    Parameters
    ----------
    L:
        Lower-triangular factor of the current ``(n, n)`` matrix.
    k:
        Cross-covariance column between the new point and the ``n`` existing
        points, shape ``(n,)``.
    k_self:
        Self-covariance of the new point (kernel diagonal plus noise and
        jitter) — the new diagonal entry.
    rel_pivot:
        The update is rejected when the squared pivot falls below
        ``rel_pivot * k_self``, i.e. when the Schur complement has lost
        essentially all of its ``k_self`` significance to cancellation.

    Returns
    -------
    numpy.ndarray
        The ``(n + 1, n + 1)`` lower factor of the bordered matrix.

    Raises
    ------
    NotPositiveDefiniteError
        If the bordered matrix is not numerically positive definite.
    """
    L = np.asarray(L, dtype=float)
    k = np.asarray(k, dtype=float).ravel()
    n = L.shape[0]
    if L.shape != (n, n):
        raise ValueError(f"L must be square, got shape {L.shape}")
    if k.shape != (n,):
        raise ValueError(f"k has shape {k.shape}, expected ({n},)")
    k_self = float(k_self)

    l12 = solve_triangular(L, k, lower=True, check_finite=False)
    pivot_sq = k_self - float(l12 @ l12)
    tm.count("gp.cholesky_append.total")
    if not np.isfinite(pivot_sq) or pivot_sq <= rel_pivot * abs(k_self):
        tm.count("gp.cholesky_append.not_pd")
        raise NotPositiveDefiniteError(
            f"bordered pivot^2 = {pivot_sq:.3e} (diagonal {k_self:.3e}); "
            "matrix is no longer numerically positive definite"
        )
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = L
    out[n, :n] = l12
    out[n, n] = np.sqrt(pivot_sq)
    return out
