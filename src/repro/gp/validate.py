"""Shared input-validation helpers for the :mod:`repro.gp` package.

These are small, dependency-free utilities used by the kernel and regressor
classes to normalize user input into contiguous ``float64`` arrays and to
produce actionable error messages.  They are deliberately strict: the GP
stack is the numerical core of the reproduction and silent shape coercion
is a common source of hard-to-find bugs in AL loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_2d_array", "as_1d_array", "check_consistent_rows", "check_bounds"]


def as_2d_array(X, *, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a C-contiguous 2-D float64 array.

    1-D input is interpreted as a single feature column (``(n,) -> (n, 1)``),
    which matches how the paper's 1-D problem-size studies pass data.

    Raises
    ------
    ValueError
        If the input has more than two dimensions, is empty, or contains
        non-finite values.
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return np.ascontiguousarray(arr)


def as_1d_array(y, *, name: str = "y") -> np.ndarray:
    """Coerce ``y`` to a contiguous 1-D float64 array and validate finiteness."""
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr[:, 0]
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return np.ascontiguousarray(arr)


def check_consistent_rows(X: np.ndarray, y: np.ndarray) -> None:
    """Ensure the design matrix and response vector agree on sample count."""
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have inconsistent sample counts: {X.shape[0]} vs {y.shape[0]}"
        )


def check_bounds(bounds, *, name: str) -> tuple[float, float]:
    """Validate a ``(low, high)`` positive bounds pair and return it as floats.

    The pair may also be the string ``"fixed"`` which is passed through; fixed
    hyperparameters are excluded from optimization.
    """
    if isinstance(bounds, str):
        if bounds != "fixed":
            raise ValueError(f"{name} bounds must be a (low, high) pair or 'fixed'")
        return bounds  # type: ignore[return-value]
    low, high = float(bounds[0]), float(bounds[1])
    if not (np.isfinite(low) and np.isfinite(high)):
        raise ValueError(f"{name} bounds must be finite, got ({low}, {high})")
    if low <= 0 or high <= 0:
        raise ValueError(f"{name} bounds must be positive, got ({low}, {high})")
    if low > high:
        raise ValueError(f"{name} bounds must satisfy low <= high, got ({low}, {high})")
    return (low, high)
