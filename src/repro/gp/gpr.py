"""Gaussian Process Regression with explicit noise hyperparameter.

Implements the paper's Section III model (Eqs. 3-13):

    y = f(X) + N(0, sigma_n^2)

with predictive posterior

    mu_*    = k_*^T K_y^{-1} y                         (Eq. 5)
    sigma_*^2 = k_** - k_*^T K_y^{-1} k_*              (Eq. 6)
    K_y     = K + sigma_n^2 I                          (Eq. 7)

and Bayesian model selection by maximizing the log marginal likelihood
(Eqs. 12-13) over the kernel hyperparameters **and** the noise level, with
multi-restart gradient ascent exactly as the paper describes for the
scikit-learn implementation it used.

Unlike scikit-learn, the noise variance ``sigma_n^2`` is a first-class
attribute of the regressor rather than a ``WhiteKernel`` term.  This makes
the paper's central tuning knob — the lower bound of the ``sigma_n`` search
space (Section V-B4, Fig. 7) — a single constructor argument:

>>> gpr = GaussianProcessRegressor(noise_variance_bounds=(1e-1, 1e2))

All hyperparameters are optimized in log space.

Heteroscedastic extension (``docs/MULTIFIDELITY.md``): :meth:`fit` accepts a
per-point noise variance vector ``alpha`` so that

    K_y = K + sigma_n^2 I + diag(alpha)

where ``alpha_i`` is the *known* measurement variance of observation ``i``
(fidelity-tier noise, precision-fused repeats) and the scalar ``sigma_n^2``
is still learned and models the residual noise shared by all observations.
With ``alpha=None`` every code path is bit-identical to the scalar model.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from .. import telemetry as tm
from .incremental import NotPositiveDefiniteError, cholesky_append
from .kernels import RBF, ConstantKernel, Kernel, kernel_from_dict, kernel_to_dict
from .optimize import OptimizeOutcome, minimize_with_restarts
from .solvers import ApproxFitState, SolverConfig, resolve_solver
from . import solvers as _solvers
from .validate import as_1d_array, as_2d_array, check_consistent_rows

__all__ = ["GaussianProcessRegressor", "SolverConfig", "default_kernel"]

_LOG_2PI = math.log(2.0 * math.pi)

#: Format version of the :meth:`GaussianProcessRegressor.to_dict` payload.
_SERIAL_VERSION = 1


def default_kernel(n_features: int = 1, *, ard: bool = False) -> Kernel:
    """The paper's covariance: amplitude ``sigma_f^2`` times squared exponential.

    Parameters
    ----------
    n_features:
        Input dimensionality; used only when ``ard`` is true.
    ard:
        If true, use a separate length scale per input dimension.
    """
    length_scale = np.ones(n_features) if ard else 1.0
    return ConstantKernel(1.0, (1e-3, 1e3)) * RBF(length_scale, (1e-2, 1e3))


class _FitObjective:
    """Picklable ``theta -> (negative LML, gradient)`` for one fit's data.

    Built fresh per :meth:`GaussianProcessRegressor.fit` from the kernel
    template and training arrays.  Each call evaluates on a throwaway
    regressor, so the objective is stateless: safe to invoke concurrently
    from restart threads and cheap to pickle to restart processes (see
    ``minimize_with_restarts(..., executor=)``).
    """

    __slots__ = (
        "kernel", "noise_variance", "noise_variance_bounds", "jitter", "X", "y",
        "alpha",
    )

    def __init__(self, kernel, noise_variance, noise_variance_bounds, jitter, X, y,
                 alpha=None):
        self.kernel = kernel
        self.noise_variance = noise_variance
        self.noise_variance_bounds = noise_variance_bounds
        self.jitter = jitter
        self.X = X
        self.y = y
        self.alpha = alpha  # per-point noise variance (units of y), or None

    def __call__(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        model = GaussianProcessRegressor(
            kernel=self.kernel,
            noise_variance=self.noise_variance,
            noise_variance_bounds=self.noise_variance_bounds,
            optimizer=None,
            jitter=self.jitter,
        )
        return model._nlml_and_grad(theta, self.X, self.y, alpha=self.alpha)


@dataclass
class _FitState:
    """Quantities cached by :meth:`GaussianProcessRegressor.fit`."""

    X: np.ndarray
    y: np.ndarray  # normalized training targets
    y_mean: float
    y_std: float
    L: np.ndarray  # Cholesky factor of K_y (lower)
    alpha: np.ndarray  # K_y^{-1} y
    lml: float
    optimize_outcome: OptimizeOutcome | None = None
    theta_history: list = field(default_factory=list)
    #: Per-point noise variances in *original* target units (heteroscedastic
    #: fits only); ``None`` on the scalar-noise path.  Named ``noise_alpha``
    #: because ``alpha`` above already means the weight vector K_y^{-1} y.
    noise_alpha: np.ndarray | None = None


class GaussianProcessRegressor:
    """GPR with jointly-optimized kernel hyperparameters and noise variance.

    Parameters
    ----------
    kernel:
        Noise-free covariance of the latent function.  Defaults to
        ``ConstantKernel * RBF`` (the paper's squared exponential with
        amplitude), created lazily with the right dimensionality at fit time.
    noise_variance:
        Initial value of ``sigma_n^2``.
    noise_variance_bounds:
        ``(low, high)`` search interval for ``sigma_n^2`` during marginal-
        likelihood optimization, or ``"fixed"`` to keep it at its initial
        value.  The paper studies floors of ``1e-8`` (overfits with few
        points) and ``1e-1`` (robust).
    n_restarts:
        Number of additional random restarts for the hyperparameter search
        beyond the run started at the current values (the paper: "repeats
        this search multiple times, each time starting from a random point").
    normalize_y:
        If true, center/scale targets before fitting and undo on prediction.
    optimizer:
        ``"lbfgs"`` (default) or ``None`` to skip hyperparameter fitting.
    rng:
        Seed or :class:`numpy.random.Generator` for restart sampling.
    jitter:
        Tiny diagonal regularizer added on top of ``sigma_n^2`` for Cholesky
        robustness.
    executor:
        Optional :class:`repro.parallel.ParallelMap` running the restart
        descents of every fit concurrently.  Restart starting points are
        sampled up-front from ``rng`` and the winner is merged by
        ``(value, start_index)``, so the fitted hyperparameters are
        bit-identical with and without an executor, for any backend and
        worker count.  Worth it for restart-heavy fits
        (``benchmarks/bench_parallel.py``); the per-fit pool spin-up
        dominates for small ``n_restarts``.
    solver:
        Solver backend: ``"exact"`` (default; the O(n^3) Cholesky path,
        bit-identical to previous releases), ``"nystrom"`` (inducing
        points, O(n m^2)), ``"rff"`` (random Fourier features, O(n D^2)),
        ``"auto"`` (exact below the measured crossover size, Nystrom
        beyond), or a :class:`repro.gp.solvers.SolverConfig` for full
        control over approximation sizes and the error budget.  See
        :mod:`repro.gp.solvers`.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise_variance: float = 1e-2,
        noise_variance_bounds=(1e-8, 1e3),
        n_restarts: int = 4,
        normalize_y: bool = False,
        optimizer: str | None = "lbfgs",
        rng=None,
        jitter: float = 1e-10,
        executor=None,
        solver="exact",
    ):
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        if isinstance(noise_variance_bounds, str):
            if noise_variance_bounds != "fixed":
                raise ValueError("noise_variance_bounds must be (low, high) or 'fixed'")
        else:
            low, high = noise_variance_bounds
            if low <= 0 or high <= 0 or low > high:
                raise ValueError(
                    f"invalid noise_variance_bounds ({low}, {high}): need 0 < low <= high"
                )
        if optimizer not in ("lbfgs", None):
            raise ValueError(f"unknown optimizer {optimizer!r}")
        if n_restarts < 0:
            raise ValueError("n_restarts must be >= 0")
        self.kernel = kernel
        #: template value: every fit restarts the noise search from here
        self.noise_variance = float(noise_variance)
        #: fitted/current value used by predictions and LML evaluations
        self.noise_variance_ = float(noise_variance)
        self.noise_variance_bounds = noise_variance_bounds
        self.n_restarts = int(n_restarts)
        self.normalize_y = bool(normalize_y)
        self.optimizer = optimizer
        self.rng = np.random.default_rng(rng)
        self.jitter = float(jitter)
        self.executor = executor
        self.solver = resolve_solver(solver)
        self.kernel_: Kernel | None = None
        self._fit: _FitState | None = None
        self._afit: ApproxFitState | None = None

    # ------------------------------------------------------------------ fitting

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fit is not None or self._afit is not None

    @property
    def solver_info(self) -> dict | None:
        """JSON-safe description of the solver behind the current fit.

        ``None`` before any fit.  Exact fits report ``{"name": "exact"}``;
        approximate fits add the approximation size and the error-budget
        record (see :func:`repro.gp.solvers.check_error_budget`).  The
        model registry folds this into version metadata and
        :class:`repro.al.guardrails.ModelHealth` flags blown budgets.
        """
        if self._afit is not None:
            info = {"name": self._afit.backend}
            if self._afit.backend == "nystrom":
                info["n_inducing"] = int(self._afit.arrays["Z"].shape[0])
            elif self._afit.backend == "rff":
                info["n_features"] = int(self._afit.arrays["W"].shape[0])
            info["error_budget"] = dict(self._afit.error_budget)
            return info
        if self._fit is not None:
            return {"name": "exact"}
        return None

    @property
    def _noise_free(self) -> bool:
        return self.noise_variance_bounds == "fixed"

    def _theta(self) -> np.ndarray:
        """Joint log-space hyperparameter vector [kernel theta..., log sigma_n^2]."""
        assert self.kernel_ is not None
        parts = [self.kernel_.theta]
        if not self._noise_free:
            parts.append([math.log(self.noise_variance_)])
        return np.concatenate(parts) if parts else np.empty(0)

    def _set_theta(self, theta: np.ndarray) -> None:
        assert self.kernel_ is not None
        nk = self.kernel_.n_dims
        self.kernel_.theta = theta[:nk]
        if not self._noise_free:
            self.noise_variance_ = float(np.exp(theta[nk]))

    def _theta_bounds(self) -> np.ndarray:
        assert self.kernel_ is not None
        bounds = self.kernel_.bounds
        if not self._noise_free:
            nb = np.log(np.asarray(self.noise_variance_bounds, dtype=float))
            bounds = np.vstack([bounds, nb[np.newaxis, :]]) if bounds.size else nb[np.newaxis, :]
        return bounds

    def fit(
        self, X, y, *, alpha=None, warm_start: bool = False
    ) -> "GaussianProcessRegressor":
        """Fit the GP: optimize hyperparameters by LML ascent, cache posterior.

        Repeated x-rows (the paper's repeated measurements of a noisy
        function) are supported directly: the noise term makes ``K_y``
        nonsingular even with duplicate inputs.

        ``alpha`` is an optional per-point noise variance vector of shape
        ``(n,)`` in the units of ``y``'s variance (heteroscedastic
        observations, e.g. precision-fused repeats or multi-fidelity
        probes).  The diagonal becomes ``sigma_n^2 + alpha_i``: the shared
        scalar ``sigma_n^2`` is still learned by LML ascent and models the
        *residual* noise common to every observation, while ``alpha``
        carries the known per-observation measurement variance.  With
        ``alpha=None`` the fit is bit-identical to the scalar-noise path of
        previous releases.  Per-point noise requires numeric
        ``noise_variance_bounds`` (a ``"fixed"`` scalar would be silently
        added on top of every ``alpha_i``, overriding the per-point
        precisions — that conflict raises ``ValueError``) and the exact
        solver (approximate backends declare it unsupported and the fit
        falls back to exact with a warning).

        With ``warm_start=True`` the deterministic start of the
        hyperparameter search is the *previous* fit's optimum instead of the
        constructor template — across consecutive AL iterations the optimum
        barely moves, so L-BFGS converges in a handful of evaluations.  The
        random restarts still sample the full bounds box.
        """
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_rows(X, y)
        if alpha is not None:
            alpha = self._check_alpha(alpha, X.shape[0])

        backend = self.solver.effective_backend(X.shape[0])
        if alpha is not None and not _solvers.supports_per_point_noise(backend):
            warnings.warn(
                f"solver backend {backend!r} does not support per-point "
                "noise (alpha); falling back to the exact solver",
                RuntimeWarning,
                stacklevel=2,
            )
            tm.count("gp.fit.alpha_exact_fallback")
            backend = "exact"
        if backend == "exact":
            with tm.span(
                "fit",
                n=X.shape[0],
                warm_start=bool(warm_start),
                heteroscedastic=alpha is not None,
            ) as sp:
                self._fit_impl(X, y, alpha=alpha, warm_start=warm_start, sp=sp)
            self._afit = None
        else:
            with tm.span(
                "fit", n=X.shape[0], warm_start=bool(warm_start), solver=backend
            ) as sp:
                self._fit_approx_impl(X, y, backend, warm_start=warm_start, sp=sp)
            self._fit = None
        return self

    def _check_alpha(self, alpha, n: int) -> np.ndarray:
        """Validate a per-point noise variance vector against ``n`` rows."""
        alpha = as_1d_array(alpha)
        if alpha.shape[0] != n:
            raise ValueError(
                f"alpha has {alpha.shape[0]} entries, expected {n} (one per row)"
            )
        if not np.all(np.isfinite(alpha)):
            raise ValueError("alpha must be finite")
        if np.any(alpha < 0):
            raise ValueError("alpha entries must be >= 0 (noise variances)")
        if self._noise_free:
            raise ValueError(
                "per-point noise (alpha) conflicts with "
                "noise_variance_bounds='fixed': the fixed scalar "
                f"sigma_n^2={self.noise_variance_:g} would be added on top "
                "of every alpha_i and silently override the per-point "
                "precisions; use numeric bounds so the shared residual "
                "scalar is learned alongside alpha"
            )
        return alpha

    def _fit_impl(self, X, y, *, warm_start: bool, sp, alpha=None) -> None:
        tel = tm.enabled()
        t0 = time.perf_counter() if tel else 0.0
        if warm_start and self.kernel_ is not None:
            # Keep the current kernel_/noise_variance_ as the search start.
            pass
        elif self.kernel is None:
            # Each cold fit restarts from the template state (like
            # scikit-learn's kernel cloning): repeated fits must not
            # warm-start from the previous fit's optimum unless asked to.
            self.kernel_ = default_kernel(X.shape[1])
            self.noise_variance_ = self.noise_variance
        else:
            self.kernel_ = self.kernel.clone_with_theta(self.kernel.theta)
            self.noise_variance_ = self.noise_variance

        if self.normalize_y:
            y_mean = float(np.mean(y))
            y_std = float(np.std(y))
            if y_std == 0.0:
                y_std = 1.0
        else:
            y_mean, y_std = 0.0, 1.0
        y_norm = (y - y_mean) / y_std
        # alpha is given in original y-variance units; normalized targets
        # scale variances by 1/y_std^2.
        alpha_norm = alpha / y_std**2 if alpha is not None else None

        outcome = None
        theta_history: list[np.ndarray] = []
        theta0 = self._theta()
        if self.optimizer is not None and theta0.size > 0:
            # A picklable, stateless objective (not a bound-method closure)
            # so restart descents can run on thread or process pools.
            objective = _FitObjective(
                self.kernel_.clone_with_theta(self.kernel_.theta),
                self.noise_variance_,
                self.noise_variance_bounds,
                self.jitter,
                X,
                y_norm,
                alpha_norm,
            )

            outcome = minimize_with_restarts(
                objective,
                theta0,
                self._theta_bounds(),
                n_restarts=self.n_restarts,
                rng=self.rng,
                executor=self.executor,
            )
            self._set_theta(outcome.theta)
            theta_history = outcome.all_thetas

        K = self.kernel_(X)
        K[np.diag_indices_from(K)] += self.noise_variance_ + self.jitter
        if alpha_norm is not None:
            K[np.diag_indices_from(K)] += alpha_norm
        L = cholesky(K, lower=True, check_finite=False)
        weights = cho_solve((L, True), y_norm, check_finite=False)
        lml = self._lml_from_cholesky(L, weights, y_norm)

        self._fit = _FitState(
            X=X,
            y=y_norm,
            y_mean=y_mean,
            y_std=y_std,
            L=L,
            alpha=weights,
            lml=lml,
            optimize_outcome=outcome,
            theta_history=theta_history,
            noise_alpha=alpha,
        )
        if tel:
            tm.count("gp.fit.total")
            tm.observe("gp.fit.seconds", time.perf_counter() - t0)
            sp.set(lml=lml, noise_variance=self.noise_variance_)
            if outcome is not None:
                n_bad = sum(1 for s in outcome.statuses if s != "ok")
                sp.set(n_starts=len(outcome.statuses), n_bad_starts=n_bad)
                if outcome.fallback:
                    tm.count("gp.fit.optimizer_fallback")

    def _fit_approx_impl(self, X, y, backend: str, *, warm_start: bool, sp) -> None:
        """Approximate-backend fit: subsample-opt hyperparameters, then build.

        Hyperparameters are optimized by *exact* marginal likelihood on a
        deterministic subsample of at most ``solver.opt_subset`` rows (the
        full-set exact LML is the very O(n^3) this backend avoids); the
        approximate posterior is then assembled on the full training set
        at the optimum, and the error budget is checked
        (:func:`repro.gp.solvers.check_error_budget`).
        """
        tel = tm.enabled()
        t0 = time.perf_counter() if tel else 0.0
        cfg = self.solver
        # Private, seeded RNG: subsample choice, inducing selection /
        # feature frequencies, and probe points are reproducible per
        # config and never consume the restart RNG.
        solver_rng = np.random.default_rng(cfg.seed)

        if warm_start and self.kernel_ is not None:
            pass  # keep the current kernel_/noise_variance_ as the start
        elif self.kernel is None:
            self.kernel_ = default_kernel(X.shape[1])
            self.noise_variance_ = self.noise_variance
        else:
            self.kernel_ = self.kernel.clone_with_theta(self.kernel.theta)
            self.noise_variance_ = self.noise_variance

        if backend == "rff":
            # Fail before the (possibly long) optimization, not after.
            _solvers.rbf_spectral_params(self.kernel_, X.shape[1])

        if self.normalize_y:
            y_mean = float(np.mean(y))
            y_std = float(np.std(y))
            if y_std == 0.0:
                y_std = 1.0
        else:
            y_mean, y_std = 0.0, 1.0
        y_norm = (y - y_mean) / y_std

        n = X.shape[0]
        if n > cfg.opt_subset:
            sub = np.sort(solver_rng.choice(n, size=cfg.opt_subset, replace=False))
            X_opt, y_opt = X[sub], y_norm[sub]
        else:
            X_opt, y_opt = X, y_norm

        outcome = None
        theta0 = self._theta()
        if self.optimizer is not None and theta0.size > 0:
            objective = _FitObjective(
                self.kernel_.clone_with_theta(self.kernel_.theta),
                self.noise_variance_,
                self.noise_variance_bounds,
                self.jitter,
                X_opt,
                y_opt,
            )
            outcome = minimize_with_restarts(
                objective,
                theta0,
                self._theta_bounds(),
                n_restarts=self.n_restarts,
                rng=self.rng,
                executor=self.executor,
            )
            self._set_theta(outcome.theta)

        arrays = _solvers.fit_backend(
            backend,
            self.kernel_,
            self.noise_variance_,
            self.jitter,
            X,
            y_norm,
            cfg,
            solver_rng,
        )
        lml = float(arrays.pop("lml")[0])
        state = ApproxFitState(
            backend=backend,
            arrays=arrays,
            y_mean=y_mean,
            y_std=y_std,
            n_train=n,
            training_hash=_solvers.training_hash(X, y_norm, y_mean, y_std),
            lml=lml,
            X=X,
            y=y_norm,
        )
        state.error_budget = _solvers.check_error_budget(
            state,
            self.kernel_,
            self.noise_variance_,
            self.jitter,
            X,
            y_norm,
            cfg,
            solver_rng,
        )
        self._afit = state
        if tel:
            tm.count("gp.fit.total")
            tm.count(f"gp.fit.{backend}")
            tm.observe("gp.fit.seconds", time.perf_counter() - t0)
            sp.set(lml=lml, noise_variance=self.noise_variance_)
            budget = state.error_budget
            if budget.get("checked"):
                sp.set(
                    budget_mean_err=budget["max_mean_err"],
                    budget_std_err=budget["max_std_err"],
                    within_budget=budget["within_budget"],
                )
                if budget["within_budget"] is False:
                    tm.count("gp.fit.budget_exceeded")
            if outcome is not None and outcome.fallback:
                tm.count("gp.fit.optimizer_fallback")

    def update(self, x, y, *, alpha=None) -> "GaussianProcessRegressor":
        """Fold new observations into the posterior at *fixed* hyperparameters.

        Extends the cached Cholesky factor by one bordered row per new point
        (O(n^2) each, see :mod:`repro.gp.incremental`) instead of
        refactorizing ``K_y`` in O(n^3), and recomputes ``alpha`` and the LML
        from the extended factor.  The result is exact: it matches a fresh
        :meth:`fit` on the concatenated data with ``optimizer=None`` and the
        same hyperparameters up to numerical jitter.  Duplicate x-rows are
        fine — the noise term keeps the bordered pivot positive.

        Hyperparameters are *not* re-optimized, and with ``normalize_y`` the
        target normalization constants stay frozen at their last-fit values;
        schedule a periodic full :meth:`fit` (e.g. ``refit_every`` in
        :class:`repro.al.learner.ActiveLearner`) to refresh both.

        If accumulated round-off would make the bordered factor lose
        positive-definiteness, the factor is rebuilt from scratch at the
        current hyperparameters (a silent O(n^3) fallback, still exact).

        Parameters
        ----------
        x:
            New input row(s): ``(d,)`` for a single point or ``(m, d)``.
        y:
            Corresponding target(s), scalar or ``(m,)``.
        alpha:
            Optional per-point noise variance(s) for the new rows, scalar or
            ``(m,)``, in original target-variance units (see :meth:`fit`).
            Omitted entries default to zero extra noise.  Mixing is allowed:
            updating a scalar-noise fit with ``alpha`` lazily promotes the
            stored vector (old rows get zeros), and updating a
            heteroscedastic fit without ``alpha`` appends zeros.  Unlike
            :meth:`fit`, ``"fixed"``-bounds models accept ``alpha`` here —
            frozen clones (:meth:`clone_fitted`, believer chains, rollback
            restores) never re-optimize, so there is no bound to conflict
            with.
        """
        if self._fit is None and self._afit is None:
            raise RuntimeError("update() requires a fitted model; call fit() first")
        if self._afit is not None:
            if alpha is not None:
                raise ValueError(
                    "per-point noise (alpha) is not supported by approximate "
                    "solver fits; refit with the exact solver"
                )
            return self._update_approx(x, y)
        fit = self._fit
        kernel = self.kernel_
        assert kernel is not None
        X_new, y_new = self._coerce_update_rows(x, y, fit.X.shape[1])
        y_norm_new = (y_new - fit.y_mean) / fit.y_std
        alpha_new = None
        if alpha is not None:
            alpha_new = as_1d_array(np.atleast_1d(np.asarray(alpha, dtype=float)))
            if alpha_new.shape[0] == 1 and X_new.shape[0] > 1:
                alpha_new = np.repeat(alpha_new, X_new.shape[0])
            if alpha_new.shape[0] != X_new.shape[0]:
                raise ValueError(
                    f"alpha has {alpha_new.shape[0]} entries, expected "
                    f"{X_new.shape[0]} (one per new row)"
                )
            if not np.all(np.isfinite(alpha_new)) or np.any(alpha_new < 0):
                raise ValueError("alpha entries must be finite and >= 0")
        # Full per-row noise vector after this update, in original units
        # (None while everything stays on the scalar path).
        if fit.noise_alpha is not None or alpha_new is not None:
            old = (
                fit.noise_alpha
                if fit.noise_alpha is not None
                else np.zeros(fit.X.shape[0])
            )
            new = alpha_new if alpha_new is not None else np.zeros(X_new.shape[0])
            noise_alpha_all = np.concatenate([old, new])
        else:
            noise_alpha_all = None

        X_all = fit.X
        L = fit.L
        diag_shift = self.noise_variance_ + self.jitter
        with tm.span(
            "update", n=fit.X.shape[0], n_new=X_new.shape[0]
        ) as sp:
            n_rebuilds = 0
            n_old = fit.X.shape[0]
            for i in range(X_new.shape[0]):
                xq = X_new[i : i + 1]
                k = kernel(xq, X_all)[0]
                k_self = float(kernel.diag(xq)[0]) + diag_shift
                if noise_alpha_all is not None:
                    k_self += float(noise_alpha_all[n_old + i]) / fit.y_std**2
                X_all = np.vstack([X_all, xq])
                try:
                    L = cholesky_append(L, k, k_self)
                except NotPositiveDefiniteError:
                    n_rebuilds += 1
                    tm.count("gp.update.cholesky_rebuild")
                    K = kernel(X_all)
                    K[np.diag_indices_from(K)] += diag_shift
                    if noise_alpha_all is not None:
                        K[np.diag_indices_from(K)] += (
                            noise_alpha_all[: X_all.shape[0]] / fit.y_std**2
                        )
                    L = cholesky(K, lower=True, check_finite=False)
            sp.set(n_rebuilds=n_rebuilds)
            tm.count("gp.update.total")
            tm.count("gp.update.points", X_new.shape[0])

        y_all = np.append(fit.y, y_norm_new)
        weights = cho_solve((L, True), y_all, check_finite=False)
        fit.X = X_all
        fit.y = y_all
        fit.L = L
        fit.alpha = weights
        fit.noise_alpha = noise_alpha_all
        fit.lml = self._lml_from_cholesky(L, weights, y_all)
        # The optimizer diagnostics describe the *previous* training set; an
        # updated posterior has no optimize run of its own, so clear them
        # rather than let registry metadata / telemetry attribute the stale
        # outcome to this posterior.
        fit.optimize_outcome = None
        fit.theta_history = []
        return self

    @staticmethod
    def _coerce_update_rows(x, y, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Validate/reshape one :meth:`update` batch against dimensionality ``d``."""
        X_new = np.asarray(x, dtype=float)
        if X_new.ndim == 1:
            # (d,) is one point when the model is multivariate; (m,) is m
            # points for the 1-D studies.
            X_new = X_new[np.newaxis, :] if d > 1 else X_new[:, np.newaxis]
        X_new = as_2d_array(X_new)
        y_new = as_1d_array(np.atleast_1d(np.asarray(y, dtype=float)))
        check_consistent_rows(X_new, y_new)
        if X_new.shape[1] != d:
            raise ValueError(
                f"x has {X_new.shape[1]} features, model was fit with {d}"
            )
        return X_new, y_new

    def _update_approx(self, x, y) -> "GaussianProcessRegressor":
        """Fold new rows into an approximate posterior at fixed hyperparameters.

        Rebuilds the backend factors on the extended training set — an
        O(n m^2) / O(n D^2) pass, not the exact path's O(n^2) rank-1
        border — with the same solver seed, so the inducing set / feature
        frequencies are re-drawn deterministically.  Requires the
        training set, which a model restored by :meth:`from_dict` no
        longer carries.
        """
        afit = self._afit
        assert afit is not None
        if afit.X is None or afit.y is None:
            raise RuntimeError(
                "cannot update an approximate model restored from a "
                "serialized payload: the training set is not persisted; "
                "refit from the source data instead"
            )
        kernel = self.kernel_
        assert kernel is not None
        X_new, y_new = self._coerce_update_rows(x, y, afit.X.shape[1])
        y_norm_new = (y_new - afit.y_mean) / afit.y_std
        X_all = np.vstack([afit.X, X_new])
        y_all = np.append(afit.y, y_norm_new)
        cfg = self.solver
        with tm.span(
            "update", n=afit.n_train, n_new=X_new.shape[0], solver=afit.backend
        ):
            solver_rng = np.random.default_rng(cfg.seed)
            arrays = _solvers.fit_backend(
                afit.backend,
                kernel,
                self.noise_variance_,
                self.jitter,
                X_all,
                y_all,
                cfg,
                solver_rng,
            )
            lml = float(arrays.pop("lml")[0])
            state = ApproxFitState(
                backend=afit.backend,
                arrays=arrays,
                y_mean=afit.y_mean,
                y_std=afit.y_std,
                n_train=X_all.shape[0],
                training_hash=_solvers.training_hash(
                    X_all, y_all, afit.y_mean, afit.y_std
                ),
                lml=lml,
                X=X_all,
                y=y_all,
            )
            state.error_budget = _solvers.check_error_budget(
                state,
                kernel,
                self.noise_variance_,
                self.jitter,
                X_all,
                y_all,
                cfg,
                solver_rng,
            )
            self._afit = state
            tm.count("gp.update.total")
            tm.count("gp.update.points", X_new.shape[0])
        return self

    def clone_fitted(self) -> "GaussianProcessRegressor":
        """Independent copy of a fitted model with hyperparameters frozen.

        The clone shares no state with the original: its posterior can be
        extended via :meth:`update` (kriging-believer conditioning, bootstrap
        members) without a single O(n^3) refit and without touching the
        source model.  Its optimizer is disabled and its noise is fixed, so
        a subsequent :meth:`fit` would also keep the current hyperparameters.
        """
        if self._fit is None and self._afit is None:
            raise RuntimeError("clone_fitted() requires a fitted model")
        assert self.kernel_ is not None
        clone = GaussianProcessRegressor(
            kernel=self.kernel_.clone_with_theta(self.kernel_.theta),
            noise_variance=self.noise_variance_,
            noise_variance_bounds="fixed",
            normalize_y=self.normalize_y,
            optimizer=None,
            rng=0,
            jitter=self.jitter,
            solver=self.solver,
        )
        clone.kernel_ = self.kernel_.clone_with_theta(self.kernel_.theta)
        clone.noise_variance_ = self.noise_variance_
        if self._afit is not None:
            clone._afit = self._afit.clone()
            return clone
        fit = self._fit
        clone._fit = _FitState(
            X=fit.X.copy(),
            y=fit.y.copy(),
            y_mean=fit.y_mean,
            y_std=fit.y_std,
            L=fit.L.copy(),
            alpha=fit.alpha.copy(),
            lml=fit.lml,
            noise_alpha=(
                fit.noise_alpha.copy() if fit.noise_alpha is not None else None
            ),
        )
        return clone

    # ------------------------------------------------------------- persistence

    def training_hash(self) -> str:
        """SHA-256 fingerprint of the training set (and normalization).

        Hashes the exact float64 bytes of the stored design matrix, the
        normalized targets and the normalization constants, so two models
        share a hash iff they were fitted on bit-identical data.  The model
        registry (:mod:`repro.serve`) stores it as version metadata and
        :meth:`from_dict` re-verifies it on load.
        """
        if self._afit is not None:
            # Computed at fit time: a deserialized approximate model no
            # longer carries the training set to re-hash.
            return self._afit.training_hash
        if self._fit is None:
            raise RuntimeError("training_hash() requires a fitted model")
        fit = self._fit
        return _solvers.training_hash(fit.X, fit.y, fit.y_mean, fit.y_std)

    def to_dict(self) -> dict:
        """Exact JSON-serializable snapshot of the regressor.

        Captures the constructor template (kernel spec, noise template and
        bounds, optimizer settings, jitter), the fitted hyperparameters
        (``kernel_``, ``noise_variance_``) and — when fitted — the full
        posterior cache: training set, normalization constants, and the
        Cholesky factor ``L`` and weight vector ``alpha``.  Every float
        round-trips bit-exactly through JSON (``repr`` shortest-float
        semantics), so :meth:`from_dict` reconstructs a model whose
        :meth:`predict` outputs are **bit-identical** without refactorizing
        anything.  RNG state and ``executor`` are not captured (a restored
        model predicts; it does not continue a restart search).
        """
        bounds = self.noise_variance_bounds
        payload: dict = {
            "format_version": _SERIAL_VERSION,
            "kernel": (
                kernel_to_dict(self.kernel) if self.kernel is not None else None
            ),
            "noise_variance": float(self.noise_variance),
            "noise_variance_bounds": (
                bounds if isinstance(bounds, str)
                else [float(bounds[0]), float(bounds[1])]
            ),
            "n_restarts": int(self.n_restarts),
            "normalize_y": bool(self.normalize_y),
            "optimizer": self.optimizer,
            "jitter": float(self.jitter),
            "noise_variance_": float(self.noise_variance_),
            "kernel_": (
                kernel_to_dict(self.kernel_) if self.kernel_ is not None else None
            ),
            "solver": self.solver.to_dict(),
            "fit": None,
            "afit": (
                self._afit.to_dict() if self._afit is not None else None
            ),
        }
        if self._fit is not None:
            fit = self._fit
            payload["fit"] = {
                "X": fit.X.tolist(),
                "y": fit.y.tolist(),
                "y_mean": float(fit.y_mean),
                "y_std": float(fit.y_std),
                "L": fit.L.tolist(),
                "alpha": fit.alpha.tolist(),
                "lml": float(fit.lml),
                "training_hash": self.training_hash(),
            }
            # Only present for heteroscedastic fits: scalar-noise payloads
            # stay byte-identical to previous releases (absence implies
            # scalar, like the registry's solver metadata).
            if fit.noise_alpha is not None:
                payload["fit"]["noise_alpha"] = fit.noise_alpha.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GaussianProcessRegressor":
        """Reconstruct a regressor serialized by :meth:`to_dict`.

        The restored model's predictions are bit-identical to the source
        model's: the cached Cholesky factor and ``alpha`` are restored
        verbatim instead of being recomputed.  The training-set hash stored
        at save time is re-verified; a mismatch (corrupt or hand-edited
        payload) raises ``ValueError``.
        """
        if not isinstance(payload, dict):
            raise ValueError("model payload must be a dict")
        version = payload.get("format_version")
        if version != _SERIAL_VERSION:
            raise ValueError(
                f"unsupported model format version {version!r} "
                f"(expected {_SERIAL_VERSION})"
            )
        bounds = payload["noise_variance_bounds"]
        if not isinstance(bounds, str):
            bounds = (float(bounds[0]), float(bounds[1]))
        model = cls(
            kernel=(
                kernel_from_dict(payload["kernel"])
                if payload["kernel"] is not None
                else None
            ),
            noise_variance=float(payload["noise_variance"]),
            noise_variance_bounds=bounds,
            n_restarts=int(payload["n_restarts"]),
            normalize_y=bool(payload["normalize_y"]),
            optimizer=payload["optimizer"],
            rng=0,
            jitter=float(payload["jitter"]),
            solver=payload.get("solver", "exact"),
        )
        model.noise_variance_ = float(payload["noise_variance_"])
        if payload["kernel_"] is not None:
            model.kernel_ = kernel_from_dict(payload["kernel_"])
        fit = payload["fit"]
        if fit is not None:
            model._fit = _FitState(
                X=np.asarray(fit["X"], dtype=float),
                y=np.asarray(fit["y"], dtype=float),
                y_mean=float(fit["y_mean"]),
                y_std=float(fit["y_std"]),
                L=np.asarray(fit["L"], dtype=float),
                alpha=np.asarray(fit["alpha"], dtype=float),
                lml=float(fit["lml"]),
                noise_alpha=(
                    np.asarray(fit["noise_alpha"], dtype=float)
                    if fit.get("noise_alpha") is not None
                    else None
                ),
            )
            stored = fit.get("training_hash")
            if stored is not None and stored != model.training_hash():
                raise ValueError(
                    "training-set hash mismatch: the serialized model is "
                    "corrupt or was modified after it was saved"
                )
        afit = payload.get("afit")
        if afit is not None:
            model._afit = ApproxFitState.from_dict(afit)
        return model

    @staticmethod
    def _lml_from_cholesky(L: np.ndarray, alpha: np.ndarray, y: np.ndarray) -> float:
        n = y.shape[0]
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(L))) - 0.5 * n * _LOG_2PI
        )

    def _nlml_and_grad(
        self, theta: np.ndarray, X: np.ndarray, y: np.ndarray, alpha=None
    ) -> tuple[float, np.ndarray]:
        """Negative LML and its gradient at ``theta`` (for the optimizer)."""
        lml, grad = self.log_marginal_likelihood(
            theta, eval_gradient=True, X=X, y=y, alpha=alpha
        )
        return -lml, -grad

    def log_marginal_likelihood(
        self,
        theta: np.ndarray | None = None,
        *,
        eval_gradient: bool = False,
        X=None,
        y=None,
        alpha=None,
    ):
        """Log marginal likelihood (Eq. 12) at ``theta``.

        ``theta`` is the joint vector ``[kernel.theta..., log sigma_n^2]``
        (the noise entry is absent when the noise is fixed).  With
        ``theta=None`` the current hyperparameters are evaluated.  ``X, y``
        default to the stored training data; passing them explicitly lets
        the Fig. 4/5 experiments scan LML landscapes without refitting.
        ``alpha`` adds per-point noise variances (in the variance units of
        the supplied ``y``) on the diagonal; with ``X, y`` omitted it
        defaults to the fitted model's stored per-point noise.  The noise
        gradient is unchanged by ``alpha``: ``dK/d log sigma_n^2`` is still
        ``sigma_n^2 I``.
        """
        if X is None or y is None:
            if self._afit is not None:
                raise RuntimeError(
                    "exact log_marginal_likelihood over the full training "
                    "set is unavailable for approximate solver fits (that "
                    "O(n^3) cost is what the solver avoids); use lml_ for "
                    "the approximate marginal likelihood, or pass (X, y) "
                    "explicitly to evaluate on a subset"
                )
            if self._fit is None:
                raise RuntimeError("model is not fitted and no (X, y) supplied")
            X, y = self._fit.X, self._fit.y
            if alpha is None and self._fit.noise_alpha is not None:
                # Stored targets are normalized; scale the stored
                # original-unit variances to match.
                alpha = self._fit.noise_alpha / self._fit.y_std**2
        else:
            X = as_2d_array(X)
            y = as_1d_array(y)
            check_consistent_rows(X, y)
        if alpha is not None:
            alpha = as_1d_array(alpha)
            if alpha.shape[0] != X.shape[0]:
                raise ValueError(
                    f"alpha has {alpha.shape[0]} entries, expected {X.shape[0]}"
                )
        if self.kernel_ is None:
            self.kernel_ = (
                default_kernel(X.shape[1])
                if self.kernel is None
                else self.kernel.clone_with_theta(self.kernel.theta)
            )

        kernel = self.kernel_
        saved_theta = self._theta()
        if theta is not None:
            theta = np.asarray(theta, dtype=float)
            if theta.shape != saved_theta.shape:
                raise ValueError(
                    f"theta has shape {theta.shape}, expected {saved_theta.shape}"
                )
            self._set_theta(theta)
        try:
            noise = self.noise_variance_
            if eval_gradient:
                K, K_grad = kernel(X, eval_gradient=True)
            else:
                K = kernel(X)
            K[np.diag_indices_from(K)] += noise + self.jitter
            if alpha is not None:
                K[np.diag_indices_from(K)] += alpha
            try:
                L = cholesky(K, lower=True, check_finite=False)
            except np.linalg.LinAlgError:
                tm.count("gp.lml.cholesky_failure")
                if eval_gradient:
                    return -np.inf, np.zeros_like(saved_theta)
                return -np.inf
            alpha = cho_solve((L, True), y, check_finite=False)
            lml = self._lml_from_cholesky(L, alpha, y)
            if not eval_gradient:
                return lml
            # d lml / d theta_j = 0.5 tr((alpha alpha^T - K^{-1}) dK/dtheta_j)
            K_inv = cho_solve((L, True), np.eye(K.shape[0]), check_finite=False)
            inner = np.outer(alpha, alpha) - K_inv
            grads = 0.5 * np.einsum("ij,ijk->k", inner, K_grad)
            if not self._noise_free:
                # dK/d(log sigma_n^2) = sigma_n^2 * I
                noise_grad = 0.5 * noise * np.trace(inner)
                grads = np.append(grads, noise_grad)
            return lml, grads
        finally:
            if theta is not None:
                self._set_theta(saved_theta)

    # --------------------------------------------------------------- prediction

    def predict(
        self,
        X,
        *,
        return_std: bool = False,
        return_cov: bool = False,
        include_noise: bool = True,
    ):
        """Posterior predictive mean (and std / covariance) at query points.

        Parameters
        ----------
        include_noise:
            If true (default), the returned std/cov describe the predictive
            distribution of *observations* ``y_*`` (latent + measurement
            noise).  This is the quantity the paper's AL strategies consume:
            it stays ``>= sigma_n`` at already-measured points, which is what
            allows AL to recommend repeated measurements.  Set false for the
            latent-function uncertainty only.  For heteroscedastic fits the
            added term is the shared residual ``sigma_n^2`` only: the
            per-point ``alpha`` belongs to specific past observations, not
            to hypothetical future ones at the query points.
        """
        if return_std and return_cov:
            raise ValueError("return_std and return_cov are mutually exclusive")
        X = as_2d_array(X)
        if self._afit is not None:
            return self._predict_approx(
                X,
                return_std=return_std,
                return_cov=return_cov,
                include_noise=include_noise,
            )
        if self._fit is None:
            # Prior prediction.
            kernel = self.kernel_ or (
                default_kernel(X.shape[1])
                if self.kernel is None
                else self.kernel
            )
            mean = np.zeros(X.shape[0])
            if return_cov:
                cov = kernel(X).astype(float)
                if include_noise:
                    cov[np.diag_indices_from(cov)] += self.noise_variance_
                return mean, cov
            if return_std:
                var = kernel.diag(X).astype(float)
                if include_noise:
                    var = var + self.noise_variance_
                return mean, np.sqrt(var)
            return mean

        fit = self._fit
        kernel = self.kernel_
        assert kernel is not None
        K_star = kernel(X, fit.X)  # (m, n)
        mean = K_star @ fit.alpha * fit.y_std + fit.y_mean
        if not (return_std or return_cov):
            return mean

        # v = L^{-1} k_*
        v = solve_triangular(fit.L, K_star.T, lower=True, check_finite=False)
        if return_cov:
            cov = kernel(X) - v.T @ v
            # Clamp numerically negative variances on the diagonal exactly
            # like the return_std path: without it, sqrt(diag(cov))
            # downstream yields NaN.
            diag = np.einsum("ii->i", cov)  # writable view
            if np.any(diag < 0):
                if np.min(diag) < -1e-6:
                    warnings.warn(
                        f"predicted variance clipped from {np.min(diag):.3e}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                np.maximum(diag, 0.0, out=diag)
            if include_noise:
                cov[np.diag_indices_from(cov)] += self.noise_variance_
            cov = cov * fit.y_std**2
            return mean, cov
        var = kernel.diag(X) - np.sum(v**2, axis=0)
        if np.any(var < 0):
            # Numerically tiny negatives are expected; anything sizable is a bug.
            if np.min(var) < -1e-6:
                warnings.warn(
                    f"predicted variance clipped from {np.min(var):.3e}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            var = np.maximum(var, 0.0)
        if include_noise:
            var = var + self.noise_variance_
        return mean, np.sqrt(var) * fit.y_std

    def _predict_approx(
        self, X, *, return_std: bool, return_cov: bool, include_noise: bool
    ):
        """Approximate-backend prediction with the exact path's post-processing.

        The solver returns the latent mean and variance in normalized
        units; clamping, the observation-noise term, and target
        un-normalization are applied here with the same rules as the
        exact path, so ``return_std`` and ``sqrt(diag(return_cov))``
        agree across backends.
        """
        afit = self._afit
        kernel = self.kernel_
        assert afit is not None and kernel is not None
        want = "cov" if return_cov else ("var" if return_std else None)
        mean_n, second = _solvers.predict_backend(
            afit, kernel, self.noise_variance_, self.jitter, X, want=want
        )
        mean = mean_n * afit.y_std + afit.y_mean
        if want is None:
            return mean
        if return_cov:
            cov = second
            diag = np.einsum("ii->i", cov)  # writable view
            if np.any(diag < 0):
                if np.min(diag) < -1e-6:
                    warnings.warn(
                        f"predicted variance clipped from {np.min(diag):.3e}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                np.maximum(diag, 0.0, out=diag)
            if include_noise:
                cov[np.diag_indices_from(cov)] += self.noise_variance_
            return mean, cov * afit.y_std**2
        var = second
        if np.any(var < 0):
            if np.min(var) < -1e-6:
                warnings.warn(
                    f"predicted variance clipped from {np.min(var):.3e}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            var = np.maximum(var, 0.0)
        if include_noise:
            var = var + self.noise_variance_
        return mean, np.sqrt(var) * afit.y_std

    def predict_gradient(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Analytic gradients of the predictive mean and std at one point.

        Returns ``(d_mean, d_std)``, each of shape ``(d,)`` in the units of
        the (normalization-undone) targets.  Enables the gradient-based
        continuous-domain candidate optimization the paper's Section VI
        calls for.  ``d_std`` is the gradient of the *observation* SD
        (latent variance + noise), matching ``predict(include_noise=True)``.

        Raises
        ------
        RuntimeError
            If the model is not fitted.
        NotImplementedError
            If the kernel lacks input-space gradients.
        """
        if self._afit is not None:
            raise NotImplementedError(
                "predict_gradient requires the exact solver; approximate "
                f"backend {self._afit.backend!r} does not expose posterior "
                "input-space gradients"
            )
        if self._fit is None:
            raise RuntimeError("model is not fitted")
        fit = self._fit
        kernel = self.kernel_
        assert kernel is not None
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != (fit.X.shape[1],):
            raise ValueError(
                f"x has shape {x.shape}, expected ({fit.X.shape[1]},)"
            )
        xq = x[np.newaxis, :]
        k_star = kernel(xq, fit.X)[0]  # (n,)
        J = kernel.gradient_x(x, fit.X)  # (n, d)

        d_mean = J.T @ fit.alpha * fit.y_std

        # var(x) = k(x,x) - k_*^T K_y^{-1} k_* (+ sigma_n^2); k(x,x) is
        # constant for stationary kernels, so d var/dx = -2 J^T (K_y^{-1} k_*).
        K_inv_k = cho_solve((fit.L, True), k_star, check_finite=False)
        var = float(kernel.diag(xq)[0] - k_star @ K_inv_k)
        var = max(var, 0.0) + self.noise_variance_
        d_var = -2.0 * (J.T @ K_inv_k)
        d_std = d_var / (2.0 * math.sqrt(max(var, 1e-300))) * fit.y_std
        return d_mean, d_std

    def sample_y(self, X, n_samples: int = 1, rng=None) -> np.ndarray:
        """Draw samples from the posterior predictive at ``X``.

        Returns an array of shape ``(len(X), n_samples)``.  Uses the latent
        covariance plus noise on the diagonal (observation samples).

        The Cholesky regularizer is *relative* to the covariance's own
        scale: with ``normalize_y`` the covariance carries a ``y_std**2``
        factor, and a fixed absolute jitter (the old ``1e-12``) is
        rounded away entirely for large-magnitude targets
        (``y_std ~ 1e6`` means ``cov + 1e-12`` == ``cov`` in float64).
        The jitter escalates by 10x up to a bounded cap before the
        factorization error propagates.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        rng = np.random.default_rng(rng if rng is not None else self.rng)
        mean, cov = self.predict(X, return_cov=True)
        # Relative scale: mean diagonal magnitude, floored so an all-zero
        # covariance (interpolating noise-free fit) still gets a nudge.
        scale = max(float(np.mean(np.diag(cov))), np.finfo(float).tiny)
        eye = np.eye(cov.shape[0])
        jitter = 1e-12 * scale
        for attempt in range(7):
            try:
                return rng.multivariate_normal(
                    mean, cov + jitter * eye, size=n_samples, method="cholesky"
                ).T
            except np.linalg.LinAlgError:
                if attempt == 6:
                    raise
                jitter *= 10.0
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------- misc

    @property
    def lml_(self) -> float:
        """LML of the fitted model at its optimized hyperparameters.

        For approximate solver fits this is the backend's approximate
        marginal likelihood (DTC / feature-space), not the exact one.
        """
        if self._afit is not None:
            return self._afit.lml
        if self._fit is None:
            raise RuntimeError("model is not fitted")
        return self._fit.lml

    @property
    def noise_alpha_(self) -> np.ndarray | None:
        """Per-point noise variances of the current fit (original y units).

        ``None`` for scalar-noise fits, approximate-solver fits and
        unfitted models — absence implies the homoscedastic path.
        """
        if self._fit is None:
            return None
        return self._fit.noise_alpha

    @property
    def n_train_(self) -> int:
        """Training-set size, available for every backend (even restored)."""
        if self._afit is not None:
            return self._afit.n_train
        if self._fit is None:
            raise RuntimeError("model is not fitted")
        return self._fit.X.shape[0]

    @property
    def X_train_(self) -> np.ndarray:
        """Training design matrix (after coercion to 2-D float64)."""
        if self._afit is not None:
            if self._afit.X is None:
                raise RuntimeError(
                    "training set unavailable: approximate models restored "
                    "from a serialized payload keep only the posterior "
                    "factors (use n_train_ for the size)"
                )
            return self._afit.X
        if self._fit is None:
            raise RuntimeError("model is not fitted")
        return self._fit.X

    @property
    def y_train_(self) -> np.ndarray:
        """Training targets in original (unnormalized) units."""
        if self._afit is not None:
            if self._afit.y is None:
                raise RuntimeError(
                    "training targets unavailable: approximate models "
                    "restored from a serialized payload keep only the "
                    "posterior factors"
                )
            return self._afit.y * self._afit.y_std + self._afit.y_mean
        if self._fit is None:
            raise RuntimeError("model is not fitted")
        return self._fit.y * self._fit.y_std + self._fit.y_mean

    def __repr__(self) -> str:
        kern = self.kernel_ if self.kernel_ is not None else self.kernel
        solver = "" if self.solver.name == "exact" else f", solver={self.solver.name!r}"
        return (
            f"GaussianProcessRegressor(kernel={kern!r}, "
            f"noise_variance={self.noise_variance_:.3g}, "
            f"bounds={self.noise_variance_bounds}{solver})"
        )
