"""Leave-one-out cross-validation (pseudo-likelihood) model selection.

The paper (Section III, citing Rasmussen & Williams Ch. 5) names two routes
for fitting GPR hyperparameters: Bayesian inference with the marginal
likelihood — the route the paper uses — and leave-one-out cross-validation
with the pseudo-likelihood, whose empirical comparison the paper defers to
future work.  This module implements that second route so the comparison can
actually be run (``benchmarks/bench_ablation_loocv.py``).

The LOO residuals come for free from one Cholesky factorization
(R&W Eqs. 5.10-5.12):

    mu_i      = y_i - [K_y^{-1} y]_i / [K_y^{-1}]_ii
    sigma_i^2 = 1 / [K_y^{-1}]_ii

and the pseudo log-likelihood is the sum of the per-point predictive log
densities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_solve, cholesky

from .gpr import GaussianProcessRegressor, _LOG_2PI
from .optimize import OptimizeOutcome, minimize_with_restarts
from .validate import as_1d_array, as_2d_array, check_consistent_rows

__all__ = [
    "loo_residuals",
    "loo_standardized_residuals",
    "loo_pseudo_likelihood",
    "fit_loocv",
    "LOOResult",
]


@dataclass
class LOOResult:
    """Leave-one-out predictive summary for a fitted hyperparameter setting.

    Attributes
    ----------
    mean:
        Per-point LOO predictive means.
    std:
        Per-point LOO predictive standard deviations.
    pseudo_log_likelihood:
        Sum of LOO predictive log densities (higher is better).
    """

    mean: np.ndarray
    std: np.ndarray
    pseudo_log_likelihood: float


def _loo_from_K(K_y: np.ndarray, y: np.ndarray) -> LOOResult:
    L = cholesky(K_y, lower=True, check_finite=False)
    K_inv = cho_solve((L, True), np.eye(K_y.shape[0]), check_finite=False)
    K_inv_y = K_inv @ y
    diag = np.diag(K_inv)
    var = 1.0 / diag
    mean = y - K_inv_y / diag
    resid = y - mean
    logpdf = -0.5 * (np.log(var) + resid**2 / var + _LOG_2PI)
    return LOOResult(mean=mean, std=np.sqrt(var), pseudo_log_likelihood=float(np.sum(logpdf)))


def loo_residuals(model: GaussianProcessRegressor) -> LOOResult:
    """LOO predictive means/stds of a *fitted* regressor, in original units.

    Heteroscedastic fits (per-point ``alpha``, see
    :meth:`GaussianProcessRegressor.fit`) are supported: the per-point
    variances join the diagonal of the rebuilt ``K_y``, so the held-out
    predictive variance of a noisy probe is correspondingly wider.
    """
    if not model.fitted:
        raise RuntimeError("model is not fitted")
    fit = model._fit
    assert fit is not None and model.kernel_ is not None
    K = model.kernel_(fit.X)
    K[np.diag_indices_from(K)] += model.noise_variance_ + model.jitter
    if fit.noise_alpha is not None:
        K[np.diag_indices_from(K)] += fit.noise_alpha / fit.y_std**2
    res = _loo_from_K(K, fit.y)
    return LOOResult(
        mean=res.mean * fit.y_std + fit.y_mean,
        std=res.std * fit.y_std,
        pseudo_log_likelihood=res.pseudo_log_likelihood,
    )


def loo_standardized_residuals(model: GaussianProcessRegressor) -> np.ndarray:
    """LOO standardized residuals (z-scores) of a *fitted* regressor.

    For every training point ``i`` this is

        z_i = (y_i - mu_{-i}) / sigma_{-i},

    the held-out residual of point ``i`` under the GP trained on all other
    points, in units of that prediction's standard deviation — the
    diagnostic R&W Section 5.4.2 recommends for spotting observations the
    model cannot explain.  Under a well-specified model the z-scores are
    approximately standard normal, so ``|z_i| > 3`` marks ``y_i`` as an
    outlier (a corrupted measurement, or a point from a different regime
    after a cluster slowdown).  :class:`repro.al.guardrails.ModelHealth`
    uses the fraction of such outliers as an overfitting/poisoning alarm.

    Computed from the single Cholesky factorization cached by the fit
    (no refits); scale-invariant, so target normalization cancels.
    """
    if not model.fitted:
        raise RuntimeError("model is not fitted")
    res = loo_residuals(model)
    y = model.y_train_
    return (y - res.mean) / res.std


def loo_pseudo_likelihood(
    model: GaussianProcessRegressor, theta: np.ndarray, X, y
) -> float:
    """Pseudo log-likelihood of hyperparameters ``theta`` on data ``(X, y)``.

    ``theta`` uses the same joint layout as
    :meth:`GaussianProcessRegressor.log_marginal_likelihood`.  Scalar-noise
    only: the LOOCV selection route predates per-point ``alpha`` support
    and the ablation benches that use it are homoscedastic.
    """
    X = as_2d_array(X)
    y = as_1d_array(y)
    check_consistent_rows(X, y)
    if model.kernel_ is None:
        # Instantiate kernel lazily, mirroring log_marginal_likelihood.
        model.log_marginal_likelihood(None, X=X, y=y)
    saved = model._theta()
    theta = np.asarray(theta, dtype=float)
    if theta.shape != saved.shape:
        raise ValueError(f"theta has shape {theta.shape}, expected {saved.shape}")
    model._set_theta(theta)
    try:
        assert model.kernel_ is not None
        K = model.kernel_(X)
        K[np.diag_indices_from(K)] += model.noise_variance_ + model.jitter
        try:
            return _loo_from_K(K, y).pseudo_log_likelihood
        except np.linalg.LinAlgError:
            return -np.inf
    finally:
        model._set_theta(saved)


def fit_loocv(
    model: GaussianProcessRegressor,
    X,
    y,
    *,
    n_restarts: int | None = None,
    fd_step: float = 1e-5,
) -> OptimizeOutcome:
    """Fit ``model`` by maximizing the LOO pseudo-likelihood instead of the LML.

    The gradient is approximated by central finite differences in log space
    (the pseudo-likelihood's analytic gradient exists but offers no accuracy
    benefit at the problem sizes of this study).  On return the model is
    fitted: hyperparameters installed and the posterior cached.
    """
    X = as_2d_array(X)
    y = as_1d_array(y)
    check_consistent_rows(X, y)
    if model.kernel_ is None:
        model.log_marginal_likelihood(None, X=X, y=y)  # instantiate kernel
    theta0 = model._theta()
    bounds = model._theta_bounds()
    restarts = model.n_restarts if n_restarts is None else n_restarts
    if theta0.size == 0:
        # Nothing to optimize: every hyperparameter is fixed.
        saved_optimizer, saved_kernel = model.optimizer, model.kernel
        model.optimizer = None
        model.kernel = model.kernel_
        try:
            model.fit(X, y)
        finally:
            model.optimizer = saved_optimizer
            model.kernel = saved_kernel
        value = -loo_pseudo_likelihood(model, theta0, X, y)
        return OptimizeOutcome(theta=theta0, value=value, n_restarts=0)

    def objective(theta: np.ndarray):
        value = -loo_pseudo_likelihood(model, theta, X, y)
        grad = np.empty_like(theta)
        for j in range(theta.size):
            step = np.zeros_like(theta)
            step[j] = fd_step
            hi = -loo_pseudo_likelihood(model, theta + step, X, y)
            lo = -loo_pseudo_likelihood(model, theta - step, X, y)
            grad[j] = (hi - lo) / (2.0 * fd_step)
        return value, grad

    outcome = minimize_with_restarts(
        objective, theta0, bounds, n_restarts=restarts, rng=model.rng
    )
    model._set_theta(outcome.theta)
    # Cache the posterior at the chosen hyperparameters without re-optimizing.
    # fit() restarts from the template attributes, so temporarily make the
    # LOO optimum the template.
    saved_optimizer = model.optimizer
    saved_kernel = model.kernel
    saved_noise_template = model.noise_variance
    model.optimizer = None
    model.kernel = model.kernel_
    model.noise_variance = model.noise_variance_
    try:
        model.fit(X, y)
    finally:
        model.optimizer = saved_optimizer
        model.kernel = saved_kernel
        model.noise_variance = saved_noise_template
    return outcome
