"""Semi-parametric GPR: explicit polynomial basis plus a GP residual.

Performance responses in log-log space are dominated by near-linear trends
(Fig. 2 confirms slope ~1 of log runtime vs log problem size), but a
zero-mean stationary GP reverts to the prior mean away from data — plain
GPR therefore extrapolates poorly toward unmeasured large problems.  The
classical remedy (Rasmussen & Williams §2.7, "explicit basis functions";
*universal kriging* in geostatistics) models

    y = h(x)^T beta + f(x) + noise

with a polynomial basis ``h`` and a GP ``f``.  :class:`TrendGPR` implements
it on top of :class:`~repro.gp.gpr.GaussianProcessRegressor`:

1. OLS estimate of ``beta``;
2. GP hyperparameter fit on the detrended residuals (marginal likelihood);
3. GLS re-estimate ``beta = (H^T K_y^{-1} H)^{-1} H^T K_y^{-1} y`` under
   the fitted covariance, and a final GP fit on the new residuals;
4. predictions add the trend back, and the predictive variance carries the
   textbook correction ``R^T (H^T K_y^{-1} H)^{-1} R`` with
   ``R = h(x_*) - H^T K_y^{-1} k_*`` for the estimated coefficients.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.linalg import cho_solve, solve

from .gpr import GaussianProcessRegressor
from .validate import as_1d_array, as_2d_array, check_consistent_rows

__all__ = ["TrendGPR", "polynomial_basis"]


def polynomial_basis(degree: int) -> Callable[[np.ndarray], np.ndarray]:
    """Basis-function factory: ``h(x) = [1, x_1..x_d, x_1^2..]`` up to ``degree``.

    Only pure powers are included (no cross terms) — the standard universal-
    kriging drift for performance surfaces, keeping the coefficient count at
    ``1 + degree * d``.
    """
    if degree < 0:
        raise ValueError("degree must be >= 0")

    def h(X: np.ndarray) -> np.ndarray:
        X = as_2d_array(X)
        cols = [np.ones(X.shape[0])]
        for p in range(1, degree + 1):
            for dim in range(X.shape[1]):
                cols.append(X[:, dim] ** p)
        return np.column_stack(cols)

    return h


class TrendGPR:
    """GPR with an explicit polynomial trend (universal kriging).

    Parameters
    ----------
    degree:
        Polynomial degree of the trend (1 = linear, the log-log default).
    gp_factory:
        Builds the residual GP; defaults to a fresh
        :class:`GaussianProcessRegressor` with moderate settings.

    Notes
    -----
    The public surface mirrors the plain regressor: :meth:`fit`,
    :meth:`predict` with ``return_std``.
    """

    def __init__(
        self,
        *,
        degree: int = 1,
        gp_factory: Callable[[], GaussianProcessRegressor] | None = None,
    ):
        self.basis = polynomial_basis(degree)
        self.degree = int(degree)
        self.gp_factory = gp_factory or (
            lambda: GaussianProcessRegressor(
                noise_variance=1e-2,
                noise_variance_bounds=(1e-6, 1e3),
                n_restarts=2,
                rng=0,
            )
        )
        self.gp: GaussianProcessRegressor | None = None
        self.beta_: np.ndarray | None = None
        self._H: np.ndarray | None = None
        self._A_inv: np.ndarray | None = None  # (H^T Ky^{-1} H)^{-1}
        self._X: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.gp is not None

    def fit(self, X, y) -> "TrendGPR":
        """OLS trend, GP on residuals, GLS trend update, final GP refit."""
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_rows(X, y)
        H = self.basis(X)
        if H.shape[0] <= H.shape[1]:
            raise ValueError(
                f"need more than {H.shape[1]} points to fit a degree-"
                f"{self.degree} trend in {X.shape[1]} variables"
            )
        beta, *_ = np.linalg.lstsq(H, y, rcond=None)

        gp = self.gp_factory()
        gp.fit(X, y - H @ beta)

        # GLS refinement under the fitted covariance.
        fit = gp._fit
        assert fit is not None
        Ky_inv_H = cho_solve((fit.L, True), H, check_finite=False)
        A = H.T @ Ky_inv_H  # H^T Ky^{-1} H
        Ky_inv_y = cho_solve((fit.L, True), y, check_finite=False)
        beta = solve(A, H.T @ Ky_inv_y, assume_a="pos")
        # Refit the residual GP (hyperparameters re-optimized once more).
        gp = self.gp_factory()
        gp.fit(X, y - H @ beta)
        fit = gp._fit
        assert fit is not None
        Ky_inv_H = cho_solve((fit.L, True), H, check_finite=False)
        A = H.T @ Ky_inv_H

        self.gp = gp
        self.beta_ = beta
        self._H = H
        self._A_inv = np.linalg.inv(A)
        self._X = X
        return self

    def predict(self, X, *, return_std: bool = False, include_noise: bool = True):
        """Trend + GP prediction; std includes the coefficient-uncertainty term."""
        if self.gp is None or self.beta_ is None:
            raise RuntimeError("model is not fitted")
        X = as_2d_array(X)
        h_star = self.basis(X)  # (m, p)
        mean = h_star @ self.beta_ + self.gp.predict(X)
        if not return_std:
            return mean
        _, sd = self.gp.predict(X, return_std=True, include_noise=include_noise)
        # Coefficient-uncertainty correction (R&W Eq. 2.42):
        # R = h(x*) - H^T Ky^{-1} k_*.
        fit = self.gp._fit
        assert fit is not None and self.gp.kernel_ is not None
        k_star = self.gp.kernel_(X, fit.X)  # (m, n)
        Ky_inv_k = cho_solve((fit.L, True), k_star.T, check_finite=False)  # (n, m)
        R = h_star.T - self._H.T @ Ky_inv_k  # (p, m)
        extra = np.einsum("pm,pq,qm->m", R, self._A_inv, R)
        var = sd**2 + np.maximum(extra, 0.0) * fit.y_std**2
        return mean, np.sqrt(var)

    @property
    def trend_coefficients(self) -> np.ndarray:
        """Fitted GLS trend coefficients ``beta`` (intercept first)."""
        if self.beta_ is None:
            raise RuntimeError("model is not fitted")
        return self.beta_
