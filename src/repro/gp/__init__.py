"""Gaussian Process Regression substrate (replaces scikit-learn 0.18.dev0).

Public API::

    from repro.gp import GaussianProcessRegressor, default_kernel
    from repro.gp import RBF, Matern, RationalQuadratic, ConstantKernel, WhiteKernel
"""

from .gpr import GaussianProcessRegressor, default_kernel
from .incremental import NotPositiveDefiniteError, cholesky_append
from .kernels import (
    RBF,
    ConstantKernel,
    Hyperparameter,
    Kernel,
    Matern,
    Product,
    RationalQuadratic,
    Sum,
    WhiteKernel,
    kernel_from_dict,
    kernel_to_dict,
)
from .loocv import (
    LOOResult,
    fit_loocv,
    loo_pseudo_likelihood,
    loo_residuals,
    loo_standardized_residuals,
)
from .optimize import OptimizeOutcome, minimize_with_restarts
from .solvers import AUTO_EXACT_MAX, SolverConfig, resolve_solver
from .trend import TrendGPR, polynomial_basis

__all__ = [
    "GaussianProcessRegressor",
    "default_kernel",
    "SolverConfig",
    "resolve_solver",
    "AUTO_EXACT_MAX",
    "NotPositiveDefiniteError",
    "cholesky_append",
    "Kernel",
    "Hyperparameter",
    "ConstantKernel",
    "WhiteKernel",
    "RBF",
    "Matern",
    "RationalQuadratic",
    "Sum",
    "Product",
    "kernel_to_dict",
    "kernel_from_dict",
    "OptimizeOutcome",
    "minimize_with_restarts",
    "LOOResult",
    "loo_residuals",
    "loo_standardized_residuals",
    "loo_pseudo_likelihood",
    "fit_loocv",
    "TrendGPR",
    "polynomial_basis",
]
