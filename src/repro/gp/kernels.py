"""Covariance functions (kernels) for Gaussian Process Regression.

This module replaces the scikit-learn kernel stack the paper used
(``sklearn 0.18.dev0``).  It implements the squared exponential (RBF)
covariance of the paper's Eq. (11),

    k(x_p, x_q) = sigma_f^2 * exp(-|x_p - x_q|^2 / (2 l^2)),

plus the Matern and RationalQuadratic families, a White (noise) kernel that
carries the paper's critical ``sigma_n`` hyperparameter, a Constant kernel
for the amplitude ``sigma_f^2``, and Sum/Product kernel algebra.

Hyperparameters are exposed in **log space** through the ``theta`` vector,
the convention used for gradient-based marginal-likelihood optimization
(Rasmussen & Williams, Ch. 5).  Every kernel supports analytic gradients of
the covariance matrix with respect to ``theta`` via
``kernel(X, eval_gradient=True)``.

Examples
--------
The paper's covariance (amplitude * RBF + noise) is spelled:

>>> kernel = ConstantKernel(1.0, (1e-3, 1e3)) * RBF(1.0, (1e-2, 1e2)) \\
...     + WhiteKernel(1e-2, (1e-1, 1e1))   # noise floor sigma_n^2 >= 1e-1
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np
from scipy.spatial.distance import cdist, pdist, squareform

from .validate import as_2d_array, check_bounds

__all__ = [
    "Hyperparameter",
    "Kernel",
    "ConstantKernel",
    "WhiteKernel",
    "RBF",
    "Matern",
    "RationalQuadratic",
    "Sum",
    "Product",
    "kernel_to_dict",
    "kernel_from_dict",
]


class Hyperparameter:
    """Specification of one kernel hyperparameter.

    Attributes
    ----------
    name:
        Attribute name on the owning kernel (e.g. ``"length_scale"``).
    bounds:
        ``(low, high)`` in natural (not log) space, or ``"fixed"``.
    n_elements:
        Number of scalar entries (>1 for anisotropic/ARD length scales).
    """

    __slots__ = ("name", "bounds", "n_elements")

    def __init__(self, name: str, bounds, n_elements: int = 1):
        self.name = name
        self.bounds = check_bounds(bounds, name=name)
        self.n_elements = int(n_elements)

    @property
    def fixed(self) -> bool:
        """Whether this hyperparameter is excluded from optimization."""
        return self.bounds == "fixed"

    def log_bounds(self) -> np.ndarray:
        """Bounds as an ``(n_elements, 2)`` array in log space."""
        if self.fixed:
            raise ValueError(f"hyperparameter {self.name} is fixed")
        low, high = self.bounds
        return np.tile(np.log([low, high]), (self.n_elements, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hyperparameter({self.name!r}, bounds={self.bounds}, n={self.n_elements})"


class Kernel(ABC):
    """Base class for covariance functions.

    Subclasses implement ``__call__`` (optionally with analytic gradient),
    ``diag`` and declare their hyperparameters via ``hyperparameters``.
    """

    # --- hyperparameter plumbing -------------------------------------------------

    @property
    @abstractmethod
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """Ordered hyperparameter specifications for this kernel."""

    def _free_hyperparameters(self) -> Iterator[Hyperparameter]:
        return (h for h in self.hyperparameters if not h.fixed)

    @property
    def n_dims(self) -> int:
        """Number of free (optimizable) hyperparameter entries."""
        return sum(h.n_elements for h in self._free_hyperparameters())

    @property
    def theta(self) -> np.ndarray:
        """Free hyperparameter values, flattened, in log space."""
        parts = []
        for h in self._free_hyperparameters():
            value = np.atleast_1d(getattr(self, h.name)).astype(float)
            parts.append(np.log(value))
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        """Install log-space hyperparameters (exponentiated per entry)."""
        value = np.asarray(value, dtype=float)
        if value.shape != (self.n_dims,):
            raise ValueError(
                f"theta has shape {value.shape}, expected ({self.n_dims},)"
            )
        idx = 0
        for h in self._free_hyperparameters():
            chunk = np.exp(value[idx : idx + h.n_elements])
            if h.n_elements == 1:
                setattr(self, h.name, float(chunk[0]))
            else:
                setattr(self, h.name, chunk)
            idx += h.n_elements

    @property
    def bounds(self) -> np.ndarray:
        """Log-space bounds for the free hyperparameters, shape ``(n_dims, 2)``."""
        parts = [h.log_bounds() for h in self._free_hyperparameters()]
        if not parts:
            return np.empty((0, 2))
        return np.vstack(parts)

    def clone_with_theta(self, theta: np.ndarray) -> "Kernel":
        """Return a deep copy of the kernel with ``theta`` installed."""
        import copy

        clone = copy.deepcopy(self)
        clone.theta = np.asarray(theta, dtype=float)
        return clone

    # --- evaluation ---------------------------------------------------------------

    @abstractmethod
    def __call__(self, X, Y=None, eval_gradient: bool = False):
        """Evaluate ``k(X, Y)``.

        Parameters
        ----------
        X : array of shape (n, d)
        Y : array of shape (m, d), optional
            Defaults to ``X``.
        eval_gradient : bool
            If true (requires ``Y is None``) also return the gradient of the
            covariance matrix with respect to ``theta``, an array of shape
            ``(n, n, n_dims)``.
        """

    @abstractmethod
    def diag(self, X) -> np.ndarray:
        """Diagonal of ``k(X, X)`` without forming the full matrix."""

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Gradient of ``k(x, X_i)`` with respect to the query point ``x``.

        Parameters
        ----------
        x : array of shape (d,)
            Single query point.
        X : array of shape (n, d)
            Reference points.

        Returns
        -------
        array of shape (n, d)
            Row ``i`` is ``d k(x, X_i) / d x``.

        Needed by the continuous-domain acquisition optimizer (the paper's
        Section VI: "Gradient-based methods, which are available with GPR").
        Stationary kernels implement it analytically; kernels without an
        implementation raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement input-space gradients"
        )

    # --- algebra -------------------------------------------------------------------

    def __add__(self, other) -> "Sum":
        return Sum(self, _as_kernel(other))

    def __radd__(self, other) -> "Sum":
        return Sum(_as_kernel(other), self)

    def __mul__(self, other) -> "Product":
        return Product(self, _as_kernel(other))

    def __rmul__(self, other) -> "Product":
        return Product(_as_kernel(other), self)


def _as_kernel(value) -> Kernel:
    if isinstance(value, Kernel):
        return value
    if np.isscalar(value):
        return ConstantKernel(float(value), "fixed")
    raise TypeError(f"cannot interpret {value!r} as a kernel")


def _check_gradient_call(Y, eval_gradient: bool) -> None:
    if eval_gradient and Y is not None:
        raise ValueError("gradient can only be evaluated when Y is None")


class ConstantKernel(Kernel):
    """Constant covariance ``k(x, x') = c``.

    Multiplying an RBF by a ConstantKernel realizes the paper's amplitude
    ``sigma_f^2``.
    """

    def __init__(self, constant_value: float = 1.0, constant_value_bounds=(1e-5, 1e5)):
        if constant_value <= 0:
            raise ValueError("constant_value must be positive")
        self.constant_value = float(constant_value)
        self._hyper = (Hyperparameter("constant_value", constant_value_bounds),)

    @property
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """The single constant-value hyperparameter."""
        return self._hyper

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        _check_gradient_call(Y, eval_gradient)
        X = as_2d_array(X)
        m = X.shape[0] if Y is None else as_2d_array(Y, name="Y").shape[0]
        K = np.full((X.shape[0], m), self.constant_value)
        if not eval_gradient:
            return K
        if self._hyper[0].fixed:
            grad = np.empty((X.shape[0], X.shape[0], 0))
        else:
            grad = np.full((X.shape[0], X.shape[0], 1), self.constant_value)
        return K, grad

    def diag(self, X) -> np.ndarray:
        """Constant diagonal."""
        X = as_2d_array(X)
        return np.full(X.shape[0], self.constant_value)

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Zero: constant covariance does not depend on the inputs."""
        X = as_2d_array(X)
        return np.zeros_like(X)

    def __repr__(self) -> str:
        return f"{math.sqrt(self.constant_value):.3g}**2"


class WhiteKernel(Kernel):
    """White noise covariance ``k(x, x') = noise_level * [x is x']``.

    ``noise_level`` is the paper's ``sigma_n^2``.  Its lower bound is the
    central tuning knob of the paper's Section V-B4 (Fig. 7): raising the
    floor from ``1e-8`` to ``1e-1`` eliminates GPR overfitting in early AL
    iterations.
    """

    def __init__(self, noise_level: float = 1.0, noise_level_bounds=(1e-5, 1e5)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self._hyper = (Hyperparameter("noise_level", noise_level_bounds),)

    @property
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """The single noise-level hyperparameter."""
        return self._hyper

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        _check_gradient_call(Y, eval_gradient)
        X = as_2d_array(X)
        if Y is None:
            K = self.noise_level * np.eye(X.shape[0])
            if not eval_gradient:
                return K
            if self._hyper[0].fixed:
                grad = np.empty((X.shape[0], X.shape[0], 0))
            else:
                grad = K[:, :, np.newaxis].copy()
            return K, grad
        Y = as_2d_array(Y, name="Y")
        # Distinct query points share no noise: the cross-covariance is zero.
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X) -> np.ndarray:
        """Noise level on the diagonal."""
        X = as_2d_array(X)
        return np.full(X.shape[0], self.noise_level)

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Zero almost everywhere (white noise has no cross-covariance)."""
        # The cross-covariance of white noise is zero away from x == X_i and
        # non-differentiable exactly there; the a.e. gradient is zero.
        X = as_2d_array(X)
        return np.zeros_like(X)

    def __repr__(self) -> str:
        return f"White({self.noise_level:.3g})"


class RBF(Kernel):
    """Squared-exponential (radial basis function) covariance, Eq. (11).

    ``k(x, x') = exp(-|x - x'|^2 / (2 l^2))`` with a scalar (isotropic) or
    per-dimension (ARD) length scale ``l``.  The amplitude ``sigma_f^2`` is
    supplied by multiplying with a :class:`ConstantKernel`.
    """

    def __init__(self, length_scale=1.0, length_scale_bounds=(1e-5, 1e5)):
        ls = np.atleast_1d(np.asarray(length_scale, dtype=float))
        if np.any(ls <= 0):
            raise ValueError("length_scale must be positive")
        self.length_scale = float(ls[0]) if ls.size == 1 else ls
        self._hyper = (
            Hyperparameter("length_scale", length_scale_bounds, n_elements=ls.size),
        )

    @property
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """The (possibly ARD) length-scale hyperparameter."""
        return self._hyper

    @property
    def anisotropic(self) -> bool:
        """Whether a separate length scale is used per input dimension."""
        return np.size(self.length_scale) > 1

    def _scaled(self, X: np.ndarray) -> np.ndarray:
        return X / np.atleast_1d(self.length_scale)

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        _check_gradient_call(Y, eval_gradient)
        X = as_2d_array(X)
        if self.anisotropic and np.size(self.length_scale) != X.shape[1]:
            raise ValueError(
                f"ARD length_scale has {np.size(self.length_scale)} entries but "
                f"X has {X.shape[1]} features"
            )
        Xs = self._scaled(X)
        if Y is None:
            sq = squareform(pdist(Xs, metric="sqeuclidean"))
            K = np.exp(-0.5 * sq)
            if not eval_gradient:
                return K
            if self._hyper[0].fixed:
                return K, np.empty((X.shape[0], X.shape[0], 0))
            if not self.anisotropic:
                # dK/d(log l) = K * sq_dist / l^2 (already scaled) = K * sq
                grad = (K * sq)[:, :, np.newaxis]
            else:
                # per-dimension: dK/d(log l_d) = K * (x_d - x'_d)^2 / l_d^2
                diff = (Xs[:, np.newaxis, :] - Xs[np.newaxis, :, :]) ** 2
                grad = K[:, :, np.newaxis] * diff
            return K, grad
        Y = as_2d_array(Y, name="Y")
        sq = cdist(Xs, self._scaled(Y), metric="sqeuclidean")
        return np.exp(-0.5 * sq)

    def diag(self, X) -> np.ndarray:
        """Unit diagonal (normalized stationary kernel)."""
        X = as_2d_array(X)
        return np.ones(X.shape[0])

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Analytic ``d k(x, X_i) / dx`` for the squared exponential."""
        x = np.asarray(x, dtype=float).ravel()
        X = as_2d_array(X)
        k = self(x[np.newaxis, :], X)[0]  # (n,)
        lsq = np.atleast_1d(self.length_scale) ** 2
        return -k[:, np.newaxis] * (x[np.newaxis, :] - X) / lsq

    def __repr__(self) -> str:
        if self.anisotropic:
            return f"RBF(l={np.array2string(np.asarray(self.length_scale), precision=3)})"
        return f"RBF(l={self.length_scale:.3g})"


class Matern(RBF):
    """Matern covariance with smoothness ``nu`` in {0.5, 1.5, 2.5, inf}.

    ``nu=inf`` reduces to the RBF.  The half-integer cases have simple closed
    forms and analytic gradients; they are the standard choices for modeling
    performance surfaces that are less smooth than the RBF assumes.
    """

    _SUPPORTED_NU = (0.5, 1.5, 2.5, math.inf)

    def __init__(self, length_scale=1.0, length_scale_bounds=(1e-5, 1e5), nu: float = 1.5):
        super().__init__(length_scale, length_scale_bounds)
        if nu not in self._SUPPORTED_NU:
            raise ValueError(f"nu must be one of {self._SUPPORTED_NU}, got {nu}")
        self.nu = float(nu)

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if self.nu == math.inf:
            return super().__call__(X, Y, eval_gradient)
        _check_gradient_call(Y, eval_gradient)
        X = as_2d_array(X)
        Xs = self._scaled(X)
        if Y is None:
            d = squareform(pdist(Xs, metric="euclidean"))
        else:
            d = cdist(Xs, self._scaled(as_2d_array(Y, name="Y")), metric="euclidean")

        if self.nu == 0.5:
            K = np.exp(-d)
        elif self.nu == 1.5:
            s = math.sqrt(3.0) * d
            K = (1.0 + s) * np.exp(-s)
        else:  # nu == 2.5
            s = math.sqrt(5.0) * d
            K = (1.0 + s + s**2 / 3.0) * np.exp(-s)

        if Y is not None:
            return K
        if not eval_gradient:
            return K
        if self._hyper[0].fixed:
            return K, np.empty((X.shape[0], X.shape[0], 0))
        if self.anisotropic:
            diff_sq = (Xs[:, np.newaxis, :] - Xs[np.newaxis, :, :]) ** 2
        else:
            diff_sq = (d**2)[:, :, np.newaxis]
        # dK/d(log l_d) expressed through scaled squared distance per dim.
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.nu == 0.5:
                factor = np.where(d > 0, np.exp(-d) / d, 0.0)
            elif self.nu == 1.5:
                factor = 3.0 * np.exp(-math.sqrt(3.0) * d)
            else:  # nu == 2.5
                s = math.sqrt(5.0) * d
                factor = (5.0 / 3.0) * (1.0 + s) * np.exp(-s)
        grad = factor[:, :, np.newaxis] * diff_sq if self.nu != 0.5 else (
            factor[:, :, np.newaxis] * diff_sq
        )
        return K, grad

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Analytic ``d k(x, X_i) / dx`` for the half-integer Matern family."""
        if self.nu == math.inf:
            return super().gradient_x(x, X)
        x = np.asarray(x, dtype=float).ravel()
        X = as_2d_array(X)
        lsq = np.atleast_1d(self.length_scale) ** 2
        diff = x[np.newaxis, :] - X  # (n, d)
        r = np.sqrt(np.sum(diff**2 / lsq, axis=1))  # scaled distance
        if self.nu == 0.5:
            # dk/dx = -exp(-r) * diff / (lsq * r); zero at r = 0 by convention.
            with np.errstate(divide="ignore", invalid="ignore"):
                factor = np.where(r > 0, np.exp(-r) / r, 0.0)
        elif self.nu == 1.5:
            factor = 3.0 * np.exp(-math.sqrt(3.0) * r)
        else:  # nu == 2.5
            s_ = math.sqrt(5.0) * r
            factor = (5.0 / 3.0) * (1.0 + s_) * np.exp(-s_)
        return -factor[:, np.newaxis] * diff / lsq

    def __repr__(self) -> str:
        return f"Matern(l={np.mean(np.atleast_1d(self.length_scale)):.3g}, nu={self.nu})"


class RationalQuadratic(Kernel):
    """Rational quadratic covariance — a scale mixture of RBF kernels.

    ``k(x, x') = (1 + |x-x'|^2 / (2 alpha l^2))^{-alpha}``.
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        alpha: float = 1.0,
        length_scale_bounds=(1e-5, 1e5),
        alpha_bounds=(1e-5, 1e5),
    ):
        if length_scale <= 0 or alpha <= 0:
            raise ValueError("length_scale and alpha must be positive")
        self.length_scale = float(length_scale)
        self.alpha = float(alpha)
        self._hyper = (
            Hyperparameter("length_scale", length_scale_bounds),
            Hyperparameter("alpha", alpha_bounds),
        )

    @property
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """Length-scale and mixture-exponent hyperparameters."""
        return self._hyper

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        _check_gradient_call(Y, eval_gradient)
        X = as_2d_array(X)
        if Y is None:
            sq = squareform(pdist(X, metric="sqeuclidean"))
        else:
            sq = cdist(X, as_2d_array(Y, name="Y"), metric="sqeuclidean")
        base = 1.0 + sq / (2.0 * self.alpha * self.length_scale**2)
        K = base ** (-self.alpha)
        if Y is not None:
            return K
        if not eval_gradient:
            return K
        grads = []
        if not self._hyper[0].fixed:
            # dK/d(log l) = K * sq / (l^2 * base)
            grads.append(K * sq / (self.length_scale**2 * base))
        if not self._hyper[1].fixed:
            # dK/d(log alpha)
            term = sq / (2.0 * self.alpha * self.length_scale**2)
            grads.append(K * self.alpha * (term / base - np.log(base)))
        if grads:
            grad = np.dstack(grads)
        else:
            grad = np.empty((X.shape[0], X.shape[0], 0))
        return K, grad

    def diag(self, X) -> np.ndarray:
        """Unit diagonal (normalized stationary kernel)."""
        X = as_2d_array(X)
        return np.ones(X.shape[0])

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Analytic ``d k(x, X_i) / dx`` for the rational quadratic."""
        x = np.asarray(x, dtype=float).ravel()
        X = as_2d_array(X)
        diff = x[np.newaxis, :] - X
        sq = np.sum(diff**2, axis=1)
        base = 1.0 + sq / (2.0 * self.alpha * self.length_scale**2)
        factor = base ** (-self.alpha - 1.0) / self.length_scale**2
        return -factor[:, np.newaxis] * diff

    def __repr__(self) -> str:
        return f"RQ(l={self.length_scale:.3g}, alpha={self.alpha:.3g})"


class _BinaryKernel(Kernel):
    """Common machinery for Sum and Product composite kernels."""

    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    @property
    def hyperparameters(self) -> Sequence[Hyperparameter]:
        """Both operands' hyperparameters, k1 first."""
        return tuple(self.k1.hyperparameters) + tuple(self.k2.hyperparameters)

    @property
    def theta(self) -> np.ndarray:
        """Concatenated log-space hyperparameters of both operands."""
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        """Split ``value`` between the operands in declaration order."""
        value = np.asarray(value, dtype=float)
        n1 = self.k1.n_dims
        if value.shape != (self.n_dims,):
            raise ValueError(
                f"theta has shape {value.shape}, expected ({self.n_dims},)"
            )
        self.k1.theta = value[:n1]
        self.k2.theta = value[n1:]

    @property
    def bounds(self) -> np.ndarray:
        """Stacked log-space bounds of both operands."""
        b1, b2 = self.k1.bounds, self.k2.bounds
        if b1.size == 0:
            return b2
        if b2.size == 0:
            return b1
        return np.vstack([b1, b2])


class Sum(_BinaryKernel):
    """Sum of two kernels: ``k = k1 + k2``."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if eval_gradient:
            K1, g1 = self.k1(X, eval_gradient=True)
            K2, g2 = self.k2(X, eval_gradient=True)
            return K1 + K2, np.dstack([g1, g2])
        return self.k1(X, Y) + self.k2(X, Y)

    def diag(self, X) -> np.ndarray:
        """Sum of the operands' diagonals."""
        return self.k1.diag(X) + self.k2.diag(X)

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Sum rule."""
        return self.k1.gradient_x(x, X) + self.k2.gradient_x(x, X)

    def __repr__(self) -> str:
        return f"{self.k1!r} + {self.k2!r}"


class Product(_BinaryKernel):
    """Product of two kernels: ``k = k1 * k2``."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if eval_gradient:
            K1, g1 = self.k1(X, eval_gradient=True)
            K2, g2 = self.k2(X, eval_gradient=True)
            K = K1 * K2
            grad = np.dstack([g1 * K2[:, :, np.newaxis], g2 * K1[:, :, np.newaxis]])
            return K, grad
        return self.k1(X, Y) * self.k2(X, Y)

    def diag(self, X) -> np.ndarray:
        """Product of the operands' diagonals."""
        return self.k1.diag(X) * self.k2.diag(X)

    def gradient_x(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Product rule."""
        x = np.asarray(x, dtype=float).ravel()
        X = as_2d_array(X)
        xq = x[np.newaxis, :]
        k1 = self.k1(xq, X)[0][:, np.newaxis]
        k2 = self.k2(xq, X)[0][:, np.newaxis]
        return self.k1.gradient_x(x, X) * k2 + k1 * self.k2.gradient_x(x, X)

    def __repr__(self) -> str:
        return f"{self.k1!r} * {self.k2!r}"


# --------------------------------------------------------------- serialization
#
# Exact JSON round-trips for kernel objects: every hyperparameter value is
# stored as a Python float (``repr`` round-trips float64 bit-exactly through
# JSON), bounds as ``[low, high]`` or ``"fixed"``, composites recursively.
# The model registry (:mod:`repro.serve`) persists fitted regressors with
# these helpers so a served model's covariance is *bit-identical* to the
# in-memory one that was published.


def _bounds_to_spec(h: Hyperparameter):
    return "fixed" if h.fixed else [float(h.bounds[0]), float(h.bounds[1])]


def _scalar_or_list(value):
    if np.ndim(value) == 0:
        return float(value)
    return np.asarray(value, dtype=float).tolist()


def kernel_to_dict(kernel: Kernel) -> dict:
    """Serialize a kernel (hyperparameters, bounds, structure) to a dict.

    The result is JSON-safe and :func:`kernel_from_dict` reconstructs an
    equivalent kernel whose ``theta``/``bounds``/``__call__`` outputs are
    bit-identical.  ``Matern(nu=inf)`` is supported: Python's ``json``
    round-trips ``Infinity`` by default.
    """
    if isinstance(kernel, (Sum, Product)):
        return {
            "type": type(kernel).__name__,
            "k1": kernel_to_dict(kernel.k1),
            "k2": kernel_to_dict(kernel.k2),
        }
    if isinstance(kernel, ConstantKernel):
        return {
            "type": "ConstantKernel",
            "constant_value": float(kernel.constant_value),
            "constant_value_bounds": _bounds_to_spec(kernel._hyper[0]),
        }
    if isinstance(kernel, WhiteKernel):
        return {
            "type": "WhiteKernel",
            "noise_level": float(kernel.noise_level),
            "noise_level_bounds": _bounds_to_spec(kernel._hyper[0]),
        }
    if isinstance(kernel, Matern):
        return {
            "type": "Matern",
            "length_scale": _scalar_or_list(kernel.length_scale),
            "length_scale_bounds": _bounds_to_spec(kernel._hyper[0]),
            "nu": float(kernel.nu),
        }
    if isinstance(kernel, RBF):
        return {
            "type": "RBF",
            "length_scale": _scalar_or_list(kernel.length_scale),
            "length_scale_bounds": _bounds_to_spec(kernel._hyper[0]),
        }
    if isinstance(kernel, RationalQuadratic):
        return {
            "type": "RationalQuadratic",
            "length_scale": float(kernel.length_scale),
            "alpha": float(kernel.alpha),
            "length_scale_bounds": _bounds_to_spec(kernel._hyper[0]),
            "alpha_bounds": _bounds_to_spec(kernel._hyper[1]),
        }
    raise TypeError(
        f"cannot serialize kernel of type {type(kernel).__name__}; "
        "kernel_to_dict supports the built-in kernel classes and their "
        "Sum/Product compositions"
    )


def _spec_bounds(spec):
    if isinstance(spec, str):
        if spec != "fixed":
            raise ValueError(f"invalid bounds spec {spec!r}")
        return "fixed"
    return (float(spec[0]), float(spec[1]))


def kernel_from_dict(spec: dict) -> Kernel:
    """Reconstruct a kernel previously serialized by :func:`kernel_to_dict`."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError("kernel spec must be a dict with a 'type' key")
    kind = spec["type"]
    if kind in ("Sum", "Product"):
        cls = Sum if kind == "Sum" else Product
        return cls(kernel_from_dict(spec["k1"]), kernel_from_dict(spec["k2"]))
    if kind == "ConstantKernel":
        return ConstantKernel(
            spec["constant_value"], _spec_bounds(spec["constant_value_bounds"])
        )
    if kind == "WhiteKernel":
        return WhiteKernel(
            spec["noise_level"], _spec_bounds(spec["noise_level_bounds"])
        )
    if kind == "RBF":
        return RBF(
            spec["length_scale"], _spec_bounds(spec["length_scale_bounds"])
        )
    if kind == "Matern":
        return Matern(
            spec["length_scale"],
            _spec_bounds(spec["length_scale_bounds"]),
            nu=spec["nu"],
        )
    if kind == "RationalQuadratic":
        return RationalQuadratic(
            spec["length_scale"],
            spec["alpha"],
            _spec_bounds(spec["length_scale_bounds"]),
            _spec_bounds(spec["alpha_bounds"]),
        )
    raise ValueError(f"unknown kernel type {kind!r}")
