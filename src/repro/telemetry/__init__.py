"""Dependency-free instrumentation for the GP/AL/scheduler stack.

The paper's argument rests on per-iteration diagnostics — sigma_f at the
selected candidate, AMSD, RMSE, LML trajectories (Figs. 5-8) — and the
production campaigns built on top of it need to know *why* a fit was slow,
a restart failed, or a round stalled.  This package supplies:

* a process-wide :class:`Registry` of counters, gauges and histograms
  (:mod:`repro.telemetry.registry`);
* a structured JSONL event log with nested spans —
  ``campaign > round > fit > restart`` — carrying monotonic timestamps and
  seeds (:mod:`repro.telemetry.trace`);
* zero-cost-when-disabled hook helpers used throughout ``repro.gp``,
  ``repro.al`` and ``repro.cluster``;
* a summarizer/validator and the ``python -m repro telemetry`` CLI
  (:mod:`repro.telemetry.summarize`).

Telemetry is **off by default**.  Hook sites call the module-level helpers
below, which reduce to a single attribute test and return when nothing is
enabled; instrumented hot loops therefore run at full speed.  Enable it
around a region of interest::

    from repro import telemetry

    with telemetry.session("run.jsonl"):
        campaign.run()

    # later:  python -m repro telemetry summarize run.jsonl

or imperatively with :func:`enable` / :func:`disable`.  Only one session
can be active per process (the registry is process-wide by design).
"""

from __future__ import annotations

from contextlib import contextmanager

from .registry import Counter, Gauge, Histogram, Registry
from .summarize import read_trace, render_summary, summarize_trace, validate_trace
from .trace import Span, TraceWriter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "TraceWriter",
    "read_trace",
    "summarize_trace",
    "render_summary",
    "validate_trace",
    "enable",
    "disable",
    "enabled",
    "session",
    "worker_session",
    "get_registry",
    "get_writer",
    "count",
    "gauge_set",
    "observe",
    "event",
    "span",
]

#: (registry, writer-or-None) when enabled; None when disabled.  A single
#: tuple keeps the disabled-path check to one global load per hook call.
_STATE: tuple[Registry, TraceWriter | None] | None = None


class _NullSpan:
    """Reusable no-op stand-in for :class:`Span` when telemetry is off."""

    __slots__ = ()

    def set(self, **fields) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


# ------------------------------------------------------------------ lifecycle


def enable(trace_path=None, *, registry: Registry | None = None,
           flush_every: int = 64) -> Registry:
    """Turn telemetry on for the whole process.

    Parameters
    ----------
    trace_path:
        If given, events/spans are recorded to this JSONL file (flushed
        atomically); without it only the metric registry is live.
    registry:
        Use an existing registry instead of a fresh one (e.g. to aggregate
        several runs).
    flush_every:
        Passed through to :class:`TraceWriter`.

    Returns the active registry.  Raises if telemetry is already enabled.
    """
    global _STATE
    if _STATE is not None:
        raise RuntimeError("telemetry is already enabled; call disable() first")
    reg = registry if registry is not None else Registry()
    writer = (
        TraceWriter(trace_path, flush_every=flush_every)
        if trace_path is not None
        else None
    )
    _STATE = (reg, writer)
    return reg


def disable() -> None:
    """Turn telemetry off; flushes the registry snapshot into the trace.

    A no-op when telemetry is not enabled.
    """
    global _STATE
    if _STATE is None:
        return
    reg, writer = _STATE
    _STATE = None
    if writer is not None:
        writer.metrics(reg.snapshot())
        writer.close()


def enabled() -> bool:
    """Whether a telemetry session is active."""
    return _STATE is not None


@contextmanager
def session(trace_path=None, *, registry: Registry | None = None,
            flush_every: int = 64):
    """Enable telemetry for the duration of a ``with`` block.

    Yields the active :class:`Registry`; on exit the registry snapshot is
    appended to the trace and the file is closed.
    """
    reg = enable(trace_path, registry=registry, flush_every=flush_every)
    try:
        yield reg
    finally:
        disable()


@contextmanager
def worker_session():
    """Telemetry scope for a pool-worker task (see :mod:`repro.parallel`).

    Swaps in a fresh registry with *no* trace writer for the duration of
    the block and yields it, restoring the previous state afterwards.
    Unlike :func:`session` it never raises on already-enabled telemetry:
    a forked process worker inherits the parent's ``_STATE`` — including a
    buffered copy of the parent's trace writer, which must never flush
    from the child or it would clobber the parent's trace file — so the
    inherited state is shelved, the task records into the local registry,
    and the caller ships ``registry.dump()`` back to the parent for an
    in-order :meth:`Registry.merge`.

    Not for use from *threads* of an enabled process: the state is
    process-global, so a thread swapping it would race the other threads
    (thread pools share the parent registry directly instead).
    """
    global _STATE
    saved = _STATE
    registry = Registry()
    _STATE = (registry, None)
    try:
        yield registry
    finally:
        _STATE = saved


def get_registry() -> Registry | None:
    """The active registry, or ``None`` when telemetry is disabled."""
    return _STATE[0] if _STATE is not None else None


def get_writer() -> TraceWriter | None:
    """The active trace writer, or ``None`` (disabled or registry-only)."""
    return _STATE[1] if _STATE is not None else None


# ----------------------------------------------------------------- hook sites
#
# These are the functions instrumented code calls.  Each one is a single
# global load plus an ``is None`` test on the disabled path.


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    state[0].counter(name).inc(n)


def gauge_set(name: str, value) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    state[0].gauge(name).set(value)


def observe(name: str, value) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    state[0].histogram(name).observe(value)


def event(name: str, **fields) -> None:
    """Write a point event to the trace (no-op when disabled or traceless)."""
    state = _STATE
    if state is None or state[1] is None:
        return
    state[1].event(name, **fields)


def span(name: str, **fields):
    """Open a trace span; returns a shared null span when disabled."""
    state = _STATE
    if state is None or state[1] is None:
        return _NULL_SPAN
    return state[1].span(name, **fields)
