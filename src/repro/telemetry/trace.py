"""Structured JSONL event log with nested spans.

One trace is one run: a sequence of JSON objects, one per line, ordered by
a monotonic clock that starts at 0 when the writer is created.  Four event
kinds exist (the full schema lives in ``docs/TELEMETRY.md``):

``span_start`` / ``span_end``
    A timed region.  Spans nest — ``campaign > round > fit > restart`` —
    via the ``parent`` id, maintained per thread so parallel sweep workers
    do not corrupt each other's ancestry.  Fields attached with
    :meth:`Span.set` while the span is open land on its ``span_end`` line.
``point``
    An instantaneous observation (one AL iteration's metrics, one
    scheduler batch) attributed to the innermost open span.
``metrics``
    A :meth:`repro.telemetry.registry.Registry.snapshot`, normally the
    final line of a trace.

The file is written the way :mod:`repro.al.session` writes checkpoints:
the buffered lines are flushed to a temporary file in the target directory
and moved into place with :func:`os.replace`, so a crash mid-write leaves
the previous complete version, never a torn line.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

__all__ = ["Span", "TraceWriter"]


def _json_default(obj):
    """Serialize numpy scalars/arrays (duck-typed; numpy is not imported)."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


class Span:
    """Handle for one open span; a context manager yielded by
    :meth:`TraceWriter.span`.

    Extra result fields — the fit's LML, the restart's status — are
    attached with :meth:`set` and written on the ``span_end`` line.
    """

    __slots__ = ("writer", "span_id", "name", "_fields", "_t_start")

    def __init__(self, writer: "TraceWriter", span_id: int, name: str):
        self.writer = writer
        self.span_id = span_id
        self.name = name
        self._fields: dict = {}
        self._t_start = 0.0

    def set(self, **fields) -> "Span":
        """Attach result fields to this span's ``span_end`` event."""
        self._fields.update(fields)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self.writer._end_span(self)


class TraceWriter:
    """Buffered, atomically flushed JSONL trace.

    Parameters
    ----------
    path:
        Target file.  Parent directories are created.
    flush_every:
        Rewrite the file after this many buffered events (and always on
        :meth:`close`), bounding how much a crash can lose.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(self, path, *, flush_every: int = 64, clock=time.monotonic):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._clock = clock
        self._t0 = clock()
        self._lines: list[str] = []
        self._unflushed = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_span_id = 0
        self._closed = False

    # ------------------------------------------------------------------ events

    def _now(self) -> float:
        return round(self._clock() - self._t0, 9)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, payload: dict) -> None:
        line = json.dumps(payload, default=_json_default)
        with self._lock:
            if self._closed:
                raise RuntimeError("trace writer is closed")
            self._lines.append(line)
            self._unflushed += 1
            should_flush = self._unflushed >= self.flush_every
        if should_flush:
            self.flush()

    def span(self, name: str, **fields) -> Span:
        """Open a span; use as ``with writer.span("fit", n=12) as sp:``."""
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(self, span_id, name)
        span._t_start = self._now()
        self._emit(
            {
                "ev": "span_start",
                "t": span._t_start,
                "span": span_id,
                "parent": parent,
                "name": name,
                **fields,
            }
        )
        stack.append(span)
        return span

    def _end_span(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} ended out of order (spans must nest)"
            )
        stack.pop()
        t = self._now()
        self._emit(
            {
                "ev": "span_end",
                "t": t,
                "span": span.span_id,
                "name": span.name,
                "elapsed": round(t - span._t_start, 9),
                **span._fields,
            }
        )

    def event(self, name: str, **fields) -> None:
        """One instantaneous ``point`` event inside the current span."""
        stack = self._stack()
        self._emit(
            {
                "ev": "point",
                "t": self._now(),
                "span": stack[-1].span_id if stack else None,
                "name": name,
                **fields,
            }
        )

    def metrics(self, snapshot: dict) -> None:
        """Append a registry snapshot (normally the trace's last line)."""
        self._emit({"ev": "metrics", "t": self._now(), "metrics": snapshot})

    # ------------------------------------------------------------------- file

    def flush(self) -> Path:
        """Atomically rewrite the trace file with everything buffered so far."""
        with self._lock:
            text = "\n".join(self._lines) + ("\n" if self._lines else "")
            self._unflushed = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return self.path

    def close(self) -> Path:
        """Flush and refuse further events."""
        path = self.flush()
        with self._lock:
            self._closed = True
        return path

    @property
    def n_events(self) -> int:
        return len(self._lines)
