"""``python -m repro telemetry`` — inspect and validate trace files.

Subcommands::

    python -m repro telemetry summarize RUN.jsonl   # human-readable report
    python -m repro telemetry summarize RUN.jsonl --json
    python -m repro telemetry validate RUN.jsonl    # schema check, exit 1 on error
"""

from __future__ import annotations

import argparse
import json

from .summarize import read_trace, render_summary, summarize_trace, validate_trace

__all__ = ["main"]


def main(argv=None) -> int:
    """Entry point for the ``telemetry`` subcommand; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Summarize or validate a telemetry JSONL trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="render a trace into a human-readable report"
    )
    p_sum.add_argument("trace", help="path to the JSONL trace file")
    p_sum.add_argument(
        "--json", action="store_true", help="emit the structured summary as JSON"
    )
    p_val = sub.add_parser(
        "validate", help="check a trace against the documented schema"
    )
    p_val.add_argument("trace", help="path to the JSONL trace file")
    args = parser.parse_args(argv)

    events = read_trace(args.trace)
    if args.command == "validate":
        errors = validate_trace(events)
        if errors:
            for err in errors:
                print(f"INVALID {args.trace}: {err}")
            return 1
        print(f"OK {args.trace}: {len(events)} events, schema valid")
        return 0

    summary = summarize_trace(events)
    try:
        if args.json:
            print(json.dumps(summary, indent=2, default=str))
        else:
            print(render_summary(summary))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.  Point
        # stdout at devnull so the interpreter-exit flush stays quiet.
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0
