"""Turn a telemetry JSONL trace into a validated, human-readable report.

Three layers, each usable on its own:

* :func:`read_trace` — parse the file, raising a descriptive error on a
  torn or non-JSON line;
* :func:`validate_trace` — check every event against the schema documented
  in ``docs/TELEMETRY.md`` (required keys, known kinds, balanced and
  properly-nested spans, non-decreasing timestamps); returns the list of
  violations instead of raising so CI can print them all;
* :func:`summarize_trace` / :func:`render_summary` — aggregate the events
  into the paper's diagnostics (per-fit wall-times, restart LML spreads,
  update-vs-refit counts, campaign round table, scheduler stats) and
  render them for a terminal.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = [
    "read_trace",
    "validate_trace",
    "summarize_trace",
    "render_summary",
]

_EVENT_KINDS = ("span_start", "span_end", "point", "metrics")
#: keys required per event kind (beyond "ev" and "t", required everywhere)
_REQUIRED_KEYS = {
    "span_start": ("span", "parent", "name"),
    "span_end": ("span", "name", "elapsed"),
    "point": ("span", "name"),
    "metrics": ("metrics",),
}
#: tolerance for clock monotonicity checks (events from parallel threads
#: interleave within the writer-lock granularity)
_T_SLACK = 1e-6


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts."""
    events = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not a valid trace line ({exc.msg})"
            ) from exc
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: trace line is not a JSON object")
        events.append(event)
    return events


def validate_trace(events: list[dict]) -> list[str]:
    """Schema violations in ``events`` (empty list = valid trace)."""
    errors: list[str] = []
    open_spans: dict[int, dict] = {}
    stack_by_parent: dict[int | None, int] = {}
    last_t = -math.inf
    seen_ids: set[int] = set()
    for i, event in enumerate(events):
        where = f"event {i}"
        kind = event.get("ev")
        if kind not in _EVENT_KINDS:
            errors.append(f"{where}: unknown ev kind {kind!r}")
            continue
        t = event.get("t")
        if not isinstance(t, (int, float)):
            errors.append(f"{where}: missing/non-numeric t")
        else:
            if t < last_t - _T_SLACK:
                errors.append(
                    f"{where}: timestamp {t} goes backwards (previous {last_t})"
                )
            last_t = max(last_t, t)
        for key in _REQUIRED_KEYS[kind]:
            if key not in event:
                errors.append(f"{where}: {kind} missing required key {key!r}")
        if kind == "span_start":
            span_id = event.get("span")
            if span_id in seen_ids:
                errors.append(f"{where}: span id {span_id} reused")
            seen_ids.add(span_id)
            parent = event.get("parent")
            if parent is not None and parent not in open_spans:
                errors.append(
                    f"{where}: span {span_id} has parent {parent} "
                    "which is not an open span"
                )
            open_spans[span_id] = event
        elif kind == "span_end":
            span_id = event.get("span")
            start = open_spans.pop(span_id, None)
            if start is None:
                errors.append(
                    f"{where}: span_end for {span_id} without an open span_start"
                )
            elif start.get("name") != event.get("name"):
                errors.append(
                    f"{where}: span {span_id} started as "
                    f"{start.get('name')!r} but ended as {event.get('name')!r}"
                )
    del stack_by_parent
    for span_id, start in open_spans.items():
        errors.append(
            f"span {span_id} ({start.get('name')!r}) was never closed"
        )
    return errors


def _finite(values):
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def summarize_trace(events: list[dict]) -> dict:
    """Aggregate a trace into the diagnostics the paper plots.

    Returns a plain dict with keys:

    ``duration``, ``n_events`` — trace envelope;
    ``span_stats`` — per span name: count, total/mean elapsed;
    ``fits`` — per full fit: t, elapsed, n, lml, restart spread/statuses;
    ``updates`` — rank-1 update spans (t, elapsed, points folded in);
    ``rounds`` — campaign round table (round, n_jobs, n_ok, makespan, max_sd);
    ``iterations`` — per-iteration AL point events;
    ``metrics`` — the last registry snapshot in the trace (or None).
    """
    span_stats: dict[str, dict] = {}
    fits: list[dict] = []
    updates: list[dict] = []
    rounds: list[dict] = []
    iterations: list[dict] = []
    metrics = None
    restart_children: dict[int, list[dict]] = {}
    starts: dict[int, dict] = {}

    for event in events:
        kind = event.get("ev")
        if kind == "span_start":
            starts[event["span"]] = event
        elif kind == "span_end":
            name = event.get("name", "?")
            stat = span_stats.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            elapsed = float(event.get("elapsed", 0.0))
            stat["count"] += 1
            stat["total_s"] += elapsed
            stat["max_s"] = max(stat["max_s"], elapsed)
            start = starts.get(event["span"], {})
            if name == "restart":
                parent = start.get("parent")
                restart_children.setdefault(parent, []).append(event)
            elif name == "fit":
                fits.append(
                    {
                        "span": event["span"],
                        "t": start.get("t", 0.0),
                        "elapsed": elapsed,
                        "n": start.get("n"),
                        "lml": event.get("lml"),
                        "warm_start": start.get("warm_start"),
                    }
                )
            elif name == "update":
                updates.append(
                    {
                        "t": start.get("t", 0.0),
                        "elapsed": elapsed,
                        "n_new": start.get("n_new"),
                        "n": start.get("n"),
                    }
                )
            elif name == "round":
                rounds.append(
                    {
                        "round": start.get("round"),
                        "elapsed": elapsed,
                        **{
                            k: event.get(k)
                            for k in ("n_jobs", "n_ok", "makespan", "max_sd")
                            if k in event
                        },
                    }
                )
        elif kind == "point":
            if event.get("name") == "al.iteration":
                iterations.append(event)
        elif kind == "metrics":
            metrics = event.get("metrics")

    # Restart spread per fit span: range of the finite per-start objective
    # values (the negative LML, so the spread equals the LML spread).
    for fit in fits:
        children = restart_children.get(fit["span"], [])
        values = _finite([c.get("value") for c in children])
        fit["n_starts"] = len(children)
        fit["lml_spread"] = (max(values) - min(values)) if len(values) > 1 else 0.0
        statuses = [c.get("status") for c in children]
        fit["n_bad_starts"] = sum(1 for s in statuses if s and s != "ok")

    duration = 0.0
    for event in events:
        t = event.get("t")
        if isinstance(t, (int, float)):
            duration = max(duration, t)

    return {
        "n_events": len(events),
        "duration": duration,
        "span_stats": span_stats,
        "fits": fits,
        "updates": updates,
        "rounds": rounds,
        "iterations": iterations,
        "metrics": metrics,
    }


def _fmt(value, spec=".4g") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, spec)
    return str(value)


def render_summary(summary: dict, *, max_rows: int = 20) -> str:
    """Render :func:`summarize_trace` output for a terminal."""
    lines: list[str] = []
    lines.append(
        f"trace: {summary['n_events']} events over "
        f"{summary['duration']:.3f} s (monotonic)"
    )

    fits = summary["fits"]
    updates = summary["updates"]
    lines.append("")
    lines.append(
        f"model path: {len(fits)} full fit(s), "
        f"{len(updates)} rank-1 update(s)"
    )
    if fits:
        lines.append("  fit timings (s): "
                     + ", ".join(f"{f['elapsed']:.4f}" for f in fits[:max_rows])
                     + (" ..." if len(fits) > max_rows else ""))
        total_fit = sum(f["elapsed"] for f in fits)
        spreads = _finite([f["lml_spread"] for f in fits])
        lines.append(
            f"  fit wall-time: total {total_fit:.4f} s, "
            f"mean {total_fit / len(fits):.4f} s"
        )
        if spreads:
            lines.append(
                f"  restart LML spread: mean {sum(spreads) / len(spreads):.4g}, "
                f"max {max(spreads):.4g}"
            )
        n_bad = sum(f.get("n_bad_starts", 0) for f in fits)
        if n_bad:
            lines.append(f"  non-converged/non-finite starts: {n_bad}")

    if summary["rounds"]:
        lines.append("")
        lines.append("campaign rounds:")
        lines.append("  round  n_jobs  n_ok  makespan(s)  max_sd")
        for row in summary["rounds"][:max_rows]:
            lines.append(
                f"  {_fmt(row.get('round')):>5}"
                f"  {_fmt(row.get('n_jobs')):>6}"
                f"  {_fmt(row.get('n_ok')):>4}"
                f"  {_fmt(row.get('makespan'), '.6g'):>11}"
                f"  {_fmt(row.get('max_sd'))}"
            )
        if len(summary["rounds"]) > max_rows:
            lines.append(f"  ... {len(summary['rounds']) - max_rows} more")

    if summary["iterations"]:
        lines.append("")
        lines.append(f"AL iterations: {len(summary['iterations'])}")
        last = summary["iterations"][-1]
        lines.append(
            "  last: "
            + ", ".join(
                f"{k}={_fmt(last.get(k))}"
                for k in ("iteration", "n_train", "rmse", "amsd", "sd_at_selected")
                if k in last
            )
        )

    if summary["span_stats"]:
        lines.append("")
        lines.append("spans:")
        lines.append("  name                 count   total(s)     max(s)")
        for name, stat in sorted(summary["span_stats"].items()):
            lines.append(
                f"  {name:<20} {stat['count']:>5}   {stat['total_s']:>8.4f}"
                f"   {stat['max_s']:>8.4f}"
            )

    metrics = summary["metrics"]
    if metrics:
        if metrics.get("counters"):
            lines.append("")
            lines.append("counters:")
            for name, value in sorted(metrics["counters"].items()):
                lines.append(f"  {name:<40} {value}")
        if metrics.get("gauges"):
            lines.append("")
            lines.append("gauges:")
            for name, value in sorted(metrics["gauges"].items()):
                lines.append(f"  {name:<40} {_fmt(value)}")
        if metrics.get("histograms"):
            lines.append("")
            lines.append("histograms:")
            lines.append(
                "  name                                     count"
                "       mean        p90        max"
            )
            for name, h in sorted(metrics["histograms"].items()):
                lines.append(
                    f"  {name:<40} {h['count']:>5}"
                    f" {_fmt(h['mean'], '10.4g')} {_fmt(h['p90'], '10.4g')}"
                    f" {_fmt(h['max'], '10.4g')}"
                )
    return "\n".join(lines)
