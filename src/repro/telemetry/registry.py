"""Process-wide metric instruments: counters, gauges, histograms.

The paper's diagnostics (Figs. 5-8) are per-iteration scalars — fit
wall-time, restart LML spread, update-vs-refit counts, retry tallies —
that until now lived in ad-hoc dataclass fields.  A :class:`Registry`
gives them one home: hook sites anywhere in the stack get-or-create an
instrument by name and record into it; a campaign driver (or the
``repro telemetry`` CLI) reads one :meth:`Registry.snapshot` at the end.

Everything here is standard library only — the telemetry layer must be
importable from the lowest-level modules (``repro.gp.incremental``)
without creating dependency cycles or new requirements.
"""

from __future__ import annotations

import threading
from bisect import insort

__all__ = ["Counter", "Gauge", "Histogram", "Registry"]


class Counter:
    """Monotonically increasing count (fit calls, fallbacks, retries)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, _lock: threading.Lock | None = None):
        self.name = name
        self.value = 0
        self._lock = _lock or threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count; ``n`` must not be negative."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written scalar (pool size, node utilization, n_train)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, _lock: threading.Lock | None = None):
        self.name = name
        self.value: float | None = None
        self._lock = _lock or threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level; overwrites the previous value."""
        with self._lock:
            self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Distribution of observations (fit seconds, LML spread, makespan).

    Keeps every observation (telemetry runs are thousands of events, not
    millions) in sorted order so exact quantiles are one index away.
    """

    __slots__ = ("name", "_sorted", "total", "_lock")

    def __init__(self, name: str, _lock: threading.Lock | None = None):
        self.name = name
        self._sorted: list[float] = []
        self.total = 0.0
        self._lock = _lock or threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            insort(self._sorted, value)
            self.total += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float | None:
        return self._sorted[0] if self._sorted else None

    @property
    def max(self) -> float | None:
        return self._sorted[-1] if self._sorted else None

    @property
    def mean(self) -> float | None:
        return self.total / len(self._sorted) if self._sorted else None

    def _percentile_unlocked(self, q: float) -> float | None:
        if not self._sorted:
            return None
        rank = min(len(self._sorted) - 1, int(q / 100.0 * len(self._sorted)))
        return self._sorted[rank]

    def percentile(self, q: float) -> float | None:
        """Exact ``q``-th percentile (nearest-rank), ``0 <= q <= 100``."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            return self._percentile_unlocked(q)

    def _summary_unlocked(self) -> dict:
        s = self._sorted
        n = len(s)
        return {
            "count": n,
            "total": self.total,
            "min": s[0] if s else None,
            "mean": self.total / n if n else None,
            "p50": self._percentile_unlocked(50),
            "p90": self._percentile_unlocked(90),
            "max": s[-1] if s else None,
        }

    def summary(self) -> dict:
        """Count/total/min/mean/p50/p90/max as a plain dict.

        Computed under the instrument lock so a concurrent ``observe``
        can never produce a torn view (count from before, total from
        after).
        """
        with self._lock:
            return self._summary_unlocked()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """Get-or-create home for named instruments.

    A name permanently belongs to the kind that first claimed it;
    re-requesting it as a different kind raises, which catches the
    classic typo of observing into a counter.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = kind(name, _lock=self._lock)
                self._instruments[name] = inst
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(inst).__name__}, requested {kind.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All instrument values as one JSON-serializable dict."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = inst.summary()
        return out

    def dump(self) -> dict:
        """Raw, mergeable instrument contents (cf. the *summarized* snapshot).

        Unlike :meth:`snapshot`, histograms are dumped as their full
        observation lists, so two dumps can be merged without losing
        quantile exactness.  This is the payload pool workers ship back to
        the parent process (see :meth:`merge` and
        :func:`repro.telemetry.worker_session`).
        """
        with self._lock:
            out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
            for name, inst in sorted(self._instruments.items()):
                if isinstance(inst, Counter):
                    out["counters"][name] = inst.value
                elif isinstance(inst, Gauge):
                    out["gauges"][name] = inst.value
                else:
                    out["histograms"][name] = list(inst._sorted)
        return out

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, histograms extend with the dumped observations, and
        gauges take the dumped value (last merge wins — callers merge in
        task order so the result is deterministic).  Instrument-kind
        conflicts raise, exactly as live double-registration does.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in dump.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, values in dump.get("histograms", {}).items():
            hist = self.histogram(name)
            for value in values:
                hist.observe(value)

    def reset(self) -> None:
        """Drop every instrument (a fresh registry without re-creating it)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)
