"""repro — full reproduction of "Active Learning in Performance Analysis"
(Duplyakin, Brown, Ricci; IEEE CLUSTER 2016).

Subpackages
-----------
``repro.gp``
    Gaussian Process Regression from scratch (kernels, LML optimization,
    LOO-CV) — the substrate the paper took from scikit-learn.
``repro.al``
    The paper's contribution: pool-based active learning for performance
    analysis (Variance Reduction, Cost Efficiency, EMCM/random baselines,
    batch selection, convergence metrics, tradeoff analysis).
``repro.hpgmg``
    A runnable mini HPGMG-FE: Q1/Q2 finite-element geometric multigrid.
``repro.cluster``
    Simulated CloudLab testbed: nodes, DVFS, SLURM-like scheduling, IPMI
    power traces, energy integration.
``repro.perfmodel``
    Analytic HPGMG-FE runtime/energy surfaces and measurement noise.
``repro.datasets``
    Regeneration of the paper's Performance (3,246-job) and Power
    (640-job) datasets; CSV I/O; Table I.
``repro.experiments``
    One module per paper table/figure, returning the plotted series.
``repro.viz``
    ASCII chart rendering for terminals without matplotlib.
``repro.telemetry``
    Zero-cost-when-disabled instrumentation: metric registry, JSONL trace
    spans, and the ``python -m repro telemetry`` report CLI.
``repro.parallel``
    Deterministic serial/thread/process fan-out (``ParallelMap``) used by
    multi-restart fits, partition batches, and replicate campaign sweeps.
``repro.serve``
    Versioned model registry plus always-on prediction service with hot
    rollover, and the ``python -m repro serve`` CLI.

Quickstart
----------
>>> from repro.experiments import fig8
>>> result = fig8.run(n_partitions=10, n_iterations=60)
>>> result.comparison.max_reduction  # the paper's "up to 38%"
"""

__version__ = "1.0.0"

from .modeler import PerformanceModeler, Suggestion

__all__ = [
    "PerformanceModeler",
    "Suggestion",
    "gp",
    "al",
    "hpgmg",
    "cluster",
    "perfmodel",
    "datasets",
    "experiments",
    "viz",
    "telemetry",
    "parallel",
    "serve",
]

_SUBPACKAGES = frozenset(
    {
        "parallel",
        "gp",
        "al",
        "hpgmg",
        "cluster",
        "perfmodel",
        "datasets",
        "experiments",
        "viz",
        "telemetry",
        "serve",
    }
)


def __getattr__(name):
    """Lazy subpackage import (PEP 562): ``repro.al`` works without the
    top-level import paying for every subsystem."""
    if name in _SUBPACKAGES:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
