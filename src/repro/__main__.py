"""Command-line entry point: regenerate any of the paper's exhibits.

Usage::

    python -m repro table1
    python -m repro fig4
    python -m repro fig8 --partitions 10 --iterations 60
    python -m repro all --quick
    python -m repro fig7 --quick --trace fig7.jsonl
    python -m repro telemetry summarize fig7.jsonl
    python -m repro campaign --guardrails --breaker --crash-node 0:0.8

``--quick`` shrinks the sweep sizes of the AL experiments (fig7/fig8) so
the whole evaluation runs in a few minutes; without it they use the bench
defaults.  ``--trace`` records a telemetry JSONL trace of the run (fit
timings, restart spreads, update-vs-refit counts); the ``telemetry``
subcommand renders or validates such traces.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import experiments
from .experiments import report

_EXHIBITS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8")


def _run_one(name: str, args) -> str:
    module = getattr(experiments, name)
    renderer = getattr(report, f"render_{name}")
    kwargs = {}
    if name == "fig7":
        kwargs = dict(
            n_partitions=4 if args.quick else (args.partitions or 10),
            n_iterations=25 if args.quick else (args.iterations or 40),
            n_workers=args.workers,
        )
    elif name == "fig8":
        kwargs = dict(
            n_partitions=4 if args.quick else (args.partitions or 12),
            n_iterations=40 if args.quick else (args.iterations or 120),
            n_workers=args.workers,
        )
    t0 = time.perf_counter()
    result = module.run(seed=args.seed, **kwargs)
    elapsed = time.perf_counter() - t0
    return f"{renderer(result)}\n[{name} regenerated in {elapsed:.1f}s]"


def main(argv=None) -> int:
    """Parse arguments, regenerate the requested exhibit(s), return 0."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["telemetry"]:
        from .telemetry.cli import main as telemetry_main

        return telemetry_main(argv[1:])
    if argv[:1] == ["campaign"]:
        from .al.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv[:1] == ["serve"]:
        from .serve.cli import main as serve_main

        return serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures "
        "(see also: python -m repro telemetry --help).",
    )
    parser.add_argument(
        "exhibit",
        choices=_EXHIBITS + ("all",),
        help="which exhibit to regenerate (or 'all')",
    )
    parser.add_argument("--seed", type=int, default=experiments.DEFAULT_SEED)
    parser.add_argument("--partitions", type=int, default=None,
                        help="AL partitions for fig7/fig8")
    parser.add_argument("--iterations", type=int, default=None,
                        help="AL iterations for fig7/fig8")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps for a fast full pass")
    parser.add_argument("--workers", type=int, default=1,
                        help="thread workers for the AL sweeps (fig7/fig8)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a telemetry JSONL trace of the run")
    args = parser.parse_args(argv)

    names = _EXHIBITS if args.exhibit == "all" else (args.exhibit,)

    def run_all() -> None:
        for name in names:
            print(_run_one(name, args))
            print()

    if args.trace:
        from . import telemetry

        with telemetry.session(args.trace):
            run_all()
        print(f"[telemetry trace written to {args.trace}]")
    else:
        run_all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
