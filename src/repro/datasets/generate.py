"""Generation of the paper's two datasets on the simulated testbed.

Reproduces the data-collection campaigns of Section IV:

* **Performance dataset** — 3,246 HPGMG-FE jobs over the full Table I
  factor grid (feasibility-filtered), with up to 3 repeats per
  configuration, executed through the SLURM-like scheduler.  Response:
  runtime.
* **Power dataset** — 640 jobs drawn from the longer-running part of the
  grid (jobs long enough for meaningful IPMI energy integration), executed
  with power-trace sampling; jobs whose traces fail the paper's 10-records-
  per-minute rule are excluded, exactly like the real campaign whose gaps
  shrank this dataset.  Responses: runtime and energy.

Everything is seeded and deterministic: the same seed always yields the
same job records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.jobs import JobSpec
from ..cluster.machine import ClusterSpec, wisconsin_cluster
from ..cluster.power import IPMISampler, PowerModel
from ..cluster.scheduler import ExecutionOutcome, SlurmSimulator
from ..perfmodel.noise import PERFORMANCE_NOISE, NoiseModel
from ..perfmodel.runtime import RuntimeModel
from .dataset import PerfDataset
from .schema import (
    MAX_REPEATS,
    PERFORMANCE_N_JOBS,
    POWER_N_JOBS,
    FeasibilityRule,
    full_factorial,
)

__all__ = [
    "ModelExecutor",
    "generate_performance_dataset",
    "generate_power_dataset",
    "feasible_configurations",
]


@dataclass
class ModelExecutor:
    """Scheduler executor backed by the analytic performance model.

    ``estimate`` returns the noise-free model runtime (what a scheduler
    would be told); ``execute`` draws a noisy measurement from the noise
    model, plus plausible solver statistics for the accounting record.
    """

    runtime_model: RuntimeModel = field(default_factory=RuntimeModel)
    noise: NoiseModel = PERFORMANCE_NOISE
    bytes_per_dof: float = 48.0

    def estimate(self, spec: JobSpec) -> float:
        """Noise-free model runtime (what the scheduler is told)."""
        return float(
            self.runtime_model.runtime(
                spec.operator, spec.problem_size, spec.np_ranks, spec.freq_ghz
            )
        )

    def execute(self, spec: JobSpec, rng: np.random.Generator) -> ExecutionOutcome:
        """Draw one noisy measured run plus plausible solver statistics."""
        clean = self.estimate(spec)
        measured = float(self.noise.apply(clean, rng))
        n_nodes = self.runtime_model.nodes_needed(spec.np_ranks)
        rss = spec.problem_size * self.bytes_per_dof / n_nodes / 1e6
        return ExecutionOutcome(
            runtime_seconds=measured,
            mg_cycles=int(rng.integers(5, 10)),
            final_residual=float(10 ** rng.uniform(-9.5, -8.0)),
            dofs_per_second=spec.problem_size / measured,
            work_units=float(rng.uniform(28, 36)),
            verification_passed=True,
            rss_mb_per_node=rss,
        )


def feasible_configurations(
    runtime_model: RuntimeModel | None = None,
    rule: FeasibilityRule | None = None,
) -> list[tuple[str, int, int, float]]:
    """Table I grid filtered by memory and time-limit feasibility."""
    runtime_model = runtime_model or RuntimeModel()
    rule = rule or FeasibilityRule()
    configs = []
    for op, size, np_ranks, freq in full_factorial():
        expected = float(runtime_model.runtime(op, size, np_ranks, freq))
        if rule.feasible(size, np_ranks, expected):
            configs.append((op, size, np_ranks, freq))
    return configs


#: The densely-sampled slice of the real campaign: the paper's AL evaluation
#: (Fig. 6-8) runs on the poisson1 / NP=32 cross-section, which holds 251 of
#: the 3,246 Performance jobs — roughly 3 repeats of every configuration.
DENSE_SLICE = {"operator": "poisson1", "np_ranks": 32}
DENSE_SLICE_JOBS = 251


def _specs_with_repeats(
    configs: list[tuple[str, int, int, float]],
    target_jobs: int,
    rng: np.random.Generator,
    *,
    dense_slice: dict | None = None,
    dense_slice_jobs: int = 0,
) -> list[JobSpec]:
    """Assign 1-3 repeats per configuration to hit ``target_jobs`` exactly.

    If ``dense_slice`` is given, configurations matching it are sampled
    first, with as many repeats as needed to contribute exactly
    ``dense_slice_jobs`` jobs (mirroring the real campaign's dense coverage
    of the slice the paper's AL evaluation uses).
    """
    n = len(configs)
    if target_jobs > n * MAX_REPEATS:
        raise ValueError(
            f"target of {target_jobs} jobs exceeds {n} configs x {MAX_REPEATS} repeats"
        )
    if target_jobs < n and not dense_slice:
        # Small campaign: run a random subset of configurations once each.
        chosen = sorted(rng.choice(n, size=target_jobs, replace=False).tolist())
        configs = [configs[i] for i in chosen]
        n = len(configs)
    repeats = np.ones(n, dtype=int)

    dense_idx: list[int] = []
    if dense_slice:
        keymap = {"operator": 0, "problem_size": 1, "np_ranks": 2, "freq_ghz": 3}
        dense_idx = [
            i
            for i, cfg in enumerate(configs)
            if all(cfg[keymap[k]] == v for k, v in dense_slice.items())
        ]
        if dense_slice_jobs:
            if not dense_idx:
                raise ValueError(f"no configurations match dense slice {dense_slice}")
            if not len(dense_idx) <= dense_slice_jobs <= len(dense_idx) * MAX_REPEATS:
                raise ValueError(
                    f"dense slice of {len(dense_idx)} configs cannot hold "
                    f"{dense_slice_jobs} jobs with <= {MAX_REPEATS} repeats"
                )
            base, extra_dense = divmod(dense_slice_jobs, len(dense_idx))
            repeats[dense_idx] = base
            bump = rng.permutation(dense_idx)[:extra_dense]
            repeats[bump] += 1

    other_idx = np.array(
        [i for i in range(n) if i not in set(dense_idx)], dtype=int
    )
    extra = target_jobs - int(repeats.sum())
    if extra < 0:
        raise ValueError(
            f"target of {target_jobs} jobs is below the minimum of {repeats.sum()}"
        )
    order = rng.permutation(other_idx) if other_idx.size else np.empty(0, dtype=int)
    i = 0
    while extra > 0:
        if order.size == 0:
            raise ValueError("cannot place extra repeats: no non-dense configs")
        idx = order[i % order.size]
        if repeats[idx] < MAX_REPEATS:
            repeats[idx] += 1
            extra -= 1
        i += 1
        if i > 10 * n:
            raise ValueError("unable to distribute repeats within the repeat cap")
    specs = []
    for (op, size, np_ranks, freq), r in zip(configs, repeats):
        for rep in range(int(r)):
            specs.append(
                JobSpec(
                    operator=op,
                    problem_size=float(size),
                    np_ranks=np_ranks,
                    freq_ghz=freq,
                    repeat_index=rep,
                )
            )
    return specs


def generate_performance_dataset(
    seed: int = 2016,
    *,
    n_jobs: int = PERFORMANCE_N_JOBS,
    cluster: ClusterSpec | None = None,
    runtime_model: RuntimeModel | None = None,
    noise: NoiseModel = PERFORMANCE_NOISE,
) -> PerfDataset:
    """The 3,246-job Performance dataset (runtime response only)."""
    cluster = cluster or wisconsin_cluster()
    runtime_model = runtime_model or RuntimeModel()
    rng = np.random.default_rng(seed)
    configs = feasible_configurations(runtime_model)
    dense = DENSE_SLICE if n_jobs == PERFORMANCE_N_JOBS else None
    specs = _specs_with_repeats(
        configs,
        n_jobs,
        rng,
        dense_slice=dense,
        dense_slice_jobs=DENSE_SLICE_JOBS if dense else 0,
    )
    executor = ModelExecutor(runtime_model=runtime_model, noise=noise)
    sim = SlurmSimulator(
        cluster,
        executor,
        rng=rng,
        time_limit_seconds=FeasibilityRule().time_limit_seconds + 120.0,
    )
    records = sim.run_batch(specs)
    ds = PerfDataset(name="Performance", records=records)
    assert len(ds) == n_jobs
    return ds


def generate_power_dataset(
    seed: int = 2016,
    *,
    n_jobs: int = POWER_N_JOBS,
    min_runtime_s: float = 50.0,
    cluster: ClusterSpec | None = None,
    runtime_model: RuntimeModel | None = None,
    power_model: PowerModel | None = None,
    sampler: IPMISampler | None = None,
    noise: NoiseModel = PERFORMANCE_NOISE,
) -> PerfDataset:
    """The 640-job Power dataset (runtime and energy responses).

    Draws configurations whose expected runtime is at least
    ``min_runtime_s`` (short jobs yield too few IPMI samples for a
    meaningful energy integral), runs them with power tracing, drops jobs
    whose traces fail the 10-records-per-minute rule, and keeps the first
    ``n_jobs`` usable jobs in job-id order.
    """
    cluster = cluster or wisconsin_cluster()
    runtime_model = runtime_model or RuntimeModel()
    power_model = power_model or PowerModel()
    sampler = sampler or IPMISampler()
    rng = np.random.default_rng(seed + 1)

    rule = FeasibilityRule()
    long_configs = [
        (op, size, np_ranks, freq)
        for (op, size, np_ranks, freq) in feasible_configurations(runtime_model, rule)
        if float(runtime_model.runtime(op, size, np_ranks, freq)) >= min_runtime_s
    ]
    if not long_configs:
        raise RuntimeError("no configurations satisfy the power-campaign runtime floor")
    # Submit more jobs than needed so trace-gap exclusions still leave n_jobs.
    target = min(int(np.ceil(n_jobs * 1.2)), len(long_configs) * MAX_REPEATS)
    if target < n_jobs:
        raise ValueError(
            f"only {target} jobs possible above the {min_runtime_s}s floor; "
            f"lower min_runtime_s or n_jobs"
        )
    specs = _specs_with_repeats(long_configs, target, rng)

    executor = ModelExecutor(runtime_model=runtime_model, noise=noise)
    sim = SlurmSimulator(
        cluster,
        executor,
        power_model=power_model,
        sampler=sampler,
        rng=rng,
        time_limit_seconds=rule.time_limit_seconds + 120.0,
    )
    records = sim.run_batch(specs)
    usable = [
        r
        for r in records
        if r.state == "COMPLETED" and r.energy_usable and r.energy_joules is not None
    ]
    usable.sort(key=lambda r: r.job_id)
    if len(usable) < n_jobs:
        raise RuntimeError(
            f"power campaign produced only {len(usable)} usable jobs (< {n_jobs}); "
            "increase the oversubmission factor"
        )
    return PerfDataset(name="Power", records=usable[:n_jobs])
