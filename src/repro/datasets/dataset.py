"""The dataset container used throughout the reproduction.

A :class:`PerfDataset` wraps the list of 46-attribute job records produced
by the simulated campaigns (or loaded from CSV) and provides the selection
and design-matrix operations the paper's analysis needs: fixing factors to
carve out 1-D/2-D cross sections, extracting ``(X, y)`` with log transforms,
and computing per-job experiment cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..cluster.jobs import JobRecord

__all__ = ["PerfDataset", "DesignSpec"]

#: Variables that are log-transformed by default when used as features,
#: mirroring the paper's log-scale treatment of Global Problem Size.
_LOG_FEATURES = frozenset({"problem_size"})


@dataclass(frozen=True)
class DesignSpec:
    """How to turn job records into a regression problem.

    Attributes
    ----------
    variables:
        Controlled variables used as features, in column order.  The
        categorical ``operator`` factor may be included: it expands into
        one-hot indicator columns (in ``categories`` order), letting a
        single model span the full 4-factor space — the paper fixes the
        operator per cross-section, but notes the framework handles
        "multiple controlled variables".
    response:
        Response attribute (``runtime_seconds`` or ``energy_joules``).
    log_features:
        Feature names to log10-transform (default: problem size).
    log_response:
        Whether the response is log10-transformed (the paper always does).
    categories:
        Level order used for the one-hot encoding of ``operator``.
    """

    variables: tuple[str, ...]
    response: str = "runtime_seconds"
    log_features: frozenset = _LOG_FEATURES
    log_response: bool = True
    categories: tuple[str, ...] = ("poisson1", "poisson2", "poisson2affine")

    def __post_init__(self):
        if not self.variables:
            raise ValueError("need at least one feature variable")
        if len(self.categories) != len(set(self.categories)):
            raise ValueError("categories must be distinct")

    @property
    def n_columns(self) -> int:
        """Width of the design matrix after one-hot expansion."""
        width = 0
        for v in self.variables:
            width += len(self.categories) if v == "operator" else 1
        return width

    def column_names(self) -> tuple[str, ...]:
        """Design-matrix column labels (one-hot levels expanded)."""
        names: list[str] = []
        for v in self.variables:
            if v == "operator":
                names.extend(f"operator={c}" for c in self.categories)
            else:
                names.append(v)
        return tuple(names)


@dataclass
class PerfDataset:
    """A named collection of job records with regression-view helpers."""

    name: str
    records: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.records)

    # ------------------------------------------------------------- selection

    def subset(self, predicate: Callable | None = None, /, **fixed) -> "PerfDataset":
        """Records matching fixed attribute values and/or a predicate.

        >>> ds.subset(operator="poisson1", np_ranks=32)
        >>> ds.subset(lambda r: r.runtime_seconds > 1.0)
        """
        out = []
        for r in self.records:
            if predicate is not None and not predicate(r):
                continue
            if all(getattr(r, k) == v for k, v in fixed.items()):
                out.append(r)
        suffix = ",".join(f"{k}={v}" for k, v in fixed.items())
        return PerfDataset(name=f"{self.name}[{suffix}]" if suffix else self.name, records=out)

    def with_energy(self) -> "PerfDataset":
        """Only jobs with a usable energy estimate (the paper's Power rule)."""
        return self.subset(lambda r: r.energy_usable and r.energy_joules is not None)

    def completed(self) -> "PerfDataset":
        """Only jobs that finished successfully."""
        return self.subset(lambda r: r.state == "COMPLETED")

    def column(self, attribute: str) -> np.ndarray:
        """One attribute across all records as an array (object for strings)."""
        values = [getattr(r, attribute) for r in self.records]
        if values and isinstance(values[0], str):
            return np.asarray(values, dtype=object)
        return np.asarray(values, dtype=float)

    def unique_levels(self, attribute: str) -> list:
        """Sorted distinct values of an attribute."""
        return sorted({getattr(r, attribute) for r in self.records})

    # --------------------------------------------------------- regression view

    def design_matrix(self, spec: DesignSpec) -> tuple[np.ndarray, np.ndarray]:
        """``(X, y)`` for a regression problem per the design spec.

        Features are log10-transformed per ``spec.log_features``; the
        response per ``spec.log_response``.  Jobs lacking the response
        (e.g. energy on a gappy trace) are skipped.
        """
        rows = []
        ys = []
        for r in self.records:
            y = getattr(r, spec.response)
            if y is None:
                continue
            if y <= 0 and spec.log_response:
                raise ValueError(
                    f"non-positive response {spec.response}={y} cannot be log-transformed"
                )
            row = []
            for v in spec.variables:
                if v == "operator":
                    level = getattr(r, v)
                    if level not in spec.categories:
                        raise ValueError(
                            f"operator {level!r} not in spec.categories"
                        )
                    row.extend(
                        1.0 if level == c else 0.0 for c in spec.categories
                    )
                    continue
                value = float(getattr(r, v))
                if v in spec.log_features:
                    if value <= 0:
                        raise ValueError(f"non-positive feature {v}={value}")
                    value = np.log10(value)
                row.append(value)
            rows.append(row)
            ys.append(np.log10(y) if spec.log_response else float(y))
        if not rows:
            raise ValueError(f"no usable records for response {spec.response!r}")
        return np.asarray(rows, dtype=float), np.asarray(ys, dtype=float)

    def costs(self, *, metric: str = "core_seconds") -> np.ndarray:
        """Per-job experiment cost.

        ``core_seconds`` is the paper's cost unit (compute time x cores);
        ``seconds`` and ``energy`` are alternatives.
        """
        if metric == "core_seconds":
            return np.asarray([r.cost_core_seconds for r in self.records])
        if metric == "seconds":
            return np.asarray([r.runtime_seconds for r in self.records])
        if metric == "energy":
            vals = [r.energy_joules for r in self.records]
            if any(v is None for v in vals):
                raise ValueError("some records lack energy; filter with with_energy()")
            return np.asarray(vals, dtype=float)
        raise ValueError(f"unknown cost metric {metric!r}")

    # ----------------------------------------------------------------- summary

    def response_range(self, attribute: str) -> tuple[float, float]:
        """(min, max) of a response over records where it is present."""
        vals = [
            getattr(r, attribute)
            for r in self.records
            if getattr(r, attribute) is not None
        ]
        if not vals:
            raise ValueError(f"no records carry {attribute!r}")
        return float(min(vals)), float(max(vals))

    def extend(self, records: Iterable[JobRecord]) -> None:
        """Append job records in place."""
        self.records.extend(records)
