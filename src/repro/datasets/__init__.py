"""Synthetic regeneration of the paper's Performance and Power datasets.

Public API::

    from repro.datasets import (generate_performance_dataset,
                                generate_power_dataset, PerfDataset,
                                DesignSpec, write_csv, read_csv, table1)
"""

from .dataset import DesignSpec, PerfDataset
from .generate import (
    ModelExecutor,
    feasible_configurations,
    generate_performance_dataset,
    generate_power_dataset,
)
from .io import read_csv, write_csv
from .schema import (
    CONTROLLED_VARIABLES,
    FREQ_LEVELS_GHZ,
    MAX_REPEATS,
    NP_LEVELS,
    OPERATORS,
    PERFORMANCE_N_JOBS,
    POWER_N_JOBS,
    PROBLEM_SIZES,
    RESPONSES,
    SIZE_LEVELS_LINEAR,
    FeasibilityRule,
    full_factorial,
)
from .summary import Table1Row, format_table1, table1

__all__ = [
    "PerfDataset",
    "DesignSpec",
    "ModelExecutor",
    "generate_performance_dataset",
    "generate_power_dataset",
    "feasible_configurations",
    "read_csv",
    "write_csv",
    "Table1Row",
    "table1",
    "format_table1",
    "OPERATORS",
    "NP_LEVELS",
    "FREQ_LEVELS_GHZ",
    "SIZE_LEVELS_LINEAR",
    "PROBLEM_SIZES",
    "PERFORMANCE_N_JOBS",
    "POWER_N_JOBS",
    "MAX_REPEATS",
    "CONTROLLED_VARIABLES",
    "RESPONSES",
    "FeasibilityRule",
    "full_factorial",
]
