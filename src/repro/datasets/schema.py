"""Factor levels and feasibility rules of the paper's experiment campaigns.

Table I of the paper defines the controlled variables and their levels:

    Operator:            poisson1, poisson2, poisson2affine
    Global Problem Size: 1.7e3 - 1.1e9
    NP:                  1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128
    CPU Frequency (GHz): 1.2, 1.5, 1.8, 2.1, 2.4

and the dataset sizes: 3,246 jobs (Performance) and 640 jobs (Power), with
up to 3 repeated experiments per configuration.  The problem-size levels
are cube numbers (12^3 = 1,728 up to 1,024^3 ~ 1.07e9), matching HPGMG's
cubic global grids and Table I's range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "OPERATORS",
    "NP_LEVELS",
    "FREQ_LEVELS_GHZ",
    "SIZE_LEVELS_LINEAR",
    "PROBLEM_SIZES",
    "PERFORMANCE_N_JOBS",
    "POWER_N_JOBS",
    "MAX_REPEATS",
    "FeasibilityRule",
    "CONTROLLED_VARIABLES",
    "RESPONSES",
    "full_factorial",
]

OPERATORS: tuple[str, ...] = ("poisson1", "poisson2", "poisson2affine")
NP_LEVELS: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
FREQ_LEVELS_GHZ: tuple[float, ...] = (1.2, 1.5, 1.8, 2.1, 2.4)
SIZE_LEVELS_LINEAR: tuple[int, ...] = (
    12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 128, 160, 192, 256, 384, 512, 1024,
)
#: Global problem sizes in DOF (cubic grids), 1.7e3 .. 1.1e9 as in Table I.
PROBLEM_SIZES: tuple[int, ...] = tuple(n**3 for n in SIZE_LEVELS_LINEAR)

PERFORMANCE_N_JOBS = 3246
POWER_N_JOBS = 640
MAX_REPEATS = 3

#: Controlled variable names as they appear in job records / CSV columns.
CONTROLLED_VARIABLES: tuple[str, ...] = (
    "operator",
    "problem_size",
    "np_ranks",
    "freq_ghz",
)

#: Response variable names.
RESPONSES: tuple[str, ...] = ("runtime_seconds", "energy_joules")


@dataclass(frozen=True)
class FeasibilityRule:
    """Which configurations could actually run on the testbed.

    A configuration is excluded when it would exceed per-node memory (the
    solver needs ``bytes_per_dof`` spread over the job's nodes) or the
    SLURM time limit.
    """

    bytes_per_dof: float = 48.0
    usable_gb_per_node: float = 120.0
    time_limit_seconds: float = 460.0
    threads_per_node: int = 32

    def nodes_for(self, np_ranks: int) -> int:
        """Nodes a job with ``np_ranks`` ranks occupies (32 rank slots each)."""
        return -(-np_ranks // self.threads_per_node)

    def memory_ok(self, problem_size: float, np_ranks: int) -> bool:
        """Does the problem fit in the RAM of the job's nodes?"""
        nodes = self.nodes_for(np_ranks)
        need_gb = problem_size * self.bytes_per_dof / 1e9
        return need_gb <= nodes * self.usable_gb_per_node

    def runtime_ok(self, expected_runtime_s: float) -> bool:
        """Would the job finish within the SLURM time limit?"""
        return expected_runtime_s <= self.time_limit_seconds

    def feasible(
        self, problem_size: float, np_ranks: int, expected_runtime_s: float
    ) -> bool:
        """Memory and time-limit feasibility combined."""
        return self.memory_ok(problem_size, np_ranks) and self.runtime_ok(
            expected_runtime_s
        )


def full_factorial() -> list[tuple[str, int, int, float]]:
    """All (operator, problem_size, np, freq) combinations of Table I."""
    return [
        (op, size, np_ranks, freq)
        for op in OPERATORS
        for size in PROBLEM_SIZES
        for np_ranks in NP_LEVELS
        for freq in FREQ_LEVELS_GHZ
    ]
