"""Regeneration of the paper's Table I (dataset parameter summary)."""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import PerfDataset

__all__ = ["Table1Row", "table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table I, for one dataset."""

    dataset: str
    n_jobs: int
    responses: tuple[str, ...]
    runtime_range_s: tuple[float, float]
    energy_range_j: tuple[float, float] | None
    operators: tuple[str, ...]
    problem_size_range: tuple[float, float]
    np_levels: tuple[int, ...]
    freq_levels_ghz: tuple[float, ...]


def table1(dataset: PerfDataset) -> Table1Row:
    """Summarize a dataset exactly as Table I reports it."""
    has_energy = any(r.energy_joules is not None for r in dataset.records)
    responses = ("Runtime (S), Energy (J)" if has_energy else "Runtime (S)",)
    return Table1Row(
        dataset=dataset.name,
        n_jobs=len(dataset),
        responses=responses,
        runtime_range_s=dataset.response_range("runtime_seconds"),
        energy_range_j=dataset.response_range("energy_joules") if has_energy else None,
        operators=tuple(dataset.unique_levels("operator")),
        problem_size_range=(
            float(min(dataset.unique_levels("problem_size"))),
            float(max(dataset.unique_levels("problem_size"))),
        ),
        np_levels=tuple(int(v) for v in dataset.unique_levels("np_ranks")),
        freq_levels_ghz=tuple(dataset.unique_levels("freq_ghz")),
    )


def format_table1(*rows: Table1Row) -> str:
    """Render Table I as aligned text, one dataset per column block."""
    lines = ["TABLE I: The Parameters of the Analyzed Datasets."]
    for row in rows:
        lines.append(f"\nDataset: {row.dataset}")
        lines.append(f"  # Jobs        {row.n_jobs}")
        lines.append(f"  Responses     {', '.join(row.responses)}")
        lo, hi = row.runtime_range_s
        lines.append(f"  Runtime, S    {lo:.3f} - {hi:.3f}")
        if row.energy_range_j is not None:
            lo, hi = row.energy_range_j
            lines.append(f"  Energy, J     {lo:.3g} - {hi:.3g}")
        lines.append(f"  Operator      {','.join(row.operators)}")
        lo, hi = row.problem_size_range
        lines.append(f"  Problem Size  {lo:.3g} - {hi:.3g}")
        lines.append(f"  NP            {','.join(str(v) for v in row.np_levels)}")
        lines.append(
            f"  CPU Freq, GHz {','.join(f'{v:g}' for v in row.freq_levels_ghz)}"
        )
    return "\n".join(lines)
