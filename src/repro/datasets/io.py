"""CSV persistence of job records.

The paper published its datasets as CSV files with ~46 attributes per job;
this module writes and reads the same layout for :class:`PerfDataset`.
Only the standard library ``csv`` module is used (pandas is not available
in this environment).
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..cluster.jobs import JOB_RECORD_FIELDS, JobRecord
from .dataset import PerfDataset

__all__ = ["write_csv", "read_csv"]

_BOOL_FIELDS = {"verification_passed", "energy_usable"}
_INT_FIELDS = {
    "job_id",
    "np_ranks",
    "repeat_index",
    "n_nodes",
    "cores_per_node",
    "exit_code",
    "priority",
    "requeue_count",
    "mg_cycles",
    "power_records",
}
_STR_FIELDS = {
    "operator",
    "node_list",
    "state",
    "partition",
    "account",
    "user",
    "batch_host",
    "qos",
}
_OPTIONAL_FIELDS = {"mean_power_watts", "energy_joules"}


def write_csv(dataset: PerfDataset, path: str | Path) -> Path:
    """Write a dataset to CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(JOB_RECORD_FIELDS)
        for record in dataset.records:
            row = []
            for name in JOB_RECORD_FIELDS:
                value = getattr(record, name)
                if value is None:
                    row.append("")
                elif isinstance(value, bool):
                    row.append("1" if value else "0")
                elif isinstance(value, float):
                    row.append(repr(value))
                else:
                    row.append(str(value))
            writer.writerow(row)
    return path


def _parse(name: str, text: str):
    if name in _OPTIONAL_FIELDS and text == "":
        return None
    if name in _STR_FIELDS:
        return text
    if name in _BOOL_FIELDS:
        return text == "1"
    if name in _INT_FIELDS:
        return int(text)
    return float(text)


def read_csv(path: str | Path, *, name: str | None = None) -> PerfDataset:
    """Read a dataset previously written by :func:`write_csv`."""
    path = Path(path)
    records = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if tuple(header) != JOB_RECORD_FIELDS:
            raise ValueError(
                f"CSV header does not match the job-record schema: {header[:5]}..."
            )
        for row in reader:
            if len(row) != len(JOB_RECORD_FIELDS):
                raise ValueError(f"malformed CSV row of length {len(row)}")
            kwargs = {
                field: _parse(field, text)
                for field, text in zip(JOB_RECORD_FIELDS, row)
            }
            records.append(JobRecord(**kwargs))
    return PerfDataset(name=name or path.stem, records=records)
