"""High-level facade: the paper's "prototype" as a one-stop API.

The paper's second contribution bullet: "we develop a prototype which can
be used to construct a number of diverse performance models, including
models for application runtime, energy consumption, memory usage, and many
others.  We show how one can efficiently learn relationships between these
metrics and multiple controlled variables."

:class:`PerformanceModeler` packages that workflow: point it at a
:class:`~repro.datasets.dataset.PerfDataset`, name the controlled variables
and the response, and it handles log transforms, GPR fitting, prediction
with uncertainty, AL-based suggestions for the next experiments, and
convergence checking — the pieces a performance engineer actually calls.

Example
-------
>>> from repro.datasets import generate_performance_dataset
>>> from repro.modeler import PerformanceModeler
>>> ds = generate_performance_dataset(seed=2016).subset(operator="poisson1")
>>> modeler = PerformanceModeler(ds, variables=("problem_size", "np_ranks",
...                                             "freq_ghz"))
>>> modeler.fit()
>>> t, sd = modeler.predict_response([(1e8, 32, 2.4)])   # seconds, ±sd
>>> suggestions = modeler.suggest_experiments(3)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .al.learner import default_model_factory
from .al.pool import CandidatePool
from .al.strategies import CostEfficiency, Strategy, VarianceReduction, select_batch
from .datasets.dataset import DesignSpec, PerfDataset
from .gp.gpr import GaussianProcessRegressor

__all__ = ["PerformanceModeler", "Suggestion"]


@dataclass(frozen=True)
class Suggestion:
    """One recommended follow-up experiment."""

    values: dict  # variable name -> natural-units value
    predicted_response: float  # natural units
    predictive_sd_log10: float  # uncertainty in log10 space


class PerformanceModeler:
    """Fit-and-advise wrapper around GPR + AL for one dataset response.

    Parameters
    ----------
    dataset:
        Recorded experiments.  Fix categorical factors first
        (``dataset.subset(operator=...)``).
    variables:
        Controlled variables used as features.
    response:
        ``"runtime_seconds"`` (default), ``"energy_joules"``,
        ``"max_rss_mb_node0"``, or any positive numeric record attribute.
    log_features:
        Feature names to log10-transform; defaults to wide-ranged ones
        (problem size and rank count).
    noise_floor:
        Lower bound for the GPR noise variance (the paper's robust default
        1e-1).
    """

    _DEFAULT_LOG = frozenset({"problem_size", "np_ranks"})

    def __init__(
        self,
        dataset: PerfDataset,
        *,
        variables=("problem_size", "np_ranks", "freq_ghz"),
        response: str = "runtime_seconds",
        log_features=None,
        noise_floor: float = 1e-1,
        rng=None,
    ):
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        self.dataset = dataset
        self.variables = tuple(variables)
        self.response = response
        log_features = (
            frozenset(log_features)
            if log_features is not None
            else self._DEFAULT_LOG & set(self.variables)
        )
        self.spec = DesignSpec(
            variables=self.variables,
            response=response,
            log_features=log_features,
            log_response=True,
        )
        self.X, self.y = dataset.design_matrix(self.spec)
        self._model_factory = default_model_factory(noise_floor)
        self.rng = np.random.default_rng(rng)
        self.model: GaussianProcessRegressor | None = None

    # ------------------------------------------------------------------ fitting

    def fit(self) -> "PerformanceModeler":
        """Fit the GPR on every recorded experiment."""
        model = self._model_factory()
        model.rng = self.rng
        model.fit(self.X, self.y)
        self.model = model
        return self

    def _require_fitted(self) -> GaussianProcessRegressor:
        if self.model is None:
            raise RuntimeError("call fit() first")
        return self.model

    # --------------------------------------------------------------- transforms

    def _encode(self, configs) -> np.ndarray:
        rows = []
        for config in configs:
            if isinstance(config, dict):
                values = [config[v] for v in self.variables]
            else:
                values = list(config)
                if len(values) != len(self.variables):
                    raise ValueError(
                        f"config has {len(values)} values, expected "
                        f"{len(self.variables)} ({self.variables})"
                    )
            row = []
            for name, value in zip(self.variables, values):
                value = float(value)
                if name in self.spec.log_features:
                    if value <= 0:
                        raise ValueError(f"{name} must be positive, got {value}")
                    value = np.log10(value)
                row.append(value)
            rows.append(row)
        return np.asarray(rows, dtype=float)

    def _decode(self, x: np.ndarray) -> dict:
        out = {}
        for name, value in zip(self.variables, x):
            out[name] = float(10**value if name in self.spec.log_features else value)
        return out

    # -------------------------------------------------------------- predictions

    def predict_response(self, configs) -> tuple[np.ndarray, np.ndarray]:
        """Predict the response in natural units with a 1-sd band.

        Returns ``(median, sd_factor)``: the predictive median (back-
        transformed from log space) and the multiplicative one-sigma factor
        — the 68% band is ``median / sd_factor .. median * sd_factor``.
        """
        model = self._require_fitted()
        mu, sd = model.predict(self._encode(configs), return_std=True)
        return 10**mu, 10**sd

    def predict_log10(self, configs) -> tuple[np.ndarray, np.ndarray]:
        """Predictive mean and sd in log10 space (the modeling space)."""
        model = self._require_fitted()
        return model.predict(self._encode(configs), return_std=True)

    # -------------------------------------------------------------- suggestions

    def suggest_experiments(
        self,
        n: int = 1,
        *,
        strategy: str | Strategy = "variance",
    ) -> list[Suggestion]:
        """Recommend the next ``n`` recorded configurations to (re-)measure.

        Uses kriging-believer batch selection over the dataset's own
        configuration pool, so the ``n`` suggestions are diverse.  Strategy
        ``"variance"`` maximizes predictive SD; ``"cost-efficiency"``
        maximizes ``sd - mu`` (the paper's Eq. 14).
        """
        model = self._require_fitted()
        if isinstance(strategy, str):
            if strategy == "variance":
                strategy = VarianceReduction()
            elif strategy == "cost-efficiency":
                strategy = CostEfficiency()
            else:
                raise ValueError(f"unknown strategy {strategy!r}")
        # Pool = distinct recorded configurations.
        uniq = np.unique(self.X, axis=0)
        if n < 1 or n > uniq.shape[0]:
            raise ValueError(f"n must be in 1..{uniq.shape[0]}")
        pool = CandidatePool(uniq, np.zeros(uniq.shape[0]), np.zeros(uniq.shape[0]))
        picks = select_batch(model, pool, strategy, n)
        suggestions = []
        for idx in picks:
            x = uniq[idx]
            mu, sd = model.predict(x[np.newaxis, :], return_std=True)
            suggestions.append(
                Suggestion(
                    values=self._decode(x),
                    predicted_response=float(10 ** mu[0]),
                    predictive_sd_log10=float(sd[0]),
                )
            )
        return suggestions

    # ------------------------------------------------------------------ summary

    def uncertainty_summary(self) -> dict:
        """AMSD-style summary over the dataset's own configurations."""
        model = self._require_fitted()
        _, sd = model.predict(self.X, return_std=True)
        return {
            "amsd": float(np.mean(sd)),
            "max_sd": float(np.max(sd)),
            "min_sd": float(np.min(sd)),
            "noise_sd": float(np.sqrt(model.noise_variance_)),
        }

    def cross_validated_rmse(self) -> float:
        """Leave-one-out RMSE (log10 space) of the fitted model — a quick
        honesty check without holding out data."""
        from .gp.loocv import loo_residuals

        model = self._require_fitted()
        res = loo_residuals(model)
        return float(np.sqrt(np.mean((res.mean - self.y) ** 2)))
