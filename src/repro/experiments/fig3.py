"""Experiment: Fig. 3 — 1-D GPR predictive distributions vs problem size.

The paper fixes NP=32, freq=2.4, operator=poisson1 and regresses log
runtime on log problem size, showing

(a) GPRs with four hand-set (length scale, amplitude) pairs on *all*
    measurements: the means nearly coincide, but smaller length scales blow
    up the confidence interval between measurement points;
(b) the same on a random 4-point subset: uncertainty is exaggerated at the
    domain edge with no measurement nearby, and even the means disagree.

``run`` reproduces both panels: predictive mean/CI curves per
hyperparameter setting, plus the summary statistics the paper's prose
relies on (mean-curve disagreement, average CI width between points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.gpr import GaussianProcessRegressor
from ..gp.kernels import RBF, ConstantKernel
from .common import DEFAULT_SEED, one_d_subset

__all__ = ["GPRCurve", "Fig3Panel", "Fig3Result", "run"]

#: The four (length_scale, sigma_f) settings compared in each panel;
#: expressed in log10-problem-size units (the x-axis spans ~6 decades).
DEFAULT_HYPERS = ((0.5, 1.0), (1.0, 1.0), (2.0, 1.0), (0.5, 3.0))


@dataclass(frozen=True)
class GPRCurve:
    """Predictive distribution of one hyperparameter setting on a grid."""

    length_scale: float
    sigma_f: float
    grid: np.ndarray
    mean: np.ndarray
    sd: np.ndarray

    @property
    def ci_low(self) -> np.ndarray:
        """Lower edge of the 95% confidence band (mean - 2 sd)."""
        return self.mean - 2.0 * self.sd

    @property
    def ci_high(self) -> np.ndarray:
        """Upper edge of the 95% confidence band (mean + 2 sd)."""
        return self.mean + 2.0 * self.sd


@dataclass(frozen=True)
class Fig3Panel:
    """One panel: training data plus one curve per hyperparameter setting."""

    X_train: np.ndarray
    y_train: np.ndarray
    curves: list

    def mean_disagreement(self) -> float:
        """Max pointwise spread among the predictive means."""
        means = np.vstack([c.mean for c in self.curves])
        return float(np.max(means.max(axis=0) - means.min(axis=0)))

    def mean_ci_width(self, length_scale: float) -> float:
        """Average CI width of the curve with the given length scale."""
        for c in self.curves:
            if c.length_scale == length_scale:
                return float(np.mean(c.ci_high - c.ci_low))
        raise KeyError(f"no curve with length_scale={length_scale}")


@dataclass(frozen=True)
class Fig3Result:
    all_points: Fig3Panel
    four_points: Fig3Panel
    grid: np.ndarray


def _fit_curves(X, y, grid, hypers, noise_variance) -> list[GPRCurve]:
    curves = []
    for length_scale, sigma_f in hypers:
        kernel = ConstantKernel(sigma_f**2, "fixed") * RBF(length_scale, "fixed")
        model = GaussianProcessRegressor(
            kernel=kernel,
            noise_variance=noise_variance,
            noise_variance_bounds="fixed",
            optimizer=None,
        )
        model.fit(X, y)
        mean, sd = model.predict(grid[:, np.newaxis], return_std=True)
        curves.append(
            GPRCurve(
                length_scale=length_scale,
                sigma_f=sigma_f,
                grid=grid,
                mean=mean,
                sd=sd,
            )
        )
    return curves


def run(
    seed: int = DEFAULT_SEED,
    *,
    hypers=DEFAULT_HYPERS,
    n_grid: int = 120,
    noise_variance: float = 1e-2,
    subset_size: int = 4,
) -> Fig3Result:
    """Build both Fig. 3 panels."""
    X, y = one_d_subset(seed)
    grid = np.linspace(X.min(), X.max(), n_grid)
    panel_all = Fig3Panel(
        X_train=X,
        y_train=y,
        curves=_fit_curves(X, y, grid, hypers, noise_variance),
    )
    rng = np.random.default_rng(seed)
    idx = rng.choice(X.shape[0], size=subset_size, replace=False)
    panel_four = Fig3Panel(
        X_train=X[idx],
        y_train=y[idx],
        curves=_fit_curves(X[idx], y[idx], grid, hypers, noise_variance),
    )
    return Fig3Result(all_points=panel_all, four_points=panel_four, grid=grid)
