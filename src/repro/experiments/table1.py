"""Experiment: regenerate the paper's Table I (dataset parameters)."""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.summary import Table1Row, format_table1, table1
from .common import DEFAULT_SEED, performance_dataset, power_dataset

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    """Both Table I columns plus the rendered table."""

    performance: Table1Row
    power: Table1Row
    text: str


def run(seed: int = DEFAULT_SEED) -> Table1Result:
    """Generate both datasets and summarize them as Table I does."""
    perf_row = table1(performance_dataset(seed))
    power_row = table1(power_dataset(seed))
    return Table1Result(
        performance=perf_row,
        power=power_row,
        text=format_table1(perf_row, power_row),
    )
