"""Experiment: Fig. 8 — Variance Reduction vs Cost Efficiency.

The paper's headline comparison: both strategies on 50 random partitions of
the Fig. 6 subset (noise floor 1e-1), tracking

(a) RMSE and AMSD per iteration — Cost Efficiency converges more slowly in
    *iterations* but both converge after roughly the same count;
(b) cumulative cost per iteration, and the cost-error *tradeoff curves*:
    Cost Efficiency loses early, crosses the Variance-Reduction curve at a
    cost ``C``, then delivers lower error for equal cost — up to 38% in the
    paper, and 25/21/16/13% at 2C/3C/5C/10C — until the curves rejoin when
    the pool is exhausted.

``run`` reproduces all of it and returns the curves plus the comparison
summary.  Iteration count and partition count are parameters because the
full 50x2 sweep is minutes of compute; the benchmark uses a reduced-but-
representative default and EXPERIMENTS.md records a full run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..al.learner import default_model_factory
from ..al.runner import BatchResult, run_batch
from ..al.strategies import CostEfficiency, VarianceReduction
from ..al.tradeoff import (
    StrategyComparison,
    TradeoffCurve,
    compare_strategies,
    tradeoff_curve,
)
from .common import DEFAULT_SEED, fig6_subset

__all__ = ["Fig8Result", "run"]


def _vr_for_partition(i: int) -> VarianceReduction:
    """Per-partition tie-break seed; module-level so it pickles to workers."""
    return VarianceReduction(seed=i)


def _ce_for_partition(i: int) -> CostEfficiency:
    """Per-partition tie-break seed; module-level so it pickles to workers."""
    return CostEfficiency(seed=i)


@dataclass(frozen=True)
class Fig8Result:
    """Both strategies' batches, tradeoff curves, and the comparison."""

    variance_reduction: BatchResult
    cost_efficiency: BatchResult
    vr_curve: TradeoffCurve
    ce_curve: TradeoffCurve
    comparison: StrategyComparison

    @property
    def crossover(self) -> float | None:
        """The crossover cost C (None if Cost Efficiency never wins)."""
        return self.comparison.crossover

    @property
    def max_reduction(self) -> float:
        """Maximum relative error reduction of CE past the crossover."""
        return self.comparison.max_reduction


def run(
    seed: int = DEFAULT_SEED,
    *,
    n_partitions: int = 50,
    n_iterations: int | None = None,
    partition_seed: int = 8,
    noise_floor: float = 1e-1,
    n_workers: int = 1,
) -> Fig8Result:
    """Run both strategies on identical partitions and compare tradeoffs."""
    X, y, costs = fig6_subset(seed)
    common = dict(
        n_partitions=n_partitions,
        n_iterations=n_iterations,
        seed=partition_seed,
        model_factory=default_model_factory(noise_floor=noise_floor),
        n_workers=n_workers,
    )
    vr = run_batch(X, y, costs, strategy_factory=_vr_for_partition, **common)
    ce = run_batch(X, y, costs, strategy_factory=_ce_for_partition, **common)
    vr_curve = tradeoff_curve(vr)
    ce_curve = tradeoff_curve(ce)
    # Compare only where both strategies have completed an experiment: below
    # the dearer strategy's first-experiment cost, its curve is still the
    # untrained seed model and the comparison is vacuous.
    min_cost = max(
        float(vr.mean_series("cumulative_cost")[0]),
        float(ce.mean_series("cumulative_cost")[0]),
    )
    return Fig8Result(
        variance_reduction=vr,
        cost_efficiency=ce,
        vr_curve=vr_curve,
        ce_curve=ce_curve,
        comparison=compare_strategies(vr_curve, ce_curve, min_cost=min_cost),
    )
