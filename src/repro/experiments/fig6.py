"""Experiment: Fig. 6 — Variance-Reduction AL trajectories (10 / 100 iters).

On the 251-job poisson1/NP=32 subset, the paper visualizes which points AL
visits: "In a star-like pattern, AL chooses experiments at the edges and,
only after exhausting all edge points, progresses toward the middle."

``run`` produces the visited sequences for 10 and 100 iterations plus an
*edge-first score*: the fraction of early selections lying on the boundary
of the candidate grid, compared against the boundary fraction of the whole
pool (edge-first exploration means the former greatly exceeds the latter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..al.learner import ActiveLearner, default_model_factory
from ..al.partition import random_partition
from ..al.strategies import VarianceReduction
from .common import DEFAULT_SEED, fig6_subset

__all__ = ["Fig6Result", "run", "boundary_mask", "edge_fraction"]


def boundary_mask(X: np.ndarray, *, tol: float = 1e-9) -> np.ndarray:
    """Points on the axis-aligned boundary of the candidate box."""
    X = np.asarray(X, dtype=float)
    lo = X.min(axis=0)
    hi = X.max(axis=0)
    on_edge = np.zeros(X.shape[0], dtype=bool)
    for d in range(X.shape[1]):
        on_edge |= np.abs(X[:, d] - lo[d]) <= tol
        on_edge |= np.abs(X[:, d] - hi[d]) <= tol
    return on_edge


def edge_fraction(points: np.ndarray, X_pool: np.ndarray) -> float:
    """Fraction of ``points`` lying on the pool's bounding-box boundary."""
    lo = X_pool.min(axis=0)
    hi = X_pool.max(axis=0)
    on_edge = np.zeros(points.shape[0], dtype=bool)
    for d in range(points.shape[1]):
        on_edge |= np.abs(points[:, d] - lo[d]) <= 1e-9
        on_edge |= np.abs(points[:, d] - hi[d]) <= 1e-9
    return float(np.mean(on_edge)) if points.size else 0.0


@dataclass(frozen=True)
class Fig6Result:
    """AL trajectories and edge-first statistics."""

    X_pool: np.ndarray
    initial_points: np.ndarray
    trajectory_10: np.ndarray  # (10, d) visited points in order
    trajectory_100: np.ndarray  # (100, d)
    early_edge_fraction: float  # fraction of first 10 picks on the boundary
    pool_edge_fraction: float  # boundary share of the whole pool
    subset_size: int


def run(seed: int = DEFAULT_SEED, *, partition_seed: int = 0) -> Fig6Result:
    """Run Variance-Reduction AL for 100 iterations and slice the trajectory."""
    X, y, costs = fig6_subset(seed)
    part = random_partition(X.shape[0], partition_seed)
    learner = ActiveLearner(
        X,
        y,
        costs,
        part,
        VarianceReduction(),
        model_factory=default_model_factory(noise_floor=1e-1),
    )
    n = min(100, learner.pool.n_available)
    trace = learner.run(n)
    visited = trace.selected_points
    early = visited[:10]
    return Fig6Result(
        X_pool=X[part.active],
        initial_points=X[part.initial],
        trajectory_10=early,
        trajectory_100=visited,
        early_edge_fraction=edge_fraction(early, X[part.active]),
        pool_edge_fraction=float(np.mean(boundary_mask(X[part.active]))),
        subset_size=X.shape[0],
    )
