"""Experiment: Fig. 1 — raw 3-D scatter of Performance/Power subsets.

The paper fixes Operator = ``poisson1``, selects several NP levels, and
plots (Global Problem Size, CPU Frequency, response) point clouds for both
datasets, observing that the Power dataset is visibly noisier and sparser.
``run`` returns exactly those point series plus the two observations as
numbers: a relative-noise statistic per dataset and the job counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..datasets.dataset import PerfDataset
from .common import DEFAULT_SEED, performance_dataset, power_dataset

__all__ = ["ScatterSeries", "Fig1Result", "run", "relative_noise"]

#: NP levels shown in the paper's subset plots.
DEFAULT_NP_LEVELS = (8, 32, 128)


@dataclass(frozen=True)
class ScatterSeries:
    """One NP level's point cloud: (size, freq, response) triples."""

    dataset: str
    response: str
    np_ranks: int
    problem_size: np.ndarray
    freq_ghz: np.ndarray
    values: np.ndarray


@dataclass(frozen=True)
class Fig1Result:
    series: list
    n_performance_points: int
    n_power_points: int
    performance_relative_noise: float
    power_relative_noise: float


def relative_noise(dataset: PerfDataset, response: str) -> float:
    """Median relative spread among repeated measurements.

    For every configuration with >= 2 repeats, compute (max - min) / median
    of the response; return the median over configurations.  This is the
    quantitative form of the paper's "variance in the Power dataset is much
    higher" observation.
    """
    groups: dict = defaultdict(list)
    for r in dataset.records:
        v = getattr(r, response)
        if v is None:
            continue
        groups[(r.operator, r.problem_size, r.np_ranks, r.freq_ghz)].append(v)
    spreads = []
    for values in groups.values():
        if len(values) >= 2:
            med = float(np.median(values))
            if med > 0:
                spreads.append((max(values) - min(values)) / med)
    if not spreads:
        raise ValueError("no repeated configurations to estimate noise from")
    return float(np.median(spreads))


def _series_for(
    dataset: PerfDataset, response: str, np_levels
) -> list[ScatterSeries]:
    out = []
    for np_ranks in np_levels:
        sub = dataset.subset(operator="poisson1", np_ranks=np_ranks)
        rows = [
            (r.problem_size, r.freq_ghz, getattr(r, response))
            for r in sub.records
            if getattr(r, response) is not None
        ]
        if not rows:
            continue
        size, freq, vals = (np.asarray(col, dtype=float) for col in zip(*rows))
        out.append(
            ScatterSeries(
                dataset=dataset.name,
                response=response,
                np_ranks=np_ranks,
                problem_size=size,
                freq_ghz=freq,
                values=vals,
            )
        )
    return out


def run(seed: int = DEFAULT_SEED, *, np_levels=DEFAULT_NP_LEVELS) -> Fig1Result:
    """Build the Fig. 1 point clouds for both datasets."""
    perf = performance_dataset(seed)
    power = power_dataset(seed)
    series = _series_for(perf, "runtime_seconds", np_levels)
    series += _series_for(power, "energy_joules", np_levels)
    return Fig1Result(
        series=series,
        n_performance_points=sum(
            s.values.size for s in series if s.dataset == "Performance"
        ),
        n_power_points=sum(s.values.size for s in series if s.dataset == "Power"),
        performance_relative_noise=relative_noise(perf, "runtime_seconds"),
        power_relative_noise=relative_noise(power, "energy_joules"),
    )
