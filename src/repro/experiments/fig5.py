"""Experiment: Fig. 5 — 2-D GPR surfaces on a small training set.

Varying Problem Size and CPU Frequency with four randomly selected training
points, the paper shows (a) the predictive-mean surface between the two
confidence-interval surfaces, with candidate experiments drawn as vertical
segments whose length is the local CI width — widest far from the training
points — and (b) a *shallow* LML landscape (contrast with Fig. 4) that
still yields a usable optimum.

``run`` returns the three surfaces on a grid, the per-candidate CI widths,
and the LML grid with a shallowness metric comparable against Fig. 4's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.gpr import GaussianProcessRegressor
from ..gp.kernels import RBF, ConstantKernel
from .common import DEFAULT_SEED, fig6_subset
from .fig4 import LMLGrid, count_local_maxima

__all__ = ["Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Result:
    """Surfaces and LML landscape of the small-data 2-D GPR."""

    X_train: np.ndarray
    y_train: np.ndarray
    size_grid: np.ndarray  # log10 problem size axis
    freq_grid: np.ndarray  # GHz axis
    mean_surface: np.ndarray  # shape (n_size, n_freq)
    ci_low_surface: np.ndarray
    ci_high_surface: np.ndarray
    candidates: np.ndarray  # (n, 2) pool points
    candidate_ci_width: np.ndarray  # (n,)
    lml_grid: LMLGrid
    n_local_maxima: int
    lml_range: float

    def widest_candidate(self) -> np.ndarray:
        """The pool point with the widest confidence interval."""
        return self.candidates[int(np.argmax(self.candidate_ci_width))]


def run(
    seed: int = DEFAULT_SEED,
    *,
    n_train: int = 4,
    n_grid: int = 30,
    n_lml: int = 21,
) -> Fig5Result:
    """Fit the 4-point 2-D GPR and scan its surfaces and LML landscape."""
    X, y, _ = fig6_subset(seed)
    rng = np.random.default_rng(seed + 5)
    idx = rng.choice(X.shape[0], size=n_train, replace=False)
    X_train, y_train = X[idx], y[idx]

    model = GaussianProcessRegressor(
        noise_variance=1e-1,
        noise_variance_bounds=(1e-1, 1e2),
        n_restarts=4,
        normalize_y=True,
        rng=seed,
    )
    model.fit(X_train, y_train)

    size_grid = np.linspace(X[:, 0].min(), X[:, 0].max(), n_grid)
    freq_grid = np.linspace(X[:, 1].min(), X[:, 1].max(), n_grid)
    SS, FF = np.meshgrid(size_grid, freq_grid, indexing="ij")
    query = np.column_stack([SS.ravel(), FF.ravel()])
    mean, sd = model.predict(query, return_std=True)
    mean = mean.reshape(n_grid, n_grid)
    sd = sd.reshape(n_grid, n_grid)

    _, cand_sd = model.predict(X, return_std=True)

    # LML landscape over (length scale, noise variance) with other
    # hyperparameters held at their fitted values.
    ls_axis = np.geomspace(3e-2, 3e1, n_lml)
    nv_axis = np.geomspace(1e-2, 1e2, n_lml)
    fitted_amp = float(model.kernel_.k1.constant_value)
    probe = GaussianProcessRegressor(
        kernel=ConstantKernel(fitted_amp, "fixed") * RBF(1.0, (1e-2, 1e3)),
        noise_variance=model.noise_variance_,
        noise_variance_bounds=(1e-2, 1e2),
        normalize_y=True,
    )
    lml = np.empty((n_lml, n_lml))
    for i, ls in enumerate(ls_axis):
        for j, nv in enumerate(nv_axis):
            lml[i, j] = probe.log_marginal_likelihood(
                np.log([ls, nv]), X=X_train, y=y_train
            )
    lml_grid = LMLGrid(length_scales=ls_axis, noise_variances=nv_axis, lml=lml)

    return Fig5Result(
        X_train=X_train,
        y_train=y_train,
        size_grid=size_grid,
        freq_grid=freq_grid,
        mean_surface=mean,
        ci_low_surface=mean - 2 * sd,
        ci_high_surface=mean + 2 * sd,
        candidates=X,
        candidate_ci_width=4.0 * cand_sd,
        lml_grid=lml_grid,
        n_local_maxima=count_local_maxima(lml),
        lml_range=float(np.max(lml) - np.median(lml)),
    )
