"""Experiment: Fig. 2 — the Fig. 1 subsets with log-transformed responses.

"The plot for the Performance dataset confirms the linear growth of
Runtime along the problem size dimension, for which the plot also uses the
log-transformed scale."  ``run`` returns the log-log point clouds plus, for
each NP level, the slope and R^2 of a least-squares line of log10(runtime)
against log10(size) — the quantitative form of that observation (slope ~ 1
for the large-problem regime where work dominates overheads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import DEFAULT_SEED
from .fig1 import DEFAULT_NP_LEVELS, ScatterSeries
from .fig1 import run as run_fig1

__all__ = ["LogFit", "Fig2Result", "run"]


@dataclass(frozen=True)
class LogFit:
    """Least-squares line through a log-log point cloud."""

    dataset: str
    response: str
    np_ranks: int
    slope: float
    intercept: float
    r_squared: float


@dataclass(frozen=True)
class Fig2Result:
    series: list  # ScatterSeries with log10-transformed values
    fits: list  # LogFit per series


def _log_series(s: ScatterSeries) -> ScatterSeries:
    return ScatterSeries(
        dataset=s.dataset,
        response=f"log10_{s.response}",
        np_ranks=s.np_ranks,
        problem_size=np.log10(s.problem_size),
        freq_ghz=s.freq_ghz,
        values=np.log10(s.values),
    )


def _fit(s: ScatterSeries, *, min_log_size: float = 6.0) -> LogFit:
    """Fit log-response vs log-size on the work-dominated regime.

    Small problems sit on the setup-overhead floor, so the paper's "linear
    growth" statement applies to the large-size regime; ``min_log_size``
    restricts the fit accordingly (1e6 DOF by default).
    """
    x = s.problem_size  # already log10
    y = s.values
    mask = x >= min_log_size
    if mask.sum() < 3:
        mask = np.ones_like(x, dtype=bool)
    A = np.vstack([x[mask], np.ones(mask.sum())]).T
    coef, *_ = np.linalg.lstsq(A, y[mask], rcond=None)
    pred = A @ coef
    ss_res = float(np.sum((y[mask] - pred) ** 2))
    ss_tot = float(np.sum((y[mask] - np.mean(y[mask])) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LogFit(
        dataset=s.dataset,
        response=s.response,
        np_ranks=s.np_ranks,
        slope=float(coef[0]),
        intercept=float(coef[1]),
        r_squared=r2,
    )


def run(seed: int = DEFAULT_SEED, *, np_levels=DEFAULT_NP_LEVELS) -> Fig2Result:
    """Log-transform the Fig. 1 series and fit the log-log slopes."""
    fig1 = run_fig1(seed, np_levels=np_levels)
    logged = [_log_series(s) for s in fig1.series]
    fits = [_fit(s) for s in logged]
    return Fig2Result(series=logged, fits=fits)
