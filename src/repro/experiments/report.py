"""Textual reports for each experiment — the CLI's rendering layer.

Every ``render_*`` function takes the experiment module's result object and
returns a printable report that mirrors what the paper's table or figure
communicates, including the ASCII-rendered chart where that helps.
"""

from __future__ import annotations

import numpy as np

from ..viz import heatmap, line_chart

__all__ = [
    "render_table1",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
]


def render_table1(result) -> str:
    """Render the Table I result as printable text."""
    return result.text


def render_fig1(result) -> str:
    """Render the Fig. 1 result as printable text."""
    lines = ["Fig. 1 — dataset subsets (operator=poisson1)"]
    lines.append(
        f"{'dataset':>12} {'response':>16} {'NP':>4} {'points':>7} "
        f"{'min':>12} {'max':>12}"
    )
    for s in result.series:
        lines.append(
            f"{s.dataset:>12} {s.response:>16} {s.np_ranks:>4} "
            f"{s.values.size:>7} {s.values.min():>12.4g} {s.values.max():>12.4g}"
        )
    lines.append(
        f"repeat-to-repeat noise: Performance "
        f"{result.performance_relative_noise:.1%}, "
        f"Power {result.power_relative_noise:.1%}"
    )
    return "\n".join(lines)


def render_fig2(result) -> str:
    """Render the Fig. 2 result as printable text."""
    lines = ["Fig. 2 — log-log linearity (paper: slope ~ 1)"]
    lines.append(f"{'dataset':>12} {'response':>24} {'NP':>4} {'slope':>8} {'R^2':>7}")
    for f in result.fits:
        lines.append(
            f"{f.dataset:>12} {f.response:>24} {f.np_ranks:>4} "
            f"{f.slope:>8.3f} {f.r_squared:>7.3f}"
        )
    return "\n".join(lines)


def render_fig3(result) -> str:
    """Render the Fig. 3 result as printable text."""
    lines = ["Fig. 3 — 1-D GPR hyperparameter sensitivity"]
    for name, panel in (
        ("(a) all measurements", result.all_points),
        ("(b) 4 random points", result.four_points),
    ):
        lines.append(f"\n{name}: {len(panel.y_train)} training points, "
                     f"mean disagreement {panel.mean_disagreement():.3f}")
        for c in panel.curves:
            lines.append(
                f"  l={c.length_scale:<5.2f} sigma_f={c.sigma_f:<5.2f} "
                f"mean CI width {np.mean(c.ci_high - c.ci_low):.3f}"
            )
    c = result.all_points.curves[1]
    lines.append("")
    lines.append(line_chart(
        {
            "m mean": (c.grid, c.mean),
            "u upper CI": (c.grid, c.ci_high),
            "l lower CI": (c.grid, c.ci_low),
            "t train": (result.all_points.X_train[:, 0], result.all_points.y_train),
        },
        title="panel (a), l=1.0",
        x_label="log10 problem size", y_label="log10 runtime",
    ))
    return "\n".join(lines)


def _lml_display(lml: np.ndarray) -> np.ndarray:
    """Compress an LML grid for display: ``-log10(1 + (max - LML))``.

    LML landscapes span many orders of magnitude below the peak; the raw
    values map almost the whole grid to one ramp character.
    """
    return -np.log10(1.0 + (np.max(lml) - lml))


def render_fig4(result) -> str:
    """Render the Fig. 4 result as printable text."""
    ls, nv, peak = result.grid.peak()
    lines = [
        "Fig. 4 — LML landscape over (l, sigma_n^2), abundant data",
        f"peak: l={ls:.3g}, sigma_n^2={nv:.3g}, LML={peak:.1f}",
        f"interior local maxima: {result.n_local_maxima} (paper: unique)",
        f"single-start == multi-start optimum: {result.optima_agree}",
        f"peakedness (max - median): {result.lml_range:.1f}",
        "",
        "-log10(1 + LML deficit) — brighter is closer to the peak:",
        heatmap(_lml_display(result.grid.lml),
                x_label="log sigma_n^2 ->", y_label="log l"),
    ]
    return "\n".join(lines)


def render_fig5(result) -> str:
    """Render the Fig. 5 result as printable text."""
    widest = result.widest_candidate()
    lines = [
        "Fig. 5 — 2-D GPR on 4 random points",
        f"training points:\n{np.round(result.X_train, 2)}",
        f"widest-CI candidate: log10(size)={widest[0]:.2f}, "
        f"freq={widest[1]:.1f} GHz",
        f"LML landscape: {result.n_local_maxima} interior local maxima, "
        f"peakedness {result.lml_range:.2f} (shallow vs Fig. 4)",
        "",
        "CI width surface (rows: size, cols: freq):",
        heatmap(result.ci_high_surface - result.ci_low_surface,
                x_label="freq ->", y_label="size"),
    ]
    return "\n".join(lines)


def render_fig6(result) -> str:
    """Render the Fig. 6 result as printable text."""
    lines = [
        "Fig. 6 — Variance-Reduction AL exploration",
        f"subset: {result.subset_size} jobs (paper: 251)",
        f"first 10 picks on domain boundary: {result.early_edge_fraction:.0%} "
        f"(pool boundary share {result.pool_edge_fraction:.0%})",
        "",
        line_chart(
            {
                ". pool": (result.X_pool[:, 0], result.X_pool[:, 1]),
                "o first 10": (result.trajectory_10[:, 0], result.trajectory_10[:, 1]),
                "+ next 90": (
                    result.trajectory_100[10:, 0],
                    result.trajectory_100[10:, 1],
                ),
            },
            title="visited candidates",
            x_label="log10 problem size", y_label="GHz",
        ),
    ]
    return "\n".join(lines)


def render_fig7(result) -> str:
    """Render the Fig. 7 result as printable text."""
    lines = ["Fig. 7 — noise-floor effect on AL quality"]
    for setting in (result.low_floor, result.high_floor):
        lines.append(
            f"sigma_n^2 >= {setting.noise_floor:g}: "
            f"min early sd_sel {setting.min_early_sd_selected:.2e}, "
            f"min early AMSD {setting.min_early_amsd:.2e}, "
            f"final RMSE {setting.final_mean_rmse:.4f}"
        )
    lines.append(f"collapse eliminated by raised floor: {result.collapse_eliminated}")
    its = np.arange(len(result.high_floor.batch.mean_series("rmse")))
    lines.append("")
    lines.append(line_chart(
        {
            "r rmse (1e-1)": (its, result.high_floor.batch.mean_series("rmse")),
            "a amsd (1e-1)": (its, result.high_floor.batch.mean_series("amsd")),
            "R rmse (1e-8)": (its, result.low_floor.batch.mean_series("rmse")),
            "A amsd (1e-8)": (its, result.low_floor.batch.mean_series("amsd")),
        },
        title="mean trajectories", x_label="iteration", y_label="metric",
        logy=True,
    ))
    return "\n".join(lines)


def render_fig8(result) -> str:
    """Render the Fig. 8 result as printable text."""
    comp = result.comparison
    lines = ["Fig. 8 — Variance Reduction vs Cost Efficiency"]
    if comp.crossover is None:
        lines.append("no sustained crossover in this run")
    else:
        lines.append(f"crossover C = {comp.crossover:,.0f} core-seconds "
                     f"(paper: 1626)")
        lines.append(f"max reduction past C: {comp.max_reduction:.1%} (paper: 38%)")
        for mult, red in sorted(comp.reductions_at_multiples.items()):
            lines.append(f"  at {mult:.0f}C: {red:+.1%}")
    grid = np.geomspace(
        max(result.vr_curve.costs[0], result.ce_curve.costs[0], 1.0),
        min(result.vr_curve.max_cost, result.ce_curve.max_cost),
        60,
    )
    lines.append("")
    lines.append(line_chart(
        {
            "v VR error(cost)": (np.log10(grid), result.vr_curve.error_at(grid)),
            "c CE error(cost)": (np.log10(grid), result.ce_curve.error_at(grid)),
        },
        title="cost-error tradeoff",
        x_label="log10 cumulative cost", y_label="RMSE", logy=True,
    ))
    return "\n".join(lines)
