"""Experiment: Fig. 4 — LML landscape over (length scale, noise level).

For the abundant-data 1-D subset of Fig. 3(a), the paper plots the log
marginal likelihood as a function of the hyperparameters ``l`` and
``sigma_n`` and observes "a straightforward optimization problem with a
unique global optimum" findable by "gradient ascend with a single randomly
selected starting point".

``run`` computes the LML grid, locates its peak, counts grid-local maxima
(uniqueness check), and verifies that a single-start L-BFGS ascent lands at
the same peak as a multi-restart search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.gpr import GaussianProcessRegressor
from ..gp.kernels import RBF, ConstantKernel
from .common import DEFAULT_SEED, one_d_subset

__all__ = ["LMLGrid", "Fig4Result", "run", "count_local_maxima"]


@dataclass(frozen=True)
class LMLGrid:
    """LML evaluated on a (length_scale x noise_variance) log grid."""

    length_scales: np.ndarray
    noise_variances: np.ndarray
    lml: np.ndarray  # shape (n_ls, n_nv)

    def peak(self) -> tuple[float, float, float]:
        """(length_scale, noise_variance, lml) at the grid maximum."""
        i, j = np.unravel_index(int(np.argmax(self.lml)), self.lml.shape)
        return (
            float(self.length_scales[i]),
            float(self.noise_variances[j]),
            float(self.lml[i, j]),
        )


def count_local_maxima(grid: np.ndarray) -> int:
    """Strict interior local maxima of a 2-D array (4-neighbourhood)."""
    core = grid[1:-1, 1:-1]
    return int(
        np.count_nonzero(
            (core > grid[:-2, 1:-1])
            & (core > grid[2:, 1:-1])
            & (core > grid[1:-1, :-2])
            & (core > grid[1:-1, 2:])
        )
    )


@dataclass(frozen=True)
class Fig4Result:
    grid: LMLGrid
    n_local_maxima: int
    single_start_optimum: tuple  # (length_scale, noise_variance)
    multi_start_optimum: tuple
    optima_agree: bool
    lml_range: float  # peakedness: max - median over the grid


def _grid_model(sigma_f2: float) -> GaussianProcessRegressor:
    kernel = ConstantKernel(sigma_f2, "fixed") * RBF(1.0, (1e-2, 1e3))
    return GaussianProcessRegressor(
        kernel=kernel, noise_variance=1e-2, noise_variance_bounds=(1e-8, 1e3)
    )


def run(
    seed: int = DEFAULT_SEED,
    *,
    n_ls: int = 25,
    n_nv: int = 25,
    ls_range=(3e-2, 3e1),
    nv_range=(1e-6, 1e1),
    sigma_f2: float = 4.0,
) -> Fig4Result:
    """Scan the LML landscape and check peak uniqueness/findability."""
    X, y = one_d_subset(seed)
    model = _grid_model(sigma_f2)
    length_scales = np.geomspace(*ls_range, n_ls)
    noise_vars = np.geomspace(*nv_range, n_nv)
    lml = np.empty((n_ls, n_nv))
    for i, ls in enumerate(length_scales):
        for j, nv in enumerate(noise_vars):
            theta = np.log([ls, nv])
            lml[i, j] = model.log_marginal_likelihood(theta, X=X, y=y)
    grid = LMLGrid(length_scales=length_scales, noise_variances=noise_vars, lml=lml)

    # Single random start vs multi-restart search.
    single = _grid_model(sigma_f2)
    single.n_restarts = 0
    rng = np.random.default_rng(seed)
    single.kernel.k2.length_scale = float(rng.uniform(0.1, 10.0))
    single.fit(X, y)
    multi = _grid_model(sigma_f2)
    multi.n_restarts = 6
    multi.rng = np.random.default_rng(seed + 1)
    multi.fit(X, y)

    def optimum(m: GaussianProcessRegressor) -> tuple[float, float]:
        return (float(m.kernel_.k2.length_scale), float(m.noise_variance_))

    s_opt, m_opt = optimum(single), optimum(multi)
    agree = bool(
        np.allclose(np.log(s_opt), np.log(m_opt), atol=0.3)
    )  # same basin, log scale
    return Fig4Result(
        grid=grid,
        n_local_maxima=count_local_maxima(lml),
        single_start_optimum=s_opt,
        multi_start_optimum=m_opt,
        optima_agree=agree,
        lml_range=float(np.max(lml) - np.median(lml)),
    )
