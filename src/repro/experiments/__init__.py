"""Per-table/figure experiment modules (the reproduction's evaluation).

Each module exposes ``run(seed=...) -> <FigureN>Result`` returning the
numeric series the corresponding paper figure plots.  The matching
``benchmarks/bench_*.py`` targets print those series as rows.

    table1  - dataset parameter summary
    fig1    - raw 3-D scatter of dataset subsets
    fig2    - log-transformed scatter + log-log slope fits
    fig3    - 1-D GPR predictive distributions, hyperparameter sensitivity
    fig4    - LML landscape (abundant data): unique peak
    fig5    - 2-D GPR surfaces on 4 points; shallow LML landscape
    fig6    - Variance-Reduction AL trajectories, edge-first exploration
    fig7    - noise-floor ablation on AL metrics (overfitting collapse)
    fig8    - Variance Reduction vs Cost Efficiency cost-error tradeoff
"""

from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1
from .common import (
    DEFAULT_SEED,
    fig6_subset,
    one_d_subset,
    performance_dataset,
    power_dataset,
)

__all__ = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "DEFAULT_SEED",
    "performance_dataset",
    "power_dataset",
    "fig6_subset",
    "one_d_subset",
]
