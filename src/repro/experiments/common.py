"""Shared context for the per-figure experiment modules.

Dataset generation costs ~20 s for the Performance campaign, so the
experiment modules share process-level caches.  Every experiment accepts a
``seed`` and forwards it, keeping all results deterministic.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..datasets.dataset import DesignSpec, PerfDataset
from ..datasets.generate import (
    generate_performance_dataset,
    generate_power_dataset,
)

__all__ = [
    "performance_dataset",
    "power_dataset",
    "fig6_subset",
    "one_d_subset",
    "DEFAULT_SEED",
]

DEFAULT_SEED = 2016


@lru_cache(maxsize=4)
def performance_dataset(seed: int = DEFAULT_SEED) -> PerfDataset:
    """The cached 3,246-job Performance dataset."""
    return generate_performance_dataset(seed=seed)


@lru_cache(maxsize=4)
def power_dataset(seed: int = DEFAULT_SEED) -> PerfDataset:
    """The cached 640-job Power dataset."""
    return generate_power_dataset(seed=seed)


def fig6_subset(seed: int = DEFAULT_SEED):
    """The paper's AL evaluation subset: poisson1, NP=32 (251 jobs).

    Returns ``(X, y, costs)`` with X = (log10 size, freq) and y = log10
    runtime; costs in core-seconds.
    """
    sub = performance_dataset(seed).subset(operator="poisson1", np_ranks=32)
    X, y = sub.design_matrix(DesignSpec(variables=("problem_size", "freq_ghz")))
    return X, y, sub.costs()


def one_d_subset(seed: int = DEFAULT_SEED, *, response: str = "runtime_seconds"):
    """The paper's 1-D cross-section: NP=32, freq=2.4, poisson1.

    Returns ``(X, y)`` with X = log10 problem size (column vector) and
    y = log10 response.
    """
    sub = performance_dataset(seed).subset(
        operator="poisson1", np_ranks=32, freq_ghz=2.4
    )
    return sub.design_matrix(
        DesignSpec(variables=("problem_size",), response=response)
    )
