"""Experiment: Fig. 7 — the noise-floor's effect on AL quality.

The paper runs 10 random partitions of the Fig. 6 subset and tracks
``sigma_f(x)`` (SD at the selected candidate), AMSD and RMSE per AL
iteration, under two lower bounds for the noise hyperparameter:

* ``sigma_n >= 1e-8`` — GPR overfits with few points: sigma_f(x) collapses
  to negligible values before iteration 5 and AMSD undershoots its stable
  value (Fig. 7a, "inadequate" behaviour);
* ``sigma_n >= 1e-1`` — the collapse disappears and AMSD becomes a usable
  convergence signal (Fig. 7b).

``run`` reproduces both settings and reports the early-iteration collapse
statistics that the paper's prose describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..al.learner import default_model_factory
from ..al.runner import BatchResult, run_batch
from ..al.strategies import VarianceReduction
from .common import DEFAULT_SEED, fig6_subset

__all__ = ["Fig7Setting", "Fig7Result", "run"]


@dataclass(frozen=True)
class Fig7Setting:
    """Metric trajectories for one noise floor."""

    noise_floor: float
    batch: BatchResult
    # Collapse diagnostics over the first 5 iterations:
    min_early_sd_selected: float  # min over partitions/iterations 0..4
    min_early_amsd: float
    final_mean_rmse: float
    final_mean_amsd: float


@dataclass(frozen=True)
class Fig7Result:
    low_floor: Fig7Setting  # sigma_n^2 >= 1e-8
    high_floor: Fig7Setting  # sigma_n^2 >= 1e-1
    collapse_eliminated: bool


def _strategy_for_partition(i: int) -> VarianceReduction:
    """Per-partition strategy with its own tie-break seed.

    A single ``VarianceReduction()`` per partition but all carrying
    ``seed=0`` would break every exact score tie identically across the
    batch, correlating the "independent" partitions.  Module-level (not a
    lambda) so the factory also pickles to process workers.
    """
    return VarianceReduction(seed=i)


def _run_setting(
    X, y, costs, floor: float, *, n_partitions: int, n_iterations: int, seed,
    n_workers: int = 1,
) -> Fig7Setting:
    batch = run_batch(
        X,
        y,
        costs,
        strategy_factory=_strategy_for_partition,
        n_partitions=n_partitions,
        n_iterations=n_iterations,
        seed=seed,
        model_factory=default_model_factory(noise_floor=floor),
        n_workers=n_workers,
    )
    sd_sel = batch.series_matrix("sd_at_selected")
    amsd = batch.series_matrix("amsd")
    rmse = batch.series_matrix("rmse")
    early = slice(0, min(5, sd_sel.shape[1]))
    return Fig7Setting(
        noise_floor=floor,
        batch=batch,
        min_early_sd_selected=float(sd_sel[:, early].min()),
        min_early_amsd=float(amsd[:, early].min()),
        final_mean_rmse=float(rmse[:, -1].mean()),
        final_mean_amsd=float(amsd[:, -1].mean()),
    )


def run(
    seed: int = DEFAULT_SEED,
    *,
    n_partitions: int = 10,
    n_iterations: int = 40,
    partition_seed: int = 7,
    n_workers: int = 1,
) -> Fig7Result:
    """Both Fig. 7 panels: identical partitions, two noise floors."""
    X, y, costs = fig6_subset(seed)
    low = _run_setting(
        X, y, costs, 1e-8,
        n_partitions=n_partitions, n_iterations=n_iterations, seed=partition_seed,
        n_workers=n_workers,
    )
    high = _run_setting(
        X, y, costs, 1e-1,
        n_partitions=n_partitions, n_iterations=n_iterations, seed=partition_seed,
        n_workers=n_workers,
    )
    # The paper's observation: with the raised floor, sigma_f(x) never
    # collapses below the floor's scale in the early iterations.
    floor_scale = float(np.sqrt(1e-1))
    return Fig7Result(
        low_floor=low,
        high_floor=high,
        collapse_eliminated=bool(
            low.min_early_sd_selected < 0.5 * floor_scale
            and high.min_early_sd_selected >= 0.5 * floor_scale
        ),
    )
