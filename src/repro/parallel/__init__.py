"""Process-parallel execution layer (serial/thread/process, deterministic).

See :mod:`repro.parallel.pmap` for the design contract.  Quick use::

    from repro.parallel import ParallelMap

    pm = ParallelMap("process", n_workers=8)
    results = pm.map(task, items)          # results in input order

with per-task randomness from ``spawn_seeds(seed, len(items))``.
"""

from .pmap import (
    BACKENDS,
    ENV_BACKEND,
    ParallelMap,
    TaskTimeout,
    WorkerCrashed,
    resolve_backend,
    spawn_generators,
    spawn_seeds,
)

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ParallelMap",
    "TaskTimeout",
    "WorkerCrashed",
    "resolve_backend",
    "spawn_generators",
    "spawn_seeds",
]
