"""Deterministic serial/thread/process map for embarrassingly parallel work.

The paper's methodology fans out in two places: the multi-restart LML
gradient ascent behind every GPR fit (Section V-B2) and the replicate AL
runs averaged in Figs. 4-8.  Both are embarrassingly parallel, both are
CPU-bound numpy, and both must stay *deterministic*: a result may never
depend on the backend, the worker count, or task completion order.

:class:`ParallelMap` provides exactly that contract:

* three backends — ``"serial"`` (plain loop), ``"thread"``
  (:class:`~concurrent.futures.ThreadPoolExecutor`; useful when the work
  releases the GIL) and ``"process"``
  (:class:`~concurrent.futures.ProcessPoolExecutor`; true multi-core for
  GIL-bound numpy/scipy code);
* results are returned **in input order**, never completion order;
* task functions and items must be picklable for the ``process`` backend
  (module-level functions or instances of module-level classes);
* per-task randomness comes from :func:`spawn_seeds` /
  :func:`spawn_generators` — ``numpy.random.SeedSequence.spawn`` children
  keyed by *task index*, so streams are independent and bit-identical
  across backends and worker counts;
* telemetry recorded by process workers is not lost: each task runs under
  a fresh worker-local :class:`~repro.telemetry.registry.Registry` whose
  contents are shipped back and merged into the parent registry on join
  (see :func:`repro.telemetry.worker_session`).

The default backend is resolved from the ``REPRO_PARALLEL_BACKEND``
environment variable, so whole test suites can be re-run under the
process backend without touching call sites.

Fault tolerance (process backend)
---------------------------------
A long unattended sweep cannot die because one worker was OOM-killed.
The process backend therefore survives the chaos the training loop
already models (:mod:`repro.cluster.faults`):

* **Worker death** — a SIGKILL'd worker breaks the pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`); unfinished
  tasks are resubmitted to a fresh pool.  Blame is attributed
  conservatively: a round that made progress before breaking blames
  nobody (an innocent task may have been co-resident with the killer),
  while a *fruitless* round — zero completions — blames every unfinished
  task.  A task repeatedly present in fruitless rounds exhausts
  ``max_task_retries`` and raises :class:`WorkerCrashed`; innocents
  complete in earlier rounds.  ``max_pool_failures`` bounds total pool
  rebuilds so a flapping machine cannot loop forever.
* **Per-task timeouts** — ``task_timeout`` bounds the in-order wait for
  each result (by the time task *i* is waited on it is at the queue
  head, so the clock is generous); an overrun kills the pool, retries
  the task up to ``max_task_retries`` times, then raises
  :class:`TaskTimeout`.
* **Backend degradation** — when the pool cannot even be *constructed*
  (fork/spawn resource exhaustion, an infra failure no task caused),
  ``degrade_after`` consecutive construction failures degrade
  process→thread→serial for the remaining tasks.  Task-attributed pool
  breaks never degrade: re-running a SIGKILLing task in a thread would
  kill the parent.

Retries preserve the determinism contract: a task is a pure function of
``(fn, item)`` with its randomness in the item's spawned seed, so a
retried task returns bit-identical results and every task still runs
effectively exactly once.  Telemetry: ``parallel.task.retries``,
``parallel.task.timeouts``, ``parallel.worker.deaths``,
``parallel.pool.failures``, ``parallel.backend.degraded``.

Everything here is standard library + numpy — no new dependencies.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeout,
)
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import telemetry as tm

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ParallelMap",
    "TaskTimeout",
    "WorkerCrashed",
    "resolve_backend",
    "spawn_seeds",
    "spawn_generators",
]


class TaskTimeout(RuntimeError):
    """A task exceeded ``task_timeout`` on every allowed attempt."""


class WorkerCrashed(RuntimeError):
    """A task repeatedly killed its worker, or the pool kept breaking."""

#: Recognized backend names, in "cheapest first" order.
BACKENDS = ("serial", "thread", "process")

#: Environment variable consulted when no explicit backend is given.
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


def resolve_backend(backend: str | None = None, *, default: str = "process") -> str:
    """Pick the execution backend: explicit > ``$REPRO_PARALLEL_BACKEND`` > default.

    Raises ``ValueError`` for names outside :data:`BACKENDS` so a typo in
    the environment fails loudly rather than silently running serial.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or default
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def spawn_seeds(seed, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child :class:`~numpy.random.SeedSequence` s.

    ``seed`` may be an int, ``None``, or an existing ``SeedSequence``.
    Children are keyed by spawn index, so child ``i`` is the same stream no
    matter which worker runs it or how many workers exist — the foundation
    of the bit-identical-across-backends guarantee.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(n)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Per-task generators over :func:`spawn_seeds` children."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


# --------------------------------------------------------------- worker shims
#
# Module-level so they pickle for the process backend.  ``fn`` travels with
# each task; ProcessPoolExecutor pickles it once per submitted call.


def _run_collected(payload):
    """Process-worker shim: run one task under a local telemetry registry.

    The parent had telemetry enabled, so the task's counters/gauges/
    histograms must not vanish into the worker process.  The task runs
    under :func:`repro.telemetry.worker_session` — a fresh worker-local
    registry with *no* trace writer (a forked copy of the parent's writer
    must never flush, or it would clobber the parent's trace file) — and
    the registry contents return with the result for an in-order merge.
    """
    fn, item = payload
    with tm.worker_session() as registry:
        result = fn(item)
    return result, registry.dump()


def _run_plain(payload):
    """Process-worker shim: run one task, telemetry disabled in the parent."""
    fn, item = payload
    with tm.worker_session():
        # Still scope out any forked parent state: a worker must never
        # write into an inherited trace buffer.
        result = fn(item)
    return result, None


class ParallelMap:
    """Ordered, deterministically seeded map over one of three backends.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``; ``None`` resolves via
        ``$REPRO_PARALLEL_BACKEND`` and then ``default_backend``.
    n_workers:
        Pool width for the thread/process backends; defaults to
        ``os.cpu_count()``.  Ignored by the serial backend.
    default_backend:
        What ``backend=None`` falls back to when the environment variable
        is unset.  Call sites that historically ran serial pass
        ``"serial"`` here so behaviour only changes when asked.
    task_timeout:
        Per-task wall-clock bound in seconds for the process backend
        (``None`` = unbounded; ignored by serial/thread, which cannot
        abandon a running call).
    max_task_retries:
        Extra attempts granted to a task blamed for a timeout or a
        fruitless pool break before :class:`TaskTimeout` /
        :class:`WorkerCrashed` is raised.
    max_pool_failures:
        Total pool breaks tolerated across one :meth:`map` call.
    degrade_after:
        Consecutive pool *construction* failures before degrading
        process→thread→serial for the remaining tasks.

    Instances hold no live pool (one is created per :meth:`map` call), so
    a ``ParallelMap`` is cheap, reusable, and picklable.
    """

    def __init__(
        self,
        backend: str | None = None,
        n_workers: int | None = None,
        *,
        default_backend: str = "process",
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        max_pool_failures: int = 10,
        degrade_after: int = 2,
    ):
        self.backend = resolve_backend(backend, default=default_backend)
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if max_pool_failures < 1:
            raise ValueError("max_pool_failures must be >= 1")
        if degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        self.n_workers = int(n_workers)
        self.task_timeout = task_timeout
        self.max_task_retries = int(max_task_retries)
        self.max_pool_failures = int(max_pool_failures)
        self.degrade_after = int(degrade_after)

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        A worker exception propagates to the caller (the pool is shut
        down first), matching the serial loop's behaviour.  For the
        process backend, ``fn`` and every item must be picklable, and any
        telemetry the tasks record is merged back into the parent
        registry in input order once all tasks complete.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.n_workers == 1 or len(items) == 1:
            return [fn(item) for item in items]
        if self.backend == "thread":
            # Threads share the parent's registry and trace writer
            # directly; no merge step is needed.
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                return list(pool.map(fn, items))
        return self._map_process(fn, items)

    def _map_process(self, fn: Callable, items: list) -> list:
        shim = _run_collected if tm.enabled() else _run_plain
        n = len(items)
        outcomes: dict[int, tuple] = {}
        attempts = [0] * n
        pool_failures = 0
        construction_failures = 0
        while len(outcomes) < n:
            pending = [i for i in range(n) if i not in outcomes]
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.n_workers, len(pending))
                )
            except OSError as exc:
                # Infra failure no task caused (fork/spawn exhaustion):
                # the only case where switching backend is safe.
                construction_failures += 1
                tm.count("parallel.pool.failures")
                if construction_failures >= self.degrade_after:
                    self._run_degraded(fn, items, outcomes, pending, exc)
                continue
            construction_failures = 0
            broke = False
            timed_out: int | None = None
            completed = 0
            futures: dict = {}
            try:
                try:
                    for i in pending:
                        futures[i] = pool.submit(shim, (fn, items[i]))
                except (BrokenExecutor, OSError):
                    broke = True
                for i in pending:
                    fut = futures.get(i)
                    if fut is None or broke:
                        break
                    try:
                        outcomes[i] = fut.result(timeout=self.task_timeout)
                    except FuturesTimeout:
                        timed_out = i
                        break
                    except BrokenExecutor:
                        broke = True
                        break
                    completed += 1
                if timed_out is not None:
                    # Tasks behind the stuck one may have finished while
                    # we waited; harvest them before killing the pool.
                    for j in pending:
                        fut = futures.get(j)
                        if (
                            j not in outcomes
                            and fut is not None
                            and fut.done()
                            and not fut.cancelled()
                        ):
                            try:
                                outcomes[j] = fut.result()
                                completed += 1
                            except BrokenExecutor:
                                pass
            finally:
                if timed_out is not None:
                    # The stuck worker would otherwise run (and block
                    # interpreter exit) forever.
                    pool.shutdown(wait=False, cancel_futures=True)
                    for proc in list(
                        (getattr(pool, "_processes", None) or {}).values()
                    ):
                        try:
                            proc.terminate()
                        except OSError:
                            pass
                else:
                    pool.shutdown(wait=True, cancel_futures=broke)
            if timed_out is not None:
                tm.count("parallel.task.timeouts")
                attempts[timed_out] += 1
                if attempts[timed_out] > self.max_task_retries:
                    raise TaskTimeout(
                        f"task {timed_out} exceeded task_timeout="
                        f"{self.task_timeout}s on {attempts[timed_out]} attempts"
                    )
                tm.count("parallel.task.retries")
            elif broke:
                pool_failures += 1
                tm.count("parallel.worker.deaths")
                tm.event(
                    "parallel.pool.broken",
                    n_pending=len(pending),
                    completed=completed,
                    pool_failures=pool_failures,
                )
                if pool_failures >= self.max_pool_failures:
                    raise WorkerCrashed(
                        f"process pool broke {pool_failures} times; giving up "
                        f"with {n - len(outcomes)} of {n} tasks unfinished"
                    )
                if completed == 0:
                    # A fruitless round: nothing completed before the
                    # break, so every unfinished task is a suspect.  A
                    # poison task keeps landing in fruitless rounds and
                    # exhausts its retries; innocents complete earlier.
                    for i in pending:
                        if i in outcomes:
                            continue
                        attempts[i] += 1
                        if attempts[i] > self.max_task_retries:
                            raise WorkerCrashed(
                                f"task {i} implicated in {attempts[i]} "
                                "worker deaths; not retrying again"
                            )
                        tm.count("parallel.task.retries")
        results = []
        registry = tm.get_registry()
        for i in range(n):
            result, dump = outcomes[i]
            results.append(result)
            if dump is not None and registry is not None:
                # Merge in input order so gauge last-write-wins is
                # deterministic regardless of completion order.
                registry.merge(dump)
        return results

    def _run_degraded(self, fn, items, outcomes, pending, exc) -> None:
        """Finish ``pending`` on thread (then serial) after infra failure."""
        tm.count("parallel.backend.degraded")
        tm.event(
            "parallel.backend.degraded",
            from_backend="process",
            to_backend="thread",
            n_pending=len(pending),
            error=str(exc),
        )
        # In-parent execution: run fn directly (no worker shim — telemetry
        # lands in the parent registry), store a dump-less outcome.
        try:
            pool = ThreadPoolExecutor(max_workers=min(self.n_workers, len(pending)))
        except (OSError, RuntimeError):
            tm.count("parallel.backend.degraded")
            tm.event(
                "parallel.backend.degraded",
                from_backend="thread",
                to_backend="serial",
                n_pending=len(pending),
            )
            for i in pending:
                outcomes[i] = (fn(items[i]), None)
            return
        with pool:
            for i, result in zip(
                pending, pool.map(fn, [items[i] for i in pending])
            ):
                outcomes[i] = (result, None)

    def starmap(self, fn: Callable, items: Iterable[Sequence]) -> list:
        """:meth:`map` for tasks taking several positional arguments."""
        return self.map(_Star(fn), items)

    def map_grouped(self, fn: Callable, items: Iterable, keys: Iterable) -> list:
        """:meth:`map` with affinity groups: same key -> same worker.

        Items sharing a key are bundled into one task and executed
        sequentially, in input order, inside a single worker — the
        ``process``-backend analogue of pinning one shard's work to one
        worker.  Distinct groups run in parallel.  Results come back
        flattened in the *original* input order, so the call is
        result-identical to ``self.map(fn, items)`` (and that is exactly
        what the serial backend does); grouping only changes placement.
        Group scheduling order follows first key appearance, keeping
        placement deterministic for any hashable key type.
        """
        items = list(items)
        keys = list(keys)
        if len(items) != len(keys):
            raise ValueError(
                f"items and keys must have equal length "
                f"({len(items)} != {len(keys)})"
            )
        positions: dict = {}
        for i, key in enumerate(keys):
            positions.setdefault(key, []).append(i)
        if len(positions) == len(items):  # every key unique: plain map
            return self.map(fn, items)
        groups = [[items[i] for i in pos] for pos in positions.values()]
        grouped = self.map(_Group(fn), groups)
        results = [None] * len(items)
        for pos, group_results in zip(positions.values(), grouped):
            for i, result in zip(pos, group_results):
                results[i] = result
        return results

    def __repr__(self) -> str:
        return f"ParallelMap(backend={self.backend!r}, n_workers={self.n_workers})"


class _Star:
    """Picklable adapter turning ``fn(*args)`` into ``fn(args)``."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, args):
        return self.fn(*args)


class _Group:
    """Picklable adapter running one affinity group's items sequentially."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, group_items):
        return [self.fn(item) for item in group_items]
