"""Deterministic serial/thread/process map for embarrassingly parallel work.

The paper's methodology fans out in two places: the multi-restart LML
gradient ascent behind every GPR fit (Section V-B2) and the replicate AL
runs averaged in Figs. 4-8.  Both are embarrassingly parallel, both are
CPU-bound numpy, and both must stay *deterministic*: a result may never
depend on the backend, the worker count, or task completion order.

:class:`ParallelMap` provides exactly that contract:

* three backends — ``"serial"`` (plain loop), ``"thread"``
  (:class:`~concurrent.futures.ThreadPoolExecutor`; useful when the work
  releases the GIL) and ``"process"``
  (:class:`~concurrent.futures.ProcessPoolExecutor`; true multi-core for
  GIL-bound numpy/scipy code);
* results are returned **in input order**, never completion order;
* task functions and items must be picklable for the ``process`` backend
  (module-level functions or instances of module-level classes);
* per-task randomness comes from :func:`spawn_seeds` /
  :func:`spawn_generators` — ``numpy.random.SeedSequence.spawn`` children
  keyed by *task index*, so streams are independent and bit-identical
  across backends and worker counts;
* telemetry recorded by process workers is not lost: each task runs under
  a fresh worker-local :class:`~repro.telemetry.registry.Registry` whose
  contents are shipped back and merged into the parent registry on join
  (see :func:`repro.telemetry.worker_session`).

The default backend is resolved from the ``REPRO_PARALLEL_BACKEND``
environment variable, so whole test suites can be re-run under the
process backend without touching call sites.

Everything here is standard library + numpy — no new dependencies.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import telemetry as tm

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ParallelMap",
    "resolve_backend",
    "spawn_seeds",
    "spawn_generators",
]

#: Recognized backend names, in "cheapest first" order.
BACKENDS = ("serial", "thread", "process")

#: Environment variable consulted when no explicit backend is given.
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


def resolve_backend(backend: str | None = None, *, default: str = "process") -> str:
    """Pick the execution backend: explicit > ``$REPRO_PARALLEL_BACKEND`` > default.

    Raises ``ValueError`` for names outside :data:`BACKENDS` so a typo in
    the environment fails loudly rather than silently running serial.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or default
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def spawn_seeds(seed, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child :class:`~numpy.random.SeedSequence` s.

    ``seed`` may be an int, ``None``, or an existing ``SeedSequence``.
    Children are keyed by spawn index, so child ``i`` is the same stream no
    matter which worker runs it or how many workers exist — the foundation
    of the bit-identical-across-backends guarantee.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(n)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Per-task generators over :func:`spawn_seeds` children."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


# --------------------------------------------------------------- worker shims
#
# Module-level so they pickle for the process backend.  ``fn`` travels with
# each task; ProcessPoolExecutor pickles it once per submitted call.


def _run_collected(payload):
    """Process-worker shim: run one task under a local telemetry registry.

    The parent had telemetry enabled, so the task's counters/gauges/
    histograms must not vanish into the worker process.  The task runs
    under :func:`repro.telemetry.worker_session` — a fresh worker-local
    registry with *no* trace writer (a forked copy of the parent's writer
    must never flush, or it would clobber the parent's trace file) — and
    the registry contents return with the result for an in-order merge.
    """
    fn, item = payload
    with tm.worker_session() as registry:
        result = fn(item)
    return result, registry.dump()


def _run_plain(payload):
    """Process-worker shim: run one task, telemetry disabled in the parent."""
    fn, item = payload
    with tm.worker_session():
        # Still scope out any forked parent state: a worker must never
        # write into an inherited trace buffer.
        result = fn(item)
    return result, None


class ParallelMap:
    """Ordered, deterministically seeded map over one of three backends.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``; ``None`` resolves via
        ``$REPRO_PARALLEL_BACKEND`` and then ``default_backend``.
    n_workers:
        Pool width for the thread/process backends; defaults to
        ``os.cpu_count()``.  Ignored by the serial backend.
    default_backend:
        What ``backend=None`` falls back to when the environment variable
        is unset.  Call sites that historically ran serial pass
        ``"serial"`` here so behaviour only changes when asked.

    Instances hold no live pool (one is created per :meth:`map` call), so
    a ``ParallelMap`` is cheap, reusable, and picklable.
    """

    def __init__(
        self,
        backend: str | None = None,
        n_workers: int | None = None,
        *,
        default_backend: str = "process",
    ):
        self.backend = resolve_backend(backend, default=default_backend)
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        A worker exception propagates to the caller (the pool is shut
        down first), matching the serial loop's behaviour.  For the
        process backend, ``fn`` and every item must be picklable, and any
        telemetry the tasks record is merged back into the parent
        registry in input order once all tasks complete.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.n_workers == 1 or len(items) == 1:
            return [fn(item) for item in items]
        if self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            # Threads share the parent's registry and trace writer
            # directly; no merge step is needed.
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                return list(pool.map(fn, items))

        from concurrent.futures import ProcessPoolExecutor

        collect = tm.enabled()
        shim = _run_collected if collect else _run_plain
        payloads = [(fn, item) for item in items]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            outcomes = list(pool.map(shim, payloads))
        results = []
        registry = tm.get_registry()
        for result, dump in outcomes:
            results.append(result)
            if dump is not None and registry is not None:
                # Merge in input order so gauge last-write-wins is
                # deterministic regardless of completion order.
                registry.merge(dump)
        return results

    def starmap(self, fn: Callable, items: Iterable[Sequence]) -> list:
        """:meth:`map` for tasks taking several positional arguments."""
        return self.map(_Star(fn), items)

    def __repr__(self) -> str:
        return f"ParallelMap(backend={self.backend!r}, n_workers={self.n_workers})"


class _Star:
    """Picklable adapter turning ``fn(*args)`` into ``fn(args)``."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, args):
        return self.fn(*args)
