"""Always-on prediction front-end over a :class:`~repro.serve.registry.ModelRegistry`.

The campaign machinery *trains* models; this module *serves* them.  A
:class:`PredictionService` holds a read-only snapshot of the registry's
published model and answers large batched queries by chunking them
through the vectorized :meth:`~repro.gp.GaussianProcessRegressor.predict`
— the cached Cholesky factor is shared across every query instead of
being recomputed or copied, so a block of 10^4+ points costs two
triangular solves per chunk and nothing else.

Hot rollover
------------
:meth:`PredictionService.refresh` re-reads the manifest and, when a newer
version was published (or the pointer was rolled back), atomically swaps
the served snapshot.  Queries capture the snapshot *once* at entry, so an
in-flight query finishes on the version it started with while the next
query sees the new one — no locks on the query path, no torn reads.
``auto_refresh=True`` folds the manifest check into every query, which is
the always-on mode the CLI uses.

Telemetry: ``serve.predict.seconds`` / ``serve.refresh.seconds``
histograms, ``serve.predict.requests`` / ``serve.predict.points`` /
``serve.rollover.total`` counters, and a ``serve.rollover`` trace event
per swap (all zero-cost when telemetry is disabled).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .. import telemetry as tm
from ..gp.gpr import GaussianProcessRegressor
from ..gp.validate import as_2d_array
from .registry import ModelRegistry, ModelVersion, RegistryError

__all__ = ["PredictionService"]


class PredictionService:
    """Serve batched predictions from the registry's published model.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` (or a path to
        one) to serve from.
    version:
        Pin a specific version instead of tracking ``latest``; a pinned
        service never rolls over.
    chunk_size:
        Query rows predicted per vectorized block.  Bounds the transient
        ``(chunk, n_train)`` cross-covariance memory while keeping each
        block a single BLAS call.  Each query row's prediction depends
        only on its own row of ``K_*``, so chunking is exact *as long as
        BLAS picks the same matvec kernel for the chunked and unchunked
        shapes* — true for the default (2048) and anything near it, and
        pinned by the acceptance tests; pathologically tiny chunks
        (single digits) can differ from the full-block result in the
        last ulp.
    auto_refresh:
        Check the manifest for a newer published version before every
        query (hot rollover without an external trigger).
    """

    def __init__(
        self,
        registry: ModelRegistry | str,
        *,
        version: int | None = None,
        chunk_size: int = 2048,
        auto_refresh: bool = False,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.chunk_size = int(chunk_size)
        self.auto_refresh = bool(auto_refresh)
        self._pinned = None if version is None else int(version)
        # One immutable (model, meta) snapshot, swapped wholesale under the
        # lock; query paths read it once into a local, so they never see a
        # half-updated pair and never block each other.
        self._snapshot: tuple[GaussianProcessRegressor, ModelVersion] = (
            registry.load(self._pinned)
        )
        self._lock = threading.Lock()
        self.n_rollovers = 0

    # ------------------------------------------------------------------ state

    @property
    def version(self) -> int:
        """Version number of the currently served model."""
        return self._snapshot[1].version

    @property
    def meta(self) -> ModelVersion:
        """Metadata of the currently served model."""
        return self._snapshot[1]

    @property
    def model(self) -> GaussianProcessRegressor:
        """The served model snapshot (treat as read-only)."""
        return self._snapshot[0]

    def refresh(self) -> bool:
        """Re-read the manifest; swap in the published version if it changed.

        Returns ``True`` when a rollover happened.  A pinned service
        always returns ``False``.  Safe to call from any thread, and safe
        to race with in-flight queries: they keep the snapshot they
        captured at entry.
        """
        if self._pinned is not None:
            return False
        t0 = time.perf_counter()
        target = self.registry.latest_version()
        if target is None:
            raise RegistryError(f"registry {self.registry.root} is empty")
        with self._lock:
            current = self._snapshot[1].version
            if target == current:
                return False
            old = current
            self._snapshot = self.registry.load(target)
            self.n_rollovers += 1
        tm.count("serve.rollover.total")
        tm.observe("serve.refresh.seconds", time.perf_counter() - t0)
        tm.event("serve.rollover", from_version=old, to_version=target)
        return True

    # ---------------------------------------------------------------- queries

    def _enter_query(self) -> tuple[GaussianProcessRegressor, ModelVersion]:
        if self.auto_refresh:
            self.refresh()
        return self._snapshot

    def _chunks(self, X: np.ndarray):
        for start in range(0, X.shape[0], self.chunk_size):
            yield X[start : start + self.chunk_size]

    def predict(self, X) -> np.ndarray:
        """Posterior mean at the query rows, chunk by chunk."""
        X = as_2d_array(X)
        model, _ = self._enter_query()
        t0 = time.perf_counter()
        mean = np.concatenate([model.predict(chunk) for chunk in self._chunks(X)])
        self._observe(t0, X.shape[0])
        return mean

    def predict_std(
        self, X, *, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and predictive SD at the query rows, chunked."""
        X = as_2d_array(X)
        model, _ = self._enter_query()
        t0 = time.perf_counter()
        means, sds = [], []
        for chunk in self._chunks(X):
            mu, sd = model.predict(
                chunk, return_std=True, include_noise=include_noise
            )
            means.append(mu)
            sds.append(sd)
        self._observe(t0, X.shape[0])
        return np.concatenate(means), np.concatenate(sds)

    def _observe(self, t0: float, n_points: int) -> None:
        if not tm.enabled():
            return
        tm.observe("serve.predict.seconds", time.perf_counter() - t0)
        tm.count("serve.predict.requests")
        tm.count("serve.predict.points", n_points)

    def __repr__(self) -> str:
        meta = self.meta
        return (
            f"PredictionService(registry={str(self.registry.root)!r}, "
            f"version={meta.version}, n_train={meta.n_train}, "
            f"chunk_size={self.chunk_size})"
        )
