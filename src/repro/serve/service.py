"""Always-on prediction front-end over a :class:`~repro.serve.registry.ModelRegistry`.

The campaign machinery *trains* models; this module *serves* them.  A
:class:`PredictionService` holds a read-only snapshot of the registry's
published model and answers large batched queries by chunking them
through the vectorized :meth:`~repro.gp.GaussianProcessRegressor.predict`
— the cached Cholesky factor is shared across every query instead of
being recomputed or copied, so a block of 10^4+ points costs two
triangular solves per chunk and nothing else.

Hot rollover
------------
:meth:`PredictionService.refresh` re-reads the manifest and, when a newer
version was published (or the pointer was rolled back), atomically swaps
the served snapshot.  Queries capture the snapshot *once* at entry, so an
in-flight query finishes on the version it started with while the next
query sees the new one — no locks on the query path, no torn reads.
``auto_refresh=True`` folds the manifest check into every query, which is
the always-on mode the CLI uses.

Serving under failure
---------------------
Production serving cannot assume a healthy filesystem, so the service
degrades instead of dying:

* **Retry with jittered backoff** — transient registry I/O errors during
  :meth:`refresh` are retried ``refresh_retries`` times with exponential,
  jittered backoff (``serve.retry.total``).
* **Stale-while-revalidate** — when a refresh still fails after retries,
  the held snapshot keeps answering; the service is *degraded*
  (``serve.refresh.errors`` counts failures, ``serve.degraded.queries``
  counts queries served stale) until a refresh succeeds again.  Checksum
  verification in :meth:`ModelRegistry.load` guarantees a degraded
  service still never answers from a corrupt model.
* **Admission control** — with ``max_inflight`` set, at most that many
  queries execute concurrently and at most ``max_queue`` wait; beyond
  that the service *sheds load* with an explicit :class:`ServiceOverloaded`
  (``serve.shed``) instead of queueing unboundedly.
* **Deadlines** — ``deadline_s`` (per service or per query) bounds a
  query's total latency, checked between chunks; an overrun raises
  :class:`DeadlineExceeded` (``serve.deadline.exceeded``).

Telemetry: ``serve.predict.seconds`` / ``serve.refresh.seconds``
histograms, ``serve.predict.requests`` / ``serve.predict.points`` /
``serve.rollover.total`` / ``serve.shed`` / ``serve.retry.total`` /
``serve.refresh.errors`` / ``serve.degraded.queries`` counters, and
``serve.rollover`` / ``serve.degraded`` / ``serve.recovered`` trace
events (all zero-cost when telemetry is disabled).
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np

from .. import telemetry as tm
from ..gp.gpr import GaussianProcessRegressor
from ..gp.validate import as_2d_array
from .registry import ModelRegistry, ModelVersion, RegistryError

__all__ = ["PredictionService", "ServiceOverloaded", "DeadlineExceeded"]

#: Exceptions treated as transient/recoverable on the refresh path.
_REFRESH_ERRORS = (RegistryError, OSError, ValueError)


class ServiceOverloaded(RuntimeError):
    """The admission queue is full (or the wait timed out); query shed."""


class DeadlineExceeded(RuntimeError):
    """A query overran its deadline and was abandoned between chunks."""


class PredictionService:
    """Serve batched predictions from the registry's published model.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` (or a path to
        one) to serve from.
    version:
        Pin a specific version instead of tracking ``latest``; a pinned
        service never rolls over.
    chunk_size:
        Query rows predicted per vectorized block.  Bounds the transient
        ``(chunk, n_train)`` cross-covariance memory while keeping each
        block a single BLAS call.  Each query row's prediction depends
        only on its own row of ``K_*``, so chunking is exact *as long as
        BLAS picks the same matvec kernel for the chunked and unchunked
        shapes* — true for the default (2048) and anything near it, and
        pinned by the acceptance tests; pathologically tiny chunks
        (single digits) can differ from the full-block result in the
        last ulp.
    auto_refresh:
        Check the manifest for a newer published version before every
        query (hot rollover without an external trigger).  A refresh
        failure never fails the query: the held snapshot answers and the
        service is marked degraded until a refresh succeeds.
    deadline_s:
        Default per-query deadline in seconds (``None`` = unbounded).
        Covers admission wait plus prediction, checked between chunks.
    max_inflight:
        Maximum concurrently executing queries (``None`` disables
        admission control entirely — the pre-existing behaviour).
    max_queue:
        Queries allowed to *wait* for an execution slot when
        ``max_inflight`` is reached; one more is shed.
    queue_timeout_s:
        Upper bound on the admission wait when the query has no deadline
        (admission latency must never be unbounded).
    refresh_retries:
        Transient registry-I/O retries per :meth:`refresh` call.
    retry_backoff_s:
        Base backoff before the first retry; doubles per attempt, with
        multiplicative jitter in [0.5, 1.5).
    """

    def __init__(
        self,
        registry: ModelRegistry | str,
        *,
        version: int | None = None,
        chunk_size: int = 2048,
        auto_refresh: bool = False,
        deadline_s: float | None = None,
        max_inflight: int | None = None,
        max_queue: int = 8,
        queue_timeout_s: float = 1.0,
        refresh_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        if refresh_retries < 0:
            raise ValueError("refresh_retries must be >= 0")
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.chunk_size = int(chunk_size)
        self.auto_refresh = bool(auto_refresh)
        self.deadline_s = deadline_s
        self.max_inflight = max_inflight
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self.refresh_retries = int(refresh_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self._pinned = None if version is None else int(version)
        # One immutable (model, meta) snapshot, swapped wholesale under the
        # lock; query paths read it once into a local, so they never see a
        # half-updated pair and never block each other.
        self._snapshot: tuple[GaussianProcessRegressor, ModelVersion] = (
            registry.load(self._pinned)
        )
        self._lock = threading.Lock()
        self._admit_cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        # Dedicated jitter stream + injectable sleep keep retry timing
        # deterministic under test.
        self._retry_rng = random.Random(0xA11CE)
        self._sleep = time.sleep
        self.n_rollovers = 0
        self.n_shed = 0
        self._degraded = False
        self.consecutive_refresh_failures = 0

    # ------------------------------------------------------------------ state

    @property
    def version(self) -> int:
        """Version number of the currently served model."""
        return self._snapshot[1].version

    @property
    def meta(self) -> ModelVersion:
        """Metadata of the currently served model."""
        return self._snapshot[1]

    @property
    def model(self) -> GaussianProcessRegressor:
        """The served model snapshot (treat as read-only)."""
        return self._snapshot[0]

    @property
    def degraded(self) -> bool:
        """Whether the last refresh failed and queries answer from the stale snapshot."""
        return self._degraded

    def health(self) -> dict:
        """Serving-health snapshot (mirrored by the CLI's stderr logs)."""
        return {
            "version": self.version,
            "degraded": self._degraded,
            "consecutive_refresh_failures": self.consecutive_refresh_failures,
            "n_rollovers": self.n_rollovers,
            "n_shed": self.n_shed,
            "inflight": self._inflight,
            "queued": self._queued,
            "pinned": self._pinned,
        }

    # -------------------------------------------------------------- refreshes

    def refresh(self) -> bool:
        """Re-read the manifest; swap in the published version if it changed.

        Returns ``True`` when a rollover happened.  A pinned service
        always returns ``False``.  Safe to call from any thread, and safe
        to race with in-flight queries: they keep the snapshot they
        captured at entry.

        Transient registry errors are retried ``refresh_retries`` times
        with jittered exponential backoff; persistent failure marks the
        service degraded and re-raises (``auto_refresh`` queries swallow
        the error and serve the held snapshot instead).
        """
        if self._pinned is not None:
            return False
        t0 = time.perf_counter()
        last_exc: BaseException | None = None
        for attempt in range(self.refresh_retries + 1):
            if attempt:
                tm.count("serve.retry.total")
                delay = self.retry_backoff_s * (2 ** (attempt - 1))
                self._sleep(delay * (0.5 + self._retry_rng.random()))
            try:
                rolled = self._refresh_once(t0)
            except _REFRESH_ERRORS as exc:
                last_exc = exc
                continue
            if self._degraded:
                tm.event("serve.recovered", version=self.version)
            self._degraded = False
            self.consecutive_refresh_failures = 0
            return rolled
        self._degraded = True
        self.consecutive_refresh_failures += 1
        tm.count("serve.refresh.errors")
        tm.event(
            "serve.degraded",
            error=str(last_exc),
            consecutive=self.consecutive_refresh_failures,
            version=self.version,
        )
        raise last_exc

    def _refresh_once(self, t0: float) -> bool:
        target = self.registry.latest_version()
        if target is None:
            raise RegistryError(f"registry {self.registry.root} is empty")
        with self._lock:
            if target == self._snapshot[1].version:
                return False
        # load() verifies checksums and falls back to last-known-good on a
        # corrupt latest, so `snapshot` may resolve to the version already
        # served — that is a no-op, not a rollover.
        snapshot = self.registry.load()
        with self._lock:
            old = self._snapshot[1].version
            if snapshot[1].version == old:
                return False
            self._snapshot = snapshot
            self.n_rollovers += 1
        tm.count("serve.rollover.total")
        tm.observe("serve.refresh.seconds", time.perf_counter() - t0)
        tm.event("serve.rollover", from_version=old, to_version=snapshot[1].version)
        return True

    # ---------------------------------------------------------------- queries

    def _enter_query(self) -> tuple[GaussianProcessRegressor, ModelVersion]:
        if self.auto_refresh:
            try:
                self.refresh()
            except _REFRESH_ERRORS:
                # Stale-while-revalidate: refresh() already recorded the
                # failure; the held (checksum-verified) snapshot answers.
                pass
        if self._degraded:
            tm.count("serve.degraded.queries")
        return self._snapshot

    def _deadline(self, deadline_s: float | None) -> float | None:
        s = self.deadline_s if deadline_s is None else deadline_s
        return None if s is None else time.monotonic() + s

    def _check_deadline(self, deadline: float | None) -> None:
        if deadline is not None and time.monotonic() > deadline:
            tm.count("serve.deadline.exceeded")
            raise DeadlineExceeded(
                "query overran its deadline; partial prediction abandoned"
            )

    def _admit(self, deadline: float | None) -> None:
        if self.max_inflight is None:
            return
        with self._admit_cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._queued >= self.max_queue:
                self.n_shed += 1
                tm.count("serve.shed")
                raise ServiceOverloaded(
                    f"{self._inflight} queries in flight and "
                    f"{self._queued} queued (max_queue={self.max_queue})"
                )
            self._queued += 1
            try:
                while self._inflight >= self.max_inflight:
                    if deadline is None:
                        timeout = self.queue_timeout_s
                    else:
                        timeout = min(
                            self.queue_timeout_s, deadline - time.monotonic()
                        )
                    if timeout <= 0 or not self._admit_cond.wait(timeout):
                        self.n_shed += 1
                        tm.count("serve.shed")
                        raise ServiceOverloaded(
                            "admission wait exceeded "
                            f"{self.queue_timeout_s if deadline is None else 'the deadline'}"
                        )
                self._inflight += 1
            finally:
                self._queued -= 1

    def _release(self) -> None:
        if self.max_inflight is None:
            return
        with self._admit_cond:
            self._inflight -= 1
            self._admit_cond.notify()

    def _chunks(self, X: np.ndarray):
        for start in range(0, X.shape[0], self.chunk_size):
            yield X[start : start + self.chunk_size]

    def predict(self, X, *, deadline_s: float | None = None) -> np.ndarray:
        """Posterior mean at the query rows, chunk by chunk."""
        X = as_2d_array(X)
        deadline = self._deadline(deadline_s)
        self._admit(deadline)
        try:
            model, _ = self._enter_query()
            t0 = time.perf_counter()
            parts = []
            for chunk in self._chunks(X):
                self._check_deadline(deadline)
                parts.append(model.predict(chunk))
            mean = np.concatenate(parts)
            self._observe(t0, X.shape[0])
            return mean
        finally:
            self._release()

    def predict_std(
        self, X, *, include_noise: bool = True, deadline_s: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and predictive SD at the query rows, chunked."""
        X = as_2d_array(X)
        deadline = self._deadline(deadline_s)
        self._admit(deadline)
        try:
            model, _ = self._enter_query()
            t0 = time.perf_counter()
            means, sds = [], []
            for chunk in self._chunks(X):
                self._check_deadline(deadline)
                mu, sd = model.predict(
                    chunk, return_std=True, include_noise=include_noise
                )
                means.append(mu)
                sds.append(sd)
            self._observe(t0, X.shape[0])
            return np.concatenate(means), np.concatenate(sds)
        finally:
            self._release()

    def _observe(self, t0: float, n_points: int) -> None:
        if not tm.enabled():
            return
        tm.observe("serve.predict.seconds", time.perf_counter() - t0)
        tm.count("serve.predict.requests")
        tm.count("serve.predict.points", n_points)

    def __repr__(self) -> str:
        meta = self.meta
        return (
            f"PredictionService(registry={str(self.registry.root)!r}, "
            f"version={meta.version}, n_train={meta.n_train}, "
            f"chunk_size={self.chunk_size})"
        )
