"""``python -m repro serve`` — query a model registry from the shell.

One subcommand covers the registry lifecycle end to end::

    python -m repro serve REGISTRY --info
    python -m repro serve REGISTRY --query queries.jsonl --std --out preds.jsonl
    python -m repro serve REGISTRY --stdin --watch        # JSONL loop
    python -m repro serve REGISTRY --rollback
    python -m repro serve REGISTRY --set-latest 2

Query input is JSONL: each line is either a bare JSON array (one point
``[x1, x2]`` or a block ``[[...], [...]]``) or an object ``{"x": ...}``.
Each line is answered with one JSON object::

    {"version": 3, "n": 2, "mean": [...], "std": [...]}

In ``--stdin`` mode the objects ``{"cmd": "refresh"}`` and
``{"cmd": "version"}`` trigger a manifest re-read (hot rollover) and a
served-version report; ``--watch`` refreshes automatically before every
query, so a campaign publishing into the same registry rolls the loop
over mid-stream.  ``--trace`` records the ``serve.predict.seconds`` /
``serve.rollover.total`` telemetry of the run.

Failure handling: ``--fsck`` audits every version's checksum, moves
corrupt files to the ``corrupt/`` sidecar, and repoints ``latest`` at
the newest healthy version (exit 0 iff the registry is servable
afterwards).  In ``--watch`` mode a transient refresh failure is logged
to stderr and the loop keeps serving the held snapshot; the process only
exits nonzero after ``--max-refresh-failures`` *consecutive* failures.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .registry import ModelRegistry, RegistryError
from .service import DeadlineExceeded, PredictionService, ServiceOverloaded

__all__ = ["main"]


def _parse_query(line: str):
    doc = json.loads(line)
    if isinstance(doc, dict):
        if "cmd" in doc:
            return doc["cmd"], None
        doc = doc.get("x")
    if doc is None:
        raise ValueError("query must be an array or an object with 'x'/'cmd'")
    X = np.asarray(doc, dtype=float)
    if X.ndim == 1:
        X = X[np.newaxis, :]
    if X.ndim != 2:
        raise ValueError(f"query must be 1-D or 2-D, got ndim={X.ndim}")
    return None, X


def _answer(service: PredictionService, X: np.ndarray, *, std: bool) -> dict:
    out = {"version": service.version, "n": int(X.shape[0])}
    if std:
        mean, sd = service.predict_std(X)
        out["mean"] = mean.tolist()
        out["std"] = sd.tolist()
    else:
        out["mean"] = service.predict(X).tolist()
    return out


def _serve_lines(
    service: PredictionService,
    lines,
    out,
    *,
    std: bool,
    max_refresh_failures: int | None = None,
) -> tuple[int, bool]:
    """Answer queries line by line.

    Returns ``(n_answered, gave_up)`` where ``gave_up`` is True when the
    refresh-failure limit was hit and the loop stopped early.
    """
    n_answered = 0
    was_degraded = service.degraded
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            cmd, X = _parse_query(line)
        except (ValueError, json.JSONDecodeError) as exc:
            print(json.dumps({"error": str(exc)}), file=out, flush=True)
            continue
        if cmd == "refresh":
            try:
                rolled = service.refresh()
            except (RegistryError, OSError, ValueError) as exc:
                print(json.dumps({"error": str(exc)}), file=out, flush=True)
            else:
                print(
                    json.dumps({"rolled_over": rolled, "version": service.version}),
                    file=out,
                    flush=True,
                )
            continue
        if cmd == "version":
            meta = service.meta
            print(
                json.dumps(
                    {
                        "version": meta.version,
                        "n_train": meta.n_train,
                        "training_hash": meta.training_hash,
                        "healthy": meta.healthy,
                    }
                ),
                file=out,
                flush=True,
            )
            continue
        if cmd is not None:
            print(json.dumps({"error": f"unknown cmd {cmd!r}"}), file=out, flush=True)
            continue
        try:
            print(json.dumps(_answer(service, X, std=std)), file=out, flush=True)
        except (ServiceOverloaded, DeadlineExceeded) as exc:
            print(json.dumps({"error": str(exc)}), file=out, flush=True)
            continue
        n_answered += 1
        if service.degraded and not was_degraded:
            print(
                "[degraded: refresh failing, serving stale snapshot "
                f"v{service.version:05d}]",
                file=sys.stderr,
            )
        elif was_degraded and not service.degraded:
            print(f"[recovered: serving v{service.version:05d}]", file=sys.stderr)
        was_degraded = service.degraded
        if (
            max_refresh_failures is not None
            and service.consecutive_refresh_failures >= max_refresh_failures
        ):
            print(
                f"error: {service.consecutive_refresh_failures} consecutive "
                "refresh failures; giving up",
                file=sys.stderr,
            )
            return n_answered, True
    return n_answered, False


def _print_info(registry: ModelRegistry) -> None:
    latest = registry.latest_version()
    versions = registry.versions()
    print(f"registry: {registry.root}")
    print(f"latest:   {latest if latest is not None else '(empty)'}")
    for meta in versions:
        marker = "*" if meta.version == latest else " "
        health = (
            "-" if meta.healthy is None else ("ok" if meta.healthy else "UNHEALTHY")
        )
        solver = (meta.extra or {}).get("solver") or {}
        print(
            f" {marker} v{meta.version:05d}  n_train={meta.n_train:<5d} "
            f"lml={meta.lml:<12.4f} health={health:<9s} "
            f"solver={solver.get('name', 'exact'):<8s}"
            f"hash={meta.training_hash[:12]}"
        )
    if latest is None:
        return
    report = registry.fsck(repair=False)
    quarantined = registry.quarantined()
    status = "ok" if not report.corrupt else "CORRUPT"
    print(
        f"integrity: {status} ({len(report.healthy)}/{report.checked} verified, "
        f"{len(quarantined)} quarantined)"
    )
    for v, reason in report.corrupt:
        print(f"   corrupt v{v:05d} (run --fsck to quarantine): {reason}")
    for v, reason in sorted(quarantined.items()):
        print(f"   quarantined v{v:05d}: {reason}")


def _print_fsck(report) -> None:
    print(f"fsck: {report.root}")
    print(f"checked:     {report.checked}")
    print(f"healthy:     {len(report.healthy)}")
    print(f"corrupt:     {len(report.corrupt)}")
    print(f"quarantined: {len(report.already_quarantined)} (previously)")
    for v, reason in report.corrupt:
        print(f"   quarantining v{v:05d}: {reason}")
    before = report.latest_before
    after = report.latest_after
    print(f"latest:      {'(none)' if before is None else f'v{before:05d}'}", end="")
    if after != before:
        print(f" -> {'(none)' if after is None else f'v{after:05d}'}")
    else:
        print()
    print(f"servable:    {'yes' if report.servable else 'NO'}")


def main(argv=None) -> int:
    """Entry point for the ``serve`` subcommand; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve predictions from (or administer) a model registry.",
    )
    parser.add_argument("registry", help="registry directory")
    parser.add_argument(
        "--version", type=int, default=None,
        help="pin a specific version instead of tracking latest",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="query rows predicted per vectorized block",
    )
    parser.add_argument(
        "--std", action="store_true",
        help="also return predictive standard deviations",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="re-check the manifest before every query (hot rollover)",
    )
    parser.add_argument(
        "--max-refresh-failures", type=int, default=5, metavar="N",
        help="in --watch mode, exit nonzero after N consecutive refresh failures",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--info", action="store_true", help="list versions and exit")
    group.add_argument(
        "--fsck", action="store_true",
        help="verify all version checksums, quarantine corrupt files, "
        "repoint latest at the newest healthy version",
    )
    group.add_argument(
        "--rollback", action="store_true",
        help="move the latest pointer back one published version",
    )
    group.add_argument(
        "--set-latest", type=int, default=None, metavar="N",
        help="point latest at an existing version",
    )
    group.add_argument(
        "--query", default=None, metavar="PATH",
        help="answer the JSONL queries in PATH and exit",
    )
    group.add_argument(
        "--stdin", action="store_true",
        help="answer JSONL queries from stdin until EOF",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write JSONL answers here instead of stdout",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a telemetry JSONL trace of the serving run",
    )
    args = parser.parse_args(argv)

    registry = ModelRegistry(args.registry)
    try:
        if args.info:
            _print_info(registry)
            return 0
        if args.fsck:
            report = registry.fsck(repair=True)
            _print_fsck(report)
            return 0 if report.servable else 1
        if args.rollback:
            meta = registry.rollback()
            print(f"latest -> v{meta.version:05d} (hash {meta.training_hash[:12]})")
            return 0
        if args.set_latest is not None:
            meta = registry.set_latest(args.set_latest)
            print(f"latest -> v{meta.version:05d} (hash {meta.training_hash[:12]})")
            return 0

        def run_queries() -> int:
            service = PredictionService(
                registry,
                version=args.version,
                chunk_size=args.chunk_size,
                auto_refresh=args.watch,
            )
            limit = args.max_refresh_failures if args.watch else None
            out = open(args.out, "w") if args.out else sys.stdout
            try:
                if args.stdin:
                    n, gave_up = _serve_lines(
                        service, sys.stdin, out,
                        std=args.std, max_refresh_failures=limit,
                    )
                else:
                    with open(args.query) as fh:
                        n, gave_up = _serve_lines(
                            service, fh, out,
                            std=args.std, max_refresh_failures=limit,
                        )
            finally:
                if args.out:
                    out.close()
            print(
                f"[served {n} queries on v{service.version:05d}, "
                f"{service.n_rollovers} rollovers]",
                file=sys.stderr,
            )
            return 2 if gave_up else 0

        if args.trace:
            from .. import telemetry

            with telemetry.session(args.trace):
                code = run_queries()
            print(f"[telemetry trace written to {args.trace}]", file=sys.stderr)
            return code
        return run_queries()
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
