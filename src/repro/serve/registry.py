"""Versioned model store: persisted fitted GPRs with rollback pointers.

A :class:`ModelRegistry` is a directory of immutable, numbered version
files plus one mutable ``MANIFEST.json`` naming the *published* (latest)
version::

    registry/
        MANIFEST.json     {"latest": 3, "history": [1, 2, 3], ...}
        v00001.json       one GaussianProcessRegressor.to_dict() + metadata
        v00002.json
        v00003.json

Every write goes through :func:`repro.al.session.write_json_atomic`
(temp file + fsync + atomic rename), and a publish writes the version
file *before* repointing the manifest, so concurrent readers always see
either the previous complete version or the new complete version — never
a torn state.  That ordering is what makes hot rollover safe: a
:class:`~repro.serve.service.PredictionService` that re-reads the
manifest mid-traffic either keeps answering on the old model or switches
to a fully durable new one.

Version numbers are monotonically increasing and never reused.
:meth:`ModelRegistry.rollback` moves the ``latest`` pointer back along
the publish history without deleting anything, so a rollback is itself
reversible (``set_latest``) and auditable.

Metadata per version: creation time, training-set hash and size, LML,
noise variance, and the guardrails' health verdict
(:class:`repro.al.guardrails.HealthReport`) when one gated the publish —
the registry-level complement of ``LastKnownGood``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry as tm
from ..al.session import read_json_checked, write_json_atomic
from ..gp.gpr import GaussianProcessRegressor

__all__ = ["ModelVersion", "ModelRegistry", "RegistryError"]

_MANIFEST_VERSION = 1
_ENTRY_VERSION = 1
_MANIFEST_NAME = "MANIFEST.json"


class RegistryError(RuntimeError):
    """A registry operation could not be performed (empty, missing version...)."""


@dataclass(frozen=True)
class ModelVersion:
    """Metadata of one published model version (the model itself lives on disk)."""

    version: int
    created_at: float
    training_hash: str
    n_train: int
    lml: float
    noise_variance: float
    healthy: bool | None = None
    issues: tuple = ()
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "created_at": self.created_at,
            "training_hash": self.training_hash,
            "n_train": self.n_train,
            "lml": self.lml,
            "noise_variance": self.noise_variance,
            "healthy": self.healthy,
            "issues": list(self.issues),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelVersion":
        return cls(
            version=int(data["version"]),
            created_at=float(data["created_at"]),
            training_hash=str(data["training_hash"]),
            n_train=int(data["n_train"]),
            lml=float(data["lml"]),
            noise_variance=float(data["noise_variance"]),
            healthy=data.get("healthy"),
            issues=tuple(data.get("issues") or ()),
            extra=dict(data.get("extra") or {}),
        )


def _health_fields(health) -> tuple[bool | None, tuple]:
    """Extract (healthy, issues) from a HealthReport, dict, bool, or None."""
    if health is None:
        return None, ()
    if isinstance(health, bool):
        return health, ()
    if isinstance(health, dict):
        return (
            None if health.get("healthy") is None else bool(health["healthy"]),
            tuple(health.get("issues") or ()),
        )
    # Duck-typed HealthReport.
    return bool(health.healthy), tuple(getattr(health, "issues", ()))


class ModelRegistry:
    """Directory-backed store of published model versions.

    Parameters
    ----------
    root:
        Registry directory; created on first :meth:`publish`.  Opening a
        non-existent directory is allowed (it reads as empty), so readers
        and writers can start in either order.
    """

    def __init__(self, root):
        self.root = Path(root)

    # ----------------------------------------------------------------- reads

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def _read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {
                "version": _MANIFEST_VERSION,
                "latest": None,
                "history": [],
                "entries": {},
            }
        payload = read_json_checked(self.manifest_path, kind="registry manifest")
        if payload.get("version") != _MANIFEST_VERSION:
            raise RegistryError(
                f"unsupported registry manifest version {payload.get('version')} "
                f"(expected {_MANIFEST_VERSION})"
            )
        return payload

    @property
    def empty(self) -> bool:
        """Whether no version has ever been published."""
        return not self._read_manifest()["history"]

    def latest_version(self) -> int | None:
        """The currently published version number, or ``None`` when empty."""
        latest = self._read_manifest()["latest"]
        return None if latest is None else int(latest)

    def versions(self) -> list[ModelVersion]:
        """All published versions' metadata, in publish order."""
        manifest = self._read_manifest()
        entries = manifest["entries"]
        return [
            ModelVersion.from_dict(entries[str(v)]) for v in manifest["history"]
        ]

    def describe(self, version: int | None = None) -> ModelVersion:
        """Metadata of ``version`` (default: the published latest)."""
        manifest = self._read_manifest()
        if version is None:
            if manifest["latest"] is None:
                raise RegistryError(f"registry {self.root} is empty")
            version = int(manifest["latest"])
        entry = manifest["entries"].get(str(int(version)))
        if entry is None:
            raise RegistryError(
                f"registry {self.root} has no version {version}"
            )
        return ModelVersion.from_dict(entry)

    def _version_path(self, version: int) -> Path:
        return self.root / f"v{int(version):05d}.json"

    def load(
        self, version: int | None = None
    ) -> tuple[GaussianProcessRegressor, ModelVersion]:
        """Load a version's model (default: the published latest).

        Returns ``(model, metadata)``; the model's predictions are
        bit-identical to the model that was published
        (:meth:`repro.gp.GaussianProcessRegressor.from_dict`).
        """
        meta = self.describe(version)
        payload = read_json_checked(
            self._version_path(meta.version), kind="registry model"
        )
        if payload.get("version") != _ENTRY_VERSION:
            raise RegistryError(
                f"unsupported registry entry version {payload.get('version')}"
            )
        model = GaussianProcessRegressor.from_dict(payload["model"])
        return model, meta

    # ---------------------------------------------------------------- writes

    def publish(
        self,
        model: GaussianProcessRegressor,
        *,
        health=None,
        extra: dict | None = None,
        created_at: float | None = None,
    ) -> ModelVersion:
        """Persist a fitted model as the next version and point latest at it.

        The version file is written (atomically, fsynced) before the
        manifest is repointed, so a reader can never observe a latest
        pointer naming a missing or torn file.  ``health`` may be a
        :class:`~repro.al.guardrails.HealthReport`, a bool, or a dict with
        ``healthy``/``issues``; ``extra`` is free-form JSON-safe metadata
        (campaign round, strategy name, ...).
        """
        if not model.fitted:
            raise RegistryError("cannot publish an unfitted model")
        t0 = time.perf_counter()
        manifest = self._read_manifest()
        history = list(manifest["history"])
        next_version = (max(history) + 1) if history else 1
        healthy, issues = _health_fields(health)
        meta = ModelVersion(
            version=next_version,
            created_at=time.time() if created_at is None else float(created_at),
            training_hash=model.training_hash(),
            n_train=model.X_train_.shape[0],
            lml=float(model.lml_),
            noise_variance=float(model.noise_variance_),
            healthy=healthy,
            issues=issues,
            extra=dict(extra or {}),
        )
        write_json_atomic(
            {
                "version": _ENTRY_VERSION,
                "meta": meta.as_dict(),
                "model": model.to_dict(),
            },
            self._version_path(next_version),
        )
        history.append(next_version)
        entries = dict(manifest["entries"])
        entries[str(next_version)] = meta.as_dict()
        self._write_manifest(latest=next_version, history=history, entries=entries)
        tm.count("registry.publish.total")
        tm.observe("registry.publish.seconds", time.perf_counter() - t0)
        tm.event(
            "registry.publish",
            registry=str(self.root),
            version=next_version,
            n_train=meta.n_train,
            training_hash=meta.training_hash,
            healthy=healthy,
        )
        return meta

    def _write_manifest(self, *, latest, history, entries) -> None:
        write_json_atomic(
            {
                "version": _MANIFEST_VERSION,
                "latest": latest,
                "history": history,
                "entries": entries,
            },
            self.manifest_path,
        )

    def set_latest(self, version: int) -> ModelVersion:
        """Repoint ``latest`` at an existing version (used by rollback)."""
        manifest = self._read_manifest()
        version = int(version)
        if version not in manifest["history"]:
            raise RegistryError(
                f"registry {self.root} has no version {version}"
            )
        self._write_manifest(
            latest=version,
            history=manifest["history"],
            entries=manifest["entries"],
        )
        tm.count("registry.set_latest.total")
        tm.event("registry.set_latest", registry=str(self.root), version=version)
        return self.describe(version)

    def rollback(self) -> ModelVersion:
        """Repoint ``latest`` at the version published before the current one.

        Nothing is deleted: the rolled-back version stays on disk and in
        the history, and a later :meth:`set_latest` (or a fresh publish)
        can move past it again.  Raises :class:`RegistryError` when there
        is no earlier version to roll back to.
        """
        manifest = self._read_manifest()
        if manifest["latest"] is None:
            raise RegistryError(f"registry {self.root} is empty")
        history = manifest["history"]
        idx = history.index(int(manifest["latest"]))
        if idx == 0:
            raise RegistryError(
                f"version {manifest['latest']} is the oldest published "
                "version; nothing to roll back to"
            )
        meta = self.set_latest(history[idx - 1])
        tm.count("registry.rollback.total")
        tm.event(
            "registry.rollback", registry=str(self.root), version=meta.version
        )
        return meta
