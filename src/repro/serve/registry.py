"""Versioned model store: persisted fitted GPRs with rollback pointers.

A :class:`ModelRegistry` is a directory of immutable, numbered version
files plus one mutable ``MANIFEST.json`` naming the *published* (latest)
version::

    registry/
        MANIFEST.json     {"latest": 3, "history": [1, 2, 3], ...}
        v00001.json       one GaussianProcessRegressor.to_dict() + metadata
        v00002.json
        v00003.json

Every write goes through :func:`repro.al.session.write_json_atomic`
(temp file + fsync + atomic rename), and a publish writes the version
file *before* repointing the manifest, so concurrent readers always see
either the previous complete version or the new complete version — never
a torn state.  That ordering is what makes hot rollover safe: a
:class:`~repro.serve.service.PredictionService` that re-reads the
manifest mid-traffic either keeps answering on the old model or switches
to a fully durable new one.

Version numbers are monotonically increasing and never reused.
:meth:`ModelRegistry.rollback` moves the ``latest`` pointer back along
the publish history without deleting anything, so a rollback is itself
reversible (``set_latest``) and auditable.

Metadata per version: creation time, training-set hash and size, LML,
noise variance, a SHA-256 content checksum of the model payload, and the
guardrails' health verdict (:class:`repro.al.guardrails.HealthReport`)
when one gated the publish — the registry-level complement of
``LastKnownGood``.

Integrity
---------
Atomic writes prevent the registry from *producing* torn files, but a
faulty filesystem (or anything else with write access) can still corrupt
one after the fact.  Every publish therefore records a SHA-256 checksum
of the canonical model JSON in both the version file and the manifest
entry; :meth:`ModelRegistry.load` re-verifies it and — when tracking
``latest`` — transparently falls back along the publish history to the
newest version that still verifies, so a bit-flipped latest never fails
a query mid-flight.  :meth:`ModelRegistry.fsck` audits the whole store,
moves corrupt version files into a ``corrupt/`` sidecar directory,
annotates the manifest (``quarantined``), and repoints ``latest`` at the
newest healthy version (``python -m repro serve REG --fsck``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry as tm
from ..al.session import read_json_checked, write_json_atomic
from ..gp.gpr import GaussianProcessRegressor

__all__ = [
    "ModelVersion",
    "ModelRegistry",
    "RegistryError",
    "RegistryIntegrityError",
    "FsckReport",
    "model_checksum",
]

_MANIFEST_VERSION = 1
_ENTRY_VERSION = 1
_MANIFEST_NAME = "MANIFEST.json"
_CORRUPT_DIR = "corrupt"


class RegistryError(RuntimeError):
    """A registry operation could not be performed (empty, missing version...)."""


class RegistryIntegrityError(RegistryError, ValueError):
    """A version file failed checksum/structure verification.

    Also a ``ValueError`` so callers that historically caught the
    corruption errors of :func:`read_json_checked` keep working.
    """


def model_checksum(model_dict: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a model payload.

    Canonical = sorted keys, no whitespace — so the digest is stable
    across a JSON parse/re-dump round trip (Python floats re-dump to the
    same shortest repr) and therefore verifiable from a *parsed* version
    file, not just the original bytes.
    """
    blob = json.dumps(model_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class ModelVersion:
    """Metadata of one published model version (the model itself lives on disk)."""

    version: int
    created_at: float
    training_hash: str
    n_train: int
    lml: float
    noise_variance: float
    healthy: bool | None = None
    issues: tuple = ()
    extra: dict = field(default_factory=dict)
    checksum: str | None = None

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "created_at": self.created_at,
            "training_hash": self.training_hash,
            "n_train": self.n_train,
            "lml": self.lml,
            "noise_variance": self.noise_variance,
            "healthy": self.healthy,
            "issues": list(self.issues),
            "extra": dict(self.extra),
            "checksum": self.checksum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelVersion":
        return cls(
            version=int(data["version"]),
            created_at=float(data["created_at"]),
            training_hash=str(data["training_hash"]),
            n_train=int(data["n_train"]),
            lml=float(data["lml"]),
            noise_variance=float(data["noise_variance"]),
            healthy=data.get("healthy"),
            issues=tuple(data.get("issues") or ()),
            extra=dict(data.get("extra") or {}),
            checksum=data.get("checksum"),
        )


def _health_fields(health) -> tuple[bool | None, tuple]:
    """Extract (healthy, issues) from a HealthReport, dict, bool, or None."""
    if health is None:
        return None, ()
    if isinstance(health, bool):
        return health, ()
    if isinstance(health, dict):
        return (
            None if health.get("healthy") is None else bool(health["healthy"]),
            tuple(health.get("issues") or ()),
        )
    # Duck-typed HealthReport.
    return bool(health.healthy), tuple(getattr(health, "issues", ()))


@dataclass
class FsckReport:
    """Outcome of one :meth:`ModelRegistry.fsck` pass.

    ``corrupt`` lists ``(version, reason)`` pairs found *this* pass;
    ``already_quarantined`` lists versions quarantined by earlier passes.
    In repair mode the corrupt versions have been moved to the
    ``corrupt/`` sidecar and annotated in the manifest, and
    ``latest_after`` is the repointed publish pointer.
    """

    root: str
    checked: int
    healthy: list
    corrupt: list
    already_quarantined: list
    latest_before: int | None
    latest_after: int | None
    repaired: bool

    @property
    def servable(self) -> bool:
        """Whether a healthy published version remains to serve from."""
        return self.latest_after is not None


class ModelRegistry:
    """Directory-backed store of published model versions.

    Parameters
    ----------
    root:
        Registry directory; created on first :meth:`publish`.  Opening a
        non-existent directory is allowed (it reads as empty), so readers
        and writers can start in either order.
    """

    def __init__(self, root):
        self.root = Path(root)

    # ----------------------------------------------------------------- reads

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def _read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {
                "version": _MANIFEST_VERSION,
                "latest": None,
                "history": [],
                "entries": {},
                "quarantined": {},
            }
        payload = read_json_checked(self.manifest_path, kind="registry manifest")
        if payload.get("version") != _MANIFEST_VERSION:
            raise RegistryError(
                f"unsupported registry manifest version {payload.get('version')} "
                f"(expected {_MANIFEST_VERSION})"
            )
        # Manifests written before the integrity pass lack the key.
        payload.setdefault("quarantined", {})
        return payload

    @property
    def empty(self) -> bool:
        """Whether no version has ever been published."""
        return not self._read_manifest()["history"]

    def latest_version(self) -> int | None:
        """The currently published version number, or ``None`` when empty."""
        latest = self._read_manifest()["latest"]
        return None if latest is None else int(latest)

    def versions(self) -> list[ModelVersion]:
        """All published versions' metadata, in publish order."""
        manifest = self._read_manifest()
        entries = manifest["entries"]
        return [
            ModelVersion.from_dict(entries[str(v)]) for v in manifest["history"]
        ]

    def describe(self, version: int | None = None) -> ModelVersion:
        """Metadata of ``version`` (default: the published latest)."""
        manifest = self._read_manifest()
        if version is None:
            if manifest["latest"] is None:
                raise RegistryError(f"registry {self.root} is empty")
            version = int(manifest["latest"])
        entry = manifest["entries"].get(str(int(version)))
        if entry is None:
            raise RegistryError(
                f"registry {self.root} has no version {version}"
            )
        return ModelVersion.from_dict(entry)

    def _version_path(self, version: int) -> Path:
        return self.root / f"v{int(version):05d}.json"

    def quarantined(self) -> dict:
        """Mapping ``version -> reason`` of quarantined versions (see fsck)."""
        return {
            int(v): str(info.get("reason", "unknown"))
            for v, info in self._read_manifest()["quarantined"].items()
        }

    def _read_verified(self, meta: ModelVersion) -> dict:
        """Read a version file, verifying structure + content checksum.

        Raises :class:`RegistryIntegrityError` on any mismatch (and
        ``ValueError`` via :func:`read_json_checked` on unparseable JSON,
        i.e. truncated/torn files).
        """
        path = self._version_path(meta.version)
        if not path.exists():
            raise RegistryIntegrityError(
                f"version file {path.name} is missing from {self.root}"
            )
        payload = read_json_checked(path, kind="registry model")
        if payload.get("version") != _ENTRY_VERSION:
            raise RegistryError(
                f"unsupported registry entry version {payload.get('version')}"
            )
        expected = meta.checksum or payload.get("checksum")
        if expected is not None:
            actual = model_checksum(payload["model"])
            if actual != expected:
                raise RegistryIntegrityError(
                    f"content hash mismatch for {path.name}: expected checksum "
                    f"{expected[:12]}..., content hashes to {actual[:12]}..."
                )
        return payload

    def _load_version(
        self, meta: ModelVersion
    ) -> tuple[GaussianProcessRegressor, ModelVersion]:
        payload = self._read_verified(meta)
        model = GaussianProcessRegressor.from_dict(payload["model"])
        return model, meta

    def load(
        self, version: int | None = None
    ) -> tuple[GaussianProcessRegressor, ModelVersion]:
        """Load a version's model (default: the published latest).

        Returns ``(model, metadata)``; the model's predictions are
        bit-identical to the model that was published
        (:meth:`repro.gp.GaussianProcessRegressor.from_dict`).

        Every load re-verifies the version file's SHA-256 content
        checksum.  Loading an *explicit* version raises
        :class:`RegistryIntegrityError` on corruption (and
        :class:`RegistryError` for quarantined versions).  Loading the
        published latest (``version=None``) instead **falls back**: if the
        latest fails verification, the publish history is walked backwards
        and the newest version that still verifies is returned — a corrupt
        file degrades the answer to last-known-good instead of failing the
        query (``registry.load.fallback`` telemetry records the swap).
        """
        manifest = self._read_manifest()
        quarantined = manifest["quarantined"]
        if version is not None:
            meta = self.describe(int(version))
            if str(meta.version) in quarantined:
                reason = quarantined[str(meta.version)].get("reason", "unknown")
                raise RegistryError(
                    f"version {meta.version} is quarantined ({reason}); "
                    "run fsck or pick another version"
                )
            return self._load_version(meta)

        latest = manifest["latest"]
        if latest is None:
            raise RegistryError(f"registry {self.root} is empty")
        history = [int(v) for v in manifest["history"]]
        start = history.index(int(latest))
        entries = manifest["entries"]
        errors: list[str] = []
        for candidate in reversed(history[: start + 1]):
            if str(candidate) in quarantined:
                continue
            meta = ModelVersion.from_dict(entries[str(candidate)])
            try:
                model, meta = self._load_version(meta)
            except (RegistryError, ValueError, OSError) as exc:
                errors.append(f"v{candidate:05d}: {exc}")
                tm.count("registry.load.corrupt")
                continue
            if candidate != int(latest):
                tm.count("registry.load.fallback")
                tm.event(
                    "registry.load.fallback",
                    registry=str(self.root),
                    wanted=int(latest),
                    served=candidate,
                    errors=errors,
                )
            return model, meta
        raise RegistryIntegrityError(
            f"registry {self.root} has no loadable version: " + "; ".join(errors)
        )

    # ---------------------------------------------------------------- writes

    def publish(
        self,
        model: GaussianProcessRegressor,
        *,
        health=None,
        extra: dict | None = None,
        created_at: float | None = None,
    ) -> ModelVersion:
        """Persist a fitted model as the next version and point latest at it.

        The version file is written (atomically, fsynced) before the
        manifest is repointed, so a reader can never observe a latest
        pointer naming a missing or torn file.  ``health`` may be a
        :class:`~repro.al.guardrails.HealthReport`, a bool, or a dict with
        ``healthy``/``issues``; ``extra`` is free-form JSON-safe metadata
        (campaign round, strategy name, ...).
        """
        if not model.fitted:
            raise RegistryError("cannot publish an unfitted model")
        t0 = time.perf_counter()
        manifest = self._read_manifest()
        history = list(manifest["history"])
        next_version = (max(history) + 1) if history else 1
        healthy, issues = _health_fields(health)
        model_dict = model.to_dict()
        extra = dict(extra or {})
        # Record which solver produced the posterior (and, for approximate
        # backends, the error-budget report) alongside the health verdict.
        # Exact fits are left unmarked (absence implies "exact"), keeping
        # their version files byte-identical to pre-solver-layer ones.
        solver_info = getattr(model, "solver_info", None)
        if solver_info is not None and solver_info.get("name") != "exact":
            extra.setdefault("solver", solver_info)
        # Likewise mark heteroscedastic fits (per-point noise alpha, e.g.
        # from multi-fidelity fusion); scalar-noise fits stay unmarked so
        # their version files are byte-identical to pre-alpha ones.
        noise_alpha = getattr(model, "noise_alpha_", None)
        if noise_alpha is not None:
            extra.setdefault("heteroscedastic", True)
            extra.setdefault("n_noise_alpha", int(len(noise_alpha)))
        meta = ModelVersion(
            version=next_version,
            created_at=time.time() if created_at is None else float(created_at),
            training_hash=model.training_hash(),
            n_train=int(getattr(model, "n_train_", None) or model.X_train_.shape[0]),
            lml=float(model.lml_),
            noise_variance=float(model.noise_variance_),
            healthy=healthy,
            issues=issues,
            extra=extra,
            checksum=model_checksum(model_dict),
        )
        write_json_atomic(
            {
                "version": _ENTRY_VERSION,
                "checksum": meta.checksum,
                "meta": meta.as_dict(),
                "model": model_dict,
            },
            self._version_path(next_version),
        )
        history.append(next_version)
        entries = dict(manifest["entries"])
        entries[str(next_version)] = meta.as_dict()
        self._write_manifest(
            latest=next_version,
            history=history,
            entries=entries,
            quarantined=manifest["quarantined"],
        )
        tm.count("registry.publish.total")
        tm.observe("registry.publish.seconds", time.perf_counter() - t0)
        tm.event(
            "registry.publish",
            registry=str(self.root),
            version=next_version,
            n_train=meta.n_train,
            training_hash=meta.training_hash,
            healthy=healthy,
        )
        return meta

    def publish_bundle(
        self,
        models,
        *,
        shard_ids=None,
        healths=None,
        extra: dict | None = None,
        created_at: float | None = None,
    ) -> list[ModelVersion]:
        """Publish a sharded campaign's local models as one tagged bundle.

        Each model becomes an ordinary registry version (so ``load``,
        ``rollback`` and ``fsck`` all work unchanged), with its ``extra``
        metadata carrying a shared ``bundle`` id plus its ``shard`` id and
        the bundle's ``n_shards`` — enough for a reader to reassemble the
        ensemble by filtering ``versions()`` on the bundle tag.  Versions
        are published in ascending shard order; ``latest`` ends up on the
        bundle's last shard, as with any sequence of publishes.

        ``shard_ids`` defaults to ``range(len(models))``; ``healths``, when
        given, supplies one health verdict per model (``None`` entries
        allowed).
        """
        models = list(models)
        if not models:
            raise RegistryError("cannot publish an empty bundle")
        shard_ids = (
            list(range(len(models))) if shard_ids is None else list(shard_ids)
        )
        if len(shard_ids) != len(models):
            raise RegistryError(
                f"bundle has {len(models)} models but {len(shard_ids)} shard ids"
            )
        if healths is not None and len(list(healths)) != len(models):
            raise RegistryError("healths must have one entry per model")
        history = self._read_manifest()["history"]
        bundle_id = f"b{((max(history) + 1) if history else 1):05d}"
        published = []
        for i, (shard, model) in enumerate(zip(shard_ids, models)):
            tags = dict(extra or {})
            tags.update(
                bundle=bundle_id,
                shard=int(shard),
                n_shards=len(models),
            )
            published.append(
                self.publish(
                    model,
                    health=None if healths is None else list(healths)[i],
                    extra=tags,
                    created_at=created_at,
                )
            )
        tm.count("registry.publish_bundle.total")
        tm.event(
            "registry.publish_bundle",
            registry=str(self.root),
            bundle=bundle_id,
            n_shards=len(models),
            versions=[m.version for m in published],
        )
        return published

    def _write_manifest(self, *, latest, history, entries, quarantined=None) -> None:
        write_json_atomic(
            {
                "version": _MANIFEST_VERSION,
                "latest": latest,
                "history": history,
                "entries": entries,
                "quarantined": dict(quarantined or {}),
            },
            self.manifest_path,
        )

    def set_latest(self, version: int) -> ModelVersion:
        """Repoint ``latest`` at an existing version (used by rollback)."""
        manifest = self._read_manifest()
        version = int(version)
        if version not in manifest["history"]:
            raise RegistryError(
                f"registry {self.root} has no version {version}"
            )
        if str(version) in manifest["quarantined"]:
            raise RegistryError(
                f"version {version} is quarantined; cannot publish it as latest"
            )
        self._write_manifest(
            latest=version,
            history=manifest["history"],
            entries=manifest["entries"],
            quarantined=manifest["quarantined"],
        )
        tm.count("registry.set_latest.total")
        tm.event("registry.set_latest", registry=str(self.root), version=version)
        return self.describe(version)

    def rollback(self) -> ModelVersion:
        """Repoint ``latest`` at the version published before the current one.

        Nothing is deleted: the rolled-back version stays on disk and in
        the history, and a later :meth:`set_latest` (or a fresh publish)
        can move past it again.  Raises :class:`RegistryError` when there
        is no earlier version to roll back to.
        """
        manifest = self._read_manifest()
        if manifest["latest"] is None:
            raise RegistryError(f"registry {self.root} is empty")
        history = manifest["history"]
        idx = history.index(int(manifest["latest"]))
        targets = [
            v
            for v in history[:idx]
            if str(v) not in manifest["quarantined"]
        ]
        if not targets:
            raise RegistryError(
                f"version {manifest['latest']} is the oldest published "
                "version; nothing to roll back to"
            )
        meta = self.set_latest(targets[-1])
        tm.count("registry.rollback.total")
        tm.event(
            "registry.rollback", registry=str(self.root), version=meta.version
        )
        return meta

    # ----------------------------------------------------------------- fsck

    def fsck(self, *, repair: bool = True, deep: bool = False) -> FsckReport:
        """Audit every published version; optionally quarantine and repoint.

        For each version in the publish history the file is checked for
        existence, parseability (truncated/torn files fail here), entry
        structure, and SHA-256 content checksum against the manifest;
        ``deep=True`` additionally deserializes the model, which re-verifies
        the embedded training-set hash.

        With ``repair=True`` (the default) each corrupt version file is
        moved into the ``corrupt/`` sidecar directory, the manifest is
        annotated (``quarantined: {version: {reason, at}}``), and — if the
        current ``latest`` was among the casualties — ``latest`` is
        repointed at the newest remaining healthy version (or ``None``
        when none survives).  Nothing is ever deleted: quarantined files
        stay inspectable in ``corrupt/`` and their history entries remain.

        ``repair=False`` is a read-only audit: the report says what
        *would* be quarantined, and the store is left untouched.
        """
        manifest = self._read_manifest()
        history = [int(v) for v in manifest["history"]]
        quarantined = dict(manifest["quarantined"])
        entries = manifest["entries"]
        healthy: list[int] = []
        corrupt: list[tuple[int, str]] = []
        already = sorted(int(v) for v in quarantined)
        for version in history:
            if str(version) in quarantined:
                continue
            meta = ModelVersion.from_dict(entries[str(version)])
            try:
                payload = self._read_verified(meta)
                if deep:
                    GaussianProcessRegressor.from_dict(payload["model"])
            except (RegistryError, ValueError, OSError) as exc:
                corrupt.append((version, str(exc)))
                continue
            healthy.append(version)

        latest_before = (
            None if manifest["latest"] is None else int(manifest["latest"])
        )
        latest_after = latest_before
        if latest_before is not None and latest_before not in healthy:
            surviving = [v for v in history[: history.index(latest_before) + 1]
                         if v in healthy]
            # Prefer versions at or before the published pointer (respects
            # an intentional rollback); fall beyond it only if none remain.
            latest_after = (
                surviving[-1] if surviving else (healthy[-1] if healthy else None)
            )

        if repair and corrupt:
            corrupt_dir = self.root / _CORRUPT_DIR
            corrupt_dir.mkdir(parents=True, exist_ok=True)
            now = time.time()
            for version, reason in corrupt:
                path = self._version_path(version)
                if path.exists():
                    os.replace(path, corrupt_dir / path.name)
                quarantined[str(version)] = {"reason": reason, "at": now}
                tm.count("registry.fsck.quarantined")
                tm.event(
                    "registry.quarantine",
                    registry=str(self.root),
                    version=version,
                    reason=reason,
                )
            self._write_manifest(
                latest=latest_after,
                history=history,
                entries=entries,
                quarantined=quarantined,
            )
        tm.count("registry.fsck.total")
        tm.event(
            "registry.fsck",
            registry=str(self.root),
            checked=len(history),
            n_healthy=len(healthy),
            n_corrupt=len(corrupt),
            repaired=bool(repair and corrupt),
            latest_before=latest_before,
            latest_after=latest_after if repair else latest_before,
        )
        # latest_after reports the healthy pointer: applied in repair mode,
        # advisory ("would repoint to") in audit mode.
        return FsckReport(
            root=str(self.root),
            checked=len(history),
            healthy=healthy,
            corrupt=corrupt,
            already_quarantined=already,
            latest_before=latest_before,
            latest_after=latest_after,
            repaired=bool(repair and corrupt),
        )
