"""Model registry and always-on prediction serving.

Training (``repro.al``) produces fitted models; this package stores them
as immutable versions with rollback pointers (:class:`ModelRegistry`) and
answers batched queries from the published version with hot rollover
(:class:`PredictionService`).  ``python -m repro serve`` is the CLI
front-end.
"""

from .registry import ModelRegistry, ModelVersion, RegistryError
from .service import PredictionService

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "PredictionService",
]
