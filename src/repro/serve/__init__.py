"""Model registry and always-on prediction serving.

Training (``repro.al``) produces fitted models; this package stores them
as immutable versions with rollback pointers (:class:`ModelRegistry`) and
answers batched queries from the published version with hot rollover
(:class:`PredictionService`).  ``python -m repro serve`` is the CLI
front-end.
"""

from .registry import (
    FsckReport,
    ModelRegistry,
    ModelVersion,
    RegistryError,
    RegistryIntegrityError,
    model_checksum,
)
from .service import DeadlineExceeded, PredictionService, ServiceOverloaded

__all__ = [
    "FsckReport",
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "RegistryIntegrityError",
    "model_checksum",
    "PredictionService",
    "ServiceOverloaded",
    "DeadlineExceeded",
]
