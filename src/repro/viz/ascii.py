"""Terminal-friendly ASCII rendering of the reproduction's figures.

matplotlib is not available in the offline environment, so the example
scripts render line charts, scatter plots and contour heat maps as text.
These renderers are deliberately simple — fixed-size character canvases —
but they make every figure of the paper *viewable* straight from a
terminal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_chart", "scatter_chart", "heatmap", "histogram"]

_RAMP = " .:-=+*#%@"


def _canvas(height: int, width: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(canvas, x_label: str, y_label: str, title: str,
            x_range: tuple[float, float], y_range: tuple[float, float]) -> str:
    width = len(canvas[0])
    lines = []
    if title:
        lines.append(title.center(width + 10))
    for i, row in enumerate(canvas):
        prefix = f"{y_range[1]:9.3g} |" if i == 0 else (
            f"{y_range[0]:9.3g} |" if i == len(canvas) - 1 else " " * 10 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    footer = f"{x_range[0]:<12.4g}{x_label.center(max(width - 24, 0))}{x_range[1]:>12.4g}"
    lines.append(" " * 10 + footer)
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines)


def _scale(values: np.ndarray, lo: float, hi: float, n: int) -> np.ndarray:
    if hi <= lo:
        return np.zeros(values.shape, dtype=int)
    t = (np.asarray(values, dtype=float) - lo) / (hi - lo)
    return np.clip((t * (n - 1)).round().astype(int), 0, n - 1)


def line_chart(
    series: dict,
    *,
    width: int = 70,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    logy: bool = False,
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    ``series`` maps a label to an ``(x, y)`` pair; each series is drawn with
    the first character of its label.
    """
    if not series:
        raise ValueError("need at least one series")
    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if logy:
        ys = np.log10(np.maximum(ys, 1e-300))
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    canvas = _canvas(height, width)
    for label, (x, y) in series.items():
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if logy:
            y = np.log10(np.maximum(y, 1e-300))
        marker = label.strip()[0] if label.strip() else "*"
        cols = _scale(x, x_lo, x_hi, width)
        rows = height - 1 - _scale(y, y_lo, y_hi, height)
        for r, c in zip(rows, cols):
            canvas[r][c] = marker
    legend = "   ".join(f"[{label.strip()[0]}] {label}" for label in series)
    chart = _render(
        canvas, x_label, y_label + (" (log10)" if logy else ""), title,
        (x_lo, x_hi), (y_lo, y_hi),
    )
    return chart + "\n  " + legend


def scatter_chart(
    x,
    y,
    *,
    width: int = 70,
    height: int = 18,
    marker: str = "o",
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    overlay: dict | None = None,
) -> str:
    """Render a scatter plot; ``overlay`` adds extra labelled point sets."""
    series = {f"{marker} data": (x, y)}
    if overlay:
        series.update(overlay)
    return line_chart(
        series, width=width, height=height, title=title,
        x_label=x_label, y_label=y_label,
    )


def heatmap(
    Z: np.ndarray,
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    mark_max: bool = True,
) -> str:
    """Render a 2-D array as a character-ramp heat map (row 0 at the top)."""
    Z = np.asarray(Z, dtype=float)
    if Z.ndim != 2:
        raise ValueError("heatmap expects a 2-D array")
    finite = Z[np.isfinite(Z)]
    if finite.size == 0:
        raise ValueError("heatmap needs at least one finite value")
    lo, hi = float(finite.min()), float(finite.max())
    idx = _scale(np.where(np.isfinite(Z), Z, lo), lo, hi, len(_RAMP))
    rows = ["".join(_RAMP[j] for j in row) for row in idx]
    if mark_max:
        i, j = np.unravel_index(int(np.nanargmax(Z)), Z.shape)
        rows[i] = rows[i][:j] + "X" + rows[i][j + 1 :]
    lines = []
    if title:
        lines.append(title)
    lines.extend("  " + r for r in rows)
    lines.append(f"  x: {x_label}   y: {y_label}   range: [{lo:.4g}, {hi:.4g}]"
                 + ("   X = maximum" if mark_max else ""))
    return "\n".join(lines)


def histogram(
    values,
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal-bar histogram."""
    values = np.asarray(values, dtype=float)
    counts, edges = np.histogram(values, bins=bins)
    top = max(int(counts.max()), 1)
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(c / top * width))
        lines.append(f"  {lo:10.3g} .. {hi:10.3g} |{bar} {c}")
    return "\n".join(lines)
