"""ASCII chart rendering for the terminal (matplotlib-free).

Public API::

    from repro.viz import line_chart, scatter_chart, heatmap, histogram
"""

from .ascii import heatmap, histogram, line_chart, scatter_chart

__all__ = ["line_chart", "scatter_chart", "heatmap", "histogram"]
