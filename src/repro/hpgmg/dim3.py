"""Three-dimensional mini HPGMG-FE — the benchmark's native dimension.

The real HPGMG-FE solves on cubic global grids (the paper's problem sizes
1.7e3..1.1e9 are 12^3..1024^3 DOF); the 2-D solver in the sibling modules
is the fast default for the AL experiments, and this module provides the
full-fidelity 3-D variant: hexahedral Q1/Q2 elements, variable coefficient,
affine shear, trilinear multigrid transfers and the same Chebyshev-smoothed
V-cycle/FMG driver.

Everything reuses the dimension-agnostic pieces: reference elements come
from :func:`repro.hpgmg.fem.reference_element` with ``dim=3``, smoothers and
the direct coarse solve operate on the generic sparse operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .fem import reference_element
from .grid import hierarchy_sizes
from .operators import AFFINE_SHEAR, OPERATOR_NAMES, DiscreteOperator, Problem
from .smoothers import chebyshev, damped_jacobi, estimate_lambda_max

__all__ = [
    "Mesh3",
    "make_problem3",
    "assemble3",
    "load_vector3",
    "prolong_trilinear",
    "restrict_transpose3",
    "MultigridSolver3",
    "run_benchmark3",
    "Benchmark3Result",
    "exact_solution3",
    "source_term3",
    "nodal_interior_values3",
    "discretization_error3",
]


# --------------------------------------------------------------------- meshes


@dataclass(frozen=True)
class Mesh3:
    """Uniform hexahedral mesh on the unit cube with optional affine shear.

    The shear deforms ``x = xhat + s * yhat`` (y and z unchanged), the 3-D
    analogue of the 2-D mesh's deformation.
    """

    ne: int
    order: int = 1
    shear: float = 0.0
    _cache: dict = field(default_factory=dict, compare=False, repr=False, hash=False)

    def __post_init__(self):
        if self.ne < 1:
            raise ValueError("ne must be >= 1")
        if self.order < 1:
            raise ValueError("order must be >= 1")

    @property
    def nodes_per_side(self) -> int:
        """Nodes along one edge of the lattice."""
        return self.order * self.ne + 1

    @property
    def n_nodes(self) -> int:
        """Total nodes including boundary."""
        return self.nodes_per_side**3

    @property
    def n_interior(self) -> int:
        """Interior (non-Dirichlet) nodes."""
        return (self.nodes_per_side - 2) ** 3

    @property
    def h(self) -> float:
        """Element edge length in reference coordinates."""
        return 1.0 / self.ne

    @property
    def affine_matrix(self) -> np.ndarray:
        """The global affine deformation matrix."""
        A = np.eye(3)
        A[0, 1] = self.shear
        return A

    @property
    def jacobian(self) -> np.ndarray:
        """Constant per-element Jacobian (3x3)."""
        return self.affine_matrix * self.h

    def node_index(self, ix, iy, iz):
        """Flatten lattice coordinates to global node ids (z-major)."""
        n = self.nodes_per_side
        return (np.asarray(iz) * n + np.asarray(iy)) * n + np.asarray(ix)

    def interior_ids(self) -> np.ndarray:
        """Global ids of interior nodes, ascending."""
        key = "interior_ids"
        if key not in self._cache:
            n = self.nodes_per_side
            mask = np.zeros((n, n, n), dtype=bool)
            mask[1:-1, 1:-1, 1:-1] = True
            self._cache[key] = np.flatnonzero(mask.ravel())
        return self._cache[key]

    def reference_node_coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Node coordinates in reference space, arrays of shape (n, n, n).

        Axis order matches the z-major flattening: index ``[iz, iy, ix]``.
        """
        key = "ref_coords"
        if key not in self._cache:
            t = np.linspace(0.0, 1.0, self.nodes_per_side)
            Z, Y, X = np.meshgrid(t, t, t, indexing="ij")
            self._cache[key] = (X, Y, Z)
        return self._cache[key]

    def element_node_ids(self) -> np.ndarray:
        """Global node ids per element, shape ``(ne^3, n_basis)``."""
        key = "element_nodes"
        if key not in self._cache:
            ref = reference_element(self.order, 3)
            e = np.arange(self.ne)
            EZ, EY, EX = np.meshgrid(e, e, e, indexing="ij")
            bx = (self.order * EX).ravel()[:, None]
            by = (self.order * EY).ravel()[:, None]
            bz = (self.order * EZ).ravel()[:, None]
            off = ref.local_offsets  # (nb, 3): (i, j, k)
            ids = self.node_index(
                bx + off[None, :, 0], by + off[None, :, 1], bz + off[None, :, 2]
            )
            self._cache[key] = ids
        return self._cache[key]

    def element_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference-space element centers, flattened z-major."""
        c = (np.arange(self.ne) + 0.5) * self.h
        CZ, CY, CX = np.meshgrid(c, c, c, indexing="ij")
        return CX.ravel(), CY.ravel(), CZ.ravel()


# ------------------------------------------------------------------- problems


def _kappa3_constant(x, y, z):
    return np.ones_like(x)


def _kappa3_smooth(x, y, z):
    """Smooth strictly positive coefficient in [0.4, 2.6]."""
    return 1.5 + np.sin(2 * np.pi * x) * np.cos(np.pi * y) * np.cos(np.pi * z)


@dataclass(frozen=True)
class Problem3:
    """A 3-D operator flavour (mirrors :class:`repro.hpgmg.operators.Problem`)."""

    name: str
    order: int
    shear: float
    kappa: Callable

    def mesh(self, ne: int) -> Mesh3:
        """The mesh this problem uses at ``ne`` elements per side."""
        return Mesh3(ne=ne, order=self.order, shear=self.shear)


def make_problem3(name: str) -> Problem3:
    """The three HPGMG-FE operator flavours, 3-D editions."""
    if name == "poisson1":
        return Problem3(name, order=1, shear=0.0, kappa=_kappa3_constant)
    if name == "poisson2":
        return Problem3(name, order=2, shear=0.0, kappa=_kappa3_smooth)
    if name == "poisson2affine":
        return Problem3(name, order=2, shear=AFFINE_SHEAR, kappa=_kappa3_smooth)
    raise ValueError(f"unknown operator {name!r}; expected one of {OPERATOR_NAMES}")


# ------------------------------------------------------------------- assembly


@dataclass
class DiscreteOperator3:
    """Assembled 3-D stiffness operator on one mesh level."""

    problem: Problem3
    mesh: Mesh3
    A: sp.csr_matrix
    diag: np.ndarray
    apply_count: int = 0

    @property
    def n(self) -> int:
        """Number of interior unknowns."""
        return self.A.shape[0]

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Matrix-vector product (counted for work accounting)."""
        self.apply_count += 1
        return self.A @ u

    def residual(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """``f - A u``."""
        return f - self.apply(u)


def assemble3(problem: Problem3, mesh: Mesh3) -> DiscreteOperator3:
    """Assemble the interior 3-D stiffness matrix (vectorized over elements)."""
    if mesh.order != problem.order:
        raise ValueError(
            f"mesh order {mesh.order} does not match problem order {problem.order}"
        )
    ref = reference_element(problem.order, 3)
    J = mesh.jacobian
    detJ = float(np.linalg.det(J))
    if detJ <= 0:
        raise ValueError("mesh Jacobian must have positive determinant")
    Jinv = np.linalg.inv(J)
    geo = detJ * (Jinv @ Jinv.T)
    cx, cy, cz = mesh.element_centers()
    kappa = problem.kappa(cx, cy, cz)
    if np.any(kappa <= 0):
        raise ValueError("coefficient field must be strictly positive")
    G = kappa[:, None, None] * geo[None, :, :]
    Ke = np.einsum("eab,abij->eij", G, ref.stiffness)

    conn = mesh.element_node_ids()
    nb = ref.n_basis
    rows = np.repeat(conn, nb, axis=1).ravel()
    cols = np.tile(conn, (1, nb)).ravel()
    A_full = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(mesh.n_nodes, mesh.n_nodes)
    ).tocsr()
    interior = mesh.interior_ids()
    A = A_full[interior][:, interior].tocsr()
    A.sum_duplicates()
    return DiscreteOperator3(problem=problem, mesh=mesh, A=A, diag=A.diagonal())


def load_vector3(problem: Problem3, mesh: Mesh3, f: Callable) -> np.ndarray:
    """Consistent FE load vector for source ``f(x, y, z)`` (reference coords)."""
    ref = reference_element(problem.order, 3)
    detJ = float(np.linalg.det(mesh.jacobian))
    c = np.arange(mesh.ne) * mesh.h
    CZ, CY, CX = np.meshgrid(c, c, c, indexing="ij")
    ex = CX.ravel()[:, None] + ref.quad_points[None, :, 0] * mesh.h
    ey = CY.ravel()[:, None] + ref.quad_points[None, :, 1] * mesh.h
    ez = CZ.ravel()[:, None] + ref.quad_points[None, :, 2] * mesh.h
    fq = f(ex, ey, ez)
    be = detJ * (fq * ref.quad_weights[None, :]) @ ref.basis_at_quad.T
    conn = mesh.element_node_ids()
    b_full = np.zeros(mesh.n_nodes)
    np.add.at(b_full, conn.ravel(), be.ravel())
    return b_full[mesh.interior_ids()]


# ------------------------------------------------------------------ transfers


def _embed3(u_int: np.ndarray, n: int) -> np.ndarray:
    full = np.zeros((n, n, n))
    full[1:-1, 1:-1, 1:-1] = u_int.reshape(n - 2, n - 2, n - 2)
    return full


def _extract3(full: np.ndarray) -> np.ndarray:
    return full[1:-1, 1:-1, 1:-1].ravel()


def prolong_trilinear(coarse: np.ndarray) -> np.ndarray:
    """Trilinear interpolation from ``m^3`` to ``(2m-1)^3`` lattices."""
    m = coarse.shape[0]
    if coarse.shape != (m, m, m) or m < 2:
        raise ValueError(f"expected a cubic lattice of side >= 2, got {coarse.shape}")
    n = 2 * (m - 1) + 1
    fine = np.zeros((n, n, n))
    # Interpolate axis by axis: exact for trilinear functions.
    a = np.zeros((n, m, m))
    a[::2] = coarse
    a[1::2] = 0.5 * (coarse[:-1] + coarse[1:])
    b = np.zeros((n, n, m))
    b[:, ::2] = a
    b[:, 1::2] = 0.5 * (a[:, :-1] + a[:, 1:])
    fine[:, :, ::2] = b
    fine[:, :, 1::2] = 0.5 * (b[:, :, :-1] + b[:, :, 1:])
    return fine


def restrict_transpose3(fine: np.ndarray) -> np.ndarray:
    """Transpose of trilinear prolongation, rim held at zero (Dirichlet)."""
    n = fine.shape[0]
    if fine.shape != (n, n, n) or n < 3 or n % 2 == 0:
        raise ValueError(f"expected an odd cubic lattice of side >= 3, got {fine.shape}")
    m = (n + 1) // 2
    # Adjoint of the axis-by-axis interpolation above, applied in reverse.
    b = fine.copy()
    c = np.zeros((n, n, m))
    c[:, :, 1:-1] = (
        b[:, :, 2:-2:2]
        + 0.5 * (b[:, :, 1:-2:2] + b[:, :, 3::2])
    )
    a = np.zeros((n, m, m))
    a[:, 1:-1] = c[:, 2:-2:2] + 0.5 * (c[:, 1:-2:2] + c[:, 3::2])
    coarse = np.zeros((m, m, m))
    coarse[1:-1] = a[2:-2:2] + 0.5 * (a[1:-2:2] + a[3::2])
    return coarse


# --------------------------------------------------------------- manufactured


def exact_solution3(x, y, z):
    """Manufactured 3-D solution (reference coordinates, zero on boundary)."""
    return np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)


def _u3_grad(x, y, z):
    pi = np.pi
    sx, sy, sz = np.sin(pi * x), np.sin(pi * y), np.sin(pi * z)
    cx, cy, cz = np.cos(pi * x), np.cos(pi * y), np.cos(pi * z)
    return pi * cx * sy * sz, pi * sx * cy * sz, pi * sx * sy * cz


def _u3_hess(x, y, z):
    pi = np.pi
    sx, sy, sz = np.sin(pi * x), np.sin(pi * y), np.sin(pi * z)
    cx, cy, cz = np.cos(pi * x), np.cos(pi * y), np.cos(pi * z)
    p2 = pi**2
    H = np.empty((3, 3) + np.shape(x))
    H[0, 0] = -p2 * sx * sy * sz
    H[1, 1] = -p2 * sx * sy * sz
    H[2, 2] = -p2 * sx * sy * sz
    H[0, 1] = H[1, 0] = p2 * cx * cy * sz
    H[0, 2] = H[2, 0] = p2 * cx * sy * cz
    H[1, 2] = H[2, 1] = p2 * sx * cy * cz
    return H


def _kappa3_and_grad(problem: Problem3, x, y, z):
    if problem.name == "poisson1":
        one = np.ones_like(x)
        zero = np.zeros_like(x)
        return one, (zero, zero, zero)
    pi = np.pi
    s2x, c2x = np.sin(2 * pi * x), np.cos(2 * pi * x)
    cy, sy = np.cos(pi * y), np.sin(pi * y)
    cz, sz = np.cos(pi * z), np.sin(pi * z)
    k = 1.5 + s2x * cy * cz
    return k, (2 * pi * c2x * cy * cz, -pi * s2x * sy * cz, -pi * s2x * cy * sz)


def source_term3(problem: Problem3) -> Callable:
    """Source whose exact solution is :func:`exact_solution3` (3-D pullback)."""
    B = np.linalg.inv(problem.mesh(1).affine_matrix)
    M = B @ B.T

    def f(x, y, z):
        k, kgrad = _kappa3_and_grad(problem, x, y, z)
        ugrad = _u3_grad(x, y, z)
        H = _u3_hess(x, y, z)
        total = np.zeros_like(np.asarray(x), dtype=float)
        for b in range(3):
            for c in range(3):
                total += M[b, c] * (kgrad[b] * ugrad[c] + k * H[b, c])
        return -total

    return f


def nodal_interior_values3(mesh: Mesh3, func: Callable) -> np.ndarray:
    """Evaluate ``func`` at the mesh's interior nodes (reference coords)."""
    X, Y, Z = mesh.reference_node_coords()
    return func(X, Y, Z).ravel()[mesh.interior_ids()]


def discretization_error3(problem: Problem3, u_num: np.ndarray, mesh: Mesh3) -> float:
    """Max-norm nodal error against the manufactured 3-D solution."""
    u_exact = nodal_interior_values3(mesh, exact_solution3)
    if u_num.shape != u_exact.shape:
        raise ValueError(
            f"solution shape {u_num.shape} does not match mesh interior "
            f"{u_exact.shape}"
        )
    return float(np.max(np.abs(u_num - u_exact)))


# --------------------------------------------------------------------- solver


class MultigridSolver3:
    """Geometric multigrid for the 3-D problems (same driver shape as 2-D)."""

    def __init__(
        self,
        problem: Problem3,
        ne: int,
        *,
        ne_coarsest: int = 2,
        smoother: str = "chebyshev",
        pre_smooth: int = 3,
        post_smooth: int = 3,
        rng=None,
    ):
        if smoother not in ("chebyshev", "jacobi"):
            raise ValueError(f"unknown smoother {smoother!r}")
        self.problem = problem
        self.smoother = smoother
        self.pre_smooth = int(pre_smooth)
        self.post_smooth = int(post_smooth)
        rng = np.random.default_rng(rng)
        self.levels: list[DiscreteOperator3] = [
            assemble3(problem, problem.mesh(size))
            for size in hierarchy_sizes(ne, ne_coarsest=ne_coarsest)
        ]
        self._lambda_max = [estimate_lambda_max(op, rng=rng) for op in self.levels]
        self._coarse_lu = spla.splu(self.levels[-1].A.tocsc())

    @property
    def n_levels(self) -> int:
        """Number of multigrid levels."""
        return len(self.levels)

    @property
    def dofs(self) -> int:
        """Interior unknowns on the finest level."""
        return self.levels[0].n

    def _smooth(self, level, u, f, amount):
        op = self.levels[level]
        if self.smoother == "chebyshev":
            return chebyshev(op, u, f, degree=amount, lambda_max=self._lambda_max[level])
        return damped_jacobi(op, u, f, iterations=amount)

    def _restrict(self, level, r):
        n = self.levels[level].mesh.nodes_per_side
        return _extract3(restrict_transpose3(_embed3(r, n)))

    def _prolong(self, level, e_coarse):
        m = self.levels[level + 1].mesh.nodes_per_side
        return _extract3(prolong_trilinear(_embed3(e_coarse, m)))

    def vcycle(self, f, u=None, *, level: int = 0):
        """One V-cycle starting at ``level``."""
        op = self.levels[level]
        if u is None:
            u = np.zeros(op.n)
        if level == self.n_levels - 1:
            return self._coarse_lu.solve(f)
        u = self._smooth(level, u, f, self.pre_smooth)
        r_coarse = self._restrict(level, op.residual(u, f))
        e_coarse = self.vcycle(r_coarse, level=level + 1)
        u = u + self._prolong(level, e_coarse)
        return self._smooth(level, u, f, self.post_smooth)

    def fmg(self, f):
        """Full multigrid: coarse solve, then prolong + V-cycle per level."""
        fs = [f]
        for level in range(self.n_levels - 1):
            fs.append(self._restrict(level, fs[-1]))
        u = self._coarse_lu.solve(fs[-1])
        for level in range(self.n_levels - 2, -1, -1):
            u = self._prolong(level, u)
            u = self.vcycle(fs[level], u, level=level)
        return u

    def work_units(self) -> float:
        """Fine-grid-equivalent operator applications so far."""
        n0 = self.levels[0].n
        return float(sum(op.apply_count * op.n / n0 for op in self.levels))

    def solve(self, f, *, rtol: float = 1e-8, max_cycles: int = 30, use_fmg: bool = True):
        """Solve ``A u = f`` to relative residual ``rtol`` (FMG + V-cycles)."""
        from .multigrid import SolveResult

        f = np.asarray(f, dtype=float)
        if f.shape != (self.dofs,):
            raise ValueError(f"f has shape {f.shape}, expected ({self.dofs},)")
        start_work = self.work_units()
        t0 = time.perf_counter()
        fine = self.levels[0]
        f_norm = float(np.linalg.norm(f))
        if f_norm == 0.0:
            return SolveResult(
                u=np.zeros(self.dofs), residual_history=[0.0], cycles=0,
                converged=True, work_units=0.0, seconds=time.perf_counter() - t0,
            )
        u = self.fmg(f) if use_fmg else np.zeros(self.dofs)
        history = [float(np.linalg.norm(fine.residual(u, f))) / f_norm]
        cycles = 0
        while history[-1] > rtol and cycles < max_cycles:
            u = self.vcycle(f, u)
            history.append(float(np.linalg.norm(fine.residual(u, f))) / f_norm)
            cycles += 1
        return SolveResult(
            u=u, residual_history=history, cycles=cycles,
            converged=history[-1] <= rtol,
            work_units=self.work_units() - start_work,
            seconds=time.perf_counter() - t0,
        )


# ------------------------------------------------------------------ benchmark


@dataclass(frozen=True)
class Benchmark3Result:
    """One 3-D benchmark execution (same figure of merit as 2-D)."""

    operator: str
    ne: int
    dofs: int
    solve_seconds: float
    dofs_per_second: float
    cycles: int
    final_relative_residual: float
    work_units: float
    verification_error: float
    converged: bool


def run_benchmark3(
    operator: str, ne: int, *, rtol: float = 1e-8, rng=None
) -> Benchmark3Result:
    """Run one 3-D mini-HPGMG-FE configuration end to end."""
    problem = make_problem3(operator)
    solver = MultigridSolver3(problem, ne, rng=rng)
    mesh = solver.levels[0].mesh
    f = load_vector3(problem, mesh, source_term3(problem))
    result = solver.solve(f, rtol=rtol)
    err = discretization_error3(problem, result.u, mesh)
    seconds = max(result.seconds, 1e-12)
    return Benchmark3Result(
        operator=operator,
        ne=ne,
        dofs=solver.dofs,
        solve_seconds=result.seconds,
        dofs_per_second=solver.dofs / seconds,
        cycles=result.cycles,
        final_relative_residual=result.residual_history[-1],
        work_units=result.work_units,
        verification_error=err,
        converged=result.converged,
    )
