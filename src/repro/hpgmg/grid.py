"""Structured meshes for the mini HPGMG-FE benchmark.

A :class:`Mesh` is a logically rectangular grid of quadrilateral elements on
the unit square, optionally deformed by an affine shear (the ``affine``
flavour of the HPGMG-FE ``poisson2affine`` operator).  Because the map is
affine, every element shares the same constant Jacobian, which keeps the
finite-element assembly exact with low-order quadrature and lets the whole
operator be assembled with vectorized NumPy (see :mod:`repro.hpgmg.fem`).

Node lattices: a mesh with ``ne x ne`` elements of order ``p`` carries a
``(p*ne + 1) x (p*ne + 1)`` node lattice.  Q2 meshes therefore share node
lattices with twice-refined Q1 meshes, which is what makes plain geometric
multigrid transfers applicable to both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Mesh", "coarsen", "hierarchy_sizes"]


@dataclass(frozen=True)
class Mesh:
    """Uniform quad mesh on the unit square with optional affine shear.

    Parameters
    ----------
    ne:
        Number of elements per side (must be >= 1).
    order:
        Element polynomial order (1 or 2 in this mini benchmark).
    shear:
        Affine deformation parameter ``s``: physical coordinates are
        ``x = xhat + s * yhat, y = yhat``.  ``s = 0`` is the identity map.
    """

    ne: int
    order: int = 1
    shear: float = 0.0
    _cache: dict = field(default_factory=dict, compare=False, repr=False, hash=False)

    def __post_init__(self):
        if self.ne < 1:
            raise ValueError("ne must be >= 1")
        if self.order < 1:
            raise ValueError("order must be >= 1")

    # --- lattice geometry -----------------------------------------------------

    @property
    def nodes_per_side(self) -> int:
        """Number of nodes along one side of the lattice."""
        return self.order * self.ne + 1

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (including boundary)."""
        return self.nodes_per_side**2

    @property
    def n_interior(self) -> int:
        """Number of interior (non-Dirichlet) nodes."""
        return (self.nodes_per_side - 2) ** 2

    @property
    def h(self) -> float:
        """Element edge length in reference coordinates."""
        return 1.0 / self.ne

    @property
    def jacobian(self) -> np.ndarray:
        """Constant per-element Jacobian dx/dxi of the element map (2x2).

        The element map is ``x = A @ (xhat0 + h * xi)`` with
        ``A = [[1, shear], [0, 1]]``, so ``J = A * h``.
        """
        A = np.array([[1.0, self.shear], [0.0, 1.0]])
        return A * self.h

    @property
    def affine_matrix(self) -> np.ndarray:
        """The global affine deformation matrix ``A``."""
        return np.array([[1.0, self.shear], [0.0, 1.0]])

    def reference_node_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Node coordinates in reference (unit-square) space.

        Returns ``(Xhat, Yhat)`` arrays of shape ``(n, n)`` with
        ``n = nodes_per_side``, y-major (row index is the y node index).
        """
        key = "ref_coords"
        if key not in self._cache:
            t = np.linspace(0.0, 1.0, self.nodes_per_side)
            Yhat, Xhat = np.meshgrid(t, t, indexing="ij")
            self._cache[key] = (Xhat, Yhat)
        return self._cache[key]

    def physical_node_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Node coordinates in physical (deformed) space."""
        Xhat, Yhat = self.reference_node_coords()
        return Xhat + self.shear * Yhat, Yhat

    # --- indexing ---------------------------------------------------------------

    def node_index(self, ix, iy):
        """Flatten lattice coordinates ``(ix, iy)`` to global node ids (y-major)."""
        return np.asarray(iy) * self.nodes_per_side + np.asarray(ix)

    def interior_mask(self) -> np.ndarray:
        """Boolean mask of interior nodes over the flattened lattice."""
        key = "interior_mask"
        if key not in self._cache:
            n = self.nodes_per_side
            mask = np.zeros((n, n), dtype=bool)
            mask[1:-1, 1:-1] = True
            self._cache[key] = mask.ravel()
        return self._cache[key]

    def interior_ids(self) -> np.ndarray:
        """Global ids of interior nodes, ascending."""
        key = "interior_ids"
        if key not in self._cache:
            self._cache[key] = np.flatnonzero(self.interior_mask())
        return self._cache[key]

    def element_node_ids(self) -> np.ndarray:
        """Global node ids per element, shape ``(ne*ne, n_basis)``.

        Element ``(ex, ey)`` (flattened y-major) owns the lattice block
        starting at ``(order*ex, order*ey)``; local ordering matches
        :attr:`repro.hpgmg.fem.ReferenceElement.local_offsets`.
        """
        key = "element_nodes"
        if key not in self._cache:
            from .fem import reference_element

            ref = reference_element(self.order)
            ex = np.arange(self.ne)
            ey = np.arange(self.ne)
            EY, EX = np.meshgrid(ey, ex, indexing="ij")
            base_x = (self.order * EX).ravel()  # (n_elem,)
            base_y = (self.order * EY).ravel()
            off = ref.local_offsets  # (n_basis, 2)
            ids = self.node_index(
                base_x[:, None] + off[None, :, 0],
                base_y[:, None] + off[None, :, 1],
            )
            self._cache[key] = ids
        return self._cache[key]

    def element_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Reference-space centers of all elements, flattened y-major."""
        c = (np.arange(self.ne) + 0.5) * self.h
        CY, CX = np.meshgrid(c, c, indexing="ij")
        return CX.ravel(), CY.ravel()


def coarsen(mesh: Mesh) -> Mesh:
    """The next-coarser mesh: halve the element count, keep order and shear."""
    if mesh.ne % 2 != 0 or mesh.ne < 2:
        raise ValueError(f"cannot coarsen a mesh with ne={mesh.ne}")
    return Mesh(ne=mesh.ne // 2, order=mesh.order, shear=mesh.shear)


def hierarchy_sizes(ne_fine: int, *, ne_coarsest: int = 2) -> list[int]:
    """Element counts from fine to coarse for a multigrid hierarchy.

    ``ne_fine`` must be ``ne_coarsest * 2**k`` for some ``k >= 0``.
    """
    if ne_coarsest < 1:
        raise ValueError("ne_coarsest must be >= 1")
    sizes = [ne_fine]
    ne = ne_fine
    while ne > ne_coarsest:
        if ne % 2 != 0:
            raise ValueError(
                f"ne_fine={ne_fine} is not ne_coarsest={ne_coarsest} times a power of two"
            )
        ne //= 2
        sizes.append(ne)
    if ne != ne_coarsest:
        raise ValueError(
            f"ne_fine={ne_fine} is smaller than ne_coarsest={ne_coarsest}"
        )
    return sizes
