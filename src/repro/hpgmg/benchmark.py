"""HPGMG-FE-style benchmark harness for the mini solver.

The real HPGMG benchmark ranks machines by solved degrees of freedom per
second for a Full Multigrid solve.  This harness does the same for the mini
solver: build the hierarchy, manufacture a right-hand side, run FMG +
V-cycles to tolerance, and report DOF/s, work units and the verification
error.  It is the *online oracle* backend for active learning (see
:class:`repro.al.oracle.OnlineHPGMGOracle`): each AL "experiment" can be an
actual solve at the suggested configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .manufactured import discretization_error, source_term
from .multigrid import MultigridSolver
from .operators import OPERATOR_NAMES, load_vector, make_problem

__all__ = ["BenchmarkResult", "run_benchmark"]


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark execution record.

    Attributes
    ----------
    operator:
        Operator flavour name.
    ne:
        Elements per side of the finest mesh.
    dofs:
        Interior unknowns solved for.
    setup_seconds / solve_seconds:
        Wall time of hierarchy construction and of the FMG+V-cycle solve.
    dofs_per_second:
        The HPGMG figure of merit, ``dofs / solve_seconds``.
    cycles:
        V-cycles needed after FMG.
    final_relative_residual:
        Last entry of the residual history.
    work_units:
        Fine-grid-equivalent operator applications during the solve.
    verification_error:
        Max-norm nodal error against the manufactured solution.
    converged:
        Whether the requested tolerance was met.
    """

    operator: str
    ne: int
    dofs: int
    setup_seconds: float
    solve_seconds: float
    dofs_per_second: float
    cycles: int
    final_relative_residual: float
    work_units: float
    verification_error: float
    converged: bool


def run_benchmark(
    operator: str,
    ne: int,
    *,
    rtol: float = 1e-8,
    ne_coarsest: int = 2,
    smoother: str = "chebyshev",
    rng=None,
) -> BenchmarkResult:
    """Run one mini-HPGMG-FE benchmark configuration.

    Parameters
    ----------
    operator:
        One of ``poisson1``, ``poisson2``, ``poisson2affine``.
    ne:
        Elements per side (``ne_coarsest * 2**k``).
    rtol:
        Target relative residual.
    """
    if operator not in OPERATOR_NAMES:
        raise ValueError(f"unknown operator {operator!r}; expected one of {OPERATOR_NAMES}")
    problem = make_problem(operator)

    t0 = time.perf_counter()
    solver = MultigridSolver(
        problem, ne, ne_coarsest=ne_coarsest, smoother=smoother, rng=rng
    )
    mesh = solver.levels[0].mesh
    f = load_vector(problem, mesh, source_term(problem))
    setup_seconds = time.perf_counter() - t0

    result = solver.solve(f, rtol=rtol)
    err = discretization_error(problem, result.u, mesh)
    solve_seconds = max(result.seconds, 1e-12)
    return BenchmarkResult(
        operator=operator,
        ne=ne,
        dofs=solver.dofs,
        setup_seconds=setup_seconds,
        solve_seconds=result.seconds,
        dofs_per_second=solver.dofs / solve_seconds,
        cycles=result.cycles,
        final_relative_residual=result.residual_history[-1],
        work_units=result.work_units,
        verification_error=err,
        converged=result.converged,
    )
