"""Smoothers for the mini HPGMG-FE multigrid.

HPGMG uses Chebyshev-accelerated Jacobi smoothing; we provide that plus
plain damped Jacobi.  Both operate on the diagonally preconditioned system
``D^{-1} A`` whose spectrum lies in ``(0, lambda_max]``; ``lambda_max`` is
estimated once per level with a short power iteration.
"""

from __future__ import annotations

import numpy as np

from .operators import DiscreteOperator

__all__ = ["damped_jacobi", "chebyshev", "estimate_lambda_max"]


def damped_jacobi(
    op: DiscreteOperator,
    u: np.ndarray,
    f: np.ndarray,
    *,
    iterations: int = 2,
    omega: float = 0.8,
) -> np.ndarray:
    """``iterations`` sweeps of damped Jacobi; returns the updated iterate."""
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    inv_diag = 1.0 / op.diag
    for _ in range(iterations):
        u = u + omega * inv_diag * (f - op.apply(u))
    return u


def estimate_lambda_max(
    op: DiscreteOperator, *, iterations: int = 12, rng=None, safety: float = 1.05
) -> float:
    """Estimate the largest eigenvalue of ``D^{-1} A`` by power iteration.

    The returned value is inflated by ``safety`` so Chebyshev bounds the
    full spectrum even with an imperfect estimate (underestimating
    ``lambda_max`` makes Chebyshev diverge; overestimating merely slows it).
    """
    rng = np.random.default_rng(rng)
    inv_diag = 1.0 / op.diag
    v = rng.standard_normal(op.n)
    v /= np.linalg.norm(v)
    lam = 1.0
    for _ in range(iterations):
        w = inv_diag * op.apply(v)
        lam = float(np.linalg.norm(w))
        if lam == 0.0:
            return safety  # A v happened to vanish; spectrum bound of 1 is safe
        v = w / lam
    return safety * lam


def chebyshev(
    op: DiscreteOperator,
    u: np.ndarray,
    f: np.ndarray,
    *,
    degree: int = 4,
    lambda_max: float,
    lambda_min_fraction: float = 0.1,
) -> np.ndarray:
    """Chebyshev smoothing of degree ``degree`` on ``D^{-1} A``.

    Targets the upper part of the spectrum ``[lambda_min_fraction *
    lambda_max, lambda_max]`` — the standard multigrid smoothing window.
    Uses the numerically stable three-term recurrence on the residual.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if lambda_max <= 0:
        raise ValueError("lambda_max must be positive")
    if not 0.0 < lambda_min_fraction < 1.0:
        raise ValueError("lambda_min_fraction must be in (0, 1)")
    lo = lambda_min_fraction * lambda_max
    hi = lambda_max
    theta = 0.5 * (hi + lo)
    delta = 0.5 * (hi - lo)
    inv_diag = 1.0 / op.diag

    r = inv_diag * (f - op.apply(u))
    d = r / theta
    u = u + d
    sigma = theta / delta
    rho_old = 1.0 / sigma
    for _ in range(degree - 1):
        r = inv_diag * (f - op.apply(u))
        rho_new = 1.0 / (2.0 * sigma - rho_old)
        d = rho_new * (2.0 * r / delta + rho_old * d)
        u = u + d
        rho_old = rho_new
    return u
