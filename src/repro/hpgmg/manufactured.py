"""Method of manufactured solutions for the mini HPGMG-FE operators.

Provides the exact solution ``u(xhat, yhat) = sin(pi xhat) sin(pi yhat)``
(expressed in reference coordinates so it vanishes on the Dirichlet boundary
of every mesh flavour, sheared or not) together with the matching source
term for each operator flavour.

For the affine map ``x = A xhat`` the physical operator pulled back to
reference coordinates is

    f_hat = - sum_{b,c} M[b,c] d_b ( kappa d_c u ),   M = A^{-1} A^{-T},

so the source needs the coefficient's analytic gradient; these are
hard-coded for the two kappa fields in :mod:`repro.hpgmg.operators`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .grid import Mesh
from .operators import Problem

__all__ = ["exact_solution", "source_term", "nodal_interior_values", "discretization_error"]


def exact_solution(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Manufactured solution in reference coordinates."""
    return np.sin(np.pi * x) * np.sin(np.pi * y)


def _u_grad(x, y):
    pi = np.pi
    return (
        pi * np.cos(pi * x) * np.sin(pi * y),
        pi * np.sin(pi * x) * np.cos(pi * y),
    )


def _u_hess(x, y):
    pi = np.pi
    uxx = -(pi**2) * np.sin(pi * x) * np.sin(pi * y)
    uyy = uxx
    uxy = pi**2 * np.cos(pi * x) * np.cos(pi * y)
    return uxx, uxy, uyy


def _kappa_and_grad(problem: Problem, x, y):
    """Coefficient value and analytic gradient for the known kappa fields."""
    if problem.name == "poisson1":
        one = np.ones_like(x)
        zero = np.zeros_like(x)
        return one, zero, zero
    # smooth kappa = 1.5 + sin(2 pi x) cos(pi y)
    pi = np.pi
    k = 1.5 + np.sin(2 * pi * x) * np.cos(pi * y)
    kx = 2 * pi * np.cos(2 * pi * x) * np.cos(pi * y)
    ky = -pi * np.sin(2 * pi * x) * np.sin(pi * y)
    return k, kx, ky


def source_term(problem: Problem) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Source ``f_hat(xhat, yhat)`` whose exact solution is :func:`exact_solution`."""
    A = np.array([[1.0, problem.shear], [0.0, 1.0]])
    B = np.linalg.inv(A)
    M = B @ B.T  # symmetric 2x2

    def f(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        k, kx, ky = _kappa_and_grad(problem, x, y)
        ux, uy = _u_grad(x, y)
        uxx, uxy, uyy = _u_hess(x, y)
        kgrad = (kx, ky)
        ugrad = (ux, uy)
        uh = ((uxx, uxy), (uxy, uyy))
        total = np.zeros_like(np.asarray(x), dtype=float)
        for b in range(2):
            for c in range(2):
                total += M[b, c] * (kgrad[b] * ugrad[c] + k * uh[b][c])
        return -total

    return f


def nodal_interior_values(
    mesh: Mesh, func: Callable[[np.ndarray, np.ndarray], np.ndarray]
) -> np.ndarray:
    """Evaluate ``func`` (reference coordinates) at the mesh's interior nodes."""
    Xhat, Yhat = mesh.reference_node_coords()
    vals = func(Xhat, Yhat).ravel()
    return vals[mesh.interior_ids()]


def discretization_error(problem: Problem, u_num: np.ndarray, mesh: Mesh) -> float:
    """Max-norm nodal error of a computed solution against the exact one."""
    u_exact = nodal_interior_values(mesh, exact_solution)
    if u_num.shape != u_exact.shape:
        raise ValueError(
            f"solution shape {u_num.shape} does not match mesh interior {u_exact.shape}"
        )
    return float(np.max(np.abs(u_num - u_exact)))
