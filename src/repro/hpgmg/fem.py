"""Tensor-product Lagrange finite elements on the reference hypercube.

The real HPGMG-FE discretizes elliptic problems with Q1/Q2 finite elements
in three dimensions; this module provides the reference-element machinery
for our mini version in *any* dimension (2-D for the fast default solver,
3-D for the full-fidelity variant in :mod:`repro.hpgmg.dim3`): 1-D Lagrange
shape functions on [0, 1], their tensor products, Gauss quadrature, and the
precomputed *reference stiffness tensors*

    R[a, b, i, j] = sum_q w_q  d_a phi_i(q) d_b phi_j(q)

so that for an element with constant geometric/coefficient tensor ``G``
(``dim x dim``, from coefficient value, Jacobian determinant and inverse),
the element stiffness matrix is the contraction ``K_e = G[a,b] R[a,b]``.
Because the mesh mapping is affine and the coefficient is sampled per
element, this contraction is exact and whole-mesh assembly vectorizes over
elements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["ReferenceElement", "reference_element", "gauss_rule"]


def gauss_rule(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre points/weights on [0, 1].

    Exact for polynomials of degree ``2n - 1``.
    """
    if n < 1:
        raise ValueError("need at least one quadrature point")
    pts, wts = np.polynomial.legendre.leggauss(n)
    return 0.5 * (pts + 1.0), 0.5 * wts


def _lagrange_1d(order: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Values and derivatives of 1-D Lagrange basis of given order at ``x``.

    Nodes are equispaced on [0, 1] (2 nodes for Q1, 3 for Q2, ...).
    Returns ``(vals, derivs)`` each of shape ``(order + 1, len(x))``.
    """
    nodes = np.linspace(0.0, 1.0, order + 1)
    n = order + 1
    x = np.atleast_1d(np.asarray(x, dtype=float))
    vals = np.ones((n, x.size))
    for i in range(n):
        for m in range(n):
            if m != i:
                vals[i] *= (x - nodes[m]) / (nodes[i] - nodes[m])
    derivs = np.zeros((n, x.size))
    for i in range(n):
        for k in range(n):
            if k == i:
                continue
            term = np.full(x.size, 1.0 / (nodes[i] - nodes[k]))
            for m in range(n):
                if m != i and m != k:
                    term *= (x - nodes[m]) / (nodes[i] - nodes[m])
            derivs[i] += term
    return vals, derivs


@dataclass(frozen=True)
class ReferenceElement:
    """Precomputed reference-hypercube data for a Q``order`` element.

    Attributes
    ----------
    order:
        Polynomial order (1 = Q1 multilinear, 2 = Q2 multiquadratic).
    dim:
        Spatial dimension (2 or 3 in this package; any ``>= 1`` works).
    n_basis:
        ``(order + 1)**dim`` local basis functions, ordered last-axis-major
        (node ``(i, j, k)`` -> index ``(k * n1 + j) * n1 + i`` in 3-D).
    stiffness:
        Reference stiffness tensors ``R`` of shape ``(dim, dim, n_basis,
        n_basis)`` as defined in the module docstring.
    mass:
        Reference mass matrix ``M[i, j] = sum_q w_q phi_i phi_j`` (unit
        Jacobian), shape ``(n_basis, n_basis)``.
    quad_points / quad_weights:
        Tensor quadrature on the reference cube, shapes ``(nq, dim)``/``(nq,)``.
    basis_at_quad:
        ``phi_i`` at quadrature points, shape ``(n_basis, nq)``.
    local_offsets:
        ``(n_basis, dim)`` integer offsets of local nodes on the global
        node lattice (spacing = element span / order).
    """

    order: int
    dim: int
    n_basis: int
    stiffness: np.ndarray
    mass: np.ndarray
    quad_points: np.ndarray
    quad_weights: np.ndarray
    basis_at_quad: np.ndarray
    local_offsets: np.ndarray


@lru_cache(maxsize=8)
def reference_element(order: int, dim: int = 2) -> ReferenceElement:
    """Build (and cache) the reference Q``order`` element in ``dim`` dimensions."""
    if order < 1:
        raise ValueError("order must be >= 1")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    nq1 = order + 1  # exact for the bilinear-form integrands of affine maps
    q1, w1 = gauss_rule(nq1)
    vals, ders = _lagrange_1d(order, q1)  # (n1, nq1)
    n1 = order + 1
    n_basis = n1**dim
    nq = nq1**dim

    # Multi-indices, last axis major: local index = sum_d idx[d] * n1**d.
    basis_idx = list(itertools.product(range(n1), repeat=dim))
    basis_idx = [tuple(reversed(t)) for t in basis_idx]
    basis_idx.sort(key=lambda t: sum(c * n1**d for d, c in enumerate(t)))
    quad_idx = list(itertools.product(range(nq1), repeat=dim))
    quad_idx = [tuple(reversed(t)) for t in quad_idx]
    quad_idx.sort(key=lambda t: sum(c * nq1**d for d, c in enumerate(t)))

    phi = np.zeros((n_basis, nq))
    dphi = np.zeros((dim, n_basis, nq))
    qpts = np.zeros((nq, dim))
    qwts = np.zeros(nq)
    for q, qmi in enumerate(quad_idx):
        qpts[q] = [q1[a] for a in qmi]
        qwts[q] = np.prod([w1[a] for a in qmi])
        for k, bmi in enumerate(basis_idx):
            value = 1.0
            for d in range(dim):
                value *= vals[bmi[d], qmi[d]]
            phi[k, q] = value
            for grad_d in range(dim):
                g = 1.0
                for d in range(dim):
                    factor = ders if d == grad_d else vals
                    g *= factor[bmi[d], qmi[d]]
                dphi[grad_d, k, q] = g

    stiffness = np.einsum("q,aiq,bjq->abij", qwts, dphi, dphi)
    mass = np.einsum("q,iq,jq->ij", qwts, phi, phi)
    offsets = np.asarray(basis_idx, dtype=np.int64)
    return ReferenceElement(
        order=order,
        dim=dim,
        n_basis=n_basis,
        stiffness=stiffness,
        mass=mass,
        quad_points=qpts,
        quad_weights=qwts,
        basis_at_quad=phi,
        local_offsets=offsets,
    )
