"""Galerkin (RAP) coarse-grid operators.

The default multigrid hierarchy *rediscretizes* each coarse level (like
HPGMG itself, whose geometric structure makes rediscretization natural).
The algebraic alternative builds the coarse operator variationally,

    A_H = P^T A_h P,

from the prolongation ``P``.  For nested Q1 finite-element spaces on these
meshes the two coincide **exactly** when the coefficient is constant — a
classical identity that doubles as a strong cross-check of the assembly,
transfer and hierarchy code (see ``tests/hpgmg/test_galerkin.py``).  With a
variable coefficient the Galerkin operator is the more faithful coarse
model (rediscretization samples the coefficient anew at coarse element
centers), which shows up as slightly fewer V-cycles on the rough-
coefficient flavours.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .grid import Mesh, coarsen
from .multigrid import MultigridSolver
from .operators import DiscreteOperator, Problem

__all__ = ["prolongation_matrix", "galerkin_coarse", "GalerkinMultigridSolver"]


def prolongation_matrix(fine: Mesh, coarse: Mesh) -> sp.csr_matrix:
    """Sparse bilinear prolongation between interior node sets.

    Rows: fine interior nodes; columns: coarse interior nodes.  Matches
    :func:`repro.hpgmg.transfer.prolong_bilinear` restricted to interior
    unknowns (boundary values are zero under the Dirichlet condition).
    """
    nf = fine.nodes_per_side
    nc = coarse.nodes_per_side
    if nf != 2 * (nc - 1) + 1:
        raise ValueError(
            f"meshes are not a 2:1 lattice pair: fine {nf}, coarse {nc}"
        )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    interior_f = {int(g): i for i, g in enumerate(fine.interior_ids())}
    interior_c = {int(g): i for i, g in enumerate(coarse.interior_ids())}

    for (gc, col) in interior_c.items():
        cy, cx = divmod(gc, nc)
        fx, fy = 2 * cx, 2 * cy
        # Bilinear hat: weights over the 3x3 fine neighbourhood.
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                x, y = fx + dx, fy + dy
                if not (0 <= x < nf and 0 <= y < nf):
                    continue
                gf = y * nf + x
                row = interior_f.get(gf)
                if row is None:
                    continue
                weight = (1.0 if dx == 0 else 0.5) * (1.0 if dy == 0 else 0.5)
                rows.append(row)
                cols.append(col)
                vals.append(weight)
    return sp.csr_matrix(
        (vals, (rows, cols)),
        shape=(len(interior_f), len(interior_c)),
    )


def galerkin_coarse(op: DiscreteOperator) -> DiscreteOperator:
    """The variational coarse operator ``P^T A P`` for one level."""
    coarse_mesh = coarsen(op.mesh)
    P = prolongation_matrix(op.mesh, coarse_mesh)
    A_c = (P.T @ op.A @ P).tocsr()
    A_c.sum_duplicates()
    return DiscreteOperator(
        problem=op.problem, mesh=coarse_mesh, A=A_c, diag=A_c.diagonal()
    )


class GalerkinMultigridSolver(MultigridSolver):
    """Multigrid with Galerkin (RAP) coarse operators.

    Identical to :class:`MultigridSolver` except every level below the
    finest is built variationally from the level above.
    """

    def __init__(self, problem: Problem, ne: int, **kwargs):
        super().__init__(problem, ne, **kwargs)
        # Rebuild the hierarchy variationally (the base constructor made
        # rediscretized levels; replace all but the finest).
        from .smoothers import estimate_lambda_max
        import scipy.sparse.linalg as spla

        rng = np.random.default_rng(kwargs.get("rng"))
        levels = [self.levels[0]]
        while levels[-1].mesh.ne > self.levels[-1].mesh.ne:
            levels.append(galerkin_coarse(levels[-1]))
        self.levels = levels
        self._lambda_max = [estimate_lambda_max(op, rng=rng) for op in self.levels]
        self._coarse_lu = spla.splu(self.levels[-1].A.tocsc())
