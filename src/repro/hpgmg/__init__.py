"""Mini HPGMG-FE: finite-element geometric multigrid benchmark.

A runnable, from-scratch stand-in for the HPGMG-FE benchmark the paper
measures: Q1/Q2 finite elements, constant/variable coefficient, optional
affine mesh deformation, Chebyshev-smoothed V-cycles and Full Multigrid.

Public API::

    from repro.hpgmg import run_benchmark, MultigridSolver, make_problem
"""

from .benchmark import BenchmarkResult, run_benchmark
from .dim3 import (
    Benchmark3Result,
    Mesh3,
    MultigridSolver3,
    assemble3,
    discretization_error3,
    exact_solution3,
    load_vector3,
    make_problem3,
    prolong_trilinear,
    restrict_transpose3,
    run_benchmark3,
    source_term3,
)
from .fem import ReferenceElement, gauss_rule, reference_element
from .galerkin import (
    GalerkinMultigridSolver,
    galerkin_coarse,
    prolongation_matrix,
)
from .grid import Mesh, coarsen, hierarchy_sizes
from .manufactured import (
    discretization_error,
    exact_solution,
    nodal_interior_values,
    source_term,
)
from .multigrid import MultigridSolver, SolveResult
from .operators import (
    OPERATOR_NAMES,
    DiscreteOperator,
    Problem,
    assemble,
    load_vector,
    make_problem,
)
from .smoothers import chebyshev, damped_jacobi, estimate_lambda_max
from .stencil import StencilOperator, q1_stencil, stencil_supported
from .transfer import (
    embed_interior,
    extract_interior,
    prolong_bilinear,
    restrict_full_weighting,
)

__all__ = [
    "BenchmarkResult",
    "run_benchmark",
    "Benchmark3Result",
    "run_benchmark3",
    "Mesh3",
    "MultigridSolver3",
    "make_problem3",
    "assemble3",
    "load_vector3",
    "source_term3",
    "exact_solution3",
    "discretization_error3",
    "prolong_trilinear",
    "restrict_transpose3",
    "ReferenceElement",
    "reference_element",
    "gauss_rule",
    "Mesh",
    "coarsen",
    "hierarchy_sizes",
    "MultigridSolver",
    "SolveResult",
    "GalerkinMultigridSolver",
    "galerkin_coarse",
    "prolongation_matrix",
    "OPERATOR_NAMES",
    "Problem",
    "DiscreteOperator",
    "make_problem",
    "assemble",
    "load_vector",
    "exact_solution",
    "source_term",
    "nodal_interior_values",
    "discretization_error",
    "chebyshev",
    "damped_jacobi",
    "estimate_lambda_max",
    "StencilOperator",
    "q1_stencil",
    "stencil_supported",
    "embed_interior",
    "extract_interior",
    "prolong_bilinear",
    "restrict_full_weighting",
]
