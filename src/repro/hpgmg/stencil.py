"""Matrix-free stencil application for constant-coefficient Q1 operators.

The real HPGMG is *matrix-free*: it never assembles a sparse matrix but
applies the operator through its stencil, trading memory traffic for
recomputation.  For the ``poisson1`` flavour (Q1, constant coefficient,
affine map) every interior row of the assembled matrix is the same 3x3
stencil, so the operator application reduces to eight shifted-array adds —
the idiomatic vectorized NumPy formulation of a stencil sweep.

:class:`StencilOperator` is a drop-in replacement for
:class:`~repro.hpgmg.operators.DiscreteOperator` within the multigrid
solver (same ``apply``/``residual``/``diag`` surface); equality with the
assembled operator is asserted in the tests, and
``benchmarks/bench_micro_stencil.py`` measures when recomputation beats the
CSR SpMV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fem import reference_element
from .grid import Mesh
from .operators import Problem

__all__ = ["StencilOperator", "q1_stencil", "stencil_supported"]


def stencil_supported(problem: Problem) -> bool:
    """Whether the matrix-free path applies: Q1 with a constant coefficient."""
    if problem.order != 1:
        return False
    probe = problem.kappa(np.array([0.1, 0.5, 0.9]), np.array([0.2, 0.5, 0.8]))
    return bool(np.allclose(probe, probe[0]))


def q1_stencil(problem: Problem, mesh: Mesh) -> np.ndarray:
    """The 3x3 nodal stencil of the Q1 operator on ``mesh``.

    ``stencil[1 + dy, 1 + dx]`` is the coupling from neighbour ``(dx, dy)``.
    Assembled from the four elements sharing an interior node, using the
    same reference tensors as the sparse path — exactness against the CSR
    matrix follows by construction.
    """
    if not stencil_supported(problem):
        raise ValueError(
            "matrix-free stencil requires Q1 with a constant coefficient "
            f"(got {problem.name!r})"
        )
    ref = reference_element(1, 2)
    J = mesh.jacobian
    detJ = float(np.linalg.det(J))
    Jinv = np.linalg.inv(J)
    kappa = float(problem.kappa(np.array([0.5]), np.array([0.5]))[0])
    G = kappa * detJ * (Jinv @ Jinv.T)
    Ke = np.einsum("ab,abij->ij", G, ref.stiffness)  # 4x4 element matrix

    # Node-centred stencil: sum the element contributions of the four
    # elements around a node.  Local Q1 ordering: (0,0),(1,0),(0,1),(1,1).
    stencil = np.zeros((3, 3))
    offsets = [(0, 0), (1, 0), (0, 1), (1, 1)]
    for (ax, ay), a_local in ((o, i) for i, o in enumerate(offsets)):
        for (bx, by), b_local in ((o, i) for i, o in enumerate(offsets)):
            # Element with its (ax, ay) corner at the centre node couples
            # the centre to the node offset by (bx - ax, by - ay).
            dx, dy = bx - ax, by - ay
            stencil[1 + dy, 1 + dx] += Ke[a_local, b_local]
    return stencil


@dataclass
class StencilOperator:
    """Matrix-free Q1 operator on one mesh level (Dirichlet interior)."""

    problem: Problem
    mesh: Mesh
    stencil: np.ndarray = field(init=False)
    diag: np.ndarray = field(init=False)
    apply_count: int = 0

    def __post_init__(self):
        self.stencil = q1_stencil(self.problem, self.mesh)
        self.diag = np.full(self.n, self.stencil[1, 1])

    @property
    def n(self) -> int:
        """Number of interior unknowns."""
        return self.mesh.n_interior

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Stencil sweep: eight shifted adds over a zero-padded interior."""
        self.apply_count += 1
        m = self.mesh.nodes_per_side - 2
        if u.shape != (m * m,):
            raise ValueError(f"u has shape {u.shape}, expected ({m * m},)")
        padded = np.zeros((m + 2, m + 2))
        padded[1:-1, 1:-1] = u.reshape(m, m)
        out = np.zeros((m, m))
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                w = self.stencil[1 + dy, 1 + dx]
                if w == 0.0:
                    continue
                out += w * padded[1 + dy : 1 + dy + m, 1 + dx : 1 + dx + m]
        return out.ravel()

    def residual(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """``f - A u``."""
        return f - self.apply(u)
