"""Grid-transfer operators for the mini HPGMG-FE multigrid.

Transfers act on full node-lattice arrays (boundary included, held at the
homogeneous Dirichlet value zero).  A Q``p`` mesh with ``ne`` elements per
side has a ``(p*ne + 1)``-point lattice, so halving ``ne`` always halves the
lattice 2:1 regardless of element order — the classical full-weighting /
bilinear pair applies to both Q1 and Q2 hierarchies.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prolong_bilinear",
    "restrict_full_weighting",
    "embed_interior",
    "extract_interior",
]


def embed_interior(u_int: np.ndarray, nodes_per_side: int) -> np.ndarray:
    """Scatter an interior-node vector into a full lattice array (zeros on rim)."""
    n = nodes_per_side
    if u_int.shape != ((n - 2) ** 2,):
        raise ValueError(
            f"interior vector has shape {u_int.shape}, expected {((n - 2) ** 2,)}"
        )
    full = np.zeros((n, n))
    full[1:-1, 1:-1] = u_int.reshape(n - 2, n - 2)
    return full


def extract_interior(full: np.ndarray) -> np.ndarray:
    """Gather the interior of a full lattice array into a flat vector."""
    if full.ndim != 2 or full.shape[0] != full.shape[1]:
        raise ValueError(f"expected a square 2-D array, got shape {full.shape}")
    return full[1:-1, 1:-1].ravel()


def prolong_bilinear(coarse: np.ndarray) -> np.ndarray:
    """Bilinear interpolation from an ``m x m`` lattice to ``(2m-1) x (2m-1)``."""
    m = coarse.shape[0]
    if coarse.shape != (m, m) or m < 2:
        raise ValueError(f"expected a square lattice of side >= 2, got {coarse.shape}")
    n = 2 * (m - 1) + 1
    fine = np.empty((n, n))
    fine[::2, ::2] = coarse
    fine[1::2, ::2] = 0.5 * (coarse[:-1, :] + coarse[1:, :])
    fine[::2, 1::2] = 0.5 * (coarse[:, :-1] + coarse[:, 1:])
    fine[1::2, 1::2] = 0.25 * (
        coarse[:-1, :-1] + coarse[1:, :-1] + coarse[:-1, 1:] + coarse[1:, 1:]
    )
    return fine


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction from ``n x n`` to ``(n+1)//2`` per side.

    The rim of the coarse array is left at zero (Dirichlet).  The stencil is
    the exact transpose of :func:`prolong_bilinear` (weights 1, 1/2, 1/4 for
    center/edge/corner fine neighbours).  With *rediscretized* FE coarse
    operators — whose entries are h-independent in 2-D — the transpose
    pairing keeps the coarse right-hand side correctly scaled, which the
    classical 1/4-scaled finite-difference full weighting would not.
    """
    n = fine.shape[0]
    if fine.shape != (n, n) or n < 3 or n % 2 == 0:
        raise ValueError(f"expected an odd square lattice of side >= 3, got {fine.shape}")
    m = (n + 1) // 2
    coarse = np.zeros((m, m))
    c = fine[2:-2:2, 2:-2:2]
    edges = (
        fine[1:-2:2, 2:-2:2]
        + fine[3::2, 2:-2:2]
        + fine[2:-2:2, 1:-2:2]
        + fine[2:-2:2, 3::2]
    )
    corners = (
        fine[1:-2:2, 1:-2:2]
        + fine[1:-2:2, 3::2]
        + fine[3::2, 1:-2:2]
        + fine[3::2, 3::2]
    )
    coarse[1:-1, 1:-1] = c + 0.5 * edges + 0.25 * corners
    return coarse
