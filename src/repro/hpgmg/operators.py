"""Elliptic operators of the mini HPGMG-FE benchmark.

The real HPGMG-FE solves constant- and variable-coefficient elliptic
problems on deformed meshes with Q1/Q2 finite elements.  We reproduce its
three operator flavours:

``poisson1``
    Q1 elements, constant coefficient, undeformed mesh.
``poisson2``
    Q2 elements, smoothly varying coefficient, undeformed mesh.
``poisson2affine``
    Q2 elements, smoothly varying coefficient, affine-sheared mesh.

Each operator assembles a sparse symmetric-positive-definite stiffness
matrix over the mesh's node lattice (Dirichlet boundary eliminated), plus
the machinery needed by multigrid: the matrix diagonal, residual/apply
hooks, and a rediscretization constructor for coarser meshes.

The discrete problem is  ``-div(kappa grad u) = f`` on the (possibly
sheared) unit square with homogeneous Dirichlet boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from .fem import reference_element
from .grid import Mesh

__all__ = [
    "OPERATOR_NAMES",
    "Problem",
    "DiscreteOperator",
    "make_problem",
    "assemble",
]

#: Operator flavours, matching the paper's Table I ``Operator`` factor levels.
OPERATOR_NAMES = ("poisson1", "poisson2", "poisson2affine")

#: Shear used by the affine flavour (any O(1) value exercises the cross terms).
AFFINE_SHEAR = 0.4


def _kappa_constant(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _kappa_smooth(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Smooth, strictly positive variable coefficient in [0.5, 2.5]."""
    return 1.5 + np.sin(2.0 * np.pi * x) * np.cos(np.pi * y)


@dataclass(frozen=True)
class Problem:
    """An operator flavour: element order, coefficient field, mesh shear.

    ``kappa`` is evaluated in *reference* coordinates (the coefficient field
    deforms with the mesh, as in HPGMG-FE's mapped problems).
    """

    name: str
    order: int
    shear: float
    kappa: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def mesh(self, ne: int) -> Mesh:
        """The mesh this problem uses at ``ne`` elements per side."""
        return Mesh(ne=ne, order=self.order, shear=self.shear)


def make_problem(name: str) -> Problem:
    """Look up one of the three HPGMG-FE operator flavours by name."""
    if name == "poisson1":
        return Problem(name, order=1, shear=0.0, kappa=_kappa_constant)
    if name == "poisson2":
        return Problem(name, order=2, shear=0.0, kappa=_kappa_smooth)
    if name == "poisson2affine":
        return Problem(name, order=2, shear=AFFINE_SHEAR, kappa=_kappa_smooth)
    raise ValueError(f"unknown operator {name!r}; expected one of {OPERATOR_NAMES}")


@dataclass
class DiscreteOperator:
    """Assembled stiffness operator on one mesh level.

    Attributes
    ----------
    problem / mesh:
        The defining problem flavour and mesh.
    A:
        Interior-node stiffness matrix (CSR, SPD).
    diag:
        ``A.diagonal()``, cached for smoothers.
    n:
        Number of interior unknowns.
    """

    problem: Problem
    mesh: Mesh
    A: sp.csr_matrix
    diag: np.ndarray

    #: stencil applications performed through this operator (work accounting)
    apply_count: int = 0

    @property
    def n(self) -> int:
        """Number of interior unknowns."""
        return self.A.shape[0]

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``A @ u`` (counts as one operator application)."""
        self.apply_count += 1
        return self.A @ u

    def residual(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """``f - A u``."""
        return f - self.apply(u)

    def coarsen(self) -> "DiscreteOperator":
        """Rediscretize this problem on the next-coarser mesh."""
        from .grid import coarsen

        return assemble(self.problem, coarsen(self.mesh))


def _element_tensors(problem: Problem, mesh: Mesh) -> np.ndarray:
    """Per-element constant tensors ``G_e = kappa_e |J| J^{-1} J^{-T}``.

    Shape ``(n_elem, 2, 2)``.  ``J`` is the constant affine element Jacobian.
    """
    J = mesh.jacobian
    detJ = float(np.linalg.det(J))
    if detJ <= 0:
        raise ValueError("mesh Jacobian must have positive determinant")
    Jinv = np.linalg.inv(J)
    geo = detJ * (Jinv @ Jinv.T)  # 2x2, shared by all elements (affine map)
    cx, cy = mesh.element_centers()
    kappa = problem.kappa(cx, cy)
    if np.any(kappa <= 0):
        raise ValueError("coefficient field must be strictly positive")
    return kappa[:, None, None] * geo[None, :, :]


def assemble(problem: Problem, mesh: Mesh) -> DiscreteOperator:
    """Assemble the interior stiffness matrix for ``problem`` on ``mesh``.

    Fully vectorized over elements: the element matrices are a single
    ``einsum`` contraction of the per-element tensor against the reference
    stiffness tensors, and the global matrix is built with one COO pass.
    """
    if mesh.order != problem.order:
        raise ValueError(
            f"mesh order {mesh.order} does not match problem order {problem.order}"
        )
    ref = reference_element(problem.order)
    G = _element_tensors(problem, mesh)  # (n_elem, 2, 2)
    Ke = np.einsum("eab,abij->eij", G, ref.stiffness)  # (n_elem, nb, nb)

    conn = mesh.element_node_ids()  # (n_elem, nb)
    nb = ref.n_basis
    rows = np.repeat(conn, nb, axis=1).ravel()
    cols = np.tile(conn, (1, nb)).ravel()
    A_full = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(mesh.n_nodes, mesh.n_nodes)
    ).tocsr()

    interior = mesh.interior_ids()
    A = A_full[interior][:, interior].tocsr()
    A.sum_duplicates()
    return DiscreteOperator(problem=problem, mesh=mesh, A=A, diag=A.diagonal())


def load_vector(
    problem: Problem, mesh: Mesh, f: Callable[[np.ndarray, np.ndarray], np.ndarray]
) -> np.ndarray:
    """Consistent FE load vector for source ``f`` (reference coordinates).

    Returns the interior-node load ``b_i = int f phi_i |J| dxhat`` computed
    with the element quadrature rule; shape ``(n_interior,)``.
    """
    ref = reference_element(problem.order)
    J = mesh.jacobian
    detJ = float(np.linalg.det(J))
    cx = np.arange(mesh.ne) * mesh.h
    cy = np.arange(mesh.ne) * mesh.h
    CY, CX = np.meshgrid(cy, cx, indexing="ij")
    ex = CX.ravel()[:, None] + ref.quad_points[None, :, 0] * mesh.h
    ey = CY.ravel()[:, None] + ref.quad_points[None, :, 1] * mesh.h
    fq = f(ex, ey)  # (n_elem, nq)
    # b_e[i] = sum_q w_q f(x_q) phi_i(q) * detJ
    be = detJ * (fq * ref.quad_weights[None, :]) @ ref.basis_at_quad.T  # (n_elem, nb)

    conn = mesh.element_node_ids()
    b_full = np.zeros(mesh.n_nodes)
    np.add.at(b_full, conn.ravel(), be.ravel())
    return b_full[mesh.interior_ids()]
