"""Geometric multigrid (V-cycle and Full Multigrid) for the mini HPGMG-FE.

Mirrors the structure of HPGMG-FE's solver: rediscretized coarse operators,
Chebyshev(-Jacobi) smoothing, bilinear transfer, a direct solve on the
coarsest level, and an FMG (F-cycle) driver followed by V-cycles to a target
relative residual.  Work is accounted in *work units* (operator applications
weighted by level size) so benchmark cost is hardware-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from .grid import hierarchy_sizes
from .operators import DiscreteOperator, Problem, assemble
from .smoothers import chebyshev, damped_jacobi, estimate_lambda_max
from .transfer import (
    embed_interior,
    extract_interior,
    prolong_bilinear,
    restrict_full_weighting,
)

__all__ = ["MultigridSolver", "SolveResult"]


@dataclass
class SolveResult:
    """Outcome of a multigrid solve.

    Attributes
    ----------
    u:
        Solution on interior nodes of the finest mesh.
    residual_history:
        Relative residual ``||f - A u|| / ||f||`` after FMG and after each
        V-cycle (index 0 is post-FMG).
    cycles:
        Number of V-cycles performed after FMG.
    converged:
        Whether the target tolerance was reached.
    work_units:
        Total fine-grid-equivalent operator applications.
    seconds:
        Wall-clock time of the solve.
    """

    u: np.ndarray
    residual_history: list[float]
    cycles: int
    converged: bool
    work_units: float
    seconds: float


class MultigridSolver:
    """Geometric multigrid hierarchy for one :class:`Problem` flavour.

    Parameters
    ----------
    problem:
        Operator flavour (from :func:`repro.hpgmg.operators.make_problem`).
    ne:
        Elements per side on the finest mesh; must be ``ne_coarsest * 2**k``.
    ne_coarsest:
        Elements per side on the coarsest level (direct solve there).
    smoother:
        ``"chebyshev"`` (default, as in HPGMG) or ``"jacobi"``.
    pre_smooth / post_smooth:
        Smoothing applications before/after the coarse-grid correction
        (Chebyshev degree, or Jacobi sweep count).
    rng:
        Seed for the power-iteration eigenvalue estimates.
    """

    def __init__(
        self,
        problem: Problem,
        ne: int,
        *,
        ne_coarsest: int = 2,
        smoother: str = "chebyshev",
        pre_smooth: int = 3,
        post_smooth: int = 3,
        rng=None,
    ):
        if smoother not in ("chebyshev", "jacobi"):
            raise ValueError(f"unknown smoother {smoother!r}")
        self.problem = problem
        self.smoother = smoother
        self.pre_smooth = int(pre_smooth)
        self.post_smooth = int(post_smooth)
        rng = np.random.default_rng(rng)

        self.levels: list[DiscreteOperator] = []
        for size in hierarchy_sizes(ne, ne_coarsest=ne_coarsest):
            self.levels.append(assemble(problem, problem.mesh(size)))
        self._lambda_max = [
            estimate_lambda_max(op, rng=rng) for op in self.levels
        ]
        self._coarse_lu = spla.splu(self.levels[-1].A.tocsc())

    @property
    def n_levels(self) -> int:
        """Number of multigrid levels (fine to coarsest)."""
        return len(self.levels)

    @property
    def dofs(self) -> int:
        """Interior unknowns on the finest level."""
        return self.levels[0].n

    # ------------------------------------------------------------------ cycles

    def _smooth(self, level: int, u: np.ndarray, f: np.ndarray, amount: int) -> np.ndarray:
        op = self.levels[level]
        if self.smoother == "chebyshev":
            return chebyshev(
                op, u, f, degree=amount, lambda_max=self._lambda_max[level]
            )
        return damped_jacobi(op, u, f, iterations=amount)

    def _restrict(self, level: int, r: np.ndarray) -> np.ndarray:
        fine_n = self.levels[level].mesh.nodes_per_side
        return extract_interior(
            restrict_full_weighting(embed_interior(r, fine_n))
        )

    def _prolong(self, level: int, e_coarse: np.ndarray) -> np.ndarray:
        coarse_n = self.levels[level + 1].mesh.nodes_per_side
        return extract_interior(
            prolong_bilinear(embed_interior(e_coarse, coarse_n))
        )

    def vcycle(self, f: np.ndarray, u: np.ndarray | None = None, *, level: int = 0) -> np.ndarray:
        """One V-cycle starting at ``level``; returns the improved iterate."""
        op = self.levels[level]
        if u is None:
            u = np.zeros(op.n)
        if level == self.n_levels - 1:
            return self._coarse_lu.solve(f)
        u = self._smooth(level, u, f, self.pre_smooth)
        r = op.residual(u, f)
        r_coarse = self._restrict(level, r)
        e_coarse = self.vcycle(r_coarse, level=level + 1)
        u = u + self._prolong(level, e_coarse)
        return self._smooth(level, u, f, self.post_smooth)

    def fmg(self, f: np.ndarray) -> np.ndarray:
        """Full multigrid: coarse solve, then prolong + one V-cycle per level.

        Requires the full-depth right-hand side; restricts ``f`` down the
        hierarchy with the transfer operators.
        """
        fs = [f]
        for level in range(self.n_levels - 1):
            fs.append(self._restrict(level, fs[-1]))
        u = self._coarse_lu.solve(fs[-1])
        for level in range(self.n_levels - 2, -1, -1):
            u = self._prolong(level, u)
            u = self.vcycle(fs[level], u, level=level)
        return u

    # ------------------------------------------------------------------- solve

    def work_units(self) -> float:
        """Operator applications so far, weighted by level size / finest size."""
        n0 = self.levels[0].n
        return float(sum(op.apply_count * op.n / n0 for op in self.levels))

    def solve(
        self,
        f: np.ndarray,
        *,
        rtol: float = 1e-8,
        max_cycles: int = 30,
        use_fmg: bool = True,
    ) -> SolveResult:
        """Solve ``A u = f`` to relative residual ``rtol``.

        Runs FMG (unless disabled) followed by V-cycles, recording the
        relative residual after each stage.
        """
        f = np.asarray(f, dtype=float)
        if f.shape != (self.dofs,):
            raise ValueError(f"f has shape {f.shape}, expected ({self.dofs},)")
        start_work = self.work_units()
        t0 = time.perf_counter()
        fine = self.levels[0]
        f_norm = float(np.linalg.norm(f))
        if f_norm == 0.0:
            return SolveResult(
                u=np.zeros(self.dofs),
                residual_history=[0.0],
                cycles=0,
                converged=True,
                work_units=0.0,
                seconds=time.perf_counter() - t0,
            )

        u = self.fmg(f) if use_fmg else np.zeros(self.dofs)
        history = [float(np.linalg.norm(fine.residual(u, f))) / f_norm]
        cycles = 0
        while history[-1] > rtol and cycles < max_cycles:
            u = self.vcycle(f, u)
            history.append(float(np.linalg.norm(fine.residual(u, f))) / f_norm)
            cycles += 1
        return SolveResult(
            u=u,
            residual_history=history,
            cycles=cycles,
            converged=history[-1] <= rtol,
            work_units=self.work_units() - start_work,
            seconds=time.perf_counter() - t0,
        )
