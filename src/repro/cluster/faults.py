"""Fault injection for the simulated testbed.

Real HPC campaigns run for hours across node crashes, scheduler timeouts
and flaky measurements; the paper's online AL loop ("every iteration of AL
includes selecting an experiment, running it, and using the experiment
outcome to update the underlying GPR model") has to survive all of them.
:class:`FaultyExecutor` wraps any :class:`~repro.cluster.scheduler.Executor`
and injects seeded, configurable faults so that the fault-tolerance
machinery in :mod:`repro.al.resilience` can be exercised deterministically:

* **crash** — the job dies partway through (``failed=True``, truncated
  runtime, no verification);
* **hang** — the job stops making progress and runs until the scheduler's
  time limit kills it (``runtime_seconds`` inflated past the limit, so the
  :class:`~repro.cluster.scheduler.SlurmSimulator` records ``TIMEOUT``);
* **straggler** — the job completes but runs a configurable factor slower
  (a noisy-node slowdown; the measurement is real, just expensive);
* **corrupt** — the job completes in biased time with
  ``verification_passed=False`` (a bad measurement that must not reach the
  GP training set).

Fault draws come either from a dedicated generator (``rng=...`` at
construction) or, with ``rng=None``, from the scheduler's own seeded stream
— the mode used by :class:`~repro.al.campaign.OnlineCampaign`, where it
makes an entire faulty campaign (and its checkpoint/resume) a pure function
of the campaign seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .jobs import JobSpec
from .scheduler import ExecutionOutcome, Executor

__all__ = ["FaultConfig", "FaultStats", "FaultyExecutor"]


@dataclass(frozen=True)
class FaultConfig:
    """Per-job fault probabilities and severity parameters.

    Rates are independent probabilities of one fault class per execution;
    at most one fault is injected per job (the classes partition a single
    uniform draw), so their sum must not exceed 1.

    Attributes
    ----------
    crash_rate / hang_rate / straggler_rate / corrupt_rate:
        Probability of each fault class per job execution.
    crash_runtime_fraction:
        Fraction of the true runtime elapsed before a crash (the partial
        run is still charged to the campaign).
    hang_runtime_seconds:
        Runtime reported by a hung job; set it above the scheduler's
        ``time_limit_seconds`` so the job is recorded as ``TIMEOUT``.
    straggler_factor:
        Runtime multiplier of a straggling (but correct) job.
    corrupt_runtime_factor:
        Multiplicative bias of a corrupted measurement (``0.5`` halves the
        reported runtime — a systematically wrong value, flagged by
        ``verification_passed=False``).
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    straggler_rate: float = 0.0
    corrupt_rate: float = 0.0
    crash_runtime_fraction: float = 0.25
    hang_runtime_seconds: float = 7200.0
    straggler_factor: float = 3.0
    corrupt_runtime_factor: float = 0.5

    def __post_init__(self):
        rates = (
            self.crash_rate,
            self.hang_rate,
            self.straggler_rate,
            self.corrupt_rate,
        )
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fault rates must be in [0, 1], got {r}")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError(f"fault rates sum to {sum(rates)} > 1")
        if not 0.0 < self.crash_runtime_fraction <= 1.0:
            raise ValueError("crash_runtime_fraction must be in (0, 1]")
        if self.hang_runtime_seconds <= 0:
            raise ValueError("hang_runtime_seconds must be positive")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.corrupt_runtime_factor <= 0:
            raise ValueError("corrupt_runtime_factor must be positive")

    @property
    def total_rate(self) -> float:
        """Probability that any fault is injected on one execution."""
        return (
            self.crash_rate
            + self.hang_rate
            + self.straggler_rate
            + self.corrupt_rate
        )


@dataclass
class FaultStats:
    """Counts of injected faults (ground truth for accounting tests)."""

    n_jobs: int = 0
    n_crashes: int = 0
    n_hangs: int = 0
    n_stragglers: int = 0
    n_corrupted: int = 0

    @property
    def n_faults(self) -> int:
        """Total injected faults of any class."""
        return self.n_crashes + self.n_hangs + self.n_stragglers + self.n_corrupted


class FaultyExecutor:
    """Executor wrapper that injects seeded faults into job outcomes.

    Parameters
    ----------
    inner:
        The wrapped executor supplying true job behaviour.
    config:
        Fault probabilities and severities; defaults to no faults.
    rng:
        ``None`` (default) draws fault decisions from the scheduler's own
        per-execution generator, so behaviour is fully determined by the
        scheduler seed; a seed or :class:`numpy.random.Generator` gives the
        injector its own stream (independent of the workload's noise).
    """

    def __init__(
        self,
        inner: Executor,
        config: FaultConfig | None = None,
        *,
        rng=None,
    ):
        self.inner = inner
        self.config = config or FaultConfig()
        self.rng = None if rng is None else np.random.default_rng(rng)
        self.stats = FaultStats()

    def estimate(self, spec: JobSpec) -> float:
        """The scheduler's runtime estimate is the fault-free one."""
        return self.inner.estimate(spec)

    def execute(self, spec: JobSpec, rng: np.random.Generator) -> ExecutionOutcome:
        """Run the wrapped executor, then possibly inject one fault."""
        gen = self.rng if self.rng is not None else rng
        u = float(gen.uniform())
        outcome = self.inner.execute(spec, rng)
        self.stats.n_jobs += 1
        c = self.config
        edge = c.crash_rate
        if u < edge:
            self.stats.n_crashes += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.crash_runtime_fraction,
                failed=True,
                verification_passed=False,
            )
        edge += c.hang_rate
        if u < edge:
            self.stats.n_hangs += 1
            return replace(
                outcome,
                runtime_seconds=max(c.hang_runtime_seconds, outcome.runtime_seconds),
                verification_passed=False,
            )
        edge += c.straggler_rate
        if u < edge:
            self.stats.n_stragglers += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.straggler_factor,
            )
        edge += c.corrupt_rate
        if u < edge:
            self.stats.n_corrupted += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.corrupt_runtime_factor,
                verification_passed=False,
            )
        return outcome
