"""Fault injection for the simulated testbed.

Real HPC campaigns run for hours across node crashes, scheduler timeouts
and flaky measurements; the paper's online AL loop ("every iteration of AL
includes selecting an experiment, running it, and using the experiment
outcome to update the underlying GPR model") has to survive all of them.
:class:`FaultyExecutor` wraps any :class:`~repro.cluster.scheduler.Executor`
and injects seeded, configurable faults so that the fault-tolerance
machinery in :mod:`repro.al.resilience` can be exercised deterministically:

* **crash** — the job dies partway through (``failed=True``, truncated
  runtime, no verification);
* **hang** — the job stops making progress and runs until the scheduler's
  time limit kills it (``runtime_seconds`` inflated past the limit, so the
  :class:`~repro.cluster.scheduler.SlurmSimulator` records ``TIMEOUT``);
* **straggler** — the job completes but runs a configurable factor slower
  (a noisy-node slowdown; the measurement is real, just expensive);
* **corrupt** — the job completes in biased time with
  ``verification_passed=False`` (a bad measurement that must not reach the
  GP training set);
* **drift** — after ``drift_after_jobs`` executions the machine's behaviour
  shifts: every later runtime is multiplied by ``drift_factor`` but the job
  still *passes verification* (think a firmware update, thermal throttling
  or a changed BIOS setting — the measurement is real, the regime changed).
  Drift is the poison :class:`repro.al.guardrails.DriftDetector` exists to
  catch: unlike corruption it cannot be filtered per job;
* **per-node crashes** — ``node_crash_rates`` gives individual nodes extra
  crash probability.  These only fire through the optional
  :meth:`FaultyExecutor.execute_on` entry point, which the scheduler uses
  when it knows the node placement; they are what trips
  :class:`repro.cluster.breaker.NodeCircuitBreaker`.

Fault draws come either from a dedicated generator (``rng=...`` at
construction) or, with ``rng=None``, from the scheduler's own seeded stream
— the mode used by :class:`~repro.al.campaign.OnlineCampaign`, where it
makes an entire faulty campaign (and its checkpoint/resume) a pure function
of the campaign seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from .jobs import JobSpec
from .scheduler import ExecutionOutcome, Executor

__all__ = [
    "FaultConfig",
    "FaultStats",
    "FaultyExecutor",
    "FS_FAULT_KINDS",
    "FsFaultConfig",
    "FsFaultStats",
    "FilesystemFaultInjector",
    "SHARD_FAULT_KINDS",
    "ShardFaultConfig",
    "ShardFaultInjector",
]


@dataclass(frozen=True)
class FaultConfig:
    """Per-job fault probabilities and severity parameters.

    Rates are independent probabilities of one fault class per execution;
    at most one fault is injected per job (the classes partition a single
    uniform draw), so their sum must not exceed 1.

    Attributes
    ----------
    crash_rate / hang_rate / straggler_rate / corrupt_rate:
        Probability of each fault class per job execution.
    crash_runtime_fraction:
        Fraction of the true runtime elapsed before a crash (the partial
        run is still charged to the campaign).
    hang_runtime_seconds:
        Runtime reported by a hung job; set it above the scheduler's
        ``time_limit_seconds`` so the job is recorded as ``TIMEOUT``.
    straggler_factor:
        Runtime multiplier of a straggling (but correct) job.
    corrupt_runtime_factor:
        Multiplicative bias of a corrupted measurement (``0.5`` halves the
        reported runtime — a systematically wrong value, flagged by
        ``verification_passed=False``).
    drift_after_jobs:
        ``None`` disables drift (default).  Otherwise, executions after the
        first ``drift_after_jobs`` jobs have their runtime multiplied by
        ``drift_factor`` while still passing verification.  The count is
        job-based (executors have no clock) and applied before the fault
        cascade, so a drifted job can additionally crash, hang, etc.
    drift_factor:
        Runtime multiplier in the drifted regime (must be positive and,
        when drift is enabled, different from 1).
    node_crash_rates:
        Mapping ``node index -> extra crash probability`` applied when the
        scheduler places the job via :meth:`FaultyExecutor.execute_on`
        (probabilities combine independently across the job's nodes).
        Empty/None disables node-targeted crashes; plain ``execute`` never
        applies them.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    straggler_rate: float = 0.0
    corrupt_rate: float = 0.0
    crash_runtime_fraction: float = 0.25
    hang_runtime_seconds: float = 7200.0
    straggler_factor: float = 3.0
    corrupt_runtime_factor: float = 0.5
    drift_after_jobs: int | None = None
    drift_factor: float = 1.0
    node_crash_rates: Mapping[int, float] | None = None

    def __post_init__(self):
        rates = (
            self.crash_rate,
            self.hang_rate,
            self.straggler_rate,
            self.corrupt_rate,
        )
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fault rates must be in [0, 1], got {r}")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError(f"fault rates sum to {sum(rates)} > 1")
        if not 0.0 < self.crash_runtime_fraction <= 1.0:
            raise ValueError("crash_runtime_fraction must be in (0, 1]")
        if self.hang_runtime_seconds <= 0:
            raise ValueError("hang_runtime_seconds must be positive")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.corrupt_runtime_factor <= 0:
            raise ValueError("corrupt_runtime_factor must be positive")
        if self.drift_after_jobs is not None:
            if self.drift_after_jobs < 0:
                raise ValueError("drift_after_jobs must be >= 0 or None")
            if self.drift_factor == 1.0:
                raise ValueError(
                    "drift enabled but drift_factor is 1.0 (a no-op drift); "
                    "set a factor != 1 or drift_after_jobs=None"
                )
        if self.drift_factor <= 0:
            raise ValueError("drift_factor must be positive")
        if self.node_crash_rates:
            for node, rate in self.node_crash_rates.items():
                if int(node) < 0:
                    raise ValueError(f"node index must be >= 0, got {node}")
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"node_crash_rates must be in [0, 1], got {rate} for node {node}"
                    )

    @property
    def total_rate(self) -> float:
        """Probability that any fault is injected on one execution."""
        return (
            self.crash_rate
            + self.hang_rate
            + self.straggler_rate
            + self.corrupt_rate
        )


@dataclass
class FaultStats:
    """Counts of injected faults (ground truth for accounting tests)."""

    n_jobs: int = 0
    n_crashes: int = 0
    n_hangs: int = 0
    n_stragglers: int = 0
    n_corrupted: int = 0
    n_drifted: int = 0
    n_node_crashes: int = 0

    @property
    def n_faults(self) -> int:
        """Total injected per-job faults (crash/hang/straggler/corrupt).

        Drifted jobs are *not* faults in this sense — they complete and
        verify; ``n_drifted`` counts them separately.  Node-targeted
        crashes are counted in both ``n_node_crashes`` and, via the outcome
        they produce, nowhere here (they bypass the rate cascade).
        """
        return self.n_crashes + self.n_hangs + self.n_stragglers + self.n_corrupted


class FaultyExecutor:
    """Executor wrapper that injects seeded faults into job outcomes.

    Parameters
    ----------
    inner:
        The wrapped executor supplying true job behaviour.
    config:
        Fault probabilities and severities; defaults to no faults.
    rng:
        ``None`` (default) draws fault decisions from the scheduler's own
        per-execution generator, so behaviour is fully determined by the
        scheduler seed; a seed or :class:`numpy.random.Generator` gives the
        injector its own stream (independent of the workload's noise).
    """

    def __init__(
        self,
        inner: Executor,
        config: FaultConfig | None = None,
        *,
        rng=None,
    ):
        self.inner = inner
        self.config = config or FaultConfig()
        self.rng = None if rng is None else np.random.default_rng(rng)
        self.stats = FaultStats()

    def estimate(self, spec: JobSpec) -> float:
        """The scheduler's runtime estimate is the fault-free one."""
        return self.inner.estimate(spec)

    def execute(self, spec: JobSpec, rng: np.random.Generator) -> ExecutionOutcome:
        """Run the wrapped executor, then possibly inject one fault.

        The fault-class uniform is drawn *before* the inner execution so the
        injector's position in a shared RNG stream does not depend on how
        many draws the workload makes — checkpoint/resume replays stay
        bit-identical.  Drift (if enabled and past ``drift_after_jobs``)
        rescales the true outcome first; the fault cascade then acts on the
        drifted measurement.
        """
        gen = self.rng if self.rng is not None else rng
        u = float(gen.uniform())
        outcome = self.inner.execute(spec, rng)
        self.stats.n_jobs += 1
        c = self.config
        if c.drift_after_jobs is not None and self.stats.n_jobs > c.drift_after_jobs:
            self.stats.n_drifted += 1
            outcome = replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.drift_factor,
            )
        edge = c.crash_rate
        if u < edge:
            self.stats.n_crashes += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.crash_runtime_fraction,
                failed=True,
                verification_passed=False,
            )
        edge += c.hang_rate
        if u < edge:
            self.stats.n_hangs += 1
            return replace(
                outcome,
                runtime_seconds=max(c.hang_runtime_seconds, outcome.runtime_seconds),
                verification_passed=False,
            )
        edge += c.straggler_rate
        if u < edge:
            self.stats.n_stragglers += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.straggler_factor,
            )
        edge += c.corrupt_rate
        if u < edge:
            self.stats.n_corrupted += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.corrupt_runtime_factor,
                verification_passed=False,
            )
        return outcome

    def execute_on(
        self, spec: JobSpec, rng: np.random.Generator, nodes
    ) -> ExecutionOutcome:
        """Placement-aware execution: :meth:`execute` plus node-targeted crashes.

        The scheduler calls this (when available) with the nodes the job
        landed on.  With no ``node_crash_rates`` configured it is *exactly*
        ``self.execute(spec, rng)`` — same draws, same outcome — so
        subclasses that override :meth:`execute` keep working unchanged.
        With rates set, one extra uniform is drawn first (fixed position in
        the stream, again for replay stability) and compared against the
        probability that any of the job's nodes crashes; a hit turns the
        outcome into a crash unless it already failed.
        """
        c = self.config
        if not c.node_crash_rates:
            return self.execute(spec, rng)
        gen = self.rng if self.rng is not None else rng
        u_node = float(gen.uniform())
        p_ok = 1.0
        for node in nodes:
            p_ok *= 1.0 - float(c.node_crash_rates.get(int(node), 0.0))
        outcome = self.execute(spec, rng)
        if u_node < 1.0 - p_ok and not outcome.failed:
            self.stats.n_node_crashes += 1
            return replace(
                outcome,
                runtime_seconds=outcome.runtime_seconds * c.crash_runtime_fraction,
                failed=True,
                verification_passed=False,
            )
        return outcome


# ------------------------------------------------------------ storage faults
#
# The per-job fault classes above poison *measurements*; the classes below
# poison *files*.  They model what an unreliable filesystem (or a crash at
# the wrong instant) does to the serving layer's on-disk artifacts — the
# model registry's version files and manifest — and are what
# ``ModelRegistry.fsck`` / checksum verification exist to survive.

#: Recognized filesystem fault kinds, in cascade order.
FS_FAULT_KINDS = ("torn_write", "truncation", "bit_flip", "slow_read")


@dataclass(frozen=True)
class FsFaultConfig:
    """Per-file fault probabilities for :class:`FilesystemFaultInjector`.

    Rates are independent probabilities of one fault class per
    :meth:`~FilesystemFaultInjector.inject` call; at most one fault is
    injected per call (the classes partition a single uniform draw), so
    their sum must not exceed 1.

    Attributes
    ----------
    torn_write_rate:
        A prefix of the file survives, the tail is replaced with garbage
        bytes — the signature of a non-atomic write interrupted mid-flush.
    truncation_rate:
        The file is cut to a random prefix (possibly empty) — a crash
        after the metadata landed but before the data blocks.
    bit_flip_rate:
        One random bit of one random byte is flipped — silent media or
        memory corruption that leaves the file length intact.
    slow_read_rate:
        The file is untouched, but the caller should delay reads of it by
        ``slow_read_seconds`` — a degraded disk or overloaded NFS server.
    slow_read_seconds:
        Read delay applied by the caller when a slow read is drawn.
    """

    torn_write_rate: float = 0.0
    truncation_rate: float = 0.0
    bit_flip_rate: float = 0.0
    slow_read_rate: float = 0.0
    slow_read_seconds: float = 0.05

    def __post_init__(self):
        rates = (
            self.torn_write_rate,
            self.truncation_rate,
            self.bit_flip_rate,
            self.slow_read_rate,
        )
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fs fault rates must be in [0, 1], got {r}")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError(f"fs fault rates sum to {sum(rates)} > 1")
        if self.slow_read_seconds < 0:
            raise ValueError("slow_read_seconds must be >= 0")

    @property
    def total_rate(self) -> float:
        """Probability that any fault is injected on one call."""
        return (
            self.torn_write_rate
            + self.truncation_rate
            + self.bit_flip_rate
            + self.slow_read_rate
        )


@dataclass
class FsFaultStats:
    """Counts of injected filesystem faults (ground truth for soak tests)."""

    n_calls: int = 0
    n_torn_writes: int = 0
    n_truncations: int = 0
    n_bit_flips: int = 0
    n_slow_reads: int = 0

    @property
    def n_corruptions(self) -> int:
        """Faults that mutated file content (slow reads leave it intact)."""
        return self.n_torn_writes + self.n_truncations + self.n_bit_flips


class FilesystemFaultInjector:
    """Seeded, deterministic corruption of on-disk artifacts.

    Used by the chaos-serve soak (``benchmarks/bench_chaos_serve.py``) and
    the registry integrity tests: after a publish, :meth:`inject` is
    pointed at the freshly written version file and, with the configured
    probability, tears/truncates/bit-flips it the way a faulty filesystem
    would — directly, *not* atomically, because the whole point is to
    produce the states atomic writes rule out.

    Parameters
    ----------
    config:
        Fault probabilities; defaults to no faults.
    rng:
        Seed or :class:`numpy.random.Generator` for the fault draws; the
        injection sequence is a pure function of it.
    """

    def __init__(self, config: FsFaultConfig | None = None, *, rng=0):
        self.config = config or FsFaultConfig()
        self.rng = np.random.default_rng(rng)
        self.stats = FsFaultStats()

    def inject(self, path) -> str | None:
        """Maybe corrupt the file at ``path``; returns the fault kind or ``None``.

        One uniform is drawn per call regardless of outcome, so the fault
        sequence over a run depends only on the injector seed and the call
        count — never on which files happened to exist.
        """
        self.stats.n_calls += 1
        c = self.config
        u = float(self.rng.uniform())
        edge = c.torn_write_rate
        if u < edge:
            return self.corrupt(path, "torn_write")
        edge += c.truncation_rate
        if u < edge:
            return self.corrupt(path, "truncation")
        edge += c.bit_flip_rate
        if u < edge:
            return self.corrupt(path, "bit_flip")
        edge += c.slow_read_rate
        if u < edge:
            self.stats.n_slow_reads += 1
            return "slow_read"
        return None

    def corrupt(self, path, kind: str) -> str:
        """Apply one specific fault ``kind`` to the file at ``path``.

        ``slow_read`` touches nothing (the delay is the *caller's* job, via
        ``config.slow_read_seconds``); the other kinds rewrite the file in
        place.  Returns ``kind`` so callers can tally what they asked for.
        """
        if kind not in FS_FAULT_KINDS:
            raise ValueError(
                f"unknown fs fault kind {kind!r}; expected one of {FS_FAULT_KINDS}"
            )
        if kind == "slow_read":
            return kind
        path = Path(path)
        data = path.read_bytes()
        if kind == "torn_write":
            keep = int(self.rng.integers(1, max(2, len(data))))
            tail = self.rng.integers(
                0, 256, size=len(data) - keep, dtype=np.uint8
            ).tobytes()
            out = data[:keep] + tail
            self.stats.n_torn_writes += 1
        elif kind == "truncation":
            keep = int(self.rng.integers(0, max(1, len(data))))
            out = data[:keep]
            self.stats.n_truncations += 1
        else:  # bit_flip
            out = bytearray(data)
            if out:
                i = int(self.rng.integers(len(out)))
                out[i] ^= 1 << int(self.rng.integers(8))
            out = bytes(out)
            self.stats.n_bit_flips += 1
        # Deliberately a plain, non-atomic write: we are *simulating* the
        # torn states that write_json_atomic exists to prevent.
        path.write_bytes(out)
        return kind


# -------------------------------------------------------------- shard faults
#
# The classes above poison measurements and files; the ones below poison
# *model fits*.  A sharded campaign (:mod:`repro.al.sharding`) fans one GP
# fit per shard out to pool workers, and each of those fits can die, stall,
# or train on silently corrupted data.  The injector lives in the worker,
# so its draws must not depend on worker identity, completion order, or
# retry scheduling in other shards — hence it is *stateless*: every draw is
# a pure function of ``(seed, shard, round, attempt)`` via a
# ``SeedSequence`` spawn key, and replays bit-identically across backends,
# worker counts, and checkpoint resume.

#: Recognized shard-fit fault kinds, in cascade order.
SHARD_FAULT_KINDS = ("crash", "hang", "corrupt")


@dataclass(frozen=True)
class ShardFaultConfig:
    """Per-fit fault probabilities for :class:`ShardFaultInjector`.

    Rates are probabilities of one fault class per shard-fit attempt; at
    most one fault is injected per attempt (the classes partition a single
    uniform draw), so their sum must not exceed 1.

    Attributes
    ----------
    crash_rate:
        The fit attempt dies before producing a model (a worker OOM or
        segfault, surfaced as a failed attempt the supervisor may retry).
    hang_rate:
        The fit attempt stalls until the task timeout kills it; modeled as
        a failed attempt charged ``hang_seconds`` of wall-clock, without
        actually sleeping in tests.
    corrupt_rate:
        The fit silently trains on corrupted responses (``y`` scaled by
        ``corrupt_y_factor``) — the model comes back looking healthy, and
        only the supervisor's training-data hash check can unmask it.
    corrupt_y_factor:
        Multiplier applied to the shard's responses by a ``corrupt`` fault
        (must differ from 1, or the corruption would be a no-op).
    hang_seconds:
        Simulated wall-clock charged for a hung attempt.
    shard_crash_rates:
        Mapping ``shard index -> extra crash probability`` for targeting
        specific shards (the shard-level analogue of
        ``FaultConfig.node_crash_rates``); drawn from its own uniform
        before the rate cascade, so targeted and background faults
        compose independently.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_y_factor: float = 4.0
    hang_seconds: float = 60.0
    shard_crash_rates: Mapping[int, float] | None = None

    def __post_init__(self):
        rates = (self.crash_rate, self.hang_rate, self.corrupt_rate)
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"shard fault rates must be in [0, 1], got {r}")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError(f"shard fault rates sum to {sum(rates)} > 1")
        if self.corrupt_y_factor == 1.0 or self.corrupt_y_factor <= 0:
            raise ValueError("corrupt_y_factor must be positive and != 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.shard_crash_rates:
            for shard, rate in self.shard_crash_rates.items():
                if int(shard) < 0:
                    raise ValueError(f"shard index must be >= 0, got {shard}")
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"shard_crash_rates must be in [0, 1], "
                        f"got {rate} for shard {shard}"
                    )

    @property
    def total_rate(self) -> float:
        """Probability that a background fault is injected on one attempt."""
        return self.crash_rate + self.hang_rate + self.corrupt_rate

    @property
    def enabled(self) -> bool:
        return self.total_rate > 0 or bool(self.shard_crash_rates)


class ShardFaultInjector:
    """Stateless, keyed fault draws for sharded model fits.

    Unlike :class:`FaultyExecutor` and :class:`FilesystemFaultInjector`,
    this injector holds **no generator state**: :meth:`draw` derives a
    fresh stream from ``SeedSequence(seed, spawn_key=(shard, round,
    attempt))`` on every call.  That makes the fault sequence immune to
    parallel completion order and trivially resumable — a checkpointed
    campaign replays the identical faults without persisting any RNG
    state, and every pool worker can construct its own injector from just
    ``(config, seed)``.
    """

    def __init__(self, config: ShardFaultConfig | None = None, *, seed: int = 0):
        self.config = config or ShardFaultConfig()
        self.seed = int(seed)

    def _uniforms(self, shard: int, round_index: int, attempt: int) -> np.ndarray:
        ss = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(int(shard), int(round_index), int(attempt)),
        )
        return np.random.default_rng(ss).uniform(size=2)

    def draw(self, shard: int, round_index: int, attempt: int) -> str | None:
        """Fault kind injected into this fit attempt, or ``None``.

        Two uniforms are drawn per call — one for the shard-targeted crash
        check, one for the background cascade — regardless of
        configuration, so enabling ``shard_crash_rates`` never shifts the
        background fault sequence.
        """
        c = self.config
        u_target, u = self._uniforms(shard, round_index, attempt)
        if c.shard_crash_rates:
            rate = float(c.shard_crash_rates.get(int(shard), 0.0))
            if u_target < rate:
                return "crash"
        edge = c.crash_rate
        if u < edge:
            return "crash"
        edge += c.hang_rate
        if u < edge:
            return "hang"
        edge += c.corrupt_rate
        if u < edge:
            return "corrupt"
        return None

    def corrupt_values(self, y) -> np.ndarray:
        """The corrupted responses a ``corrupt`` fault trains the fit on."""
        return np.asarray(y, dtype=float) * self.config.corrupt_y_factor
