"""Simulated CloudLab testbed: machines, power, energy, SLURM-like scheduling.

Public API::

    from repro.cluster import (wisconsin_cluster, PowerModel, IPMISampler,
                               SlurmSimulator, JobSpec, JobRecord)
"""

from .breaker import (
    AllNodesOpenError,
    BreakerConfig,
    NodeCircuitBreaker,
)
from .energy import (
    MIN_RECORDS_PER_MINUTE,
    integrate_energy,
    records_per_minute,
    trace_is_usable,
)
from .faults import (
    FS_FAULT_KINDS,
    FaultConfig,
    FaultStats,
    FaultyExecutor,
    FilesystemFaultInjector,
    FsFaultConfig,
    FsFaultStats,
)
from .jobs import JOB_RECORD_FIELDS, JobRecord, JobSpec
from .machine import DVFS_LEVELS_GHZ, ClusterSpec, CPUSpec, NodeSpec, wisconsin_cluster
from .power import IPMISampler, PowerModel, PowerTrace
from .scheduler import ExecutionOutcome, Executor, SlurmSimulator

__all__ = [
    "CPUSpec",
    "NodeSpec",
    "ClusterSpec",
    "wisconsin_cluster",
    "DVFS_LEVELS_GHZ",
    "PowerModel",
    "IPMISampler",
    "PowerTrace",
    "integrate_energy",
    "records_per_minute",
    "trace_is_usable",
    "MIN_RECORDS_PER_MINUTE",
    "JobSpec",
    "JobRecord",
    "JOB_RECORD_FIELDS",
    "ExecutionOutcome",
    "Executor",
    "SlurmSimulator",
    "FaultConfig",
    "FaultStats",
    "FaultyExecutor",
    "FS_FAULT_KINDS",
    "FsFaultConfig",
    "FsFaultStats",
    "FilesystemFaultInjector",
    "BreakerConfig",
    "NodeCircuitBreaker",
    "AllNodesOpenError",
]
