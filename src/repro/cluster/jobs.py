"""Job specifications and SLURM-style accounting records.

The paper's published datasets carry "up to 46 attributes for each job:
controlled variables, job execution properties reported by SLURM (e.g.,
memory usage on every node), and the listed responses".  :class:`JobRecord`
reproduces that record layout: the four controlled variables, scheduling
timestamps, per-node resource accounting (up to the 4 Wisconsin nodes), the
benchmark's own output metrics, power-trace bookkeeping, and the responses.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = ["JobSpec", "JobRecord", "JOB_RECORD_FIELDS"]


@dataclass(frozen=True)
class JobSpec:
    """A benchmark configuration to run: the paper's controlled variables."""

    operator: str
    problem_size: float  # global problem size (DOF)
    np_ranks: int
    freq_ghz: float
    repeat_index: int = 0

    def __post_init__(self):
        if self.problem_size <= 0:
            raise ValueError("problem_size must be positive")
        if self.np_ranks < 1:
            raise ValueError("np_ranks must be >= 1")
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.repeat_index < 0:
            raise ValueError("repeat_index must be >= 0")


@dataclass
class JobRecord:
    """One completed job with full SLURM-style accounting (46 attributes)."""

    # --- identity & controlled variables (6)
    job_id: int
    operator: str
    problem_size: float
    np_ranks: int
    freq_ghz: float
    repeat_index: int

    # --- scheduling (8)
    submit_time: float
    start_time: float
    end_time: float
    wait_seconds: float
    runtime_seconds: float
    n_nodes: int
    cores_per_node: int
    node_list: str  # comma-joined node names

    # --- SLURM accounting (10)
    state: str  # COMPLETED / FAILED / TIMEOUT
    exit_code: int
    partition: str
    account: str
    user: str
    time_limit_seconds: float
    priority: int
    requeue_count: int
    batch_host: str
    qos: str

    # --- per-node resources, up to 4 nodes (12)
    max_rss_mb_node0: float
    max_rss_mb_node1: float
    max_rss_mb_node2: float
    max_rss_mb_node3: float
    avg_cpu_util_node0: float
    avg_cpu_util_node1: float
    avg_cpu_util_node2: float
    avg_cpu_util_node3: float
    nic_rx_mb_node0: float
    nic_tx_mb_node0: float
    nfs_read_mb: float
    nfs_write_mb: float

    # --- benchmark output (5)
    mg_cycles: int
    final_residual: float
    dofs_per_second: float
    work_units: float
    verification_passed: bool

    # --- power/energy (5)
    power_records: int
    power_records_per_minute: float
    mean_power_watts: Optional[float]
    energy_joules: Optional[float]
    energy_usable: bool

    @property
    def spec(self) -> JobSpec:
        """The controlled-variable configuration of this job."""
        return JobSpec(
            operator=self.operator,
            problem_size=self.problem_size,
            np_ranks=self.np_ranks,
            freq_ghz=self.freq_ghz,
            repeat_index=self.repeat_index,
        )

    @property
    def cost_core_seconds(self) -> float:
        """The paper's experiment cost: compute time x number of cores."""
        return self.runtime_seconds * self.np_ranks


#: Ordered attribute names of :class:`JobRecord` (the CSV schema).
JOB_RECORD_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(JobRecord))
