"""Discrete-event SLURM-like scheduler for the simulated testbed.

The paper organized HPGMG-FE jobs "into batches and submitted [them] to the
job queue, after which SLURM managed their execution on the available
nodes".  This module reproduces that pipeline: a 4-node cluster, a FIFO
queue with EASY backfill, whole-node allocation (one MPI rank per core, as
HPC schedulers do for exclusive jobs), per-node IPMI power sampling during
execution, and a full 46-attribute accounting record per job.

The simulator is generic over a :class:`Executor`, which supplies the job's
actual behaviour.  Two executors exist:

* ``ModelExecutor`` (in :mod:`repro.datasets.generate`) evaluates the
  analytic performance model — used to produce the paper-scale datasets;
* ``HPGMGExecutor`` (in :mod:`repro.al.oracle`) actually runs the mini
  HPGMG-FE solver — used for the online active-learning example.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from .. import telemetry as tm
from .breaker import AllNodesOpenError, NodeCircuitBreaker
from .energy import integrate_energy, records_per_minute, trace_is_usable
from .jobs import JobRecord, JobSpec
from .machine import ClusterSpec
from .power import IPMISampler, PowerModel

__all__ = ["ExecutionOutcome", "Executor", "SlurmSimulator"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """What actually happened when a job ran.

    ``runtime_seconds`` drives the simulation clock; the remaining fields
    are copied into the accounting record.
    """

    runtime_seconds: float
    mg_cycles: int = 0
    final_residual: float = 0.0
    dofs_per_second: float = 0.0
    work_units: float = 0.0
    verification_passed: bool = True
    rss_mb_per_node: float = 0.0
    failed: bool = False


class Executor(Protocol):
    """Behaviour model plugged into the scheduler."""

    def estimate(self, spec: JobSpec) -> float:
        """Expected runtime in seconds (used for backfill reservations)."""
        ...

    def execute(self, spec: JobSpec, rng: np.random.Generator) -> ExecutionOutcome:
        """Run the job and return its measured outcome."""
        ...


@dataclass
class _QueuedJob:
    job_id: int
    spec: JobSpec
    submit_time: float
    n_nodes: int


@dataclass
class _RunningJob:
    queued: _QueuedJob
    start_time: float
    end_time: float
    nodes: tuple[int, ...]
    outcome: ExecutionOutcome


class SlurmSimulator:
    """FIFO + EASY-backfill scheduler over a homogeneous cluster.

    Parameters
    ----------
    cluster:
        Hardware description (defaults elsewhere to the Wisconsin testbed).
    executor:
        Supplies estimated and actual job behaviour.
    power_model / sampler:
        If both are given, every job gets per-node IPMI power traces and an
        integrated energy estimate; otherwise energy fields are ``None``.
    rng:
        Seed or generator driving all stochastic components.
    time_limit_seconds:
        SLURM time limit recorded for (and enforced on) each job.
    breaker:
        Optional :class:`~repro.cluster.breaker.NodeCircuitBreaker`.  When
        present, open/blacklisted nodes take no new jobs, every completion
        is fed back as success/failure, a stalled queue fast-forwards
        across cooldowns, and a permanently unplaceable queue raises
        :class:`~repro.cluster.breaker.AllNodesOpenError` instead of the
        generic deadlock error.  The breaker typically outlives the
        simulator (one breaker per campaign, one simulator per wave).
    breaker_clock_offset:
        Added to this simulator's local clock (which starts at 0 every
        ``run_batch``) before any breaker call, mapping wave-local times
        onto the campaign-global timeline that cooldowns are measured in.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        executor: Executor,
        *,
        power_model: Optional[PowerModel] = None,
        sampler: Optional[IPMISampler] = None,
        rng=None,
        time_limit_seconds: float = 3600.0,
        policy: str = "fifo",
        breaker: Optional[NodeCircuitBreaker] = None,
        breaker_clock_offset: float = 0.0,
    ):
        if (power_model is None) != (sampler is None):
            raise ValueError("power_model and sampler must be supplied together")
        if policy not in ("fifo", "sjf"):
            raise ValueError(f"unknown policy {policy!r}; expected 'fifo' or 'sjf'")
        self.cluster = cluster
        self.executor = executor
        self.power_model = power_model
        self.sampler = sampler
        self.rng = np.random.default_rng(rng)
        self.time_limit_seconds = float(time_limit_seconds)
        self.policy = policy
        self.breaker = breaker
        self.breaker_clock_offset = float(breaker_clock_offset)
        if breaker is not None and breaker.n_nodes != cluster.n_nodes:
            raise ValueError(
                f"breaker tracks {breaker.n_nodes} nodes, cluster has "
                f"{cluster.n_nodes}"
            )
        self._job_counter = itertools.count(1)

    # ------------------------------------------------------------------ running

    def run_batch(
        self, specs: Sequence[JobSpec], *, submit_spacing_s: float = 0.0
    ) -> list[JobRecord]:
        """Submit ``specs`` in order and simulate until the queue drains.

        Returns one :class:`JobRecord` per spec, in completion order.
        """
        free_nodes = set(range(self.cluster.n_nodes))
        queue: list[_QueuedJob] = []
        running: list[_RunningJob] = []
        records: list[JobRecord] = []
        # Event heap holds job completions: (end_time, tiebreak, running_job).
        heap: list[tuple[float, int, _RunningJob]] = []
        tiebreak = itertools.count()

        now = 0.0
        for i, spec in enumerate(specs):
            n_nodes = self.cluster.nodes_for_ranks(spec.np_ranks)
            queue.append(
                _QueuedJob(
                    job_id=next(self._job_counter),
                    spec=spec,
                    submit_time=i * submit_spacing_s,
                    n_nodes=n_nodes,
                )
            )

        def usable_free(t: float) -> list[int]:
            """Free nodes the breaker (if any) lets a job start on at ``t``."""
            if self.breaker is None:
                return sorted(free_nodes)
            bt = t + self.breaker_clock_offset
            return [n for n in sorted(free_nodes) if self.breaker.allow(n, bt)]

        def start_job(qjob: _QueuedJob, t: float) -> None:
            nodes = tuple(usable_free(t)[: qjob.n_nodes])
            for node in nodes:
                free_nodes.remove(node)
            if self.breaker is not None:
                self.breaker.on_job_start(nodes, t + self.breaker_clock_offset)
            execute_on = getattr(self.executor, "execute_on", None)
            if execute_on is not None:
                outcome = execute_on(qjob.spec, self.rng, nodes)
            else:
                outcome = self.executor.execute(qjob.spec, self.rng)
            runtime = min(outcome.runtime_seconds, self.time_limit_seconds)
            rjob = _RunningJob(
                queued=qjob,
                start_time=t,
                end_time=t + runtime,
                nodes=nodes,
                outcome=outcome,
            )
            running.append(rjob)
            heapq.heappush(heap, (rjob.end_time, next(tiebreak), rjob))

        def schedule(t: float) -> None:
            """Queue head first; EASY backfill for the rest.

            Under ``fifo`` the head is the oldest submission; under ``sjf``
            (shortest job first) eligible jobs are ordered by estimated
            runtime, a classical makespan-reducing policy for throughput
            campaigns.
            """
            while True:
                eligible = [q for q in queue if q.submit_time <= t]
                if not eligible:
                    return
                if self.policy == "sjf":
                    eligible.sort(
                        key=lambda q: (self.executor.estimate(q.spec), q.job_id)
                    )
                n_usable = len(usable_free(t))
                head = eligible[0]
                if head.n_nodes <= n_usable:
                    queue.remove(head)
                    start_job(head, t)
                    continue
                # Head blocked: compute its shadow start from running jobs.
                ends = sorted((r.end_time, len(r.nodes)) for r in running)
                avail = n_usable
                shadow = t
                for end_time, released in ends:
                    avail += released
                    if avail >= head.n_nodes:
                        shadow = end_time
                        break
                started_any = False
                for q in eligible[1:]:
                    if q.n_nodes > n_usable:
                        continue
                    est = min(
                        self.executor.estimate(q.spec), self.time_limit_seconds
                    )
                    if t + est <= shadow or q.n_nodes <= n_usable - head.n_nodes:
                        queue.remove(q)
                        start_job(q, t)
                        started_any = True
                        break  # re-evaluate shadow with updated state
                if not started_any:
                    return

        # Prime with any jobs submitted at t=0 and iterate completions.
        pending_submits = sorted({q.submit_time for q in queue})
        submit_iter = iter(pending_submits)
        next_submit = next(submit_iter, None)

        while queue or heap:
            # Advance to the next event: a submission or a completion.
            next_end = heap[0][0] if heap else None
            if next_submit is not None and (next_end is None or next_submit <= next_end):
                now = next_submit
                next_submit = next(submit_iter, None)
                schedule(now)
                continue
            if next_end is None:
                if self.breaker is not None:
                    # Nothing running, nothing arriving: the only event that
                    # can unblock the queue is a breaker cooldown expiring.
                    bt = now + self.breaker_clock_offset
                    nxt = self.breaker.next_transition_time(bt)
                    if nxt is not None:
                        now = nxt - self.breaker_clock_offset
                        schedule(now)
                        continue
                    needed = min(q.n_nodes for q in queue)
                    raise AllNodesOpenError(
                        self.breaker.describe_stall(bt, needed)
                    )
                raise RuntimeError("queue non-empty but nothing running or arriving")
            now, _, rjob = heapq.heappop(heap)
            running.remove(rjob)
            for node in rjob.nodes:
                free_nodes.add(node)
            record = self._make_record(rjob)
            records.append(record)
            if self.breaker is not None:
                bt = now + self.breaker_clock_offset
                feed = (
                    self.breaker.record_success
                    if record.state == "COMPLETED"
                    else self.breaker.record_failure
                )
                for node in rjob.nodes:
                    feed(node, bt)
            schedule(now)
        if tm.enabled():
            self._record_batch_telemetry(records)
        return records

    def _record_batch_telemetry(self, records: list[JobRecord]) -> None:
        for record in records:
            tm.count(f"scheduler.jobs.{record.state.lower()}")
        makespan = max((r.end_time for r in records), default=0.0)
        tm.observe("scheduler.makespan_seconds", makespan)
        utilization = 0.0
        if makespan > 0:
            busy = sum(r.runtime_seconds * r.n_nodes for r in records)
            utilization = busy / (self.cluster.n_nodes * makespan)
            tm.observe("scheduler.node_utilization", utilization)
        tm.event(
            "scheduler.batch",
            n_jobs=len(records),
            makespan=makespan,
            node_utilization=utilization,
            policy=self.policy,
        )

    # --------------------------------------------------------------- accounting

    def _make_record(self, rjob: _RunningJob) -> JobRecord:
        qjob = rjob.queued
        spec = qjob.spec
        outcome = rjob.outcome
        runtime = rjob.end_time - rjob.start_time
        timed_out = outcome.runtime_seconds > self.time_limit_seconds
        cores_per_node = self.cluster.node.total_cores
        threads_per_node = self.cluster.node.total_threads
        n_nodes = len(rjob.nodes)
        ranks_per_node = [
            min(threads_per_node, spec.np_ranks - i * threads_per_node)
            for i in range(n_nodes)
        ]

        energy: Optional[float] = None
        mean_power: Optional[float] = None
        n_power_records = 0
        rec_per_min = 0.0
        usable = False
        if self.power_model is not None and self.sampler is not None:
            node_energies = []
            densities = []
            node_usable = []
            n_power_records = 0
            for ranks in ranks_per_node:
                watts = self.power_model.sample_job_power(
                    ranks, spec.freq_ghz, self.rng
                )
                trace = self.sampler.sample(runtime, watts, self.rng)
                n_power_records += trace.n_records
                node_usable.append(trace_is_usable(trace, runtime))
                if trace.n_records:
                    node_energies.append(integrate_energy(trace, runtime))
                    densities.append(records_per_minute(trace, runtime))
                else:
                    densities.append(0.0)
            rec_per_min = float(min(densities)) if densities else 0.0
            usable = all(node_usable) and len(node_energies) == n_nodes
            if len(node_energies) == n_nodes:
                energy = float(sum(node_energies))
                if runtime > 0:
                    mean_power = energy / runtime

        rss = outcome.rss_mb_per_node
        rss_nodes = [rss if i < n_nodes else 0.0 for i in range(4)]
        util_nodes = [
            (ranks_per_node[i] / threads_per_node if i < n_nodes else 0.0)
            for i in range(4)
        ]
        # Rough NFS/NIC accounting: inputs scale with size, comm with ranks.
        nic_mb = 0.02 * spec.problem_size ** (2.0 / 3.0) * max(spec.np_ranks - 1, 0) / 1e3

        return JobRecord(
            job_id=qjob.job_id,
            operator=spec.operator,
            problem_size=spec.problem_size,
            np_ranks=spec.np_ranks,
            freq_ghz=spec.freq_ghz,
            repeat_index=spec.repeat_index,
            submit_time=qjob.submit_time,
            start_time=rjob.start_time,
            end_time=rjob.end_time,
            wait_seconds=rjob.start_time - qjob.submit_time,
            runtime_seconds=runtime,
            n_nodes=n_nodes,
            cores_per_node=cores_per_node,
            node_list=",".join(f"node{n}" for n in rjob.nodes),
            state="TIMEOUT" if timed_out else ("FAILED" if outcome.failed else "COMPLETED"),
            exit_code=1 if (timed_out or outcome.failed) else 0,
            partition="wisconsin",
            account="repro",
            user="al-perf",
            time_limit_seconds=self.time_limit_seconds,
            priority=100,
            requeue_count=0,
            batch_host=f"node{rjob.nodes[0]}",
            qos="normal",
            max_rss_mb_node0=rss_nodes[0],
            max_rss_mb_node1=rss_nodes[1],
            max_rss_mb_node2=rss_nodes[2],
            max_rss_mb_node3=rss_nodes[3],
            avg_cpu_util_node0=util_nodes[0],
            avg_cpu_util_node1=util_nodes[1],
            avg_cpu_util_node2=util_nodes[2],
            avg_cpu_util_node3=util_nodes[3],
            nic_rx_mb_node0=nic_mb,
            nic_tx_mb_node0=nic_mb,
            nfs_read_mb=0.4 + spec.problem_size / 1e6,
            nfs_write_mb=0.1 + spec.problem_size / 1e7,
            mg_cycles=outcome.mg_cycles,
            final_residual=outcome.final_residual,
            dofs_per_second=outcome.dofs_per_second,
            work_units=outcome.work_units,
            verification_passed=outcome.verification_passed,
            power_records=n_power_records,
            power_records_per_minute=rec_per_min,
            mean_power_watts=mean_power,
            energy_joules=energy,
            energy_usable=usable,
        )
