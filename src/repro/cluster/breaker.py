"""Per-node circuit breakers for the simulated cluster.

A real campaign that keeps dispatching to a dead node burns its whole
retry budget re-measuring the same crash.  The standard fix is the
circuit-breaker pattern, applied here per node:

* **closed** — the node takes jobs normally; consecutive (or windowed)
  job failures are counted;
* **open** — after ``failure_threshold`` consecutive failures (or a
  windowed failure rate above ``window_failure_rate``) the node stops
  receiving jobs for ``cooldown_seconds`` of simulated time;
* **half-open** — once the cooldown expires, at most
  ``half_open_max_probes`` concurrent *probe* jobs may land on the node:
  a probe success closes the breaker (full trust restored), a probe
  failure re-opens it;
* **blacklisted** — a node that re-opens ``max_opens`` times is considered
  permanently dead and never probed again.

:class:`~repro.cluster.scheduler.SlurmSimulator` consults the breaker when
placing jobs (open/blacklisted nodes are invisible to scheduling), feeds
every job completion back in, and — because simulated time only advances
through events — fast-forwards over cooldowns when the queue would
otherwise stall.  When pending work can *never* be placed (every node
open or blacklisted, or a job wider than the surviving nodes), the
scheduler raises :class:`AllNodesOpenError` instead of deadlocking.

All state transitions emit telemetry counters (``breaker.open``,
``breaker.close``, ``breaker.half_open``, ``breaker.blacklist``,
``breaker.probe``) and a ``breaker.transition`` trace event through the
:mod:`repro.telemetry` hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import telemetry as tm

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BLACKLISTED",
    "BreakerConfig",
    "NodeCircuitBreaker",
    "AllNodesOpenError",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
BLACKLISTED = "blacklisted"


class AllNodesOpenError(RuntimeError):
    """Pending jobs can never be placed: the breaker has isolated the cluster.

    Raised by :class:`~repro.cluster.scheduler.SlurmSimulator` instead of
    deadlocking.  The message names the per-node breaker states and the
    available remediations (raise ``failure_threshold``, extend
    ``cooldown_seconds``, raise ``max_opens``, replace the hardware, or
    disable the breaker) so an operator can act on it directly.
    """


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery parameters of a per-node circuit breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive job failures that trip a closed breaker open.
    window / window_failure_rate:
        Optional second trip condition: with ``window_failure_rate`` set,
        the breaker also opens when at least that fraction of the last
        ``window`` jobs on the node failed (catches flaky nodes that
        intersperse successes).  ``None`` (default) disables it.
    cooldown_seconds:
        Simulated seconds an open breaker waits before going half-open.
    half_open_max_probes:
        Concurrent probe jobs allowed on a half-open node.
    max_opens:
        Times a node may trip open before it is permanently blacklisted.
    """

    failure_threshold: int = 3
    window: int = 8
    window_failure_rate: float | None = None
    cooldown_seconds: float = 1800.0
    half_open_max_probes: int = 1
    max_opens: int = 3

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.window_failure_rate is not None and not (
            0.0 < self.window_failure_rate <= 1.0
        ):
            raise ValueError("window_failure_rate must be in (0, 1] or None")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        if self.half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        if self.max_opens < 1:
            raise ValueError("max_opens must be >= 1")


@dataclass
class _NodeState:
    state: str = CLOSED
    consecutive_failures: int = 0
    recent: deque = field(default_factory=deque)  # of bools: failed?
    opened_at: float = 0.0
    n_opens: int = 0
    probing: int = 0  # in-flight probe jobs while half-open


class NodeCircuitBreaker:
    """Closed -> open -> half-open state machine for every cluster node.

    Time is supplied by the caller on every query (the scheduler's
    simulated clock, offset to the campaign-global timeline by
    :class:`~repro.cluster.scheduler.SlurmSimulator`'s
    ``breaker_clock_offset``); open->half-open transitions are resolved
    lazily against it, so the breaker has no clock of its own.

    Counters (``n_opened``, ``n_closed``, ``n_blacklisted``, ``n_probes``)
    accumulate over the breaker's lifetime for campaign accounting.
    """

    def __init__(self, config: BreakerConfig | None = None, *, n_nodes: int = 4):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.config = config or BreakerConfig()
        self.n_nodes = int(n_nodes)
        self._nodes = {i: _NodeState() for i in range(self.n_nodes)}
        self.n_opened = 0
        self.n_closed = 0
        self.n_blacklisted = 0
        self.n_probes = 0

    # ------------------------------------------------------------------ queries

    def _resolve(self, node: int, t: float) -> _NodeState:
        ns = self._nodes[node]
        if ns.state == OPEN and t >= ns.opened_at + self.config.cooldown_seconds:
            ns.state = HALF_OPEN
            ns.probing = 0
            tm.count("breaker.half_open")
            tm.event("breaker.transition", node=node, to=HALF_OPEN, sim_t=t)
        return ns

    def state(self, node: int, t: float) -> str:
        """The node's breaker state at simulated time ``t``."""
        return self._resolve(node, t).state

    def allow(self, node: int, t: float) -> bool:
        """May a new job start on ``node`` at time ``t``?"""
        ns = self._resolve(node, t)
        if ns.state == CLOSED:
            return True
        if ns.state == HALF_OPEN:
            return ns.probing < self.config.half_open_max_probes
        return False

    def allowed_nodes(self, t: float) -> list[int]:
        """Nodes that may receive a job at time ``t`` (sorted)."""
        return [n for n in range(self.n_nodes) if self.allow(n, t)]

    def placeable_nodes(self) -> int:
        """Nodes not permanently blacklisted (upper bound on future capacity)."""
        return sum(1 for ns in self._nodes.values() if ns.state != BLACKLISTED)

    def next_transition_time(self, t: float) -> float | None:
        """Earliest future open->half-open transition, or ``None``.

        Lets the scheduler fast-forward an otherwise-stalled queue across a
        cooldown instead of deadlocking.
        """
        times = [
            ns.opened_at + self.config.cooldown_seconds
            for node, ns in self._nodes.items()
            if self._resolve(node, t).state == OPEN
        ]
        future = [x for x in times if x > t]
        return min(future) if future else None

    def snapshot(self, t: float) -> dict[int, str]:
        """Per-node states at time ``t`` (for error messages and telemetry)."""
        return {node: self.state(node, t) for node in range(self.n_nodes)}

    # ------------------------------------------------------------------ updates

    def on_job_start(self, nodes, t: float) -> None:
        """Note a job starting on ``nodes``; half-open nodes count a probe."""
        for node in nodes:
            ns = self._resolve(int(node), t)
            if ns.state == HALF_OPEN:
                ns.probing += 1
                self.n_probes += 1
                tm.count("breaker.probe")
                tm.event("breaker.probe", node=int(node), sim_t=t)

    def record_success(self, node: int, t: float) -> None:
        """A job on ``node`` completed cleanly."""
        ns = self._resolve(int(node), t)
        if ns.state == HALF_OPEN:
            # Probe success: full trust restored.
            if ns.probing > 0:
                ns.probing -= 1
            ns.state = CLOSED
            ns.consecutive_failures = 0
            ns.recent.clear()
            self.n_closed += 1
            tm.count("breaker.close")
            tm.event("breaker.transition", node=int(node), to=CLOSED, sim_t=t)
            return
        if ns.state == CLOSED:
            ns.consecutive_failures = 0
            self._push_recent(ns, False)

    def record_failure(self, node: int, t: float) -> None:
        """A job on ``node`` ended FAILED/TIMEOUT."""
        ns = self._resolve(int(node), t)
        if ns.state == HALF_OPEN:
            # Probe failure: straight back to open (or blacklist).
            if ns.probing > 0:
                ns.probing -= 1
            self._open(int(node), ns, t)
            return
        if ns.state != CLOSED:
            return  # failures of jobs started before the trip
        ns.consecutive_failures += 1
        self._push_recent(ns, True)
        cfg = self.config
        tripped = ns.consecutive_failures >= cfg.failure_threshold
        if not tripped and cfg.window_failure_rate is not None:
            if len(ns.recent) == cfg.window:
                rate = sum(ns.recent) / cfg.window
                tripped = rate >= cfg.window_failure_rate
        if tripped:
            self._open(int(node), ns, t)

    # ----------------------------------------------------------------- internal

    def _push_recent(self, ns: _NodeState, failed: bool) -> None:
        ns.recent.append(failed)
        while len(ns.recent) > self.config.window:
            ns.recent.popleft()

    def _open(self, node: int, ns: _NodeState, t: float) -> None:
        ns.n_opens += 1
        ns.consecutive_failures = 0
        ns.recent.clear()
        if ns.n_opens >= self.config.max_opens:
            ns.state = BLACKLISTED
            self.n_blacklisted += 1
            tm.count("breaker.blacklist")
            tm.event("breaker.transition", node=node, to=BLACKLISTED, sim_t=t)
            return
        ns.state = OPEN
        ns.opened_at = t
        self.n_opened += 1
        tm.count("breaker.open")
        tm.event("breaker.transition", node=node, to=OPEN, sim_t=t)

    def describe_stall(self, t: float, n_nodes_needed: int) -> str:
        """Actionable message for :class:`AllNodesOpenError`."""
        states = self.snapshot(t)
        listing = ", ".join(f"node{n}={s}" for n, s in states.items())
        return (
            f"cannot place pending jobs: {n_nodes_needed} node(s) needed but "
            f"the circuit breaker leaves none eligible ({listing}). "
            "Remediations: inspect per-node failure telemetry "
            "(breaker.transition events), raise failure_threshold or "
            "max_opens, extend cooldown_seconds, replace the failed "
            "hardware, or run without a breaker."
        )
