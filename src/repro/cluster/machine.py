"""Hardware description of the simulated CloudLab testbed.

The paper ran on the CloudLab Wisconsin cluster: 4 homogeneous nodes, each
with two 8-core Intel E5-2630 v3 (Haswell) CPUs, 128 GB RAM and 10 Gb NICs,
DVFS-capable between 1.2 and 2.4 GHz.  These dataclasses capture that
configuration; the defaults match the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CPUSpec", "NodeSpec", "ClusterSpec", "wisconsin_cluster", "DVFS_LEVELS_GHZ"]

#: The CPU frequency levels of Table I (GHz): machine min/max and steps.
DVFS_LEVELS_GHZ = (1.2, 1.5, 1.8, 2.1, 2.4)


@dataclass(frozen=True)
class CPUSpec:
    """One CPU package.

    Defaults describe the Intel Xeon E5-2630 v3 (Haswell, 8C/16T, 2.4 GHz,
    85 W TDP) of the Wisconsin nodes.
    """

    model: str = "E5-2630v3"
    cores: int = 8
    threads_per_core: int = 2
    base_freq_ghz: float = 2.4
    min_freq_ghz: float = 1.2
    tdp_watts: float = 85.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.threads_per_core < 1:
            raise ValueError("threads_per_core must be >= 1")
        if not 0 < self.min_freq_ghz <= self.base_freq_ghz:
            raise ValueError("need 0 < min_freq_ghz <= base_freq_ghz")
        if self.tdp_watts <= 0:
            raise ValueError("tdp_watts must be positive")

    def validate_frequency(self, freq_ghz: float) -> None:
        """Raise if ``freq_ghz`` is outside the DVFS range of this CPU."""
        if not self.min_freq_ghz <= freq_ghz <= self.base_freq_ghz:
            raise ValueError(
                f"frequency {freq_ghz} GHz outside DVFS range "
                f"[{self.min_freq_ghz}, {self.base_freq_ghz}]"
            )


@dataclass(frozen=True)
class NodeSpec:
    """One compute node (server)."""

    name: str = "c220g1"
    n_sockets: int = 2
    cpu: CPUSpec = field(default_factory=CPUSpec)
    ram_gb: float = 128.0
    nic_gbps: float = 10.0

    def __post_init__(self):
        if self.n_sockets < 1:
            raise ValueError("n_sockets must be >= 1")
        if self.ram_gb <= 0:
            raise ValueError("ram_gb must be positive")

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.n_sockets * self.cpu.cores

    @property
    def total_threads(self) -> int:
        """Hardware threads across all sockets (rank slots with SMT).

        The paper's NP levels reach 128 on 4 nodes of 16 physical cores —
        only possible with two hyperthreads per core, so rank placement
        capacity is thread-based.
        """
        return self.total_cores * self.cpu.threads_per_core


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_nodes`` identical nodes."""

    n_nodes: int = 4
    node: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    @property
    def total_cores(self) -> int:
        """Physical cores across the whole cluster."""
        return self.n_nodes * self.node.total_cores

    @property
    def total_threads(self) -> int:
        """Hardware threads across the whole cluster."""
        return self.n_nodes * self.node.total_threads

    def nodes_for_ranks(self, np_ranks: int) -> int:
        """Nodes needed to host ``np_ranks`` ranks (one rank per hw thread)."""
        if np_ranks < 1:
            raise ValueError("np_ranks must be >= 1")
        if np_ranks > self.total_threads:
            raise ValueError(
                f"{np_ranks} ranks exceed cluster capacity of "
                f"{self.total_threads} hardware threads"
            )
        per_node = self.node.total_threads
        return -(-np_ranks // per_node)


def wisconsin_cluster() -> ClusterSpec:
    """The paper's testbed: 4 nodes x 2 x E5-2630v3, 128 GB, 10 GbE."""
    return ClusterSpec()
