"""Per-job energy estimation from IPMI power traces.

The paper infers per-job energy (Joules) by numerically integrating the
recorded instantaneous power draw over the job's lifetime, and *excludes*
jobs whose traces are too sparse — fewer than 10 power records per 60
seconds of computation — which is what shrinks the Power dataset to 640
jobs.  Both the trapezoidal integration and the quality rule live here.
"""

from __future__ import annotations

import numpy as np

from .power import PowerTrace

__all__ = [
    "integrate_energy",
    "records_per_minute",
    "trace_is_usable",
    "MIN_RECORDS_PER_MINUTE",
]

#: The paper's trace-quality threshold: at least 10 records per 60 s.
MIN_RECORDS_PER_MINUTE = 10.0


def integrate_energy(trace: PowerTrace, duration_s: float) -> float:
    """Trapezoidal energy estimate in Joules over ``[0, duration_s]``.

    The trace's first/last samples rarely align exactly with the job's
    start/end; the boundary segments are extended with the nearest reading
    (zeroth-order hold), matching how one treats real IPMI data.
    """
    if duration_s < 0:
        raise ValueError("duration_s must be >= 0")
    if trace.n_records == 0:
        raise ValueError("cannot integrate an empty trace")
    if duration_s == 0:
        return 0.0
    t = np.clip(trace.times, 0.0, duration_s)
    w = trace.watts
    # Hold the first/last readings out to the job boundaries.
    if t[0] > 0.0:
        t = np.concatenate([[0.0], t])
        w = np.concatenate([[w[0]], w])
    if t[-1] < duration_s:
        t = np.concatenate([t, [duration_s]])
        w = np.concatenate([w, [w[-1]]])
    # Clipping can introduce duplicate boundary timestamps; drop them.
    keep = np.concatenate([[True], np.diff(t) > 0])
    return float(np.trapezoid(w[keep], t[keep]))


def records_per_minute(trace: PowerTrace, duration_s: float) -> float:
    """Trace density in records per 60 s of computation."""
    if duration_s <= 0:
        return float("inf") if trace.n_records > 0 else 0.0
    return trace.n_records * 60.0 / duration_s


def trace_is_usable(
    trace: PowerTrace,
    duration_s: float,
    *,
    min_records_per_minute: float = MIN_RECORDS_PER_MINUTE,
) -> bool:
    """The paper's inclusion rule for the Power dataset."""
    if trace.n_records == 0:
        return False
    return records_per_minute(trace, duration_s) >= min_records_per_minute
