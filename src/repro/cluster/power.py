"""Node power model and IPMI-style power-trace sampling.

CloudLab exposes server-level instantaneous power draw (Watts) through
on-board IPMI sensors; the paper polls these sensors, records timestamped
power traces per job, and integrates them into per-job energy estimates.
Crucially for the reproduction, the collected traces *had gaps*: the paper
excludes jobs with fewer than 10 power records per 60 s of computation,
which is why the Power dataset (640 jobs) is so much smaller than the
Performance dataset (3,246 jobs).

This module simulates both parts: a DVFS-aware node power model and an
:class:`IPMISampler` that produces gappy, quantized, jittered traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import NodeSpec

__all__ = ["PowerModel", "IPMISampler", "PowerTrace"]


@dataclass(frozen=True)
class PowerModel:
    """Instantaneous node power as a function of load and DVFS frequency.

    ``P = idle + n_active_cores * per_core * (f / f_base)^exponent * util``

    The cubic-ish frequency dependence (voltage scales with frequency, power
    with V^2 f) is softened to ``exponent`` because Haswell runs at reduced
    voltage only over part of the DVFS range.

    Defaults are calibrated to the Wisconsin c220g1 servers: ~90 W idle,
    ~260 W fully loaded at 2.4 GHz.
    """

    idle_watts: float = 90.0
    per_core_watts: float = 10.5
    freq_exponent: float = 2.2
    base_freq_ghz: float = 2.4
    physical_cores: int = 16
    smt_power_fraction: float = 0.12
    #: log-normal sigma of per-job, per-node power deviations (thermal state,
    #: cache behaviour, VR efficiency) — the dominant reason the paper's
    #: Power dataset is so much noisier than its Performance dataset.
    job_variability: float = 0.10

    def __post_init__(self):
        if self.idle_watts < 0 or self.per_core_watts < 0:
            raise ValueError("power constants must be non-negative")
        if self.base_freq_ghz <= 0:
            raise ValueError("base_freq_ghz must be positive")
        if self.physical_cores < 1:
            raise ValueError("physical_cores must be >= 1")
        if self.smt_power_fraction < 0:
            raise ValueError("smt_power_fraction must be >= 0")
        if self.job_variability < 0:
            raise ValueError("job_variability must be >= 0")

    def node_power(
        self, active_ranks, freq_ghz, *, utilization: float = 1.0
    ) -> np.ndarray:
        """Mean node power draw in Watts; broadcasts over array inputs.

        Ranks beyond the physical core count run on the second hyperthread
        of a busy core and add only ``smt_power_fraction`` of a core's
        dynamic power.
        """
        ranks = np.asarray(active_ranks, dtype=float)
        f = np.asarray(freq_ghz, dtype=float)
        if np.any(ranks < 0):
            raise ValueError("active_ranks must be >= 0")
        if np.any(f <= 0):
            raise ValueError("freq_ghz must be positive")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        phys = np.minimum(ranks, self.physical_cores)
        smt = np.maximum(ranks - self.physical_cores, 0.0)
        effective = phys + self.smt_power_fraction * smt
        dyn = effective * self.per_core_watts * (
            f / self.base_freq_ghz
        ) ** self.freq_exponent
        return self.idle_watts + utilization * dyn

    def full_node_power(self, node: NodeSpec, freq_ghz: float) -> float:
        """Power of a node with every hardware thread busy at ``freq_ghz``."""
        return float(self.node_power(node.total_threads, freq_ghz))

    def sample_job_power(
        self, active_ranks, freq_ghz, rng: np.random.Generator
    ) -> float:
        """One job's realized mean node power: the model value perturbed by
        the per-job log-normal variability."""
        mean = float(self.node_power(active_ranks, freq_ghz))
        if self.job_variability == 0.0:
            return mean
        return mean * float(np.exp(rng.normal(0.0, self.job_variability)))


@dataclass(frozen=True)
class PowerTrace:
    """A timestamped power trace for one node over one job.

    Attributes
    ----------
    times:
        Sample timestamps in seconds (relative to job start), ascending.
    watts:
        Instantaneous power readings, same length as ``times``.
    """

    times: np.ndarray
    watts: np.ndarray

    def __post_init__(self):
        if self.times.shape != self.watts.shape or self.times.ndim != 1:
            raise ValueError("times and watts must be 1-D arrays of equal length")
        if self.times.size > 1 and np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")

    @property
    def n_records(self) -> int:
        """Number of samples that survived gaps."""
        return int(self.times.size)


@dataclass(frozen=True)
class IPMISampler:
    """Simulated IPMI power-sensor polling.

    Produces traces with the artifacts the paper had to handle:

    * fixed polling ``period_s`` with per-sample timestamp jitter,
    * reading noise and 1 W quantization,
    * **gaps**: polling stalls (lost records) arriving as a Poisson process
      with rate ``gap_rate_per_minute``, each wiping out an exponentially
      distributed stretch of samples with mean ``mean_gap_s``.
    """

    period_s: float = 1.0
    timestamp_jitter_s: float = 0.05
    reading_noise_watts: float = 4.0
    gap_rate_per_minute: float = 0.8
    mean_gap_s: float = 15.0

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.timestamp_jitter_s < 0 or self.reading_noise_watts < 0:
            raise ValueError("jitter and noise must be non-negative")
        if self.gap_rate_per_minute < 0 or self.mean_gap_s <= 0:
            raise ValueError("invalid gap parameters")

    def sample(
        self,
        duration_s: float,
        mean_watts: float,
        rng: np.random.Generator,
    ) -> PowerTrace:
        """Sample a trace for a job of ``duration_s`` drawing ``mean_watts``."""
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        if mean_watts < 0:
            raise ValueError("mean_watts must be >= 0")
        n = int(duration_s / self.period_s) + 1
        times = np.arange(n) * self.period_s
        if self.timestamp_jitter_s > 0 and n > 1:
            times = times + rng.uniform(0, self.timestamp_jitter_s, size=n)
            times = np.sort(times)
            # Jitter can create ties at float resolution; nudge them apart.
            eps = 1e-9
            for _ in range(2):
                dup = np.flatnonzero(np.diff(times) <= 0)
                if dup.size == 0:
                    break
                times[dup + 1] = times[dup] + eps

        keep = np.ones(n, dtype=bool)
        if self.gap_rate_per_minute > 0 and duration_s > 0:
            expected_gaps = self.gap_rate_per_minute * duration_s / 60.0
            n_gaps = rng.poisson(expected_gaps)
            for _ in range(n_gaps):
                start = rng.uniform(0, duration_s)
                length = rng.exponential(self.mean_gap_s)
                keep &= ~((times >= start) & (times < start + length))

        watts = mean_watts + rng.normal(0, self.reading_noise_watts, size=n)
        watts = np.maximum(np.rint(watts), 0.0)  # 1 W quantization, no negatives
        return PowerTrace(times=times[keep], watts=watts[keep])
