"""Analytic energy surface: the power model integrated over the runtime model.

The paper's second response variable is per-job total energy (Joules),
estimated on the real testbed by integrating IPMI power traces.  For
dataset generation we need the *noise-free* energy surface, which is simply

    E(op, N, NP, f) = sum_over_nodes P_node(ranks_on_node, f) * t(op, N, NP, f)

with the runtime surface from :class:`repro.perfmodel.runtime.RuntimeModel`
and the node power model from :class:`repro.cluster.power.PowerModel`.
Idle power of the occupied nodes is charged for the whole job duration —
exactly what a server-level power sensor sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.machine import ClusterSpec, wisconsin_cluster
from ..cluster.power import PowerModel
from .runtime import RuntimeModel

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Noise-free per-job energy surface on the simulated testbed."""

    runtime_model: RuntimeModel = field(default_factory=RuntimeModel)
    power_model: PowerModel = field(default_factory=PowerModel)
    cluster: ClusterSpec = field(default_factory=wisconsin_cluster)

    def total_power(self, np_ranks, freq_ghz) -> np.ndarray:
        """Aggregate power (W) of all nodes hosting the job; broadcasts."""
        P = np.asarray(np_ranks, dtype=int)
        f = np.asarray(freq_ghz, dtype=float)
        threads_per_node = self.cluster.node.total_threads
        n_nodes = -(-P // threads_per_node)
        if np.any(P < 1):
            raise ValueError("np_ranks must be >= 1")
        if np.any(n_nodes > self.cluster.n_nodes):
            raise ValueError("job exceeds cluster capacity")
        # Full nodes plus one partial node (vectorized).
        full_nodes = P // threads_per_node
        remainder = P - full_nodes * threads_per_node
        power_full = self.power_model.node_power(threads_per_node, f)
        power_rem = np.where(
            remainder > 0, self.power_model.node_power(remainder, f), 0.0
        )
        return full_nodes * power_full + power_rem

    def energy(self, operator: str, problem_size, np_ranks, freq_ghz) -> np.ndarray:
        """Noise-free job energy in Joules; broadcasts over array inputs."""
        t = self.runtime_model.runtime(operator, problem_size, np_ranks, freq_ghz)
        return self.total_power(np_ranks, freq_ghz) * t
