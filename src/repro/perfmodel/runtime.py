"""Analytic runtime model of HPGMG-FE on the simulated testbed.

The paper's Performance dataset records real HPGMG-FE runtimes on CloudLab
for 3,246 jobs spanning problem sizes of 1.7e3 to 1.1e9 degrees of freedom,
1-128 MPI ranks, and 1.2-2.4 GHz DVFS settings (Table I).  Running those
solves is impossible here (no cluster, and 1e9-DOF multigrid is not a
pure-Python workload), so the offline datasets are generated from this
analytic model instead.  What matters for the reproduction — the AL/GPR
pipeline — is the qualitative *shape* of the response surface, which the
model preserves:

* runtime grows linearly with problem size (the log-log linearity the paper
  confirms in Fig. 2),
* sublinear strong scaling in the rank count, with a communication term
  that erodes speedup for small problems at large NP,
* runtime scales like ``f^-gamma`` in the DVFS frequency with ``gamma < 1``
  (memory-bound multigrid does not scale perfectly with clock),
* distinct cost multipliers per operator flavour (Q2 and mapped variants
  cost more per DOF),
* a floor of a few milliseconds for tiny jobs (launch/setup overhead).

The default constants are calibrated so the generated dataset's runtime
range matches Table I (0.005 - 458 s); a regression test pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RuntimeModel", "OPERATOR_COST"]

#: Relative per-DOF cost of each HPGMG-FE operator flavour.  Q2 spends more
#: flops per DOF than Q1; the affine (mapped) variant adds metric-term work.
OPERATOR_COST = {
    "poisson1": 1.0,
    "poisson2": 2.4,
    "poisson2affine": 3.1,
}


@dataclass(frozen=True)
class RuntimeModel:
    """Deterministic (noise-free) runtime surface ``t(op, N, NP, f)``.

    Parameters
    ----------
    seconds_per_dof:
        Per-core solve cost of ``poisson1`` at the reference frequency.
    freq_exponent:
        Exponent ``gamma`` of the ``(f_ref / f)^gamma`` frequency scaling.
    ref_freq_ghz:
        Frequency at which ``seconds_per_dof`` is calibrated.
    comm_surface_coeff:
        Coefficient of the surface-exchange communication term, seconds per
        boundary DOF equivalent (3-D surface-to-volume: ``(N/NP)^{2/3}``).
    comm_latency_seconds:
        Per-message latency charged ``log2(NP) * n_levels`` times.
    setup_seconds:
        Fixed launch/setup overhead (gives the ~5 ms floor of Table I).
    threads_per_node / physical_cores_per_node:
        Rank placement capacity and physical core count per node.  The
        paper's NP=128 on 4 x 16-core nodes uses both hyperthreads of every
        core; ranks on second hyperthreads only contribute
        ``smt_efficiency`` of a physical core's throughput, which puts the
        realistic strong-scaling knee into the response surface.
    """

    seconds_per_dof: float = 2.6e-6
    freq_exponent: float = 0.75
    ref_freq_ghz: float = 2.4
    comm_surface_coeff: float = 6.0e-7
    comm_latency_seconds: float = 2.0e-5
    setup_seconds: float = 0.004
    threads_per_node: int = 32
    physical_cores_per_node: int = 16
    smt_efficiency: float = 0.35
    operator_cost: dict = field(default_factory=lambda: dict(OPERATOR_COST))

    def __post_init__(self):
        if self.seconds_per_dof <= 0 or self.setup_seconds < 0:
            raise ValueError("cost constants must be positive")
        if self.ref_freq_ghz <= 0:
            raise ValueError("ref_freq_ghz must be positive")
        if self.threads_per_node < 1 or self.physical_cores_per_node < 1:
            raise ValueError("per-node capacities must be >= 1")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise ValueError("smt_efficiency must be in (0, 1]")

    def nodes_needed(self, np_ranks: int) -> int:
        """Number of cluster nodes a job with ``np_ranks`` ranks occupies."""
        if np_ranks < 1:
            raise ValueError("np_ranks must be >= 1")
        return -(-np_ranks // self.threads_per_node)  # ceil division

    def effective_parallelism(self, np_ranks) -> np.ndarray:
        """Physical-core-equivalent parallelism of ``np_ranks`` ranks."""
        P = np.asarray(np_ranks, dtype=float)
        nodes = np.ceil(P / self.threads_per_node)
        phys_capacity = nodes * self.physical_cores_per_node
        phys = np.minimum(P, phys_capacity)
        smt = np.maximum(P - phys_capacity, 0.0)
        return phys + self.smt_efficiency * smt

    def runtime(
        self,
        operator: str,
        problem_size,
        np_ranks,
        freq_ghz,
    ) -> np.ndarray:
        """Noise-free runtime in seconds; broadcasts over array inputs."""
        if operator not in self.operator_cost:
            raise ValueError(
                f"unknown operator {operator!r}; expected one of "
                f"{sorted(self.operator_cost)}"
            )
        N = np.asarray(problem_size, dtype=float)
        P = np.asarray(np_ranks, dtype=float)
        f = np.asarray(freq_ghz, dtype=float)
        if np.any(N <= 0) or np.any(P < 1) or np.any(f <= 0):
            raise ValueError("problem_size, np_ranks and freq_ghz must be positive")

        cost = self.operator_cost[operator]
        freq_scale = (self.ref_freq_ghz / f) ** self.freq_exponent
        # Compute term: work split over physical-core-equivalent parallelism.
        P_eff = self.effective_parallelism(P)
        t_work = self.seconds_per_dof * cost * N / P_eff * freq_scale
        # Communication: surface exchange per multigrid level plus latency.
        n_levels = np.log2(np.maximum(N, 2.0)) / 3.0  # ~levels of a 3-D hierarchy
        surface = (N / P) ** (2.0 / 3.0)
        t_comm = np.where(
            P > 1,
            self.comm_surface_coeff * surface * n_levels
            + self.comm_latency_seconds * np.log2(np.maximum(P, 2.0)) * n_levels,
            0.0,
        )
        return self.setup_seconds + t_work + t_comm

    def speedup(self, operator: str, problem_size, np_ranks, freq_ghz) -> np.ndarray:
        """Strong-scaling speedup relative to one rank at the same frequency."""
        t1 = self.runtime(operator, problem_size, 1, freq_ghz)
        tp = self.runtime(operator, problem_size, np_ranks, freq_ghz)
        return t1 / tp
