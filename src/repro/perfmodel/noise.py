"""Measurement-noise models for the synthetic performance/power data.

The paper emphasizes that computer performance measurements are noisy and
that the Power dataset is *much* noisier than the Performance dataset
(Fig. 1), which is why the GPR noise hyperparameter and repeated
measurements matter.  We model noise as multiplicative log-normal deviations
(runtime and energy are positive and their variability grows with their
magnitude) plus a small probability of one-sided outliers (OS jitter,
straggler ranks) that only ever slow a job down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel", "PERFORMANCE_NOISE", "POWER_NOISE"]


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal noise with one-sided outliers.

    A sample is ``value * exp(eps) * (1 + J)`` with
    ``eps ~ Normal(0, sigma)`` and, with probability ``outlier_prob``,
    ``J ~ Exponential(outlier_scale)`` (otherwise ``J = 0``).

    Attributes
    ----------
    sigma:
        Standard deviation of the log-normal component.
    outlier_prob:
        Probability that a measurement is hit by a slowdown event.
    outlier_scale:
        Mean relative magnitude of a slowdown event.
    """

    sigma: float = 0.03
    outlier_prob: float = 0.02
    outlier_scale: float = 0.25

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError("outlier_prob must be in [0, 1]")
        if self.outlier_scale < 0:
            raise ValueError("outlier_scale must be >= 0")

    def apply(self, values, rng: np.random.Generator) -> np.ndarray:
        """Return noisy copies of ``values`` (broadcasts over arrays)."""
        values = np.asarray(values, dtype=float)
        if np.any(values < 0):
            raise ValueError("noise model expects non-negative values")
        eps = rng.normal(0.0, self.sigma, size=values.shape)
        out = values * np.exp(eps)
        if self.outlier_prob > 0:
            hit = rng.random(values.shape) < self.outlier_prob
            jitter = rng.exponential(self.outlier_scale, size=values.shape)
            out = out * np.where(hit, 1.0 + jitter, 1.0)
        return out


#: Noise level of the Performance dataset (tight: dedicated bare-metal runs).
PERFORMANCE_NOISE = NoiseModel(sigma=0.03, outlier_prob=0.02, outlier_scale=0.25)

#: Noise level of the Power/Energy responses (loose: IPMI sampling artifacts,
#: shared power-plane effects — visibly noisier in the paper's Fig. 1b).
POWER_NOISE = NoiseModel(sigma=0.12, outlier_prob=0.05, outlier_scale=0.35)
