"""Analytic HPGMG-FE performance/energy surfaces and measurement noise.

These models stand in for the paper's real testbed measurements when
generating the paper-scale offline datasets (see DESIGN.md, Section 2).

Public API::

    from repro.perfmodel import RuntimeModel, EnergyModel, NoiseModel
"""

from .calibrate import CalibrationResult, calibrate_runtime_model
from .energymodel import EnergyModel
from .noise import PERFORMANCE_NOISE, POWER_NOISE, NoiseModel
from .runtime import OPERATOR_COST, RuntimeModel

__all__ = [
    "RuntimeModel",
    "CalibrationResult",
    "calibrate_runtime_model",
    "EnergyModel",
    "NoiseModel",
    "PERFORMANCE_NOISE",
    "POWER_NOISE",
    "OPERATOR_COST",
]
