"""Calibrating the analytic runtime model against recorded data.

The reproduction's datasets come *from* the analytic model, but a
downstream user will want the opposite direction: given a recorded
campaign (ours, the paper's CSVs, or their own), recover the model
constants.  This module fits :class:`~repro.perfmodel.runtime.RuntimeModel`
to job records by nonlinear least squares in log space, and reports the
fit quality — which doubles as a self-consistency check of the whole
pipeline (fitting data generated at one parameter set must recover it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import least_squares

from ..datasets.dataset import PerfDataset
from .runtime import RuntimeModel

__all__ = ["CalibrationResult", "calibrate_runtime_model"]

#: (parameter name, log-space lower bound, log-space upper bound)
_FREE_PARAMS = (
    ("seconds_per_dof", 1e-9, 1e-3),
    ("freq_exponent", 0.05, 2.0),
    ("comm_surface_coeff", 1e-10, 1e-4),
    ("comm_latency_seconds", 1e-8, 1e-2),
    ("setup_seconds", 1e-5, 1.0),
)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a runtime-model calibration.

    Attributes
    ----------
    model:
        The fitted :class:`RuntimeModel`.
    rmse_log10:
        Residual RMSE of log10(runtime) over the calibration records.
    n_records:
        Number of job records used.
    parameters:
        The fitted free-parameter values by name.
    """

    model: RuntimeModel
    rmse_log10: float
    n_records: int
    parameters: dict


def _predict_log10(theta: np.ndarray, base: RuntimeModel, records) -> np.ndarray:
    params = {
        name: float(np.exp(theta[i])) for i, (name, _, _) in enumerate(_FREE_PARAMS)
    }
    model = replace(base, **params)
    out = np.empty(len(records))
    for j, r in enumerate(records):
        out[j] = np.log10(
            float(model.runtime(r.operator, r.problem_size, r.np_ranks, r.freq_ghz))
        )
    return out


def calibrate_runtime_model(
    dataset: PerfDataset,
    *,
    base: RuntimeModel | None = None,
    max_records: int = 600,
    rng=None,
) -> CalibrationResult:
    """Fit the runtime model's five cost constants to recorded runtimes.

    Parameters
    ----------
    dataset:
        Job records with ``runtime_seconds`` (any operator mix; the
        per-operator cost ratios are kept at their defaults).
    base:
        Starting model; also supplies the fixed parameters.
    max_records:
        Random subsample cap (the fit is O(n) per evaluation).
    """
    if len(dataset) == 0:
        raise ValueError("dataset is empty")
    base = base or RuntimeModel()
    records = [r for r in dataset.records if r.runtime_seconds > 0]
    if not records:
        raise ValueError("no records with positive runtime")
    rng = np.random.default_rng(rng)
    if len(records) > max_records:
        idx = rng.choice(len(records), size=max_records, replace=False)
        records = [records[i] for i in idx]
    target = np.log10(np.array([r.runtime_seconds for r in records]))

    theta0 = np.log([getattr(base, name) for name, _, _ in _FREE_PARAMS])
    lo = np.log([low for _, low, _ in _FREE_PARAMS])
    hi = np.log([high for _, _, high in _FREE_PARAMS])
    theta0 = np.clip(theta0, lo, hi)

    result = least_squares(
        lambda t: _predict_log10(t, base, records) - target,
        theta0,
        bounds=(lo, hi),
        method="trf",
    )
    params = {
        name: float(np.exp(result.x[i])) for i, (name, _, _) in enumerate(_FREE_PARAMS)
    }
    fitted = replace(base, **params)
    rmse = float(np.sqrt(np.mean(result.fun**2)))
    return CalibrationResult(
        model=fitted, rmse_log10=rmse, n_records=len(records), parameters=params
    )
