"""Tests for the ASCII chart renderers."""

import numpy as np
import pytest

from repro.viz import heatmap, histogram, line_chart, scatter_chart


def test_line_chart_contains_markers_and_legend():
    x = np.linspace(0, 10, 30)
    out = line_chart(
        {"alpha": (x, np.sin(x)), "beta": (x, np.cos(x))},
        title="waves", x_label="t", y_label="amp",
    )
    assert "waves" in out
    assert "a" in out and "b" in out
    assert "[a] alpha" in out and "[b] beta" in out
    assert "t" in out


def test_line_chart_logy():
    x = np.arange(1, 20, dtype=float)
    out = line_chart({"e errors": (x, np.exp(-x))}, logy=True)
    assert "(log10)" in out


def test_line_chart_requires_series():
    with pytest.raises(ValueError):
        line_chart({})


def test_line_chart_constant_series_no_crash():
    x = np.arange(5, dtype=float)
    out = line_chart({"c const": (x, np.ones(5))})
    assert "c" in out


def test_scatter_chart_overlay():
    rng = np.random.default_rng(0)
    out = scatter_chart(
        rng.random(20), rng.random(20),
        overlay={"x extras": (np.array([0.5]), np.array([0.5]))},
    )
    assert "o" in out and "x" in out


def test_heatmap_marks_maximum():
    Z = np.zeros((5, 7))
    Z[2, 3] = 5.0
    out = heatmap(Z, title="peak")
    assert "peak" in out
    lines = [l for l in out.splitlines() if l.startswith("  ")]
    assert "X" in lines[2]
    assert "X = maximum" in out


def test_heatmap_without_max_marker():
    out = heatmap(np.arange(6.0).reshape(2, 3), mark_max=False)
    assert "X = maximum" not in out


def test_heatmap_validation():
    with pytest.raises(ValueError):
        heatmap(np.zeros(5))
    with pytest.raises(ValueError):
        heatmap(np.full((2, 2), np.nan))


def test_heatmap_constant_array():
    out = heatmap(np.full((3, 3), 2.5))
    assert "range: [2.5, 2.5]" in out


def test_histogram_counts():
    out = histogram(np.concatenate([np.zeros(30), np.ones(10)]), bins=2)
    assert "30" in out and "10" in out
    assert "#" in out


def test_histogram_title():
    out = histogram(np.arange(10.0), bins=5, title="dist")
    assert out.splitlines()[0] == "dist"
