"""Meta-tests of the public API surface.

Guards the package against the classic open-source rot: ``__all__`` names
that don't exist, public modules without docstrings, and subpackage
re-exports drifting from the implementation modules.
"""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.gp",
    "repro.al",
    "repro.hpgmg",
    "repro.cluster",
    "repro.perfmodel",
    "repro.datasets",
    "repro.experiments",
    "repro.viz",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def _iter_modules():
    for pkg_name in SUBPACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg_name, pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                full = f"{pkg_name}.{info.name}"
                yield full, importlib.import_module(full)


def test_every_module_has_a_docstring():
    missing = [
        name for name, module in _iter_modules() if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_no_duplicate_exports_across_all():
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        exports = list(module.__all__)
        assert len(exports) == len(set(exports)), f"{name} has duplicate __all__ entries"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_key_classes_importable_from_roots():
    from repro import PerformanceModeler  # noqa: F401
    from repro.al import ActiveLearner, OnlineCampaign  # noqa: F401
    from repro.datasets import generate_performance_dataset  # noqa: F401
    from repro.gp import GaussianProcessRegressor, TrendGPR  # noqa: F401
    from repro.hpgmg import MultigridSolver3, run_benchmark  # noqa: F401
