"""Tests for the high-level PerformanceModeler facade."""

import numpy as np
import pytest

from repro.modeler import PerformanceModeler, Suggestion


@pytest.fixture(scope="module")
def fitted(performance_dataset):
    ds = performance_dataset.subset(operator="poisson1", np_ranks=32)
    modeler = PerformanceModeler(
        ds, variables=("problem_size", "freq_ghz"), rng=0
    )
    return modeler.fit()


def test_predict_natural_units(fitted):
    median, sd_factor = fitted.predict_response([(1e8, 2.4), (1e8, 1.2)])
    assert median.shape == (2,)
    # Lower frequency -> slower.
    assert median[1] > median[0]
    # Plausible runtime scale for 1e8 DOF at NP=32 (see perfmodel).
    assert 1.0 < median[0] < 100.0
    assert np.all(sd_factor > 1.0)


def test_predict_accepts_dicts(fitted):
    m1, _ = fitted.predict_response([{"problem_size": 1e7, "freq_ghz": 1.8}])
    m2, _ = fitted.predict_response([(1e7, 1.8)])
    assert m1[0] == pytest.approx(m2[0])


def test_predict_log10_matches_response(fitted):
    mu, sd = fitted.predict_log10([(1e7, 1.8)])
    median, sd_factor = fitted.predict_response([(1e7, 1.8)])
    assert 10 ** mu[0] == pytest.approx(median[0])
    assert 10 ** sd[0] == pytest.approx(sd_factor[0])


def test_three_variable_model(performance_dataset):
    ds = performance_dataset.subset(operator="poisson2")
    modeler = PerformanceModeler(ds, rng=0).fit()
    median, _ = modeler.predict_response([(1e8, 32, 2.4), (1e8, 128, 2.4)])
    # More ranks -> faster for a large problem.
    assert median[1] < median[0]


def test_memory_usage_response(performance_dataset):
    """The paper: 'models for ... memory usage, and many others'."""
    ds = performance_dataset.subset(operator="poisson1", np_ranks=32)
    modeler = PerformanceModeler(
        ds,
        variables=("problem_size", "freq_ghz"),
        response="max_rss_mb_node0",
        rng=0,
    ).fit()
    median, _ = modeler.predict_response([(1e8, 2.4)])
    # 1e8 DOF x 48 B ~ 4.8 GB on one node.
    assert 2_000 < median[0] < 12_000


def test_energy_response(power_dataset):
    ds = power_dataset.subset(operator="poisson2")
    modeler = PerformanceModeler(
        ds,
        variables=("problem_size", "np_ranks", "freq_ghz"),
        response="energy_joules",
        rng=0,
    ).fit()
    median, _ = modeler.predict_response([(1e9, 32, 1.8)])
    assert 1e3 < median[0] < 1e6


def test_suggestions_diverse_and_typed(fitted):
    suggestions = fitted.suggest_experiments(3)
    assert len(suggestions) == 3
    assert all(isinstance(s, Suggestion) for s in suggestions)
    keys = {tuple(sorted(s.values)) for s in suggestions}
    assert keys == {("freq_ghz", "problem_size")}
    configs = {tuple(s.values.values()) for s in suggestions}
    assert len(configs) == 3  # distinct configurations
    for s in suggestions:
        assert s.predictive_sd_log10 > 0
        assert s.predicted_response > 0


def test_suggestions_cost_efficiency(fitted):
    vr = fitted.suggest_experiments(1, strategy="variance")[0]
    ce = fitted.suggest_experiments(1, strategy="cost-efficiency")[0]
    # CE must not suggest a more expensive configuration than VR.
    assert ce.predicted_response <= vr.predicted_response * 1.001
    with pytest.raises(ValueError):
        fitted.suggest_experiments(1, strategy="thompson")
    with pytest.raises(ValueError):
        fitted.suggest_experiments(0)


def test_uncertainty_summary(fitted):
    summary = fitted.uncertainty_summary()
    assert set(summary) == {"amsd", "max_sd", "min_sd", "noise_sd"}
    assert 0 < summary["min_sd"] <= summary["amsd"] <= summary["max_sd"]
    assert summary["noise_sd"] >= np.sqrt(1e-1) * 0.999


def test_cross_validated_rmse(fitted):
    rmse = fitted.cross_validated_rmse()
    assert 0 < rmse < 0.5  # log10 space


def test_requires_fit(performance_dataset):
    ds = performance_dataset.subset(operator="poisson1", np_ranks=32)
    modeler = PerformanceModeler(ds, variables=("problem_size", "freq_ghz"))
    with pytest.raises(RuntimeError):
        modeler.predict_response([(1e7, 1.8)])


def test_validation(performance_dataset):
    from repro.datasets import PerfDataset

    with pytest.raises(ValueError):
        PerformanceModeler(PerfDataset(name="empty"))
    ds = performance_dataset.subset(operator="poisson1", np_ranks=32)
    modeler = PerformanceModeler(ds, variables=("problem_size", "freq_ghz")).fit()
    with pytest.raises(ValueError):
        modeler.predict_response([(1e7,)])  # wrong arity
    with pytest.raises(ValueError):
        modeler.predict_response([(-5.0, 1.8)])  # log of negative size
