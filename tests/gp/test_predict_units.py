"""Unit consistency across every predictive-uncertainty path.

``return_std``, ``diag(return_cov)``, ``predict_gradient``'s std, and
posterior samples must all describe the same distribution in the same
(target) units — fitted or prior, with or without the noise term, exact
or approximate solver, before and after a registry save/load round-trip.
"""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor


def _problem(n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 10.0, size=(n, 2))
    y = np.sin(X[:, 0]) + 0.5 * np.cos(0.7 * X[:, 1]) + 0.1 * rng.standard_normal(n)
    return X, y


def _queries(k=15, seed=1):
    return np.random.default_rng(seed).uniform(-2.0, 12.0, size=(k, 2))


def _fitted(**kw):
    defaults = dict(
        noise_variance=1e-2, noise_variance_bounds=(1e-2, 1e2),
        rng=0, n_restarts=0,
    )
    defaults.update(kw)
    X, y = _problem()
    return GaussianProcessRegressor(**defaults).fit(X, y)


def _assert_std_matches_cov_diag(model, Xq):
    for include_noise in (True, False):
        mean_s, sd = model.predict(Xq, return_std=True, include_noise=include_noise)
        mean_c, cov = model.predict(Xq, return_cov=True, include_noise=include_noise)
        assert np.array_equal(mean_s, mean_c)
        assert sd == pytest.approx(
            np.sqrt(np.clip(np.diag(cov), 0.0, None)), abs=1e-10
        )
    # The noise term adds exactly sigma_n^2 (in target variance units).
    sd_obs = model.predict(Xq, return_std=True)[1]
    sd_lat = model.predict(Xq, return_std=True, include_noise=False)[1]
    y_var_scale = (
        model._fit.y_std**2 if model._fit is not None
        else (model._afit.y_std**2 if model._afit is not None else 1.0)
    )
    assert sd_obs**2 - sd_lat**2 == pytest.approx(
        np.full(len(Xq), model.noise_variance_ * y_var_scale), rel=1e-9
    )


@pytest.mark.parametrize(
    "solver", ["exact", {"name": "nystrom", "n_inducing": 24},
               {"name": "rff", "n_features": 128}]
)
def test_std_matches_cov_diag_fitted(solver):
    model = _fitted(solver=solver)
    _assert_std_matches_cov_diag(model, _queries())


@pytest.mark.parametrize("normalize_y", [False, True])
def test_std_matches_cov_diag_normalized(normalize_y):
    model = _fitted(normalize_y=normalize_y)
    _assert_std_matches_cov_diag(model, _queries())


def test_std_matches_cov_diag_prior():
    model = GaussianProcessRegressor(rng=0)
    _assert_std_matches_cov_diag(model, _queries())


@pytest.mark.parametrize(
    "solver", ["exact", {"name": "nystrom", "n_inducing": 24},
               {"name": "rff", "n_features": 128}]
)
def test_std_matches_cov_diag_after_registry_round_trip(solver, tmp_path):
    from repro.serve.registry import ModelRegistry

    model = _fitted(solver=solver)
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model)
    restored, _meta = registry.load()
    Xq = _queries()
    _assert_std_matches_cov_diag(restored, Xq)
    m0, s0 = model.predict(Xq, return_std=True)
    m1, s1 = restored.predict(Xq, return_std=True)
    assert np.allclose(m0, m1, atol=0, rtol=0)
    assert np.allclose(s0, s1, atol=0, rtol=0)


@pytest.mark.parametrize("normalize_y", [False, True])
def test_predict_gradient_matches_observation_std(normalize_y):
    # predict_gradient's d_std is documented as the gradient of the
    # *observation* SD — the include_noise=True predict path, in target
    # units.  Check both gradients against central finite differences.
    model = _fitted(normalize_y=normalize_y, n_restarts=1)
    x0 = np.array([4.3, 5.1])
    d_mean, d_std = model.predict_gradient(x0)
    eps = 1e-5
    for j in range(2):
        step = np.zeros(2)
        step[j] = eps
        mp, sp = model.predict((x0 + step)[np.newaxis, :], return_std=True)
        mm, sm = model.predict((x0 - step)[np.newaxis, :], return_std=True)
        assert d_mean[j] == pytest.approx((mp[0] - mm[0]) / (2 * eps), rel=1e-4, abs=1e-7)
        assert d_std[j] == pytest.approx((sp[0] - sm[0]) / (2 * eps), rel=1e-4, abs=1e-7)


def test_sample_scale_matches_predictive_std():
    # Posterior samples are observation draws: their spread tracks the
    # include_noise=True std, not the latent one.
    model = _fitted(n_restarts=1)
    Xq = _queries(5, seed=7)
    sd = model.predict(Xq, return_std=True)[1]
    samples = model.sample_y(Xq, n_samples=4000, rng=3)
    assert np.std(samples, axis=1) == pytest.approx(sd, rel=0.15)
