"""Per-point noise (heteroscedastic alpha) through the GP stack.

Covers the contract of ``fit(..., alpha=...)``: alpha actually changes the
posterior, defaults reproduce the scalar path bit-exactly, precision-fused
repeats match the closed-form pooled observation, serialization round-trips
bit-identically, and the fixed-noise conflict is rejected loudly.
"""

import numpy as np
import pytest

from repro.gp.gpr import GaussianProcessRegressor
from repro.gp.kernels import RBF, ConstantKernel


def _data(n=14, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 6, n))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(n)
    return X, y


def _fixed_kernel_model(**kw):
    return GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        optimizer=None,
        **kw,
    )


def test_alpha_defaults_reproduce_scalar_path_bit_identically():
    X, y = _data()
    a = GaussianProcessRegressor(rng=0).fit(X, y)
    b = GaussianProcessRegressor(rng=0).fit(X, y, alpha=None)
    assert a.to_dict() == b.to_dict()
    mu_a, sd_a = a.predict(X, return_std=True)
    mu_b, sd_b = b.predict(X, return_std=True)
    np.testing.assert_array_equal(mu_a, mu_b)
    np.testing.assert_array_equal(sd_a, sd_b)


def test_alpha_widens_posterior_at_noisy_points():
    X, y = _data()
    alpha = np.full(X.shape[0], 1e-8)
    alpha[3] = 4.0  # one wildly unreliable observation
    clean = _fixed_kernel_model(noise_variance=1e-6).fit(X, y)
    noisy = _fixed_kernel_model(noise_variance=1e-6).fit(X, y, alpha=alpha)
    _, sd_clean = clean.predict(X, return_std=True)
    _, sd_noisy = noisy.predict(X, return_std=True)
    # Latent sd at the distrusted point grows (bounded by how strongly the
    # correlated neighbours still pin it down); a trusted far-away point
    # barely moves.
    assert sd_noisy[3] > sd_clean[3] * 1.5
    assert sd_noisy[-1] == pytest.approx(sd_clean[-1], rel=1e-2)
    # And the mean stops interpolating the distrusted observation.
    assert abs(noisy.predict(X[3:4])[0] - y[3]) > abs(
        clean.predict(X[3:4])[0] - y[3]
    )


def test_fused_repeats_match_closed_form_pooled_observation():
    """k repeats with variance s^2 fused to (mean, s^2/k) must give the
    same posterior as feeding the k rows with per-point alpha s^2."""
    X, y = _data(10)
    s2 = 0.3
    k = 4
    x_rep = np.full((k, 1), 2.5)
    rng = np.random.default_rng(3)
    y_rep = 1.0 + np.sqrt(s2) * rng.standard_normal(k)

    X_all = np.vstack([X, x_rep])
    y_all = np.concatenate([y, y_rep])
    alpha_all = np.concatenate([np.full(X.shape[0], 1e-10), np.full(k, s2)])
    raw = _fixed_kernel_model(noise_variance=1e-9).fit(
        X_all, y_all, alpha=alpha_all
    )

    X_fused = np.vstack([X, x_rep[:1]])
    y_fused = np.concatenate([y, [y_rep.mean()]])
    alpha_fused = np.concatenate([np.full(X.shape[0], 1e-10), [s2 / k]])
    fused = _fixed_kernel_model(noise_variance=1e-9).fit(
        X_fused, y_fused, alpha=alpha_fused
    )

    Xq = np.linspace(0, 6, 25)[:, np.newaxis]
    mu_raw, sd_raw = raw.predict(Xq, return_std=True)
    mu_fused, sd_fused = fused.predict(Xq, return_std=True)
    np.testing.assert_allclose(mu_raw, mu_fused, atol=1e-8)
    np.testing.assert_allclose(sd_raw, sd_fused, atol=1e-6)


def test_heteroscedastic_serialization_round_trips_bit_identically():
    X, y = _data()
    alpha = np.geomspace(1e-4, 1.0, X.shape[0])
    model = GaussianProcessRegressor(rng=0).fit(X, y, alpha=alpha)
    payload = model.to_dict()
    assert "noise_alpha" in payload["fit"]
    restored = GaussianProcessRegressor.from_dict(payload)
    assert restored.to_dict() == payload
    Xq = np.linspace(0, 6, 9)[:, np.newaxis]
    mu_a, sd_a = model.predict(Xq, return_std=True)
    mu_b, sd_b = restored.predict(Xq, return_std=True)
    np.testing.assert_array_equal(mu_a, mu_b)
    np.testing.assert_array_equal(sd_a, sd_b)
    np.testing.assert_array_equal(restored.noise_alpha_, alpha)


def test_scalar_fit_payload_has_no_alpha_key():
    """Absence implies scalar: legacy payloads stay byte-identical."""
    X, y = _data()
    model = GaussianProcessRegressor(rng=0).fit(X, y)
    assert "noise_alpha" not in model.to_dict()["fit"]
    assert model.noise_alpha_ is None


def test_alpha_conflicts_with_fixed_noise_bounds():
    X, y = _data()
    model = GaussianProcessRegressor(
        noise_variance=0.1, noise_variance_bounds="fixed"
    )
    with pytest.raises(ValueError, match="fixed"):
        model.fit(X, y, alpha=np.full(X.shape[0], 0.1))


def test_alpha_validation():
    X, y = _data()
    model = GaussianProcessRegressor()
    with pytest.raises(ValueError):
        model.fit(X, y, alpha=np.ones(3))  # wrong length
    with pytest.raises(ValueError):
        model.fit(X, y, alpha=np.full(X.shape[0], -1.0))  # negative
    bad = np.ones(X.shape[0])
    bad[0] = np.nan
    with pytest.raises(ValueError):
        model.fit(X, y, alpha=bad)  # non-finite


def test_update_with_alpha_matches_full_refit_posterior():
    X, y = _data()
    alpha = np.full(X.shape[0], 0.05)
    base = _fixed_kernel_model(noise_variance=1e-2).fit(X, y, alpha=alpha)
    x_new = np.array([[3.3], [4.4]])
    y_new = np.array([0.5, -0.2])
    a_new = np.array([0.4, 0.01])
    base.update(x_new, y_new, alpha=a_new)

    full = _fixed_kernel_model(noise_variance=1e-2).fit(
        np.vstack([X, x_new]),
        np.concatenate([y, y_new]),
        alpha=np.concatenate([alpha, a_new]),
    )
    Xq = np.linspace(0, 6, 17)[:, np.newaxis]
    mu_u, sd_u = base.predict(Xq, return_std=True)
    mu_f, sd_f = full.predict(Xq, return_std=True)
    np.testing.assert_allclose(mu_u, mu_f, atol=1e-8)
    np.testing.assert_allclose(sd_u, sd_f, atol=1e-7)
    np.testing.assert_array_equal(
        base.noise_alpha_, np.concatenate([alpha, a_new])
    )


def test_lml_gradient_with_alpha_matches_finite_differences():
    X, y = _data(12)
    alpha = np.geomspace(1e-3, 0.5, X.shape[0])
    model = GaussianProcessRegressor(rng=0).fit(X, y, alpha=alpha)
    theta = np.append(model.kernel_.theta, np.log(model.noise_variance_))
    _, grad = model.log_marginal_likelihood(theta, eval_gradient=True)
    eps = 1e-6
    for i in range(len(theta)):
        t_hi, t_lo = theta.copy(), theta.copy()
        t_hi[i] += eps
        t_lo[i] -= eps
        fd = (
            model.log_marginal_likelihood(t_hi)
            - model.log_marginal_likelihood(t_lo)
        ) / (2 * eps)
        np.testing.assert_allclose(grad[i], fd, rtol=1e-4, atol=1e-7)


def test_approximate_backend_falls_back_to_exact_with_alpha():
    X, y = _data(30)
    model = GaussianProcessRegressor(solver="nystrom", rng=0)
    with pytest.warns(RuntimeWarning, match="exact"):
        model.fit(X, y, alpha=np.full(X.shape[0], 0.01))
    assert model.solver_info["name"] == "exact"


def test_loocv_accounts_for_alpha():
    from repro.gp.loocv import loo_residuals

    X, y = _data()
    alpha = np.full(X.shape[0], 1e-8)
    alpha[5] = 10.0
    hom = _fixed_kernel_model(noise_variance=1e-2).fit(X, y)
    het = _fixed_kernel_model(noise_variance=1e-2).fit(X, y, alpha=alpha)
    res_hom = loo_residuals(hom)
    res_het = loo_residuals(het)
    assert res_het.std[5] > res_hom.std[5]  # distrusted point: wider LOO band
    assert np.all(np.isfinite(res_het.mean))


def test_model_health_reports_heteroscedastic_and_skips_floor_pin():
    from repro.al.guardrails import HealthConfig, ModelHealth

    X, y = _data(16)
    # Noise pinned at its lower bound would normally flag; with alpha the
    # pin is expected (alpha carries the noise) and must not flag.
    model = GaussianProcessRegressor(
        noise_variance_bounds=(1e-6, 1e3), rng=0
    ).fit(X, y, alpha=np.full(X.shape[0], 0.05))
    report = ModelHealth(HealthConfig()).check(model)
    assert report.heteroscedastic
    assert not any("noise" in issue and "floor" in issue for issue in report.issues)
