"""Tests for leave-one-out pseudo-likelihood model selection."""

import numpy as np
import pytest

from repro.gp import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    fit_loocv,
    loo_pseudo_likelihood,
    loo_residuals,
)


def _model_and_data(seed=0, n=14):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 6, size=n))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(n)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    return model, X, y


def test_loo_matches_brute_force():
    """The O(1) LOO formulas must equal actually refitting without point i."""
    model, X, y = _model_and_data()
    res = loo_residuals(model)
    for i in range(len(y)):
        mask = np.ones(len(y), dtype=bool)
        mask[i] = False
        sub = GaussianProcessRegressor(
            kernel=model.kernel_,
            noise_variance=model.noise_variance_,
            noise_variance_bounds="fixed",
            optimizer=None,
        ).fit(X[mask], y[mask])
        mu_i, sd_i = sub.predict(X[i : i + 1], return_std=True, include_noise=True)
        assert res.mean[i] == pytest.approx(mu_i[0], rel=1e-6, abs=1e-8)
        assert res.std[i] == pytest.approx(sd_i[0], rel=1e-5, abs=1e-8)


def test_loo_requires_fitted_model():
    model = GaussianProcessRegressor()
    with pytest.raises(RuntimeError):
        loo_residuals(model)


def test_pseudo_likelihood_prefers_reasonable_hypers():
    rng = np.random.default_rng(0)
    X = np.sort(rng.uniform(0, 6, size=14))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(14)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, (1e-3, 1e3)),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    good = loo_pseudo_likelihood(model, np.log([1.0]), X, y)
    bad = loo_pseudo_likelihood(model, np.log([100.0]), X, y)
    assert good > bad


def test_pseudo_likelihood_shape_validated():
    model, X, y = _model_and_data()  # fully fixed: theta is empty
    with pytest.raises(ValueError, match="shape"):
        loo_pseudo_likelihood(model, np.log([0.01]), X, y)


def test_fit_loocv_improves_pseudo_likelihood():
    model, X, y = _model_and_data()
    # Free the length scale and noise for the LOO fit.
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, (1e-2, 1e2)) * RBF(5.0, (1e-2, 1e2)),
        noise_variance=0.5,
        noise_variance_bounds=(1e-4, 10.0),
        n_restarts=1,
        rng=0,
    )
    before = loo_pseudo_likelihood(
        model,
        np.log([1.0, 5.0, 0.5]),
        X,
        y,
    )
    outcome = fit_loocv(model, X, y, n_restarts=1)
    assert -outcome.value >= before - 1e-9
    assert model.fitted
    # The fitted model predicts well.
    pred = model.predict(X)
    assert np.sqrt(np.mean((pred - y) ** 2)) < 0.2


def test_fit_loocv_restores_optimizer_setting():
    model, X, y = _model_and_data()
    model.optimizer = "lbfgs"
    fit_loocv(model, X, y, n_restarts=0)
    assert model.optimizer == "lbfgs"


def test_pseudo_likelihood_state_restored():
    model, X, y = _model_and_data()
    before = model._theta().copy()
    loo_pseudo_likelihood(model, before + 0.7, X, y)
    np.testing.assert_allclose(model._theta(), before)


def test_standardized_residuals_flag_planted_outlier():
    """A grossly corrupted target gets |z| >> 3; clean points stay small."""
    rng = np.random.default_rng(3)
    X = np.sort(rng.uniform(0, 6, size=20))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.02 * rng.standard_normal(20)
    y[7] += 4.0  # planted outlier, ~200 noise SDs off the surface
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.02**2,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)

    from repro.gp import loo_standardized_residuals

    z = loo_standardized_residuals(model)
    assert z.shape == (20,)
    assert abs(z[7]) > 10.0
    assert np.argmax(np.abs(z)) == 7
    clean = np.abs(np.delete(z, 7))
    # The outlier dominates; most clean points stay far below it (its
    # immediate neighbours are contaminated through the smooth kernel).
    assert np.median(clean) < abs(z[7]) / 10


def test_standardized_residuals_near_standard_normal_when_clean():
    rng = np.random.default_rng(11)
    X = np.sort(rng.uniform(0, 6, size=40))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(40)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.05**2,
        noise_variance_bounds="fixed",
        optimizer=None,
        normalize_y=True,
    ).fit(X, y)

    from repro.gp import loo_standardized_residuals

    z = loo_standardized_residuals(model)
    # Well-specified model: z-scores are ~N(0, 1) regardless of
    # normalize_y (the standardization cancels the target scaling).
    assert np.mean(np.abs(z) > 3.0) <= 0.05
    assert 0.3 < np.std(z) < 3.0


def test_standardized_residuals_require_fitted_model():
    with pytest.raises(RuntimeError):
        from repro.gp import loo_standardized_residuals

        loo_standardized_residuals(GaussianProcessRegressor())
