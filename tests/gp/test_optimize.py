"""Tests for the multi-restart L-BFGS-B wrapper."""

import numpy as np
import pytest

from repro.gp import minimize_with_restarts


def _quadratic(center):
    def f(theta):
        d = theta - center
        return float(d @ d), 2 * d

    return f


def test_finds_minimum_of_quadratic():
    center = np.array([0.3, -0.2])
    out = minimize_with_restarts(
        _quadratic(center), np.zeros(2), np.array([[-2, 2], [-2, 2]]), n_restarts=0
    )
    np.testing.assert_allclose(out.theta, center, atol=1e-6)
    assert out.value == pytest.approx(0.0, abs=1e-10)


def test_respects_bounds():
    center = np.array([5.0])  # outside the box
    out = minimize_with_restarts(
        _quadratic(center), np.zeros(1), np.array([[-1.0, 1.0]]), n_restarts=2, rng=0
    )
    assert -1.0 <= out.theta[0] <= 1.0
    assert out.theta[0] == pytest.approx(1.0, abs=1e-8)


def test_restarts_escape_local_minimum():
    """A bimodal objective where the deterministic start hits the bad basin."""

    def f(theta):
        x = theta[0]
        # Minima near x=-1 (value ~0.5) and x=2 (value 0); barrier between.
        val = 0.5 * (x + 1) ** 2 * (x < 0.5) + ((x - 2) ** 2) * (x >= 0.5) + 0.5 * (x < 0.5)
        grad = np.array([(x + 1) * (x < 0.5) + 2 * (x - 2) * (x >= 0.5)])
        return float(val), grad

    none = minimize_with_restarts(
        f, np.array([-1.0]), np.array([[-3.0, 3.0]]), n_restarts=0
    )
    assert none.theta[0] == pytest.approx(-1.0, abs=1e-6)  # stuck

    many = minimize_with_restarts(
        f, np.array([-1.0]), np.array([[-3.0, 3.0]]), n_restarts=8, rng=0
    )
    assert many.theta[0] == pytest.approx(2.0, abs=1e-4)
    assert many.value < none.value


def test_nonfinite_objective_handled():
    def f(theta):
        if theta[0] < 0:
            return np.inf, np.zeros(1)
        return float(theta[0] ** 2), np.array([2 * theta[0]])

    out = minimize_with_restarts(
        f, np.array([1.0]), np.array([[-2.0, 2.0]]), n_restarts=3, rng=1
    )
    assert np.isfinite(out.value)
    # The infinite half-space wall hampers the line search; it must still
    # land close to the constrained optimum without blowing up.
    assert 0.0 <= out.theta[0] < 0.1
    assert out.value < 0.01


def test_outcome_records_all_starts():
    out = minimize_with_restarts(
        _quadratic(np.zeros(1)), np.ones(1), np.array([[-2.0, 2.0]]), n_restarts=4, rng=0
    )
    assert len(out.all_thetas) == 5
    assert len(out.all_values) == 5
    assert out.value == min(out.all_values)
    assert out.n_restarts == 4


def test_deterministic_given_seed():
    f = _quadratic(np.array([0.5]))
    a = minimize_with_restarts(f, np.zeros(1), np.array([[-2.0, 2.0]]), n_restarts=3, rng=7)
    b = minimize_with_restarts(f, np.zeros(1), np.array([[-2.0, 2.0]]), n_restarts=3, rng=7)
    np.testing.assert_allclose(a.all_thetas, b.all_thetas)


def test_shape_validation():
    with pytest.raises(ValueError, match="bounds"):
        minimize_with_restarts(
            _quadratic(np.zeros(2)), np.zeros(2), np.array([[-1.0, 1.0]])
        )
    with pytest.raises(ValueError, match="low <= high"):
        minimize_with_restarts(
            _quadratic(np.zeros(1)), np.zeros(1), np.array([[1.0, -1.0]])
        )


def test_all_nonfinite_starts_fall_back_to_clipped_theta0():
    """Regression: argmin over _BAD_VALUE sentinels returned garbage theta."""

    def f(theta):
        return np.inf, np.zeros_like(theta)

    theta0 = np.array([5.0, -5.0])  # outside the box on both sides
    bounds = np.array([[-1.0, 1.0], [-1.0, 1.0]])
    with pytest.warns(RuntimeWarning, match="non-finite"):
        out = minimize_with_restarts(f, theta0, bounds, n_restarts=3, rng=0)
    np.testing.assert_allclose(out.theta, [1.0, -1.0])  # clipped theta0
    assert out.fallback is True
    assert out.value == np.inf
    assert out.statuses == ["nonfinite"] * 4
    assert len(out.all_values) == 4


def test_statuses_recorded_per_start():
    out = minimize_with_restarts(
        _quadratic(np.zeros(1)), np.ones(1), np.array([[-2.0, 2.0]]),
        n_restarts=2, rng=0,
    )
    assert out.fallback is False
    assert out.statuses == ["ok"] * 3


def test_partial_nonfinite_starts_do_not_fall_back():
    """Only the all-failed case falls back; one good start is enough."""

    calls = {"n": 0}

    def f(theta):
        # First start (the deterministic one) always blows up; the
        # random restarts see a clean quadratic.
        calls["n"] += 1
        if theta[0] > 0.5:
            return np.inf, np.zeros_like(theta)
        d = theta - 0.2
        return float(d @ d), 2 * d

    out = minimize_with_restarts(
        f, np.array([0.9]), np.array([[-1.0, 1.0]]), n_restarts=6, rng=2
    )
    assert out.fallback is False
    assert "nonfinite" in out.statuses
    assert "ok" in out.statuses
    assert np.isfinite(out.value)
    assert out.theta[0] == pytest.approx(0.2, abs=1e-4)


class _Constant:
    """Flat objective: every start converges instantly, every value ties.

    Module-level class (not a closure) so the process-pool executor test
    can pickle it.
    """

    def __call__(self, theta):
        return 0.0, np.zeros_like(theta)


class _Quadratic:
    """Picklable quadratic for the cross-process executor tests."""

    def __init__(self, center):
        self.center = np.asarray(center, dtype=float)

    def __call__(self, theta):
        d = theta - self.center
        return float(d @ d), 2 * d


def test_exact_tie_breaks_toward_lowest_start_index():
    """Engineered tie: all starts report identical values.

    The winner must be start 0 — the deterministic (clipped ``theta0``)
    start — by the explicit ``(value, start_index)`` lexicographic rule,
    never whichever start happened to finish first.
    """
    theta0 = np.array([0.25, -0.75])
    bounds = np.array([[-1.0, 1.0], [-1.0, 1.0]])
    out = minimize_with_restarts(_Constant(), theta0, bounds, n_restarts=5, rng=0)
    assert out.all_values == [0.0] * 6
    np.testing.assert_array_equal(out.theta, out.all_thetas[0])
    np.testing.assert_allclose(out.theta, theta0)


def test_tie_break_is_first_minimal_value_in_start_order():
    """General invariant: winner == first occurrence of the minimal value."""
    out = minimize_with_restarts(
        _Quadratic([0.1]), np.array([0.9]), np.array([[-1.0, 1.0]]),
        n_restarts=4, rng=3,
    )
    values = np.asarray(out.all_values)
    first_best = min(
        range(len(values)), key=lambda i: (values[i], i)
    )
    np.testing.assert_array_equal(out.theta, out.all_thetas[first_best])
    assert out.value == values[first_best]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_executor_matches_serial_bit_for_bit(backend):
    """Parallel restarts return the same outcome as the serial loop."""
    from repro.parallel import ParallelMap

    theta0 = np.array([0.8, -0.3])
    bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])
    obj = _Quadratic([0.4, -1.1])
    serial = minimize_with_restarts(obj, theta0, bounds, n_restarts=5, rng=11)
    parallel = minimize_with_restarts(
        obj, theta0, bounds, n_restarts=5, rng=11,
        executor=ParallelMap(backend, 3),
    )
    np.testing.assert_array_equal(serial.theta, parallel.theta)
    assert serial.value == parallel.value
    assert serial.statuses == parallel.statuses
    for a, b in zip(serial.all_thetas, parallel.all_thetas):
        np.testing.assert_array_equal(a, b)
    assert serial.all_values == parallel.all_values
