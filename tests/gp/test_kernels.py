"""Unit and property-based tests for the kernel stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    RBF,
    ConstantKernel,
    Hyperparameter,
    Matern,
    Product,
    RationalQuadratic,
    Sum,
    WhiteKernel,
)

ALL_KERNELS = [
    lambda: ConstantKernel(2.0),
    lambda: WhiteKernel(0.5),
    lambda: RBF(1.3),
    lambda: RBF([0.8, 2.0]),
    lambda: Matern(0.9, nu=0.5),
    lambda: Matern(0.9, nu=1.5),
    lambda: Matern(0.9, nu=2.5),
    lambda: Matern(0.9, nu=float("inf")),
    lambda: RationalQuadratic(1.1, 0.7),
    lambda: ConstantKernel(1.5) * RBF(0.7) + WhiteKernel(0.2),
]


def _data(d=1, n=9, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-2, 2, size=(n, d))


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_symmetry(make):
    k = make()
    d = 2 if getattr(k, "anisotropic", False) else 1
    X = _data(d)
    K = k(X)
    np.testing.assert_allclose(K, K.T, atol=1e-12)


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_positive_semidefinite(make):
    k = make()
    d = 2 if getattr(k, "anisotropic", False) else 1
    X = _data(d)
    eigvals = np.linalg.eigvalsh(k(X))
    assert eigvals.min() > -1e-9


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_diag_matches_full(make):
    k = make()
    d = 2 if getattr(k, "anisotropic", False) else 1
    X = _data(d)
    np.testing.assert_allclose(k.diag(X), np.diag(k(X)), atol=1e-12)


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_cross_covariance_consistent(make):
    """k(X, X) as cross-covariance must match k(X) except for White noise."""
    k = make()
    d = 2 if getattr(k, "anisotropic", False) else 1
    X = _data(d)
    K_sym = k(X)
    K_cross = k(X, X)
    has_white = "White" in repr(k)
    if has_white:
        # The noise term appears only on the K(X) diagonal.
        off = ~np.eye(len(X), dtype=bool)
        np.testing.assert_allclose(K_cross[off], K_sym[off], atol=1e-12)
    else:
        np.testing.assert_allclose(K_cross, K_sym, atol=1e-12)


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_gradient_matches_finite_differences(make):
    k = make()
    d = 2 if getattr(k, "anisotropic", False) else 1
    X = _data(d)
    K, grad = k(X, eval_gradient=True)
    theta = k.theta
    assert grad.shape == (len(X), len(X), theta.size)
    eps = 1e-6
    for j in range(theta.size):
        tp, tm = theta.copy(), theta.copy()
        tp[j] += eps
        tm[j] -= eps
        num = (k.clone_with_theta(tp)(X) - k.clone_with_theta(tm)(X)) / (2 * eps)
        np.testing.assert_allclose(grad[:, :, j], num, atol=1e-6)


@pytest.mark.parametrize("make", ALL_KERNELS)
def test_theta_roundtrip(make):
    k = make()
    theta = k.theta
    k.theta = theta + 0.3
    np.testing.assert_allclose(k.theta, theta + 0.3)
    k2 = k.clone_with_theta(theta)
    np.testing.assert_allclose(k2.theta, theta)
    # Clone must not alias the original (which still holds theta + 0.3).
    k2.theta = theta - 1.0
    np.testing.assert_allclose(k.theta, theta + 0.3)


def test_theta_is_log_space():
    k = RBF(2.0)
    assert k.theta[0] == pytest.approx(np.log(2.0))
    k.theta = np.array([np.log(5.0)])
    assert k.length_scale == pytest.approx(5.0)


def test_fixed_hyperparameters_excluded():
    k = ConstantKernel(2.0, "fixed") * RBF(1.0)
    assert k.n_dims == 1  # only the RBF length scale is free
    K, grad = k(_data(), eval_gradient=True)
    assert grad.shape[-1] == 1


def test_fully_fixed_kernel_has_empty_theta():
    k = ConstantKernel(2.0, "fixed") * RBF(1.0, "fixed")
    assert k.theta.size == 0
    assert k.bounds.shape == (0, 2)


def test_bounds_shape_and_log_space():
    k = ConstantKernel(1.0, (1e-2, 1e2)) * RBF(1.0, (1e-1, 1e1))
    b = k.bounds
    assert b.shape == (2, 2)
    np.testing.assert_allclose(b[0], np.log([1e-2, 1e2]))
    np.testing.assert_allclose(b[1], np.log([1e-1, 1e1]))


def test_sum_and_product_values():
    X = _data()
    k1, k2 = RBF(1.0), ConstantKernel(3.0)
    np.testing.assert_allclose(Sum(k1, k2)(X), k1(X) + k2(X))
    np.testing.assert_allclose(Product(k1, k2)(X), k1(X) * k2(X))


def test_operator_overloads_with_scalars():
    X = _data()
    k = 2.0 * RBF(1.0)
    np.testing.assert_allclose(k(X), 2.0 * RBF(1.0)(X))
    k = RBF(1.0) + 0.5
    np.testing.assert_allclose(np.diag(k(X)), np.ones(len(X)) + 0.5)


def test_composite_theta_ordering():
    k = ConstantKernel(2.0) * RBF(3.0) + WhiteKernel(0.1)
    np.testing.assert_allclose(k.theta, np.log([2.0, 3.0, 0.1]))
    k.theta = np.log([4.0, 5.0, 0.2])
    assert k.k1.k1.constant_value == pytest.approx(4.0)
    assert k.k1.k2.length_scale == pytest.approx(5.0)
    assert k.k2.noise_level == pytest.approx(0.2)


def test_matern_inf_equals_rbf():
    X = _data()
    np.testing.assert_allclose(
        Matern(0.8, nu=float("inf"))(X), RBF(0.8)(X), atol=1e-12
    )


def test_matern_smoothness_ordering():
    """At moderate distance, rougher Matern decays no slower than smoother."""
    X = np.array([[0.0], [1.0]])
    vals = [Matern(1.0, nu=nu)(X)[0, 1] for nu in (0.5, 1.5, 2.5)]
    assert vals[0] < vals[1] < vals[2]


def test_rbf_ard_mismatched_dims_raises():
    with pytest.raises(ValueError, match="ARD"):
        RBF([1.0, 2.0])(_data(d=3))


def test_invalid_constructor_args():
    with pytest.raises(ValueError):
        RBF(-1.0)
    with pytest.raises(ValueError):
        ConstantKernel(0.0)
    with pytest.raises(ValueError):
        WhiteKernel(-0.1)
    with pytest.raises(ValueError):
        Matern(1.0, nu=1.7)
    with pytest.raises(ValueError):
        RationalQuadratic(1.0, -1.0)


def test_gradient_with_Y_raises():
    X = _data()
    with pytest.raises(ValueError, match="gradient"):
        RBF(1.0)(X, X, eval_gradient=True)


def test_hyperparameter_bounds_validation():
    with pytest.raises(ValueError):
        Hyperparameter("x", (1.0, 0.5))
    with pytest.raises(ValueError):
        Hyperparameter("x", (-1.0, 2.0))
    with pytest.raises(ValueError):
        Hyperparameter("x", "frozen")
    h = Hyperparameter("x", "fixed")
    assert h.fixed
    with pytest.raises(ValueError):
        h.log_bounds()


@given(
    ls=st.floats(0.1, 10.0),
    amp=st.floats(0.1, 10.0),
    n=st.integers(2, 12),
)
@settings(max_examples=30, deadline=None)
def test_property_psd_and_bounded(ls, amp, n):
    """C*RBF kernels are PSD with entries in [0, amp]."""
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(n, 2))
    K = (ConstantKernel(amp) * RBF(ls))(X)
    assert np.all(K <= amp + 1e-12)
    assert np.all(K >= 0)
    assert np.linalg.eigvalsh(K).min() > -1e-8 * amp


@given(shift=st.floats(-5, 5))
@settings(max_examples=25, deadline=None)
def test_property_stationarity(shift):
    """Stationary kernels are invariant under input translation."""
    X = _data()
    for k in (RBF(1.0), Matern(1.0, nu=1.5), RationalQuadratic(1.0, 1.0)):
        np.testing.assert_allclose(k(X), k(X + shift), atol=1e-10)
