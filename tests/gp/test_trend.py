"""Tests for the semi-parametric (universal-kriging) regressor."""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor
from repro.gp.trend import TrendGPR, polynomial_basis


def test_polynomial_basis_shapes():
    X = np.arange(10.0).reshape(5, 2)
    assert polynomial_basis(0)(X).shape == (5, 1)
    assert polynomial_basis(1)(X).shape == (5, 3)
    assert polynomial_basis(2)(X).shape == (5, 5)
    np.testing.assert_allclose(polynomial_basis(1)(X)[:, 0], 1.0)
    with pytest.raises(ValueError):
        polynomial_basis(-1)


def test_recovers_pure_linear_trend():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, size=(25, 1))
    y = 2.0 + 0.7 * X[:, 0] + 0.01 * rng.standard_normal(25)
    model = TrendGPR(degree=1).fit(X, y)
    beta = model.trend_coefficients
    assert beta[0] == pytest.approx(2.0, abs=0.1)
    assert beta[1] == pytest.approx(0.7, abs=0.02)
    pred = model.predict(np.array([[20.0]]))  # extrapolate 2x the domain
    assert pred[0] == pytest.approx(2.0 + 0.7 * 20.0, abs=0.3)


def test_extrapolates_better_than_plain_gp():
    """The motivating property: linear trends persist outside the data."""
    rng = np.random.default_rng(1)
    X = rng.uniform(0, 5, size=(30, 1))
    y = 1.0 + 0.9 * X[:, 0] + 0.3 * np.sin(3 * X[:, 0]) + 0.02 * rng.standard_normal(30)
    X_far = np.array([[9.0], [10.0]])
    y_far = 1.0 + 0.9 * X_far[:, 0] + 0.3 * np.sin(3 * X_far[:, 0])

    trend = TrendGPR(degree=1).fit(X, y)
    plain = GaussianProcessRegressor(
        noise_variance=1e-2, noise_variance_bounds=(1e-6, 1e3), n_restarts=2, rng=0
    ).fit(X, y)

    err_trend = np.abs(trend.predict(X_far) - y_far).max()
    err_plain = np.abs(plain.predict(X_far) - y_far).max()
    assert err_trend < 0.5 * err_plain


def test_interpolation_quality_matches_plain_gp():
    rng = np.random.default_rng(2)
    X = np.sort(rng.uniform(0, 6, size=40))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(40)
    model = TrendGPR(degree=1).fit(X, y)
    grid = np.linspace(0.5, 5.5, 20)[:, np.newaxis]
    pred = model.predict(grid)
    np.testing.assert_allclose(pred, np.sin(grid[:, 0]), atol=0.2)


def test_std_includes_coefficient_uncertainty():
    """Far extrapolation must be *more* uncertain than the GP residual alone
    (the trend coefficients themselves are uncertain)."""
    rng = np.random.default_rng(3)
    X = rng.uniform(0, 3, size=(12, 1))
    y = 0.5 * X[:, 0] + 0.05 * rng.standard_normal(12)
    model = TrendGPR(degree=1).fit(X, y)
    _, sd_near = model.predict(np.array([[1.5]]), return_std=True)
    _, sd_far = model.predict(np.array([[30.0]]), return_std=True)
    assert sd_far[0] > 2.0 * sd_near[0]
    # And beyond the residual GP's saturated prior sd.
    _, sd_gp_far = model.gp.predict(np.array([[30.0]]), return_std=True)
    assert sd_far[0] > sd_gp_far[0]


def test_multidimensional_trend():
    rng = np.random.default_rng(4)
    X = rng.uniform(0, 5, size=(40, 2))
    y = 1.0 + 0.5 * X[:, 0] - 0.3 * X[:, 1] + 0.01 * rng.standard_normal(40)
    model = TrendGPR(degree=1).fit(X, y)
    beta = model.trend_coefficients
    np.testing.assert_allclose(beta, [1.0, 0.5, -0.3], atol=0.05)


def test_validation():
    model = TrendGPR(degree=1)
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((1, 1)))
    with pytest.raises(ValueError, match="more than"):
        model.fit(np.zeros((2, 1)), np.zeros(2))  # 2 points, 2 coefficients


def test_loglog_performance_surface(fig6_data):
    """On the paper's subset, the linear-log trend captures the work law."""
    X, y, _ = fig6_data
    model = TrendGPR(degree=1).fit(X, y)
    beta = model.trend_coefficients
    # d log10(runtime) / d log10(size) ~ slope < 1.2 (work-dominated tail is
    # ~1; the setup-floor region drags the global fit slightly down).
    assert 0.3 < beta[1] < 1.2
    # d log10(runtime) / d f < 0: higher frequency is faster.
    assert beta[2] < 0.0
