"""Tests for incremental (rank-1) GP posterior updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import cholesky

from repro.gp import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    NotPositiveDefiniteError,
    cholesky_append,
)


def _fixed_model(noise=0.01, **kw):
    return GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=noise,
        noise_variance_bounds="fixed",
        optimizer=None,
        **kw,
    )


def _dataset(n, d, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, size=(n, d))
    y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(n)
    return X, y


# ------------------------------------------------------------ cholesky_append


def test_cholesky_append_matches_full_factorization():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((6, 6))
    K = A @ A.T + 6 * np.eye(6)
    L = cholesky(K[:5, :5], lower=True)
    L_ext = cholesky_append(L, K[5, :5], K[5, 5])
    np.testing.assert_allclose(L_ext, cholesky(K, lower=True), atol=1e-12)


def test_cholesky_append_rejects_indefinite_border():
    L = cholesky(np.eye(3), lower=True)
    # Border makes the matrix singular: k = e1, k_self = 1 -> pivot^2 = 0.
    with pytest.raises(NotPositiveDefiniteError):
        cholesky_append(L, np.array([1.0, 0.0, 0.0]), 1.0)


def test_cholesky_append_validates_shapes():
    L = cholesky(np.eye(3), lower=True)
    with pytest.raises(ValueError, match="shape"):
        cholesky_append(L, np.zeros(2), 1.0)


# ------------------------------------------------------- update() exactness


def _assert_update_matches_cold_fit(model, X0, y0, X1, y1, atol=1e-8):
    """`update` must match a cold fixed-theta fit on the concatenated data."""
    model.fit(X0, y0)
    for i in range(X1.shape[0]):
        model.update(X1[i], y1[i])

    ref = GaussianProcessRegressor(
        kernel=model.kernel_.clone_with_theta(model.kernel_.theta),
        noise_variance=model.noise_variance_,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    ref.fit(np.vstack([X0, X1]), np.concatenate([y0, y1]))

    Xq = np.linspace(-4, 4, 25)[:, np.newaxis]
    if X0.shape[1] > 1:
        Xq = np.tile(Xq, (1, X0.shape[1]))
    mu_u, sd_u = model.predict(Xq, return_std=True)
    mu_c, sd_c = ref.predict(Xq, return_std=True)
    np.testing.assert_allclose(mu_u, mu_c, atol=atol)
    np.testing.assert_allclose(sd_u, sd_c, atol=atol)
    assert model.lml_ == pytest.approx(ref.lml_, abs=atol)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(3, 20),
    m=st.integers(1, 6),
    d=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_property_update_matches_cold_fit(n, m, d, seed):
    """Across random datasets, update() == cold fit() at fixed theta."""
    X, y = _dataset(n + m, d, seed)
    _assert_update_matches_cold_fit(
        _fixed_model(), X[:n], y[:n], X[n:], y[n:]
    )


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 15), seed=st.integers(0, 100))
def test_property_update_with_duplicate_rows(n, seed):
    """Repeated x-rows (the paper's repeated measurements) stay exact."""
    X, y = _dataset(n, 1, seed)
    rng = np.random.default_rng(seed)
    dup = rng.integers(0, n, size=3)
    X1 = X[dup]
    y1 = y[dup] + 0.05 * rng.standard_normal(3)
    _assert_update_matches_cold_fit(_fixed_model(), X, y, X1, y1)


def test_update_matches_after_hyperparameter_fit():
    """Exactness also holds at *optimized* hyperparameters."""
    X, y = _dataset(25, 2, 0)
    model = GaussianProcessRegressor(n_restarts=1, rng=0)
    model.fit(X[:20], y[:20])
    theta_before = model.kernel_.theta.copy()
    model.update(X[20:], y[20:])
    # Hyperparameters must not move during an update.
    np.testing.assert_array_equal(model.kernel_.theta, theta_before)

    ref = GaussianProcessRegressor(
        kernel=model.kernel_.clone_with_theta(model.kernel_.theta),
        noise_variance=model.noise_variance_,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    ref.fit(X, y)
    Xq = np.random.default_rng(1).uniform(-3, 3, size=(30, 2))
    mu_u, sd_u = model.predict(Xq, return_std=True)
    mu_c, sd_c = ref.predict(Xq, return_std=True)
    np.testing.assert_allclose(mu_u, mu_c, atol=1e-8)
    np.testing.assert_allclose(sd_u, sd_c, atol=1e-8)
    assert model.lml_ == pytest.approx(ref.lml_, abs=1e-8)


def test_update_normalized_targets_keep_frozen_constants():
    """With normalize_y, update() reuses the last fit's normalization."""
    X, y = _dataset(12, 1, 3)
    model = _fixed_model(normalize_y=True)
    model.fit(X[:10], y[:10])
    y_mean = model._fit.y_mean
    model.update(X[10:], y[10:])
    assert model._fit.y_mean == y_mean
    # Training targets round-trip through the frozen constants.
    np.testing.assert_allclose(model.y_train_, y, atol=1e-12)


def test_update_requires_fit():
    with pytest.raises(RuntimeError, match="fit"):
        _fixed_model().update(np.zeros((1, 1)), 0.0)


def test_update_rejects_wrong_dimension():
    X, y = _dataset(8, 2, 0)
    model = _fixed_model().fit(X, y)
    with pytest.raises(ValueError, match="features"):
        model.update(np.zeros((1, 3)), 0.0)


def test_update_falls_back_to_full_factorization(monkeypatch):
    """When the bordered pivot degenerates, update rebuilds and stays exact."""
    import repro.gp.gpr as gpr_mod

    def always_degenerate(L, k, k_self, **kw):
        raise NotPositiveDefiniteError("forced")

    monkeypatch.setattr(gpr_mod, "cholesky_append", always_degenerate)
    X, y = _dataset(10, 1, 5)
    model = _fixed_model().fit(X[:8], y[:8])
    model.update(X[8:], y[8:])  # must not raise
    ref = _fixed_model().fit(X, y)
    Xq = np.linspace(-3, 3, 17)[:, np.newaxis]
    np.testing.assert_allclose(model.predict(Xq), ref.predict(Xq), atol=1e-10)


# --------------------------------------------------------------- clone_fitted


def test_clone_fitted_is_isolated_and_frozen():
    X, y = _dataset(15, 1, 7)
    model = GaussianProcessRegressor(n_restarts=1, rng=0).fit(X, y)
    clone = model.clone_fitted()
    Xq = np.linspace(-3, 3, 11)[:, np.newaxis]
    mu_before = model.predict(Xq).copy()
    clone.update(np.array([[0.5]]), 0.0)
    np.testing.assert_array_equal(model.predict(Xq), mu_before)
    assert clone.optimizer is None
    assert clone.noise_variance_bounds == "fixed"
    assert clone._fit.X.shape[0] == X.shape[0] + 1


def test_clone_fitted_requires_fit():
    with pytest.raises(RuntimeError, match="fitted"):
        GaussianProcessRegressor().clone_fitted()


# ----------------------------------------------------------------- warm_start


def test_warm_start_begins_from_previous_optimum():
    X, y = _dataset(20, 1, 11)
    model = GaussianProcessRegressor(n_restarts=0, rng=0)
    model.fit(X[:15], y[:15])
    theta_opt = model.kernel_.theta.copy()
    model.fit(X, y, warm_start=True)
    # The warm search started from theta_opt, not the template; with zero
    # restarts the outcome's first recorded start is the deterministic one.
    start = model._fit.optimize_outcome.all_thetas
    assert len(start) == 1
    # A cold fit from the template must differ in its search start whenever
    # the previous optimum moved away from the template.
    template = GaussianProcessRegressor(n_restarts=0, rng=0)
    template.fit(X, y)
    np.testing.assert_allclose(
        model.kernel_.theta, template.kernel_.theta, atol=1.0
    )  # both converge near the same optimum on this easy problem


def test_warm_start_on_unfitted_model_is_cold():
    X, y = _dataset(10, 1, 0)
    model = GaussianProcessRegressor(n_restarts=0, rng=0)
    model.fit(X, y, warm_start=True)  # no previous state: behaves like cold
    assert model.fitted
