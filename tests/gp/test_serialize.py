"""Exact serialization round-trips (GaussianProcessRegressor.to_dict/from_dict).

The model registry promises bit-identical predictions from a reloaded
model; every test here round-trips through ``json.dumps``/``loads`` (not
just the dict) so Python's shortest-float repr semantics are exercised.
"""

import json

import numpy as np
import pytest

from repro.gp import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    Matern,
    RationalQuadratic,
    WhiteKernel,
    kernel_from_dict,
    kernel_to_dict,
)


def _roundtrip(model):
    payload = json.loads(json.dumps(model.to_dict()))
    return GaussianProcessRegressor.from_dict(payload)


def _problem(n=25, d=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    y = np.sin(X @ np.arange(1, d + 1)) + 0.05 * rng.standard_normal(n)
    return X, y


def _assert_identical_predictions(a, b, X):
    mu_a, sd_a = a.predict(X, return_std=True)
    mu_b, sd_b = b.predict(X, return_std=True)
    assert np.array_equal(mu_a, mu_b)
    assert np.array_equal(sd_a, sd_b)
    mu_a, cov_a = a.predict(X, return_cov=True)
    mu_b, cov_b = b.predict(X, return_cov=True)
    assert np.array_equal(cov_a, cov_b)


class TestModelRoundTrip:
    def test_plain_fit_bit_identical(self):
        X, y = _problem()
        model = GaussianProcessRegressor(rng=0, n_restarts=2).fit(X, y)
        restored = _roundtrip(model)
        Q = np.random.default_rng(1).uniform(size=(200, X.shape[1]))
        _assert_identical_predictions(model, restored, Q)
        assert restored.lml_ == model.lml_
        assert np.array_equal(restored.kernel_.theta, model.kernel_.theta)

    def test_normalize_y_bit_identical(self):
        X, y = _problem(seed=3)
        model = GaussianProcessRegressor(
            rng=0, n_restarts=1, normalize_y=True
        ).fit(X, y * 40.0 + 300.0)
        restored = _roundtrip(model)
        Q = np.random.default_rng(2).uniform(size=(100, X.shape[1]))
        _assert_identical_predictions(model, restored, Q)

    def test_fixed_noise_bit_identical(self):
        X, y = _problem(seed=4)
        model = GaussianProcessRegressor(
            noise_variance=1e-4,
            noise_variance_bounds="fixed",
            rng=0,
            n_restarts=1,
        ).fit(X, y)
        restored = _roundtrip(model)
        assert restored.noise_variance_bounds == "fixed"
        assert restored.noise_variance_ == model.noise_variance_
        Q = np.random.default_rng(5).uniform(size=(50, X.shape[1]))
        _assert_identical_predictions(model, restored, Q)

    def test_post_update_bit_identical(self):
        """A rank-1-updated posterior round-trips exactly too."""
        X, y = _problem(n=30, seed=6)
        model = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X[:20], y[:20])
        model.update(X[20:], y[20:])
        restored = _roundtrip(model)
        Q = np.random.default_rng(7).uniform(size=(80, X.shape[1]))
        _assert_identical_predictions(model, restored, Q)

    def test_unfitted_model_roundtrips(self):
        model = GaussianProcessRegressor(noise_variance=3e-2, jitter=1e-9)
        restored = _roundtrip(model)
        assert not restored.fitted
        assert restored.noise_variance == model.noise_variance
        assert restored.jitter == model.jitter

    def test_explicit_kernel_template_preserved(self):
        X, y = _problem(seed=8)
        kernel = ConstantKernel(2.0, (1e-3, 1e3)) * Matern(
            [1.0, 2.0], (1e-2, 1e2), nu=2.5
        )
        model = GaussianProcessRegressor(kernel=kernel, rng=0, n_restarts=1)
        model.fit(X, y)
        restored = _roundtrip(model)
        assert np.array_equal(restored.kernel.theta, model.kernel.theta)
        assert np.array_equal(restored.kernel_.theta, model.kernel_.theta)
        Q = np.random.default_rng(9).uniform(size=(50, X.shape[1]))
        _assert_identical_predictions(model, restored, Q)


class TestIntegrity:
    def test_training_hash_matches_on_reload(self):
        X, y = _problem()
        model = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y)
        assert _roundtrip(model).training_hash() == model.training_hash()

    def test_tampered_payload_rejected(self):
        X, y = _problem()
        model = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y)
        payload = json.loads(json.dumps(model.to_dict()))
        payload["fit"]["y"][0] += 1e-9
        with pytest.raises(ValueError, match="hash mismatch"):
            GaussianProcessRegressor.from_dict(payload)

    def test_unknown_format_version_rejected(self):
        X, y = _problem()
        payload = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y).to_dict()
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            GaussianProcessRegressor.from_dict(payload)

    def test_training_hash_requires_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().training_hash()

    def test_hash_differs_across_training_sets(self):
        X, y = _problem()
        a = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y)
        b = GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y + 1e-12)
        assert a.training_hash() != b.training_hash()


class TestKernelRoundTrip:
    @pytest.mark.parametrize(
        "kernel",
        [
            RBF(0.7, (1e-2, 1e2)),
            RBF([0.5, 2.0, 1.3], (1e-2, 1e2)),
            RBF(1.0, "fixed"),
            Matern(0.9, (1e-2, 1e2), nu=1.5),
            Matern([1.0, 0.4], (1e-2, 1e2), nu=np.inf),
            WhiteKernel(1e-3, (1e-6, 1e1)),
            ConstantKernel(4.2, "fixed"),
            RationalQuadratic(1.1, 0.6, (1e-2, 1e2), (1e-2, 1e2)),
            ConstantKernel(1.5, (1e-3, 1e3)) * RBF(0.8, (1e-2, 1e2))
            + WhiteKernel(1e-2, (1e-4, 1e0)),
        ],
        ids=lambda k: repr(k)[:40],
    )
    def test_theta_bounds_and_matrix_identical(self, kernel):
        spec = json.loads(json.dumps(kernel_to_dict(kernel)))
        restored = kernel_from_dict(spec)
        assert type(restored) is type(kernel)
        assert np.array_equal(restored.theta, kernel.theta)
        assert np.array_equal(restored.bounds, kernel.bounds)
        X = np.random.default_rng(0).uniform(size=(9, kernel.theta.size or 1))
        if hasattr(kernel, "length_scale") and np.ndim(kernel.length_scale):
            X = X[:, : len(kernel.length_scale)]
        else:
            X = X[:, :2]
        assert np.array_equal(restored(X), kernel(X))

    def test_unserializable_kernel_raises(self):
        class Weird(RBF):
            pass

        # Subclass of a supported type is fine (serialized as the base);
        # a genuinely unknown type must be rejected.
        with pytest.raises(ValueError, match="unknown kernel type"):
            kernel_from_dict({"type": "NoSuchKernel"})
        with pytest.raises(ValueError):
            kernel_from_dict({"no_type": True})


class TestUpdateClearsStaleFitState:
    def test_optimize_outcome_and_history_cleared(self):
        """update() must not carry the previous fit's optimizer diagnostics."""
        X, y = _problem(n=20, seed=11)
        model = GaussianProcessRegressor(rng=0, n_restarts=2).fit(X[:15], y[:15])
        assert model._fit.optimize_outcome is not None
        model.update(X[15:], y[15:])
        assert model._fit.optimize_outcome is None
        assert model._fit.theta_history == []
