"""Tests for the pluggable solver backends (exact / Nystrom / RFF / auto)."""

import json
import time

import numpy as np
import pytest

from repro.gp import (
    AUTO_EXACT_MAX,
    ConstantKernel,
    GaussianProcessRegressor,
    Matern,
    SolverConfig,
    resolve_solver,
)


def _problem(n, d=2, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 10.0, size=(n, d))
    y = np.sin(X[:, 0]) + 0.5 * np.cos(0.7 * X[:, 1]) + noise * rng.standard_normal(n)
    return X, y


def _model(solver, **kw):
    defaults = dict(
        noise_variance=1e-2,
        noise_variance_bounds=(1e-2, 1e2),
        rng=0,
        n_restarts=0,
        solver=solver,
    )
    defaults.update(kw)
    return GaussianProcessRegressor(**defaults)


# ------------------------------------------------------------ config layer


def test_resolve_solver_coercions():
    assert resolve_solver(None).name == "exact"
    assert resolve_solver("nystrom").name == "nystrom"
    cfg = SolverConfig(name="rff", n_features=64)
    assert resolve_solver(cfg) is cfg
    assert resolve_solver(cfg.to_dict()) == cfg
    with pytest.raises(ValueError, match="unknown solver"):
        resolve_solver("cg")
    with pytest.raises(ValueError, match="solver must be"):
        resolve_solver(42)


def test_config_round_trip_and_validation():
    cfg = SolverConfig(name="nystrom", n_inducing=32, seed=7)
    assert SolverConfig.from_dict(cfg.to_dict()) == cfg
    with pytest.raises(ValueError):
        SolverConfig(n_inducing=0)
    with pytest.raises(ValueError):
        SolverConfig(budget_mean=-1.0)


def test_backend_aware_default_budgets():
    # RFF's kernel approximation error is O(sqrt(2/D)); its declared
    # default budget must reflect that, not Nystrom's.
    assert SolverConfig(name="nystrom").budget_mean == pytest.approx(0.05)
    assert SolverConfig(name="rff").budget_mean == pytest.approx(0.30)
    assert SolverConfig(name="rff", budget_mean=0.02).budget_mean == pytest.approx(0.02)


def test_auto_effective_backend():
    cfg = SolverConfig(name="auto", auto_exact_max=50)
    assert cfg.effective_backend(50) == "exact"
    assert cfg.effective_backend(51) == "nystrom"
    assert SolverConfig(name="rff").effective_backend(10**6) == "rff"
    assert AUTO_EXACT_MAX >= 500  # sanity: crossover stays in the measured range


# --------------------------------------------------------- exact bit-identity


def test_exact_default_and_bit_identity():
    X, y = _problem(40)
    base = _model("exact").fit(X, y)
    default = _model(None).fit(X, y)
    auto = _model(SolverConfig(name="auto")).fit(X, y)  # 40 <= auto_exact_max
    Xq, _ = _problem(30, seed=1)
    m0, s0 = base.predict(Xq, return_std=True)
    for other in (default, auto):
        assert other._afit is None and other._fit is not None
        m1, s1 = other.predict(Xq, return_std=True)
        assert np.array_equal(m0, m1)
        assert np.array_equal(s0, s1)
    assert base.solver_info == {"name": "exact"}
    assert "solver" not in repr(default)
    assert "nystrom" in repr(_model("nystrom"))


def test_auto_switches_backend_by_pool_size():
    cfg = SolverConfig(name="auto", auto_exact_max=60, n_inducing=32)
    X, y = _problem(50)
    small = _model(cfg).fit(X, y)
    assert small._fit is not None and small._afit is None
    X, y = _problem(90)
    big = _model(cfg).fit(X, y)
    assert big._fit is None and big._afit is not None
    assert big._afit.backend == "nystrom"


# ------------------------------------------------------- accuracy vs exact


@pytest.mark.parametrize("backend", ["nystrom", "rff"])
def test_approx_matches_exact_within_budget(backend):
    X, y = _problem(400)
    exact = _model("exact").fit(X, y)
    approx = _model(backend).fit(X, y)
    info = approx.solver_info
    budget = info["error_budget"]
    assert budget["checked"] is True
    assert budget["within_budget"] is True, budget
    Xq, _ = _problem(200, seed=3)
    me, se = exact.predict(Xq, return_std=True)
    ma, sa = approx.predict(Xq, return_std=True)
    y_sd = float(np.std(y))
    assert np.max(np.abs(ma - me)) <= budget["budget_mean"] * y_sd * 1.5
    assert np.max(np.abs(sa - se)) <= budget["budget_std"] * y_sd * 1.5
    assert np.all(sa > 0)


def test_budget_unchecked_above_cap_is_not_passed():
    cfg = SolverConfig(name="nystrom", n_inducing=32, budget_max_exact=50)
    X, y = _problem(80)
    model = _model(cfg).fit(X, y)
    budget = model.solver_info["error_budget"]
    assert budget["checked"] is False
    assert budget["within_budget"] is None


def test_rff_requires_rbf_kernel():
    X, y = _problem(60)
    kernel = ConstantKernel(1.0) * Matern(length_scale=1.0, nu=1.5)
    model = _model("rff", kernel=kernel)
    with pytest.raises(ValueError, match="nystrom"):
        model.fit(X, y)


# --------------------------------------------------- posterior API parity


@pytest.mark.parametrize("backend", ["nystrom", "rff"])
def test_predict_paths_and_sampling(backend):
    X, y = _problem(120)
    model = _model({"name": backend, "n_inducing": 64, "n_features": 128})
    model.fit(X, y)
    Xq, _ = _problem(25, seed=5)
    mean = model.predict(Xq)
    m2, sd = model.predict(Xq, return_std=True)
    m3, cov = model.predict(Xq, return_cov=True)
    assert np.array_equal(mean, m2) and np.array_equal(mean, m3)
    assert np.allclose(sd, np.sqrt(np.clip(np.diag(cov), 0.0, None)), atol=1e-8)
    sd_lat = model.predict(Xq, return_std=True, include_noise=False)[1]
    assert np.all(sd_lat <= sd + 1e-12)
    samples = model.sample_y(Xq, n_samples=8, rng=1)
    assert samples.shape == (25, 8)
    assert np.all(np.isfinite(samples))


def test_predict_gradient_unsupported_for_approx():
    X, y = _problem(60)
    model = _model({"name": "nystrom", "n_inducing": 32}).fit(X, y)
    with pytest.raises(NotImplementedError, match="exact solver"):
        model.predict_gradient(X[0])


def test_lml_accessors_approx():
    X, y = _problem(60)
    model = _model({"name": "nystrom", "n_inducing": 32}).fit(X, y)
    assert np.isfinite(model.lml_)
    with pytest.raises(RuntimeError, match="approximate"):
        model.log_marginal_likelihood()


# ------------------------------------------------ update / clone / serialize


def test_update_and_clone_approx():
    X, y = _problem(80)
    model = _model({"name": "nystrom", "n_inducing": 32}).fit(X, y)
    h0 = model.training_hash()
    clone = model.clone_fitted()
    Xn, yn = _problem(5, seed=9)
    model.update(Xn, yn)
    assert model.n_train_ == 85
    assert clone.n_train_ == 80  # clone untouched by the update
    assert model.training_hash() != h0
    Xq, _ = _problem(10, seed=11)
    assert np.all(np.isfinite(model.predict(Xq, return_std=True)[1]))


def test_serialize_round_trip_approx():
    X, y = _problem(90)
    model = _model({"name": "rff", "n_features": 64}).fit(X, y)
    payload = json.loads(json.dumps(model.to_dict()))
    restored = GaussianProcessRegressor.from_dict(payload)
    Xq, _ = _problem(20, seed=2)
    m0, s0 = model.predict(Xq, return_std=True)
    m1, s1 = restored.predict(Xq, return_std=True)
    assert np.allclose(m0, m1, atol=0, rtol=0)
    assert np.allclose(s0, s1, atol=0, rtol=0)
    assert restored.training_hash() == model.training_hash()
    assert restored.solver_info["name"] == "rff"
    # Compact factors only: training data is not serialized, so update
    # and training-set accessors must refuse rather than mispredict.
    with pytest.raises(RuntimeError):
        restored.update(X[:1], y[:1])
    with pytest.raises(RuntimeError):
        _ = restored.X_train_


def test_registry_publish_records_solver(tmp_path):
    from repro.serve.registry import ModelRegistry

    X, y = _problem(70)
    model = _model({"name": "nystrom", "n_inducing": 32}).fit(X, y)
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model)
    meta = registry.versions()[-1]
    assert meta.extra["solver"]["name"] == "nystrom"
    assert meta.extra["solver"]["error_budget"]["checked"] is True
    assert meta.n_train == 70


# ----------------------------------------------------------- model health


def test_model_health_reports_solver_and_blown_budget():
    from repro.al.guardrails import ModelHealth

    X, y = _problem(300, noise=0.02)
    # Two inducing points cannot represent the surface: the budget check
    # must fail and ModelHealth must surface it as an issue.
    cfg = SolverConfig(name="nystrom", n_inducing=2, budget_probes=64)
    model = _model(cfg).fit(X, y)
    budget = model.solver_info["error_budget"]
    assert budget["within_budget"] is False
    report = ModelHealth().check(model)
    assert report.solver["name"] == "nystrom"
    assert report.outlier_rate is None
    assert any("error budget" in issue for issue in report.issues)
    assert not report.healthy


def test_model_health_approx_healthy_and_exact_solver_field():
    from repro.al.guardrails import ModelHealth

    X, y = _problem(200)
    approx = _model({"name": "nystrom", "n_inducing": 64}).fit(X, y)
    report = ModelHealth().check(approx)
    assert report.healthy, report.issues
    assert report.n_train == 200

    exact = _model("exact").fit(*_problem(60))
    assert ModelHealth().check(exact).solver == {"name": "exact"}


# ------------------------------------------------------------- scale test


def test_nystrom_100k_pool_under_60s():
    # ISSUE acceptance: an approximate backend fits and predicts a
    # 10^5-point synthetic pool in well under a minute.
    X, y = _problem(100_000, seed=17)
    t0 = time.perf_counter()
    model = _model("nystrom").fit(X, y)
    Xq, _ = _problem(2_000, seed=19)
    mean, sd = model.predict(Xq, return_std=True)
    elapsed = time.perf_counter() - t0
    assert elapsed < 60.0, f"fit+predict took {elapsed:.1f}s"
    assert model.n_train_ == 100_000
    assert np.all(np.isfinite(mean)) and np.all(sd > 0)
    rmse = float(np.sqrt(np.mean((mean - (np.sin(Xq[:, 0]) + 0.5 * np.cos(0.7 * Xq[:, 1]))) ** 2)))
    assert rmse < 0.1
