"""Property-based tests of core GP invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


def _fixed_gp(noise=0.01, l=1.0, amp=1.0):
    return GaussianProcessRegressor(
        kernel=ConstantKernel(amp, "fixed") * RBF(l, "fixed"),
        noise_variance=noise,
        noise_variance_bounds="fixed",
        optimizer=None,
    )


@given(
    n=st.integers(2, 20),
    seed=st.integers(0, 200),
)
@settings(max_examples=30, deadline=None)
def test_posterior_variance_never_exceeds_prior(n, seed):
    """Conditioning on data can only reduce the latent variance."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, size=(n, 1))
    y = rng.standard_normal(n)
    gp = _fixed_gp().fit(X, y)
    Xq = rng.uniform(-5, 5, size=(10, 1))
    _, sd = gp.predict(Xq, return_std=True, include_noise=False)
    prior_sd = 1.0  # amplitude 1
    assert np.all(sd <= prior_sd + 1e-9)


@given(seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_adding_data_shrinks_variance_pointwise(seed):
    """More observations never increase the predictive variance anywhere."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(15, 1))
    y = np.sin(X[:, 0])
    gp_small = _fixed_gp().fit(X[:7], y[:7])
    gp_big = _fixed_gp().fit(X, y)
    Xq = np.linspace(0, 10, 25)[:, np.newaxis]
    _, sd_small = gp_small.predict(Xq, return_std=True, include_noise=False)
    _, sd_big = gp_big.predict(Xq, return_std=True, include_noise=False)
    assert np.all(sd_big <= sd_small + 1e-7)


@given(shift=st.floats(-100, 100))
@settings(max_examples=20, deadline=None)
def test_translation_equivariance_of_predictions(shift):
    """Stationary kernel: shifting all inputs shifts predictions with them."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 5, size=(12, 1))
    y = np.cos(X[:, 0])
    Xq = rng.uniform(0, 5, size=(6, 1))
    gp1 = _fixed_gp().fit(X, y)
    gp2 = _fixed_gp().fit(X + shift, y)
    mu1, sd1 = gp1.predict(Xq, return_std=True)
    mu2, sd2 = gp2.predict(Xq + shift, return_std=True)
    np.testing.assert_allclose(mu1, mu2, atol=1e-8, rtol=1e-8)
    np.testing.assert_allclose(sd1, sd2, atol=1e-8, rtol=1e-8)


@given(noise=st.floats(1e-4, 10.0))
@settings(max_examples=20, deadline=None)
def test_more_claimed_noise_means_smoother_posterior(noise):
    """As sigma_n grows, the posterior mean's deviation from y shrinks
    toward the data mean (stronger regularization)."""
    rng = np.random.default_rng(1)
    X = rng.uniform(0, 4, size=(10, 1))
    y = rng.standard_normal(10)
    tight = _fixed_gp(noise=1e-6).fit(X, y)
    loose = _fixed_gp(noise=noise).fit(X, y)
    # Training-data fit degrades monotonically with claimed noise.
    r_tight = float(np.mean((tight.predict(X) - y) ** 2))
    r_loose = float(np.mean((loose.predict(X) - y) ** 2))
    assert r_loose >= r_tight - 1e-12


@given(
    seed=st.integers(0, 100),
    amp=st.floats(0.1, 10.0),
)
@settings(max_examples=20, deadline=None)
def test_lml_is_a_proper_density_ordering(seed, amp):
    """LML of the data under the generating amplitude beats a far-off one."""
    rng = np.random.default_rng(seed)
    X = np.linspace(0, 5, 30)[:, np.newaxis]
    gp_gen = _fixed_gp(noise=0.01, amp=amp)
    y = gp_gen.sample_y(X, n_samples=1, rng=seed)[:, 0]
    gp_right = _fixed_gp(noise=0.01, amp=amp).fit(X, y)
    gp_wrong = _fixed_gp(noise=0.01, amp=amp * 100).fit(X, y)
    assert gp_right.lml_ > gp_wrong.lml_


@given(seed=st.integers(0, 50), n=st.integers(3, 12))
@settings(max_examples=20, deadline=None)
def test_observation_interval_contains_training_targets_mostly(seed, n):
    """With fitted noise, ~all training targets sit inside mean +- 4 sd."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 5, size=(n, 1))
    y = rng.standard_normal(n)
    gp = GaussianProcessRegressor(
        noise_variance=0.1, noise_variance_bounds=(1e-3, 1e3),
        n_restarts=0, rng=0,
    ).fit(X, y)
    mu, sd = gp.predict(X, return_std=True, include_noise=True)
    assert np.all(np.abs(y - mu) <= 4.0 * sd + 1e-6)
