"""Tests for the Gaussian Process regressor (paper Eqs. 3-13)."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    WhiteKernel,
    default_kernel,
)


def _fitted(small_1d_problem, **kw):
    X, y = small_1d_problem
    defaults = dict(rng=0, n_restarts=2)
    defaults.update(kw)
    return GaussianProcessRegressor(**defaults).fit(X, y), X, y


def test_posterior_mean_tracks_data(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    pred = model.predict(X)
    assert np.sqrt(np.mean((pred - y) ** 2)) < 0.15


def test_predict_interpolates_noise_free():
    """With a tiny fixed noise, the posterior mean interpolates exactly."""
    X = np.linspace(0, 1, 7)[:, np.newaxis]
    y = np.cos(3 * X[:, 0])
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(0.3, "fixed"),
        noise_variance=1e-10,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    np.testing.assert_allclose(model.predict(X), y, atol=1e-5)


def test_latent_sd_near_zero_at_training_points():
    X = np.linspace(0, 1, 7)[:, np.newaxis]
    y = np.cos(3 * X[:, 0])
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(0.3, "fixed"),
        noise_variance=1e-10,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    _, sd = model.predict(X, return_std=True, include_noise=False)
    assert sd.max() < 1e-4


def test_observation_sd_floor_is_sigma_n(small_1d_problem):
    """With include_noise, SD at training points stays >= sigma_n.

    This is what lets AL recommend repeated measurements (Section III).
    """
    model, X, y = _fitted(small_1d_problem)
    _, sd = model.predict(X, return_std=True, include_noise=True)
    assert sd.min() >= np.sqrt(model.noise_variance_) * 0.999


def test_uncertainty_grows_away_from_data(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    _, sd_in = model.predict(np.array([[5.0]]), return_std=True)
    _, sd_out = model.predict(np.array([[30.0]]), return_std=True)
    assert sd_out[0] > sd_in[0]


def test_noise_variance_recovered(small_1d_problem):
    """The fitted sigma_n^2 should approximate the true 0.1^2 = 0.01."""
    model, _, _ = _fitted(small_1d_problem)
    assert 1e-3 < model.noise_variance_ < 1e-1


def test_lml_gradient_matches_finite_differences(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    theta = model._theta()
    lml, grad = model.log_marginal_likelihood(theta, eval_gradient=True)
    eps = 1e-6
    for j in range(theta.size):
        tp, tm = theta.copy(), theta.copy()
        tp[j] += eps
        tm[j] -= eps
        num = (
            model.log_marginal_likelihood(tp) - model.log_marginal_likelihood(tm)
        ) / (2 * eps)
        assert grad[j] == pytest.approx(num, abs=1e-4, rel=1e-4)


def test_lml_evaluation_restores_state(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    theta_before = model._theta().copy()
    model.log_marginal_likelihood(theta_before + 1.0)
    np.testing.assert_allclose(model._theta(), theta_before)


def test_optimizer_improves_lml(small_1d_problem):
    X, y = small_1d_problem
    unopt = GaussianProcessRegressor(optimizer=None)
    unopt.fit(X, y)
    opt = GaussianProcessRegressor(rng=0, n_restarts=2)
    opt.fit(X, y)
    assert opt.lml_ > unopt.lml_


def test_fitted_lml_matches_recomputation(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    assert model.lml_ == pytest.approx(
        model.log_marginal_likelihood(model._theta()), rel=1e-10
    )


def test_prior_prediction_unfitted():
    model = GaussianProcessRegressor(noise_variance=0.04)
    Xq = np.linspace(0, 1, 5)[:, np.newaxis]
    mean, sd = model.predict(Xq, return_std=True)
    np.testing.assert_allclose(mean, 0.0)
    # Prior variance = kernel amplitude (1.0) + noise.
    np.testing.assert_allclose(sd, np.sqrt(1.0 + 0.04), rtol=1e-6)


def test_prior_covariance_unfitted():
    model = GaussianProcessRegressor(noise_variance=0.04)
    Xq = np.linspace(0, 1, 4)[:, np.newaxis]
    mean, cov = model.predict(Xq, return_cov=True)
    assert cov.shape == (4, 4)
    np.testing.assert_allclose(np.diag(cov), 1.04, rtol=1e-6)


def test_return_std_and_cov_mutually_exclusive(small_1d_problem):
    model, X, _ = _fitted(small_1d_problem)
    with pytest.raises(ValueError):
        model.predict(X, return_std=True, return_cov=True)


def test_cov_diag_matches_std(small_1d_problem):
    model, X, _ = _fitted(small_1d_problem)
    Xq = np.linspace(0, 10, 6)[:, np.newaxis]
    _, sd = model.predict(Xq, return_std=True)
    _, cov = model.predict(Xq, return_cov=True)
    np.testing.assert_allclose(np.sqrt(np.diag(cov)), sd, rtol=1e-6, atol=1e-9)


def test_normalize_y_shifts_and_scales():
    X = np.linspace(0, 1, 10)[:, np.newaxis]
    y = 100.0 + 5.0 * np.sin(6 * X[:, 0])
    model = GaussianProcessRegressor(normalize_y=True, rng=0, n_restarts=1)
    model.fit(X, y)
    pred = model.predict(X)
    assert np.abs(pred - y).max() < 2.0
    np.testing.assert_allclose(model.y_train_, y, atol=1e-9)


def test_repeated_inputs_supported():
    """Duplicate x rows (repeated measurements) must not break the solve."""
    X = np.array([[0.0], [0.0], [0.0], [1.0], [1.0]])
    y = np.array([1.0, 1.2, 0.9, 2.0, 2.1])
    model = GaussianProcessRegressor(rng=0, n_restarts=1)
    model.fit(X, y)
    pred = model.predict(np.array([[0.0], [1.0]]))
    assert pred[0] == pytest.approx(np.mean(y[:3]), abs=0.3)
    assert pred[1] == pytest.approx(np.mean(y[3:]), abs=0.3)


def test_sample_y_statistics(small_1d_problem):
    model, X, y = _fitted(small_1d_problem)
    Xq = np.array([[2.0], [7.0]])
    samples = model.sample_y(Xq, n_samples=4000, rng=3)
    assert samples.shape == (2, 4000)
    mean, sd = model.predict(Xq, return_std=True)
    np.testing.assert_allclose(
        samples.mean(axis=1), mean, atol=float(4 * sd.max() / np.sqrt(4000)) + 0.02
    )
    np.testing.assert_allclose(samples.std(axis=1), sd, rtol=0.1)


def test_sample_y_invalid_count(small_1d_problem):
    model, _, _ = _fitted(small_1d_problem)
    with pytest.raises(ValueError):
        model.sample_y(np.array([[0.0]]), n_samples=0)


def test_noise_floor_respected(small_1d_problem):
    """The paper's central knob: sigma_n^2 never drops below its bound."""
    X, y = small_1d_problem
    model = GaussianProcessRegressor(
        noise_variance=0.5, noise_variance_bounds=(0.2, 10.0), rng=0
    )
    model.fit(X, y)
    assert model.noise_variance_ >= 0.2 * 0.999


def test_fixed_noise_not_optimized(small_1d_problem):
    X, y = small_1d_problem
    model = GaussianProcessRegressor(
        noise_variance=0.123, noise_variance_bounds="fixed", rng=0
    )
    model.fit(X, y)
    assert model.noise_variance_ == pytest.approx(0.123)


def test_white_kernel_inside_kernel_equivalent(small_1d_problem):
    """Noise via WhiteKernel ~ explicit noise_variance (same LML optimum)."""
    X, y = small_1d_problem
    m1 = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.5, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    m2 = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.5, "fixed")
        + WhiteKernel(0.01, "fixed"),
        noise_variance=1e-12,
        noise_variance_bounds="fixed",
        optimizer=None,
        jitter=0.0,
    ).fit(X, y)
    np.testing.assert_allclose(m1.lml_, m2.lml_, rtol=1e-6)
    Xq = np.linspace(0, 10, 5)[:, np.newaxis]
    np.testing.assert_allclose(m1.predict(Xq), m2.predict(Xq), rtol=1e-6)


def test_input_validation():
    model = GaussianProcessRegressor()
    with pytest.raises(ValueError):
        model.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        model.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        model.fit(np.array([[np.nan]]), np.array([1.0]))
    with pytest.raises(ValueError):
        GaussianProcessRegressor(noise_variance=-1.0)
    with pytest.raises(ValueError):
        GaussianProcessRegressor(noise_variance_bounds=(0.0, 1.0))
    with pytest.raises(ValueError):
        GaussianProcessRegressor(noise_variance_bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        GaussianProcessRegressor(optimizer="adam")
    with pytest.raises(ValueError):
        GaussianProcessRegressor(n_restarts=-1)


def test_unfitted_accessors_raise():
    model = GaussianProcessRegressor()
    with pytest.raises(RuntimeError):
        _ = model.lml_
    with pytest.raises(RuntimeError):
        _ = model.X_train_
    with pytest.raises(RuntimeError):
        model.log_marginal_likelihood()


def test_1d_input_promoted(small_1d_problem):
    X, y = small_1d_problem
    model = GaussianProcessRegressor(optimizer=None).fit(X[:, 0], y)
    assert model.X_train_.shape == (len(y), 1)


def test_default_kernel_ard():
    k = default_kernel(3, ard=True)
    assert k.n_dims == 4  # amplitude + 3 length scales


def test_fit_is_deterministic(small_1d_problem):
    X, y = small_1d_problem
    m1 = GaussianProcessRegressor(rng=42, n_restarts=3).fit(X, y)
    m2 = GaussianProcessRegressor(rng=42, n_restarts=3).fit(X, y)
    np.testing.assert_allclose(m1._theta(), m2._theta())


def test_refit_does_not_leak_state(small_1d_problem):
    """Fitting twice from the same template kernel gives the same result."""
    X, y = small_1d_problem
    model = GaussianProcessRegressor(rng=1, n_restarts=0)
    model.fit(X, y)
    theta1 = model._theta().copy()
    model.rng = np.random.default_rng(1)
    model.fit(X, y)
    np.testing.assert_allclose(model._theta(), theta1)


@given(
    n=st.integers(3, 15),
    noise=st.floats(1e-4, 0.5),
)
@settings(max_examples=15, deadline=None)
def test_property_lml_finite_and_sd_positive(n, noise):
    rng = np.random.default_rng(n)
    X = rng.uniform(-1, 1, size=(n, 1))
    y = rng.standard_normal(n)
    model = GaussianProcessRegressor(
        noise_variance=noise, noise_variance_bounds="fixed", optimizer=None
    ).fit(X, y)
    assert np.isfinite(model.lml_)
    _, sd = model.predict(X, return_std=True)
    assert np.all(sd > 0)


@given(scale=st.floats(0.1, 100.0))
@settings(max_examples=15, deadline=None)
def test_property_prediction_scales_with_targets(scale):
    """Scaling y scales the posterior mean identically (normalize_y on)."""
    X = np.linspace(0, 1, 8)[:, np.newaxis]
    y = np.sin(4 * X[:, 0])
    kw = dict(
        kernel=ConstantKernel(1.0, "fixed") * RBF(0.4, "fixed"),
        noise_variance=1e-6,
        noise_variance_bounds="fixed",
        optimizer=None,
        normalize_y=True,
    )
    m1 = GaussianProcessRegressor(**kw).fit(X, y)
    m2 = GaussianProcessRegressor(**kw).fit(X, scale * y)
    Xq = np.linspace(0, 1, 5)[:, np.newaxis]
    np.testing.assert_allclose(m2.predict(Xq), scale * m1.predict(Xq), rtol=1e-6, atol=1e-8)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_restart_fit_matches_serial(backend, small_1d_problem):
    """executor= fans restarts out; hyperparameters must not change a bit."""
    from repro.parallel import ParallelMap

    X, y = small_1d_problem
    kw = dict(noise_variance=0.05, n_restarts=3, rng=0)
    serial = GaussianProcessRegressor(**kw).fit(X, y)
    fanned = GaussianProcessRegressor(
        **kw, executor=ParallelMap(backend, 2)
    ).fit(X, y)
    np.testing.assert_array_equal(serial.kernel_.theta, fanned.kernel_.theta)
    assert serial.noise_variance_ == fanned.noise_variance_
    assert serial.lml_ == fanned.lml_


def _ill_conditioned_fit(shrink):
    """A fitted model whose cached L is shrunk so the posterior variance
    cancellation lands negative — the deterministic trigger for the clamp."""
    X = np.linspace(0, 1, 25)[:, np.newaxis]
    y = np.sin(4 * X[:, 0])
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(0.5, "fixed"),
        noise_variance=1e-10,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    model._fit.L = model._fit.L * (1.0 - shrink)
    return model, X


def test_return_cov_clamps_tiny_negative_diagonal():
    """Regression: return_cov silently returned negative diagonal variances
    (NaN after sqrt) where return_std already clamped them."""
    model, X = _ill_conditioned_fit(1e-9)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # tiny negatives must NOT warn
        mean, cov = model.predict(X, return_cov=True, include_noise=False)
        _, sd = model.predict(X, return_std=True, include_noise=False)
    diag = np.diag(cov)
    assert np.all(diag >= 0)
    assert not np.any(np.isnan(np.sqrt(diag)))
    np.testing.assert_allclose(np.sqrt(diag), sd, atol=1e-12)


def test_return_cov_warns_on_sizable_negative_diagonal():
    model, X = _ill_conditioned_fit(1e-3)
    with pytest.warns(RuntimeWarning, match="variance clipped"):
        _, cov = model.predict(X, return_cov=True, include_noise=False)
    assert np.all(np.diag(cov) >= 0)
    with pytest.warns(RuntimeWarning, match="variance clipped"):
        model.predict(X, return_std=True, include_noise=False)


def test_return_cov_clamp_keeps_noise_floor():
    """With include_noise, the clamped diagonal still carries sigma_n^2."""
    model, X = _ill_conditioned_fit(1e-9)
    _, cov = model.predict(X, return_cov=True)
    assert np.all(np.diag(cov) >= model.noise_variance_ * model._fit.y_std**2)


def test_sample_y_large_magnitude_targets():
    # Regression: sample_y used a fixed absolute 1e-12 Cholesky jitter.
    # With normalize_y the predictive covariance carries y_std**2 ~ 1e11,
    # so the nudge was pure roundoff and near-singular covariances
    # (duplicated extrapolation points, vanishing noise) raised
    # LinAlgError.  The jitter is now relative to the covariance scale
    # with bounded 10x escalation.
    X = np.linspace(0, 10, 30)[:, np.newaxis]
    y = 1e6 * np.sin(X[:, 0])
    model = GaussianProcessRegressor(
        rng=0, n_restarts=1, normalize_y=True,
        noise_variance=1e-16, noise_variance_bounds="fixed",
    ).fit(X, y)
    Xq = np.repeat(np.linspace(12, 20, 6), 3)[:, np.newaxis]
    samples = model.sample_y(Xq, n_samples=16, rng=2)
    assert samples.shape == (18, 16)
    assert np.all(np.isfinite(samples))
    # Samples live at the data's magnitude, not the normalized one.
    assert np.max(np.abs(samples)) > 1e4
