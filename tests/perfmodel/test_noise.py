"""Tests for the measurement-noise models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import PERFORMANCE_NOISE, POWER_NOISE, NoiseModel


def test_zero_noise_is_identity():
    model = NoiseModel(sigma=0.0, outlier_prob=0.0)
    values = np.array([1.0, 5.0, 100.0])
    out = model.apply(values, np.random.default_rng(0))
    np.testing.assert_allclose(out, values)


def test_noise_preserves_scale():
    model = NoiseModel(sigma=0.05, outlier_prob=0.0)
    rng = np.random.default_rng(1)
    samples = model.apply(np.full(20000, 10.0), rng)
    # Log-normal with sigma=0.05: median ~ 10, relative sd ~ 5%.
    assert np.median(samples) == pytest.approx(10.0, rel=0.01)
    assert np.std(np.log(samples)) == pytest.approx(0.05, rel=0.1)


def test_outliers_are_one_sided():
    """Slowdown events only make jobs slower, never faster."""
    model = NoiseModel(sigma=0.0, outlier_prob=1.0, outlier_scale=0.5)
    rng = np.random.default_rng(2)
    samples = model.apply(np.full(1000, 10.0), rng)
    assert np.all(samples >= 10.0)
    assert samples.mean() > 10.0


def test_outlier_probability_respected():
    model = NoiseModel(sigma=0.0, outlier_prob=0.1, outlier_scale=1.0)
    rng = np.random.default_rng(3)
    samples = model.apply(np.full(20000, 1.0), rng)
    frac = np.mean(samples > 1.0)
    assert frac == pytest.approx(0.1, abs=0.02)


def test_power_noise_louder_than_performance_noise():
    """The paper's Fig. 1: the Power dataset is visibly noisier."""
    assert POWER_NOISE.sigma > PERFORMANCE_NOISE.sigma
    assert POWER_NOISE.outlier_prob >= PERFORMANCE_NOISE.outlier_prob


def test_validation():
    with pytest.raises(ValueError):
        NoiseModel(sigma=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(outlier_prob=1.5)
    with pytest.raises(ValueError):
        NoiseModel(outlier_scale=-1.0)
    with pytest.raises(ValueError):
        NoiseModel().apply(np.array([-1.0]), np.random.default_rng(0))


def test_deterministic_given_rng():
    model = PERFORMANCE_NOISE
    a = model.apply(np.ones(10), np.random.default_rng(5))
    b = model.apply(np.ones(10), np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)


@given(value=st.floats(1e-3, 1e6), sigma=st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_property_noise_positive(value, sigma):
    model = NoiseModel(sigma=sigma, outlier_prob=0.05)
    out = model.apply(np.full(16, value), np.random.default_rng(0))
    assert np.all(out > 0)
    assert out.shape == (16,)
