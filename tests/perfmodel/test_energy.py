"""Tests for the analytic energy surface."""

import numpy as np
import pytest

from repro.perfmodel import EnergyModel, RuntimeModel


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


def test_energy_is_power_times_time(model):
    t = float(model.runtime_model.runtime("poisson1", 1e8, 32, 2.4))
    p = float(model.total_power(32, 2.4))
    e = float(model.energy("poisson1", 1e8, 32, 2.4))
    assert e == pytest.approx(p * t, rel=1e-12)


def test_total_power_node_counting(model):
    """33 ranks spill onto a second node: idle power jumps."""
    p32 = float(model.total_power(32, 2.4))
    p33 = float(model.total_power(33, 2.4))
    assert p33 > p32 + model.power_model.idle_watts * 0.9


def test_total_power_four_full_nodes(model):
    p128 = float(model.total_power(128, 2.4))
    p_node = model.power_model.full_node_power(model.cluster.node, 2.4)
    assert p128 == pytest.approx(4 * p_node, rel=1e-9)


def test_energy_frequency_tradeoff_exists(model):
    """Lower frequency: longer runtime but lower power — energy is a
    genuine tradeoff surface, not monotone in f (race-to-idle vs DVFS)."""
    e_lo = float(model.energy("poisson1", 1e8, 32, 1.2))
    e_hi = float(model.energy("poisson1", 1e8, 32, 2.4))
    # Both regimes must be within a factor ~2 (neither trivially dominates).
    assert 0.4 < e_lo / e_hi < 2.5


def test_energy_broadcasts(model):
    sizes = np.geomspace(1e6, 1e9, 5)
    e = model.energy("poisson2", sizes, 16, 1.8)
    assert e.shape == (5,)
    assert np.all(np.diff(e) > 0)  # more work, more energy


def test_capacity_validation(model):
    with pytest.raises(ValueError):
        model.total_power(0, 2.4)
    with pytest.raises(ValueError):
        model.total_power(129, 2.4)


def test_table1_energy_range(model):
    """Long-job campaign energies span ~5e3-1.3e5 J (Table I: 6.4e3-1.1e5)."""
    from repro.datasets.generate import feasible_configurations

    rm = RuntimeModel()
    vals = []
    for op, s, p, f in feasible_configurations(rm):
        t = float(rm.runtime(op, s, p, f))
        if t >= 50.0:
            vals.append(float(model.energy(op, s, p, f)))
    vals = np.asarray(vals)
    assert 3e3 < vals.min() < 1e4
    assert 5e4 < vals.max() < 3e5
