"""Tests for the analytic HPGMG-FE runtime surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import OPERATOR_COST, RuntimeModel


@pytest.fixture(scope="module")
def model():
    return RuntimeModel()


def test_runtime_increases_with_problem_size(model):
    sizes = np.geomspace(1e4, 1e9, 20)
    t = model.runtime("poisson1", sizes, 32, 2.4)
    assert np.all(np.diff(t) > 0)


def test_runtime_decreases_with_ranks_for_large_problems(model):
    ranks = np.array([1, 2, 4, 8, 16, 32, 64, 128])
    t = model.runtime("poisson1", 5e8, ranks, 2.4)
    assert np.all(np.diff(t) < 0)


def test_runtime_decreases_with_frequency(model):
    freqs = np.array([1.2, 1.5, 1.8, 2.1, 2.4])
    t = model.runtime("poisson2", 1e7, 16, freqs)
    assert np.all(np.diff(t) < 0)


def test_operator_cost_ordering(model):
    """Q2 > Q1, mapped Q2 costs the most (per Table I's operator factor)."""
    t1 = model.runtime("poisson1", 1e8, 32, 2.4)
    t2 = model.runtime("poisson2", 1e8, 32, 2.4)
    t3 = model.runtime("poisson2affine", 1e8, 32, 2.4)
    assert t1 < t2 < t3
    assert OPERATOR_COST["poisson1"] < OPERATOR_COST["poisson2"]


def test_setup_floor(model):
    """Tiny jobs bottom out at the launch overhead (Table I's 5 ms floor)."""
    t = float(model.runtime("poisson1", 10.0, 128, 2.4))
    assert model.setup_seconds <= t < 3 * model.setup_seconds


def test_table1_runtime_range(model):
    """Calibration: feasible grid spans ~0.005-460 s as in Table I."""
    from repro.datasets.generate import feasible_configurations

    configs = feasible_configurations(model)
    times = np.array(
        [float(model.runtime(op, s, p, f)) for (op, s, p, f) in configs]
    )
    assert 0.003 < times.min() < 0.01
    assert 300 < times.max() <= 460


def test_effective_parallelism_smt_knee(model):
    p_eff = model.effective_parallelism(np.array([1, 16, 24, 32]))
    np.testing.assert_allclose(p_eff[0], 1.0)
    np.testing.assert_allclose(p_eff[1], 16.0)
    # Beyond 16 ranks/node, extra ranks count at smt_efficiency.
    np.testing.assert_allclose(p_eff[2], 16.0 + 8 * model.smt_efficiency)
    np.testing.assert_allclose(p_eff[3], 16.0 + 16 * model.smt_efficiency)


def test_speedup_sublinear_with_knee(model):
    s = model.speedup("poisson1", 128**3, np.array([2, 16, 32, 128]), 2.4)
    assert np.all(s >= 1.0)
    assert np.all(np.diff(s) > 0)
    assert s[-1] < 128  # never superlinear


def test_frequency_exponent_below_one(model):
    """Memory-bound multigrid: halving f less than doubles runtime."""
    t_lo = float(model.runtime("poisson1", 1e8, 1, 1.2))
    t_hi = float(model.runtime("poisson1", 1e8, 1, 2.4))
    assert t_lo / t_hi < 2.0
    # The constant setup term perturbs the pure power law only slightly.
    assert t_lo / t_hi == pytest.approx(2.0**model.freq_exponent, rel=1e-4)


def test_nodes_needed(model):
    assert model.nodes_needed(1) == 1
    assert model.nodes_needed(32) == 1
    assert model.nodes_needed(33) == 2
    assert model.nodes_needed(128) == 4
    with pytest.raises(ValueError):
        model.nodes_needed(0)


def test_validation(model):
    with pytest.raises(ValueError, match="unknown operator"):
        model.runtime("stokes", 1e6, 4, 2.4)
    with pytest.raises(ValueError):
        model.runtime("poisson1", -1.0, 4, 2.4)
    with pytest.raises(ValueError):
        model.runtime("poisson1", 1e6, 0, 2.4)
    with pytest.raises(ValueError):
        model.runtime("poisson1", 1e6, 4, -2.4)
    with pytest.raises(ValueError):
        RuntimeModel(seconds_per_dof=-1.0)
    with pytest.raises(ValueError):
        RuntimeModel(smt_efficiency=0.0)


@given(
    size=st.floats(1e3, 1e9),
    ranks=st.integers(1, 128),
    freq=st.floats(1.2, 2.4),
)
@settings(max_examples=50, deadline=None)
def test_property_runtime_positive_and_bounded_by_serial(size, ranks, freq):
    model = RuntimeModel()
    t = float(model.runtime("poisson2", size, ranks, freq))
    t_serial = float(model.runtime("poisson2", size, 1, freq))
    assert t > 0
    # Parallel compute work never exceeds serial work + comm overheads.
    assert t <= t_serial + 1.0
