"""Smoke test for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import _EXHIBITS, main


def test_cli_lists_all_exhibits():
    assert _EXHIBITS == (
        "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    )


def test_cli_rejects_unknown_exhibit():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_table1_in_process(capsys):
    """Run the lightest exhibit through the real entry point."""
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "3246" in out
    assert "regenerated in" in out


def test_cli_all_quick_in_process(capsys):
    """The full evaluation pass (`all --quick`) renders every exhibit.

    Dataset generation and the experiment modules are process-cached, so
    this mostly costs the two reduced AL sweeps (fig7/fig8).
    """
    assert main(["all", "--quick", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    for marker in (
        "TABLE I",
        "Fig. 1",
        "Fig. 2",
        "Fig. 3",
        "Fig. 4",
        "Fig. 5",
        "Fig. 6",
        "Fig. 7",
        "Fig. 8",
    ):
        assert marker in out, f"missing {marker} in CLI output"
    assert out.count("regenerated in") == 9


def test_cli_subprocess_help():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "table1" in result.stdout
