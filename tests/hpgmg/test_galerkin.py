"""Tests for Galerkin (RAP) coarse operators."""

import numpy as np
import pytest

from repro.hpgmg.galerkin import (
    GalerkinMultigridSolver,
    galerkin_coarse,
    prolongation_matrix,
)
from repro.hpgmg.grid import Mesh, coarsen
from repro.hpgmg.manufactured import discretization_error, source_term
from repro.hpgmg.operators import assemble, load_vector, make_problem
from repro.hpgmg.transfer import (
    embed_interior,
    extract_interior,
    prolong_bilinear,
)


def test_prolongation_matrix_matches_stencil_transfer():
    """The sparse P equals the array-based bilinear prolongation."""
    fine = Mesh(ne=8, order=1)
    coarse = coarsen(fine)
    P = prolongation_matrix(fine, coarse)
    rng = np.random.default_rng(0)
    uc = rng.standard_normal(coarse.n_interior)
    via_matrix = P @ uc
    via_stencil = extract_interior(
        prolong_bilinear(embed_interior(uc, coarse.nodes_per_side))
    )
    np.testing.assert_allclose(via_matrix, via_stencil, atol=1e-14)


def test_prolongation_matrix_shape_validation():
    with pytest.raises(ValueError, match="2:1"):
        prolongation_matrix(Mesh(ne=8), Mesh(ne=2))


def test_galerkin_equals_rediscretization_for_nested_q1():
    """Classical identity: nested Q1 spaces + constant coefficient =>
    P^T A_h P is exactly the rediscretized coarse stiffness."""
    problem = make_problem("poisson1")
    fine_op = assemble(problem, problem.mesh(16))
    rap = galerkin_coarse(fine_op)
    redisc = assemble(problem, problem.mesh(8))
    diff = (rap.A - redisc.A).toarray()
    assert np.abs(diff).max() < 1e-12


def test_galerkin_differs_for_variable_coefficient():
    """With a rough coefficient the two coarse models genuinely differ."""
    problem = make_problem("poisson2")
    fine_op = assemble(problem, problem.mesh(8))
    rap = galerkin_coarse(fine_op)
    redisc = assemble(problem, problem.mesh(4))
    diff = np.abs((rap.A - redisc.A).toarray()).max()
    assert diff > 1e-3


def test_galerkin_coarse_spd():
    for name in ("poisson1", "poisson2", "poisson2affine"):
        problem = make_problem(name)
        fine_op = assemble(problem, problem.mesh(8))
        rap = galerkin_coarse(fine_op)
        A = rap.A.toarray()
        np.testing.assert_allclose(A, A.T, atol=1e-12)
        assert np.linalg.eigvalsh(A).min() > 0


@pytest.mark.parametrize("name", ["poisson1", "poisson2", "poisson2affine"])
def test_galerkin_solver_converges(name):
    problem = make_problem(name)
    solver = GalerkinMultigridSolver(problem, 16, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    result = solver.solve(f, rtol=1e-9)
    assert result.converged
    assert result.cycles <= 15
    err = discretization_error(problem, result.u, solver.levels[0].mesh)
    assert err < 0.02


def test_galerkin_hierarchy_structure():
    solver = GalerkinMultigridSolver(make_problem("poisson2"), 16, rng=0)
    assert [op.mesh.ne for op in solver.levels] == [16, 8, 4, 2]


def test_galerkin_no_worse_than_rediscretized():
    """On the variable-coefficient flavour, RAP needs <= as many cycles."""
    from repro.hpgmg.multigrid import MultigridSolver

    problem = make_problem("poisson2")
    f = None
    cycles = {}
    for cls, key in ((MultigridSolver, "redisc"), (GalerkinMultigridSolver, "rap")):
        solver = cls(problem, 16, rng=0)
        if f is None:
            f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
        cycles[key] = solver.solve(f, rtol=1e-9).cycles
    assert cycles["rap"] <= cycles["redisc"] + 1
