"""Tests for the 3-D mini HPGMG-FE (hexahedral Q1/Q2 multigrid)."""

import numpy as np
import pytest

from repro.hpgmg.dim3 import (
    Mesh3,
    MultigridSolver3,
    assemble3,
    discretization_error3,
    exact_solution3,
    load_vector3,
    make_problem3,
    nodal_interior_values3,
    prolong_trilinear,
    restrict_transpose3,
    run_benchmark3,
    source_term3,
)


def test_mesh3_counts():
    m = Mesh3(ne=4, order=1)
    assert m.nodes_per_side == 5
    assert m.n_nodes == 125
    assert m.n_interior == 27
    q2 = Mesh3(ne=4, order=2)
    assert q2.nodes_per_side == 9
    assert q2.n_interior == 343


def test_mesh3_element_connectivity_covers_lattice():
    for order in (1, 2):
        m = Mesh3(ne=2, order=order)
        conn = m.element_node_ids()
        assert conn.shape == (8, (order + 1) ** 3)
        assert set(conn.ravel().tolist()) == set(range(m.n_nodes))


def test_mesh3_first_element_ids():
    m = Mesh3(ne=2, order=1)  # 3x3x3 lattice
    conn = m.element_node_ids()
    # Element (0,0,0): corners (i,j,k) in {0,1}^3, id = (k*3 + j)*3 + i.
    np.testing.assert_array_equal(sorted(conn[0]), [0, 1, 3, 4, 9, 10, 12, 13])


@pytest.mark.parametrize("name", ["poisson1", "poisson2", "poisson2affine"])
def test_assembled_operator3_spd(name):
    problem = make_problem3(name)
    op = assemble3(problem, problem.mesh(2))
    A = op.A.toarray()
    np.testing.assert_allclose(A, A.T, atol=1e-12)
    assert np.linalg.eigvalsh(A).min() > 0


def test_poisson1_3d_row_sums_vanish_deep_interior():
    problem = make_problem3("poisson1")
    mesh = problem.mesh(6)
    op = assemble3(problem, mesh)
    n = mesh.nodes_per_side
    ids = mesh.interior_ids()
    row_sums = np.asarray(op.A.sum(axis=1)).ravel()
    for local, gid in enumerate(ids):
        iz, rem = divmod(int(gid), n * n)
        iy, ix = divmod(rem, n)
        if all(2 <= v <= n - 3 for v in (ix, iy, iz)):
            assert abs(row_sums[local]) < 1e-12


def test_prolong_trilinear_exact_for_trilinear_fields():
    m = 4
    t = np.linspace(0, 1, m)
    Z, Y, X = np.meshgrid(t, t, t, indexing="ij")
    coarse = 1 + 2 * X + 3 * Y + 4 * Z + 5 * X * Y * Z
    fine = prolong_trilinear(coarse)
    n = 2 * (m - 1) + 1
    tf = np.linspace(0, 1, n)
    Zf, Yf, Xf = np.meshgrid(tf, tf, tf, indexing="ij")
    np.testing.assert_allclose(
        fine, 1 + 2 * Xf + 3 * Yf + 4 * Zf + 5 * Xf * Yf * Zf, atol=1e-12
    )


def test_restriction3_is_adjoint_of_prolongation():
    rng = np.random.default_rng(0)
    m, n = 4, 7
    uc = np.zeros((m, m, m))
    uc[1:-1, 1:-1, 1:-1] = rng.standard_normal((m - 2,) * 3)
    vf = np.zeros((n, n, n))
    vf[1:-1, 1:-1, 1:-1] = rng.standard_normal((n - 2,) * 3)
    lhs = float(np.sum(prolong_trilinear(uc) * vf))
    rhs = float(np.sum(uc * restrict_transpose3(vf)))
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_transfer3_validation():
    with pytest.raises(ValueError):
        prolong_trilinear(np.zeros((1, 1, 1)))
    with pytest.raises(ValueError):
        restrict_transpose3(np.zeros((4, 4, 4)))


@pytest.mark.parametrize("name", ["poisson1", "poisson2", "poisson2affine"])
def test_multigrid3_converges(name):
    problem = make_problem3(name)
    solver = MultigridSolver3(problem, 8, rng=0)
    f = load_vector3(problem, solver.levels[0].mesh, source_term3(problem))
    result = solver.solve(f, rtol=1e-8)
    assert result.converged
    assert result.cycles <= 15


@pytest.mark.parametrize("name,meshes", [
    ("poisson1", (4, 8)),
    # The oscillatory 3-D coefficient needs ne >= 8 to leave the
    # pre-asymptotic regime (rate 1.29 at 4->8, 1.86 at 8->16).
    ("poisson2", (8, 16)),
])
def test_mms3_second_order(name, meshes):
    problem = make_problem3(name)
    errs = []
    for ne in meshes:
        solver = MultigridSolver3(problem, ne, rng=0)
        mesh = solver.levels[0].mesh
        f = load_vector3(problem, mesh, source_term3(problem))
        result = solver.solve(f, rtol=1e-10)
        errs.append(discretization_error3(problem, result.u, mesh))
    rate = np.log2(errs[0] / errs[1])
    assert rate > 1.5


def test_mms3_affine():
    problem = make_problem3("poisson2affine")
    solver = MultigridSolver3(problem, 8, rng=0)
    mesh = solver.levels[0].mesh
    f = load_vector3(problem, mesh, source_term3(problem))
    result = solver.solve(f, rtol=1e-10)
    err = discretization_error3(problem, result.u, mesh)
    u_scale = np.abs(nodal_interior_values3(mesh, exact_solution3)).max()
    assert err < 0.05 * u_scale


def test_run_benchmark3():
    result = run_benchmark3("poisson1", 8, rng=0)
    assert result.converged
    assert result.dofs == 7**3
    assert result.dofs_per_second > 0
    assert result.verification_error < 0.05


def test_benchmark3_unknown_operator():
    with pytest.raises(ValueError):
        run_benchmark3("stokes", 4)


def test_dofs_match_paper_scale():
    """The paper's problem sizes are 12^3..1024^3 — cubic lattices."""
    mesh = Mesh3(ne=12, order=1)
    assert mesh.n_nodes == 13**3
    # Global (including boundary) size ~ the paper's smallest 1.7e3.
    assert 1.7e3 < mesh.n_nodes < 2.5e3
